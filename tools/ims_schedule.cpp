/**
 * @file
 * ims-schedule: command-line driver for the library. Reads loops in the
 * textual mini-IR format and modulo-schedules them.
 *
 * Usage:
 *   ims-schedule [options] <file.ir | ->...
 *   ims-schedule [options] --kernel <name>...
 *   ims-schedule [options] --program <name|all>...
 *   ims-schedule --list-kernels
 *
 * Options:
 *   --machine cydra5|clean64|wide-vliw|scalar-toy   (default cydra5)
 *   --scheduler iterative|slack|exact   scheduling backend (default
 *                            iterative; exact is the branch-and-bound
 *                            optimality prover)
 *   --exact-budget <n>       exact-backend node budget per candidate II
 *   --budget-ratio <r>       BudgetRatio (default 2.0; the paper's
 *                            quality studies use 6)
 *   --priority heightr|slack|source-order|random    (default heightr)
 *   --ii-search linear|racing|feedback   II search strategy (default
 *                            linear; racing and feedback are
 *                            deterministic — bit-identical winning
 *                            schedules at any thread count)
 *   --ii-threads <n>         racing worker count (0 = hardware)
 *   --feedback-cap <n>       feedback search: bottleneck-subgraph size
 *                            cap handed to the infeasibility probe
 *   --feedback-probe-budget <n>   feedback search: exact-backend node
 *                            budget per probe call
 *   --no-feedback-skip       feedback search: never skip candidate IIs
 *                            (degenerates to the linear walk)
 *   --listing                print the full prologue/kernel/epilogue
 *   --kernel-only            print the [36] kernel-only schema instead
 *   --trace                  print the per-step scheduling trace
 *   --telemetry              print the per-loop telemetry record as JSON
 *   --simulate <trip>        validate against the sequential semantics
 *   --verify                 run the full verification stack (structural
 *                            schedule check + sim-equivalence oracle over
 *                            several trip counts) and report violations
 *                            as structured diagnostics
 *   --quiet                  one summary line per loop only
 *   --no-compress            disable pipeline compression (--program)
 *
 * With --program, the named corpus program (or every program with
 * "all") goes through the whole-program driver: list-scheduled blocks,
 * the modulo-scheduled loop under EC/LC control, and pipeline
 * compression. --listing prints the linear program, --verify runs the
 * compiled-vs-sequential equivalence oracle at several trip counts.
 */
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/emit.hpp"
#include "codegen/kernel_only.hpp"
#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "program/program_compiler.hpp"
#include "program/program_executor.hpp"
#include "sched/attempt_feedback.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "workloads/kernels.hpp"
#include "workloads/programs.hpp"

namespace {

using namespace ims;

struct CliOptions
{
    std::string machine = "cydra5";
    std::string scheduler = "iterative";
    std::int64_t exactBudget = sched::kDefaultExactNodeBudget;
    double budgetRatio = 2.0;
    std::string priority = "heightr";
    std::string iiSearch = "linear";
    int iiThreads = 0;
    int feedbackCap = 12;
    std::int64_t feedbackProbeBudget = 200'000;
    bool feedbackSkip = true;
    bool listing = false;
    bool kernelOnly = false;
    bool trace = false;
    bool telemetry = false;
    bool verify = false;
    int simulateTrip = 0;
    bool quiet = false;
    bool listKernels = false;
    bool compress = true;
    std::vector<std::string> files;
    std::vector<std::string> kernels;
    std::vector<std::string> programs;
};

[[noreturn]] void
usage(int code)
{
    std::cerr
        << "usage: ims-schedule [options] <file.ir|->... | --kernel "
           "<name>... | --program <name|all>... | --list-kernels\n"
           "  --machine cydra5|clean64|wide-vliw|scalar-toy\n"
           "  --scheduler iterative|slack|exact  --exact-budget <n>\n"
           "  --budget-ratio <r>   --priority "
           "heightr|slack|source-order|random\n"
           "  --ii-search linear|racing|feedback  --ii-threads <n>\n"
           "  --feedback-cap <n>  --feedback-probe-budget <n>  "
           "--no-feedback-skip\n"
           "  --listing  --kernel-only  --trace  --telemetry  "
           "--simulate <trip>  --verify  --quiet  --no-compress\n";
    std::exit(code);
}

machine::MachineModel
machineByName(const std::string& name)
{
    if (name == "cydra5")
        return machine::cydra5();
    if (name == "clean64")
        return machine::clean64();
    if (name == "wide-vliw")
        return machine::wideVliw();
    if (name == "scalar-toy")
        return machine::scalarToy();
    std::cerr << "unknown machine '" << name << "'\n";
    usage(2);
}

sched::PriorityScheme
priorityByName(const std::string& name)
{
    if (name == "heightr")
        return sched::PriorityScheme::kHeightR;
    if (name == "slack")
        return sched::PriorityScheme::kSlack;
    if (name == "source-order")
        return sched::PriorityScheme::kSourceOrder;
    if (name == "random")
        return sched::PriorityScheme::kRandom;
    std::cerr << "unknown priority '" << name << "'\n";
    usage(2);
}

CliOptions
parseArgs(int argc, char** argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires " << what << "\n";
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--machine")
            options.machine = next("a machine name");
        else if (arg == "--scheduler")
            options.scheduler = next("a backend name");
        else if (arg == "--exact-budget")
            options.exactBudget = std::stoll(next("a node budget"));
        else if (arg == "--budget-ratio")
            options.budgetRatio = std::stod(next("a ratio"));
        else if (arg == "--priority")
            options.priority = next("a scheme");
        else if (arg == "--ii-search")
            options.iiSearch = next("a strategy name");
        else if (arg == "--ii-threads")
            options.iiThreads = std::stoi(next("a thread count"));
        else if (arg == "--feedback-cap")
            options.feedbackCap = std::stoi(next("a subgraph size cap"));
        else if (arg == "--feedback-probe-budget")
            options.feedbackProbeBudget =
                std::stoll(next("a node budget"));
        else if (arg == "--no-feedback-skip")
            options.feedbackSkip = false;
        else if (arg == "--listing")
            options.listing = true;
        else if (arg == "--kernel-only")
            options.kernelOnly = true;
        else if (arg == "--trace")
            options.trace = true;
        else if (arg == "--telemetry")
            options.telemetry = true;
        else if (arg == "--simulate")
            options.simulateTrip = std::stoi(next("a trip count"));
        else if (arg == "--verify")
            options.verify = true;
        else if (arg == "--quiet")
            options.quiet = true;
        else if (arg == "--list-kernels")
            options.listKernels = true;
        else if (arg == "--kernel")
            options.kernels.push_back(next("a kernel name"));
        else if (arg == "--program")
            options.programs.push_back(next("a program name"));
        else if (arg == "--no-compress")
            options.compress = false;
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(2);
        } else
            options.files.push_back(arg);
    }
    return options;
}

std::string
readFile(const std::string& path)
{
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        return buffer.str();
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

int
processLoop(const ir::Loop& loop, const CliOptions& options,
            const machine::MachineModel& machine)
{
    core::PipelinerOptions pipeline_options;
    pipeline_options.schedule.search.budgetRatio = options.budgetRatio;
    const auto search_kind = sched::iiSearchKindByName(options.iiSearch);
    if (!search_kind) {
        std::cerr << "unknown II search strategy '" << options.iiSearch
                  << "'\n";
        usage(2);
    }
    pipeline_options.withIiSearch(*search_kind, options.iiThreads);
    pipeline_options.withFeedback(options.feedbackCap, options.feedbackSkip,
                                  options.feedbackProbeBudget);
    const auto strategy =
        sched::schedulerStrategyByName(options.scheduler);
    if (!strategy) {
        std::cerr << "unknown scheduler backend '" << options.scheduler
                  << "'\n";
        usage(2);
    }
    pipeline_options.withScheduler(*strategy)
        .withExactNodeBudget(options.exactBudget);
    pipeline_options.schedule.priority = priorityByName(options.priority);
    if (options.verify)
        pipeline_options.withSimVerification(true);
    std::vector<sched::TraceEvent> trace;
    if (options.trace)
        pipeline_options.schedule.trace = &trace;

    core::SoftwarePipeliner pipeliner(machine, pipeline_options);
    const auto result = pipeliner.pipeline(core::PipelineRequest(loop));
    if (!result.ok()) {
        for (const auto& diagnostic : result.diagnostics) {
            std::cerr << loop.name() << ": "
                      << (diagnostic.severity ==
                                  core::Diagnostic::Severity::kError
                              ? "error"
                              : "warning")
                      << " [" << diagnostic.phase << "]";
            if (!diagnostic.code.empty())
                std::cerr << " <" << diagnostic.code << ">";
            std::cerr << ": " << diagnostic.message << "\n";
        }
        return 1;
    }
    const auto& artifacts = *result.artifacts;

    if (options.quiet) {
        std::cout << core::summaryLine(loop, artifacts) << "\n";
    } else {
        std::cout << core::report(loop, machine, artifacts) << "\n";
    }
    if (options.trace) {
        std::cout << "scheduling trace (" << trace.size() << " steps):\n";
        for (const auto& e : trace) {
            std::cout << "  step " << e.step << ": op " << e.op
                      << " Estart=" << e.estart << " -> t=" << e.slot
                      << (e.forced ? " (forced)" : "") << "\n";
        }
    }
    if (options.telemetry) {
        std::cout << result.telemetry.toJson() << "\n";
    }
    if (options.listing) {
        std::cout << codegen::emitListing(loop, artifacts.code,
                                          artifacts.registers);
    }
    if (options.kernelOnly) {
        const auto ko = codegen::generateKernelOnly(
            loop, artifacts.outcome.schedule);
        std::cout << codegen::emitKernelOnly(loop, ko);
    }
    if (options.verify) {
        std::cout << "verification: structural check and sim-equivalence "
                     "oracle passed\n";
    }
    if (options.simulateTrip > 0) {
        const auto spec =
            workloads::makeSimSpec(loop, options.simulateTrip, 1);
        const auto seq = sim::runSequential(loop, spec);
        const auto pipe =
            sim::runPipelined(loop, artifacts.outcome.schedule, spec);
        const bool ok = sim::equivalent(seq, pipe.state);
        std::cout << "simulation over " << options.simulateTrip
                  << " iterations: "
                  << (ok ? "pipelined == sequential"
                         : "MISMATCH (library bug)")
                  << "\n";
        if (!ok)
            return 1;
    }
    return 0;
}

int
processProgram(const program::Program& prog, const CliOptions& options,
               const machine::MachineModel& machine)
{
    core::PipelinerOptions pipeline_options;
    pipeline_options.schedule.search.budgetRatio = options.budgetRatio;
    const auto search_kind = sched::iiSearchKindByName(options.iiSearch);
    if (search_kind)
        pipeline_options.withIiSearch(*search_kind, options.iiThreads);
    pipeline_options.withFeedback(options.feedbackCap, options.feedbackSkip,
                                  options.feedbackProbeBudget);
    const auto strategy =
        sched::schedulerStrategyByName(options.scheduler);
    if (strategy)
        pipeline_options.withScheduler(*strategy)
            .withExactNodeBudget(options.exactBudget);
    pipeline_options.schedule.priority = priorityByName(options.priority);
    const auto program_options = program::ProgramOptions{}
                                     .withPipeline(pipeline_options)
                                     .withCompression(options.compress);

    const program::ProgramCompiler compiler(machine, program_options);
    const auto result = compiler.compile(prog);
    if (!result.ok()) {
        for (const auto& diagnostic : result.diagnostics) {
            if (diagnostic.severity != core::Diagnostic::Severity::kError)
                continue;
            std::cerr << prog.name << ": error [" << diagnostic.phase
                      << "]";
            if (!diagnostic.code.empty())
                std::cerr << " <" << diagnostic.code << ">";
            std::cerr << ": " << diagnostic.message << "\n";
        }
        return 1;
    }
    const auto& compiled = *result.compiled;

    if (options.quiet) {
        std::cout << result.toJson() << "\n";
    } else {
        std::cout << "program " << prog.name << " on "
                  << options.machine << ":\n";
        for (const auto& section : result.sections) {
            std::cout << "  " << section.kind << " '" << section.name
                      << "': " << section.ops << " ops, "
                      << section.cycles << " cycles";
            if (section.kind == "loop")
                std::cout << ", II=" << section.ii
                          << ", stages=" << section.stageCount
                          << (compiled.loop.isWhile ? " (WHILE)" : "");
            std::cout << "\n";
        }
        std::cout << "  compression: prologue overlap "
                  << compiled.prologueOverlap << " cycles, epilogue "
                  << "overlap " << compiled.epilogueOverlap
                  << " cycles\n"
                  << "  cycles at trip 17: " << compiled.compiledCycles(17)
                  << " compressed vs " << compiled.naiveCycles(17)
                  << " naive\n";
    }
    if (options.telemetry)
        std::cout << result.toJson() << "\n";
    if (options.listing)
        std::cout << program::emitProgram(compiled);
    if (options.verify || options.simulateTrip > 0) {
        std::vector<int> trips = {0, 1, 2, 5, 17};
        if (options.simulateTrip > 0)
            trips.push_back(options.simulateTrip);
        const auto diagnostics = program::programEquivalenceDiagnostics(
            prog, machine, program_options, trips, 1);
        for (const auto& diagnostic : diagnostics)
            std::cerr << prog.name << ": <" << diagnostic.code << "> "
                      << diagnostic.message << "\n";
        if (!diagnostics.empty())
            return 1;
        std::cout << "equivalence: compiled == sequential at trips {";
        for (std::size_t i = 0; i < trips.size(); ++i)
            std::cout << (i ? "," : "") << trips[i];
        std::cout << "}\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const CliOptions options = parseArgs(argc, argv);

    if (options.listKernels) {
        for (const auto& w : workloads::kernelLibrary()) {
            std::cout << w.loop.name() << "  (" << w.loop.size()
                      << " ops): " << w.description << "\n";
        }
        for (const auto& entry : workloads::programLibrary()) {
            std::cout << entry.program.name << "  (program, "
                      << entry.program.loop.body.size()
                      << "-op loop): " << entry.description << "\n";
        }
        return 0;
    }
    if (options.files.empty() && options.kernels.empty() &&
        options.programs.empty())
        usage(2);

    const auto machine = machineByName(options.machine);
    int status = 0;
    try {
        for (const auto& name : options.kernels) {
            status |= processLoop(workloads::kernelByName(name).loop,
                                  options, machine);
        }
        for (const auto& name : options.programs) {
            if (name == "all") {
                for (const auto& entry : workloads::programLibrary())
                    status |=
                        processProgram(entry.program, options, machine);
            } else {
                status |= processProgram(workloads::programByName(name),
                                         options, machine);
            }
        }
        for (const auto& file : options.files) {
            status |= processLoop(ir::parseLoop(readFile(file)), options,
                                  machine);
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return status;
}
