/**
 * @file
 * ims-fuzz: differential fuzzing driver. Generates random (loop, machine)
 * pairs, runs the full oracle stack on each (structural verification,
 * sequential-vs-pipelined simulation at several trip counts, MII sanity,
 * crash capture), delta-debugs every finding to a minimal reproducer and
 * writes a deterministic JSON campaign report.
 *
 * Usage:
 *   ims-fuzz [--seed S] [--cases N] [--threads T] [options]
 *   ims-fuzz --replay <file.repro>
 *
 * Options:
 *   --seed <S>             master seed (default 1); the whole campaign is
 *                          a pure function of (seed, cases, machine)
 *   --cases <N>            number of cases (default 500)
 *   --threads <T>          worker threads (default: hardware concurrency)
 *   --machine <file|name>  fixed machine for every case: a machine
 *                          description file or a built-in name (cydra5,
 *                          clean64, wide-vliw, scalar-toy); default is a
 *                          fresh random machine per case
 *   --out <file|->         write the JSON report there (default -: stdout)
 *   --repro-dir <dir>      reproducer directory (default tests/repro;
 *                          "none" disables writing)
 *   --no-minimize          keep findings at their generated size
 *   --trips <a,b,c>        sim-oracle trip counts (default 0,1,2,5,17)
 *   --scheduler <iterative|slack|exact>  scheduling backend the pipeline
 *                          under test uses (default iterative)
 *   --oracle <name>        enable an optional oracle class:
 *                          "opt.ii_gap": re-pipeline each clean case with
 *                          the exact backend and report heuristic IIs
 *                          above the proven optimum (budget-exhausted
 *                          exact searches are skipped, not findings);
 *                          "program.equiv": wrap each case as a full
 *                          program and require the whole-program driver
 *                          (EC/LC control, compression, marshaling) to
 *                          match the sequential reference at every trip
 *   --exact-budget <n>     exact-backend node budget per candidate II
 *   --ii-search <linear|racing|feedback>  II search strategy the
 *                          pipeline under test uses; racing and feedback
 *                          must be bit-identical to linear, so the
 *                          campaign's thread-invariance and
 *                          sim-equivalence oracles double as a
 *                          determinism check for the race and for the
 *                          feedback probe's skip proofs
 *   --ii-threads <n>       racing worker count per case (0 = hardware)
 *   --feedback-cap <n>     feedback search: bottleneck-subgraph cap
 *   --feedback-probe-budget <n>  feedback search: probe node budget
 *   --no-feedback-skip     feedback search: disable II skipping
 *   --inject-delay-fault   enable the deliberate dependence-delay bug
 *                          (memory flow delays forced to 0) to prove the
 *                          oracle + minimizer path end to end
 *   --replay <file>        re-run the oracles on a reproducer; exit 0 if
 *                          the case is now clean, 2 if it still fails
 *
 * Exit status: 0 = no findings, 1 = findings (campaign mode).
 */
#include <iostream>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/reproducer.hpp"
#include "graph/delay_model.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"
#include "machine/machine_io.hpp"
#include "machine/machines.hpp"

namespace {

using namespace ims;

struct CliOptions
{
    std::uint64_t seed = 1;
    int cases = 500;
    int threads = 0;
    std::string machine;
    std::string out = "-";
    std::string reproDir = "tests/repro";
    bool minimize = true;
    std::vector<int> trips = {0, 1, 2, 5, 17};
    std::string scheduler = "iterative";
    std::vector<std::string> oracles;
    std::int64_t exactBudget = sched::kDefaultExactNodeBudget;
    std::string iiSearch = "linear";
    int iiThreads = 0;
    int feedbackCap = 12;
    std::int64_t feedbackProbeBudget = 200'000;
    bool feedbackSkip = true;
    bool injectDelayFault = false;
    std::string replayFile;
};

[[noreturn]] void
usage(int code)
{
    std::cerr
        << "usage: ims-fuzz [--seed S] [--cases N] [--threads T]\n"
           "                [--machine <file|cydra5|clean64|wide-vliw|"
           "scalar-toy>]\n"
           "                [--out <file|->] [--repro-dir <dir|none>]\n"
           "                [--no-minimize] [--trips a,b,c] "
           "[--inject-delay-fault]\n"
           "                [--scheduler iterative|slack|exact] "
           "[--oracle opt.ii_gap|program.equiv]\n"
           "                [--exact-budget N]\n"
           "                [--ii-search linear|racing|feedback] "
           "[--ii-threads N]\n"
           "                [--feedback-cap N] "
           "[--feedback-probe-budget N] [--no-feedback-skip]\n"
           "       ims-fuzz --replay <file.repro>\n";
    std::exit(code);
}

std::vector<int>
parseTrips(const std::string& text)
{
    std::vector<int> trips;
    std::string current;
    for (const char c : text + ",") {
        if (c == ',') {
            if (!current.empty()) {
                trips.push_back(std::stoi(current));
                current.clear();
            }
        } else {
            current += c;
        }
    }
    if (trips.empty()) {
        std::cerr << "--trips needs at least one trip count\n";
        usage(2);
    }
    return trips;
}

std::string
machineText(const std::string& name)
{
    if (name == "cydra5")
        return machine::printMachine(machine::cydra5());
    if (name == "clean64")
        return machine::printMachine(machine::clean64());
    if (name == "wide-vliw")
        return machine::printMachine(machine::wideVliw());
    if (name == "scalar-toy")
        return machine::printMachine(machine::scalarToy());
    return fuzz::readTextFile(name);
}

CliOptions
parseArgs(int argc, char** argv)
{
    CliOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " requires " << what << "\n";
                usage(2);
            }
            return argv[++i];
        };
        if (arg == "--seed")
            options.seed = std::stoull(next("a seed"));
        else if (arg == "--cases")
            options.cases = std::stoi(next("a count"));
        else if (arg == "--threads")
            options.threads = std::stoi(next("a count"));
        else if (arg == "--machine")
            options.machine = next("a machine file or name");
        else if (arg == "--out")
            options.out = next("a path");
        else if (arg == "--repro-dir")
            options.reproDir = next("a directory");
        else if (arg == "--no-minimize")
            options.minimize = false;
        else if (arg == "--trips")
            options.trips = parseTrips(next("a trip list"));
        else if (arg == "--scheduler")
            options.scheduler = next("a backend name");
        else if (arg == "--oracle")
            options.oracles.push_back(next("an oracle name"));
        else if (arg == "--exact-budget")
            options.exactBudget = std::stoll(next("a node budget"));
        else if (arg == "--ii-search")
            options.iiSearch = next("a strategy name");
        else if (arg == "--ii-threads")
            options.iiThreads = std::stoi(next("a thread count"));
        else if (arg == "--feedback-cap")
            options.feedbackCap = std::stoi(next("a subgraph size cap"));
        else if (arg == "--feedback-probe-budget")
            options.feedbackProbeBudget =
                std::stoll(next("a node budget"));
        else if (arg == "--no-feedback-skip")
            options.feedbackSkip = false;
        else if (arg == "--inject-delay-fault")
            options.injectDelayFault = true;
        else if (arg == "--replay")
            options.replayFile = next("a reproducer file");
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(2);
        }
    }
    return options;
}

core::PipelinerOptions
pipelineOptions(const CliOptions& options)
{
    const auto kind = sched::iiSearchKindByName(options.iiSearch);
    if (!kind) {
        std::cerr << "unknown II search strategy '" << options.iiSearch
                  << "'\n";
        usage(2);
    }
    const auto strategy =
        sched::schedulerStrategyByName(options.scheduler);
    if (!strategy) {
        std::cerr << "unknown scheduler backend '" << options.scheduler
                  << "'\n";
        usage(2);
    }
    return core::PipelinerOptions{}
        .withIiSearch(*kind, options.iiThreads)
        .withFeedback(options.feedbackCap, options.feedbackSkip,
                      options.feedbackProbeBudget)
        .withScheduler(*strategy)
        .withExactNodeBudget(options.exactBudget);
}

fuzz::OracleOptions
oracleOptions(const CliOptions& options)
{
    fuzz::OracleOptions oracle;
    oracle.trips = options.trips;
    oracle.exactNodeBudget = options.exactBudget;
    for (const auto& name : options.oracles) {
        if (name == "opt.ii_gap") {
            oracle.checkOptimality = true;
        } else if (name == "program.equiv") {
            oracle.checkProgramEquivalence = true;
        } else {
            std::cerr << "unknown oracle class '" << name << "'\n";
            usage(2);
        }
    }
    return oracle;
}

int
replay(const CliOptions& options)
{
    const fuzz::ReproducerCase repro =
        fuzz::parseReproducer(fuzz::readTextFile(options.replayFile));
    const machine::MachineModel machine =
        machine::parseMachine(repro.machineText);
    const ir::Loop loop = ir::parseLoop(repro.loopText);

    fuzz::OracleOptions oracle = oracleOptions(options);
    oracle.simSeed = repro.simSeed;
    const fuzz::OracleVerdict verdict =
        fuzz::runOracles(loop, machine, pipelineOptions(options), oracle);

    std::cout << options.replayFile << ": recorded code '" << repro.code
              << "'\n";
    if (!verdict.failed()) {
        std::cout << "replay: clean (the recorded failure no longer "
                     "reproduces)\n";
        return 0;
    }
    std::cout << "replay: still failing with '" << verdict.code
              << "': " << verdict.message << "\n";
    if (verdict.code != repro.code) {
        std::cout << "replay: note: code differs from the recorded one\n";
    }
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    const CliOptions options = parseArgs(argc, argv);
    try {
        if (options.injectDelayFault)
            graph::setDelayFaultForTesting(true);
        if (!options.replayFile.empty())
            return replay(options);

        fuzz::CampaignOptions campaign;
        campaign.seed = options.seed;
        campaign.cases = options.cases;
        campaign.threads = options.threads;
        campaign.minimize = options.minimize;
        campaign.reproDir =
            options.reproDir == "none" ? "" : options.reproDir;
        campaign.oracle = oracleOptions(options);
        campaign.pipeline = pipelineOptions(options);
        if (!options.machine.empty())
            campaign.machineText = machineText(options.machine);

        const fuzz::CampaignReport report = fuzz::runCampaign(campaign);

        const std::string json = report.toJson();
        if (options.out == "-") {
            std::cout << json << "\n";
        } else {
            fuzz::writeTextFile(options.out, json + "\n");
        }
        std::cerr << "ims-fuzz: " << report.cases << " cases, "
                  << report.findings.size() << " findings, "
                  << report.clean << " clean, " << report.wallSeconds
                  << " s on " << report.threadsUsed << " threads\n";
        for (const auto& finding : report.findings) {
            std::cerr << "  case " << finding.caseIndex << " ["
                      << finding.code << "] " << finding.ops << " -> "
                      << finding.minimizedOps << " ops";
            if (!finding.reproFile.empty())
                std::cerr << "  (" << finding.reproFile << ")";
            std::cerr << "\n";
        }
        return report.findings.empty() ? 0 : 1;
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 3;
    }
}
