/**
 * @file
 * ims-serve: scheduling-as-a-service over stdin/stdout. Runs a
 * ScheduleService (machine registry + content-addressed schedule cache +
 * bounded worker queue) and speaks a line-delimited request/response
 * protocol — no sockets, so it composes with pipes, CI scripts and
 * editor integrations alike.
 *
 * Usage: ims-serve [options]
 *   --threads <n>         worker threads (0 = hardware concurrency)
 *   --cache-capacity <n>  cached schedules before LRU eviction (4096)
 *   --cache-shards <n>    cache lock shards (16)
 *   --max-queue <n>       queued requests before admission control
 *                         rejects with service.overloaded (1024)
 *   --machine <name>      default machine for schedule requests (cydra5)
 *   --scheduler iterative|slack|exact    default backend
 *   --budget-ratio <r>    default BudgetRatio (2.0)
 *   --load-cache <path>   re-materialize a saved cache before serving
 *   --save-cache <path>   save the cache on quit/EOF
 *
 * Protocol (one request per line; multi-line payloads are byte-counted):
 *   schedule <bytes> [client=<name>] [machine=<name>]
 *   <bytes of loop text in the mini-IR format>
 *       -> result <loop> ok ii=<n> mii=<n> length=<n> fingerprint=<hex>
 *        | result <loop> failed code=<diagnostic code>
 *       then: meta hit=<0|1> key=<hex> queue_ms=<t> service_ms=<t>
 *   register <name> <bytes>      (machine_io text payload)
 *   machines                     -> ok <name>...
 *   stats                        -> one ims.service_stats.v1 JSON line
 *   save <path> | load <path>    cache persistence
 *   quit
 *   Failures answer: error <code> <message>
 *
 * Responses are printed in request order. The `result` line is a pure
 * function of (loop, machine, options) — timings and cache state live on
 * the `meta` line — so replaying a request stream must reproduce every
 * result line byte-for-byte (scripts/ci.sh gates on exactly that).
 */
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "service/schedule_service.hpp"
#include "support/error.hpp"

namespace {

using namespace ims;

[[noreturn]] void
usage(int code)
{
    std::cerr << "usage: ims-serve [--threads n] [--cache-capacity n] "
                 "[--cache-shards n]\n"
                 "                 [--max-queue n] [--machine name] "
                 "[--scheduler iterative|slack|exact]\n"
                 "                 [--budget-ratio r] [--load-cache path] "
                 "[--save-cache path]\n";
    std::exit(code);
}

std::string
hex(std::uint64_t value)
{
    std::ostringstream out;
    out << std::hex << value;
    return out.str();
}

std::string
milliseconds(double seconds)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << seconds * 1000.0;
    return out.str();
}

/** Deterministic response line for one handled schedule request. */
std::string
resultLine(const service::ServiceResponse& response)
{
    if (response.status != service::ServiceResponse::Status::kOk)
        return "error " + response.errorCode + " " + response.errorMessage;

    std::ostringstream out;
    const core::PipelineResult& result = *response.result;
    out << "result " << response.loopName;
    if (result.ok()) {
        const auto& artifacts = *result.artifacts;
        out << " ok ii=" << artifacts.outcome.schedule.ii
            << " mii=" << artifacts.outcome.mii
            << " length=" << artifacts.outcome.schedule.scheduleLength;
    } else {
        std::string code = "error.unknown";
        for (const auto& diagnostic : result.diagnostics)
            if (diagnostic.severity == core::Diagnostic::Severity::kError) {
                code = diagnostic.code;
                break;
            }
        out << " failed code=" << code;
    }
    out << " fingerprint="
        << hex(service::fingerprintResult(*response.loop,
                                          response.model->model, result));
    return out.str();
}

std::string
metaLine(const service::ServiceResponse& response)
{
    std::ostringstream out;
    out << "meta hit=" << (response.cacheHit ? 1 : 0) << " key="
        << hex(response.key)
        << " queue_ms=" << milliseconds(response.queueSeconds)
        << " service_ms=" << milliseconds(response.serviceSeconds);
    return out.str();
}

/** Read exactly `bytes` bytes (the payload of a byte-counted request). */
bool
readPayload(std::istream& in, std::size_t bytes, std::string& out)
{
    out.assign(bytes, '\0');
    in.read(out.data(), static_cast<std::streamsize>(bytes));
    return in.gcount() == static_cast<std::streamsize>(bytes);
}

} // namespace

int
main(int argc, char** argv)
{
    service::ServiceOptions options;
    std::string default_machine = "cydra5";
    std::string load_path;
    std::string save_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--threads")
            options.threads = std::stoi(next());
        else if (arg == "--cache-capacity")
            options.cache.capacity =
                static_cast<std::size_t>(std::stoul(next()));
        else if (arg == "--cache-shards")
            options.cache.shards = std::stoi(next());
        else if (arg == "--max-queue")
            options.maxQueuedRequests =
                static_cast<std::size_t>(std::stoul(next()));
        else if (arg == "--machine")
            default_machine = next();
        else if (arg == "--scheduler") {
            const auto strategy = sched::schedulerStrategyByName(next());
            if (!strategy)
                usage(2);
            options.pipeline.withScheduler(*strategy);
        } else if (arg == "--budget-ratio")
            options.pipeline.withBudgetRatio(std::stod(next()));
        else if (arg == "--load-cache")
            load_path = next();
        else if (arg == "--save-cache")
            save_path = next();
        else if (arg == "--help")
            usage(0);
        else
            usage(2);
    }

    service::ScheduleService server(options);

    if (!load_path.empty()) {
        std::ifstream in(load_path);
        if (!in) {
            std::cerr << "ims-serve: cannot read " << load_path << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        try {
            const std::size_t loaded = server.loadCacheText(text.str());
            std::cerr << "ims-serve: re-materialized " << loaded
                      << " cached schedules from " << load_path << "\n";
        } catch (const support::Error& error) {
            std::cerr << "ims-serve: " << error.what() << "\n";
            return 1;
        }
    }

    // Responses are printed strictly in request order: each schedule
    // request's future is queued here, and the front is flushed as soon
    // as it is ready (or force-flushed at EOF / before a sync command).
    std::deque<std::future<service::ServiceResponse>> inflight;
    const auto flush_front = [&]() {
        const service::ServiceResponse response = inflight.front().get();
        inflight.pop_front();
        std::cout << resultLine(response) << "\n";
        if (response.status == service::ServiceResponse::Status::kOk)
            std::cout << metaLine(response) << "\n";
        std::cout.flush();
    };
    const auto flush_all = [&]() {
        while (!inflight.empty())
            flush_front();
    };
    const auto flush_ready = [&]() {
        while (!inflight.empty() &&
               inflight.front().wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready)
            flush_front();
    };

    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        std::istringstream request(line);
        std::string command;
        request >> command;

        if (command == "schedule") {
            std::size_t bytes = 0;
            request >> bytes;
            if (request.fail()) {
                flush_all();
                std::cout << "error service.bad_request missing byte count\n"
                          << std::flush;
                continue;
            }
            service::ServiceRequest item;
            item.machine = default_machine;
            std::string attribute;
            while (request >> attribute) {
                if (attribute.rfind("client=", 0) == 0)
                    item.client = attribute.substr(7);
                else if (attribute.rfind("machine=", 0) == 0)
                    item.machine = attribute.substr(8);
            }
            if (!readPayload(std::cin, bytes, item.loopText)) {
                flush_all();
                std::cout << "error service.bad_request truncated payload\n"
                          << std::flush;
                break;
            }
            inflight.push_back(server.submit(std::move(item)));
            flush_ready();
        } else if (command == "register") {
            flush_all();
            std::string name;
            std::size_t bytes = 0;
            request >> name >> bytes;
            std::string text;
            if (request.fail() || !readPayload(std::cin, bytes, text)) {
                std::cout << "error service.bad_request malformed register\n"
                          << std::flush;
                continue;
            }
            try {
                server.models().registerText(name, text);
                std::cout << "ok registered " << name << "\n" << std::flush;
            } catch (const support::Error& error) {
                std::cout << "error service.bad_machine " << error.what()
                          << "\n"
                          << std::flush;
            }
        } else if (command == "machines") {
            flush_all();
            std::cout << "ok";
            for (const auto& name : server.models().names())
                std::cout << " " << name;
            std::cout << "\n" << std::flush;
        } else if (command == "stats") {
            flush_all();
            std::cout << server.stats().toJson() << "\n" << std::flush;
        } else if (command == "save") {
            flush_all();
            std::string path;
            request >> path;
            std::ofstream out(path, std::ios::binary);
            if (!out) {
                std::cout << "error service.io cannot write " << path << "\n"
                          << std::flush;
                continue;
            }
            out << server.saveCacheText();
            std::cout << "ok saved " << path << "\n" << std::flush;
        } else if (command == "load") {
            flush_all();
            std::string path;
            request >> path;
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::cout << "error service.io cannot read " << path << "\n"
                          << std::flush;
                continue;
            }
            std::ostringstream text;
            text << in.rdbuf();
            try {
                const std::size_t loaded = server.loadCacheText(text.str());
                std::cout << "ok loaded " << loaded << "\n" << std::flush;
            } catch (const support::Error& error) {
                std::cout << "error service.bad_cache_file " << error.what()
                          << "\n"
                          << std::flush;
            }
        } else if (command == "quit") {
            break;
        } else {
            flush_all();
            std::cout << "error service.bad_request unknown command '"
                      << command << "'\n"
                      << std::flush;
        }
    }
    flush_all();

    if (!save_path.empty()) {
        std::ofstream out(save_path, std::ios::binary);
        if (!out) {
            std::cerr << "ims-serve: cannot write " << save_path << "\n";
            return 1;
        }
        out << server.saveCacheText();
        std::cerr << "ims-serve: saved cache to " << save_path << "\n";
    }
    return 0;
}
