#ifndef IMS_MACHINE_RESERVATION_TABLE_HPP
#define IMS_MACHINE_RESERVATION_TABLE_HPP

#include <string>
#include <vector>

namespace ims::machine {

/** Index of a machine resource (pipeline stage, bus, instruction field). */
using ResourceId = int;

/** One resource reservation, `time` cycles after issue of the operation. */
struct ResourceUse
{
    int time = 0;
    ResourceId resource = 0;

    friend bool
    operator==(const ResourceUse& a, const ResourceUse& b)
    {
        return a.time == b.time && a.resource == b.resource;
    }
};

/**
 * Classification of reservation tables from §2.1 of the paper:
 *  - Simple:  a single resource for a single cycle at issue time.
 *  - Block:   a single resource for multiple consecutive cycles from issue.
 *  - Complex: anything else.
 * Block and complex tables cause increasing difficulty for the scheduler
 * and motivate the iterative (backtracking) algorithm.
 */
enum class TableKind { kSimple, kBlock, kComplex };

/**
 * Reservation table for one alternative of one opcode: the set of
 * (relative time, resource) pairs the operation occupies, as in Figure 1
 * of the paper.
 */
class ReservationTable
{
  public:
    ReservationTable() = default;

    /** Construct from a list of uses (normalised: sorted, de-duplicated). */
    explicit ReservationTable(std::vector<ResourceUse> uses);

    /** Reserve `resource` at relative `time` (>= 0). */
    void addUse(int time, ResourceId resource);

    /** Reserve `resource` over [from, to] inclusive. */
    void addBlockUse(int from, int to, ResourceId resource);

    const std::vector<ResourceUse>& uses() const { return uses_; }

    bool empty() const { return uses_.empty(); }

    /** One past the last cycle with a reservation (0 if empty). */
    int length() const;

    /** Classify per §2.1. */
    TableKind kind() const;

    /**
     * True if issuing this table at relative offset `delta` after another
     * issue of `other` collides on some resource (used in tests to
     * reproduce the Figure 1 add/multiply collision analysis).
     */
    bool collidesWith(const ReservationTable& other, int delta) const;

  private:
    void normalize();

    std::vector<ResourceUse> uses_;
};

/** Name for a TableKind ("simple" / "block" / "complex"). */
std::string tableKindName(TableKind kind);

} // namespace ims::machine

#endif // IMS_MACHINE_RESERVATION_TABLE_HPP
