#include "machine/cydra5.hpp"

#include "machine/machine_builder.hpp"

namespace ims::machine {

MachineModel
cydra5()
{
    MachineBuilder b("cydra5");

    const ResourceId mem0 = b.addResource("mem-port-0");
    const ResourceId mem1 = b.addResource("mem-port-1");
    const ResourceId aalu0 = b.addResource("addr-alu-0");
    const ResourceId aalu1 = b.addResource("addr-alu-1");
    const ResourceId src_a = b.addResource("src-bus-a");
    const ResourceId src_b = b.addResource("src-bus-b");
    const ResourceId add1 = b.addResource("adder-stage-1");
    const ResourceId add2 = b.addResource("adder-stage-2");
    const ResourceId mul1 = b.addResource("mult-stage-1");
    const ResourceId mul2 = b.addResource("mult-stage-2");
    const ResourceId mul3 = b.addResource("mult-stage-3");
    const ResourceId result_add = b.addResource("adder-result-bus");
    const ResourceId result_mul = b.addResource("mult-result-bus");
    const ResourceId instr = b.addResource("instr-unit");

    using ir::Opcode;

    // --- Memory ports (simple tables, two alternatives). ------------------
    b.opcode(Opcode::kLoad, 20)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kStore, 1)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kPredSet, 2)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kPredClear, 2)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);

    // --- Address ALUs (simple tables, two alternatives). ------------------
    b.opcode(Opcode::kAddrAdd, 3)
        .simpleAlternative("addr-alu-0", aalu0)
        .simpleAlternative("addr-alu-1", aalu1);
    b.opcode(Opcode::kAddrSub, 3)
        .simpleAlternative("addr-alu-0", aalu0)
        .simpleAlternative("addr-alu-1", aalu1);

    // --- Adder pipeline: the Figure 1(a) complex table. --------------------
    // Source buses at issue, two pipeline stages, result bus on the last
    // cycle of the 4-cycle execution.
    ReservationTable adder_table;
    adder_table.addUse(0, src_a);
    adder_table.addUse(0, src_b);
    adder_table.addUse(1, add1);
    adder_table.addUse(2, add2);
    adder_table.addUse(3, result_add);

    for (Opcode opcode :
         {Opcode::kAdd, Opcode::kSub, Opcode::kMin, Opcode::kMax,
          Opcode::kAbs, Opcode::kCmpGt, Opcode::kSelect}) {
        b.opcode(opcode, 4).alternative("adder", adder_table);
    }

    // Copy: adder pipeline or either address ALU (three alternatives).
    b.opcode(Opcode::kCopy, 4)
        .alternative("adder", adder_table)
        .simpleAlternative("addr-alu-0", aalu0)
        .simpleAlternative("addr-alu-1", aalu1);

    // --- Multiplier pipeline: the Figure 1(b) complex table. ---------------
    ReservationTable mult_table;
    mult_table.addUse(0, src_a);
    mult_table.addUse(0, src_b);
    mult_table.addUse(1, mul1);
    mult_table.addUse(2, mul2);
    mult_table.addUse(3, mul3);
    mult_table.addUse(4, result_mul);
    b.opcode(Opcode::kMul, 5).alternative("multiplier", mult_table);

    // Divide and square root iterate in the first multiplier stage for most
    // of their execution: block-heavy complex tables (§2.1's hard case).
    ReservationTable div_table;
    div_table.addUse(0, src_a);
    div_table.addUse(0, src_b);
    div_table.addBlockUse(1, 18, mul1);
    div_table.addUse(19, mul2);
    div_table.addUse(20, mul3);
    div_table.addUse(21, result_mul);
    b.opcode(Opcode::kDiv, 22).alternative("multiplier", div_table);

    ReservationTable sqrt_table;
    sqrt_table.addUse(0, src_a);
    sqrt_table.addBlockUse(1, 22, mul1);
    sqrt_table.addUse(23, mul2);
    sqrt_table.addUse(24, mul3);
    sqrt_table.addUse(25, result_mul);
    b.opcode(Opcode::kSqrt, 26).alternative("multiplier", sqrt_table);

    // --- Instruction unit. -------------------------------------------------
    b.opcode(Opcode::kBranch, 1).simpleAlternative("instr-unit", instr);
    b.opcode(Opcode::kExitIf, 1).simpleAlternative("instr-unit", instr);

    return b.build();
}

} // namespace ims::machine
