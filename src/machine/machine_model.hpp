#ifndef IMS_MACHINE_MACHINE_MODEL_HPP
#define IMS_MACHINE_MACHINE_MODEL_HPP

#include <map>
#include <string>
#include <vector>

#include "ir/opcode.hpp"
#include "machine/reservation_table.hpp"

namespace ims::machine {

/**
 * One way of executing an opcode: a functional unit choice with its
 * reservation table (§2.1: "a particular operation may be executable on
 * multiple functional units, in which case it is said to have multiple
 * alternatives, with a different reservation table corresponding to each
 * one").
 */
struct Alternative
{
    /** Display name, e.g. "mem-port-0". */
    std::string name;
    ReservationTable table;
};

/** Execution properties of one opcode on a machine. */
struct OpcodeInfo
{
    /** Architectural latency: cycles from issue until the result is
     *  available to a consumer. */
    int latency = 1;
    /** At least one alternative; pseudo-ops have exactly one empty one. */
    std::vector<Alternative> alternatives;
};

/**
 * A machine description: the resource set and, per opcode, the latency and
 * execution alternatives. Immutable once built (see MachineBuilder).
 *
 * Opcode lookups sit on the scheduler's innermost loops (ResMII packing
 * probes every alternative of every operation; FindTimeSlot consults the
 * reservation tables per probe), so the info is stored densely indexed by
 * opcode and the unsupported-opcode diagnostic is only materialised on the
 * cold throw path.
 */
class MachineModel
{
  public:
    MachineModel(std::string name, std::vector<std::string> resource_names,
                 std::map<ir::Opcode, OpcodeInfo> opcodes);

    const std::string& name() const { return name_; }

    int
    numResources() const
    {
        return static_cast<int>(resourceNames_.size());
    }

    const std::string& resourceName(ResourceId id) const;

    /** True if the machine implements `opcode`. */
    bool
    supports(ir::Opcode opcode) const
    {
        const auto index = static_cast<std::size_t>(opcode);
        return index < infoByOpcode_.size() &&
               !infoByOpcode_[index].alternatives.empty();
    }

    /** Info for `opcode`; throws support::Error if unsupported. */
    const OpcodeInfo&
    info(ir::Opcode opcode) const
    {
        const auto index = static_cast<std::size_t>(opcode);
        if (index >= infoByOpcode_.size() ||
            infoByOpcode_[index].alternatives.empty())
            throwUnsupported(opcode);
        return infoByOpcode_[index];
    }

    /** Latency shortcut. Pseudo-ops (START/STOP) have latency 0. */
    int latency(ir::Opcode opcode) const;

    /** Number of alternatives for the opcode. */
    int numAlternatives(ir::Opcode opcode) const;

    /** Multi-line description of resources and opcode tables. */
    std::string toString() const;

  private:
    [[noreturn]] void throwUnsupported(ir::Opcode opcode) const;

    std::string name_;
    std::vector<std::string> resourceNames_;
    /** Dense per-opcode table; an entry with no alternatives means the
     *  opcode is unsupported (every supported opcode has at least one). */
    std::vector<OpcodeInfo> infoByOpcode_;
};

} // namespace ims::machine

#endif // IMS_MACHINE_MACHINE_MODEL_HPP
