#include "machine/machines.hpp"

#include "machine/machine_builder.hpp"

namespace ims::machine {

namespace {

using ir::Opcode;

/** Opcodes that run on the (integer/floating-point) adder class. */
constexpr Opcode kAdderOps[] = {Opcode::kAdd,   Opcode::kSub,
                                Opcode::kMin,   Opcode::kMax,
                                Opcode::kAbs,   Opcode::kCmpGt,
                                Opcode::kSelect, Opcode::kCopy};

} // namespace

MachineModel
clean64()
{
    MachineBuilder b("clean64");
    const ResourceId mem0 = b.addResource("mem-port-0");
    const ResourceId mem1 = b.addResource("mem-port-1");
    const ResourceId aalu0 = b.addResource("addr-alu-0");
    const ResourceId aalu1 = b.addResource("addr-alu-1");
    const ResourceId adder = b.addResource("adder");
    const ResourceId mult = b.addResource("multiplier");
    const ResourceId instr = b.addResource("instr-unit");

    b.opcode(Opcode::kLoad, 20)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kStore, 1)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kPredSet, 2)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kPredClear, 2)
        .simpleAlternative("mem-port-0", mem0)
        .simpleAlternative("mem-port-1", mem1);
    b.opcode(Opcode::kAddrAdd, 3)
        .simpleAlternative("addr-alu-0", aalu0)
        .simpleAlternative("addr-alu-1", aalu1);
    b.opcode(Opcode::kAddrSub, 3)
        .simpleAlternative("addr-alu-0", aalu0)
        .simpleAlternative("addr-alu-1", aalu1);
    for (Opcode opcode : kAdderOps)
        b.opcode(opcode, 4).simpleAlternative("adder", adder);
    b.opcode(Opcode::kMul, 5).simpleAlternative("multiplier", mult);
    // Divide/sqrt remain unpipelined: block tables even on the clean model.
    b.opcode(Opcode::kDiv, 22).blockAlternative("multiplier", mult, 18);
    b.opcode(Opcode::kSqrt, 26).blockAlternative("multiplier", mult, 22);
    b.opcode(Opcode::kBranch, 1).simpleAlternative("instr-unit", instr);
    b.opcode(Opcode::kExitIf, 1).simpleAlternative("instr-unit", instr);
    return b.build();
}

MachineModel
wideVliw()
{
    MachineBuilder b("wide-vliw");
    ResourceId mem[4];
    ResourceId aalu[4];
    ResourceId adder[2];
    ResourceId mult[2];
    for (int i = 0; i < 4; ++i)
        mem[i] = b.addResource("mem-port-" + std::to_string(i));
    for (int i = 0; i < 4; ++i)
        aalu[i] = b.addResource("addr-alu-" + std::to_string(i));
    for (int i = 0; i < 2; ++i)
        adder[i] = b.addResource("adder-" + std::to_string(i));
    for (int i = 0; i < 2; ++i)
        mult[i] = b.addResource("mult-" + std::to_string(i));
    const ResourceId instr = b.addResource("instr-unit");

    auto all_mem = [&](Opcode opcode, int latency) {
        auto cfg = b.opcode(opcode, latency);
        for (int i = 0; i < 4; ++i)
            cfg.simpleAlternative("mem-port-" + std::to_string(i), mem[i]);
    };
    all_mem(Opcode::kLoad, 8);
    all_mem(Opcode::kStore, 1);
    all_mem(Opcode::kPredSet, 1);
    all_mem(Opcode::kPredClear, 1);

    for (Opcode opcode : {Opcode::kAddrAdd, Opcode::kAddrSub}) {
        auto cfg = b.opcode(opcode, 1);
        for (int i = 0; i < 4; ++i)
            cfg.simpleAlternative("addr-alu-" + std::to_string(i), aalu[i]);
    }
    for (Opcode opcode : kAdderOps) {
        b.opcode(opcode, 2)
            .simpleAlternative("adder-0", adder[0])
            .simpleAlternative("adder-1", adder[1]);
    }
    b.opcode(Opcode::kMul, 3)
        .simpleAlternative("mult-0", mult[0])
        .simpleAlternative("mult-1", mult[1]);
    b.opcode(Opcode::kDiv, 12)
        .blockAlternative("mult-0", mult[0], 10)
        .blockAlternative("mult-1", mult[1], 10);
    b.opcode(Opcode::kSqrt, 14)
        .blockAlternative("mult-0", mult[0], 12)
        .blockAlternative("mult-1", mult[1], 12);
    b.opcode(Opcode::kBranch, 1).simpleAlternative("instr-unit", instr);
    b.opcode(Opcode::kExitIf, 1).simpleAlternative("instr-unit", instr);
    return b.build();
}

MachineModel
scalarToy()
{
    MachineBuilder b("scalar-toy");
    const ResourceId mem = b.addResource("mem");
    const ResourceId alu = b.addResource("alu");
    const ResourceId instr = b.addResource("instr");

    for (Opcode opcode : {Opcode::kLoad, Opcode::kStore, Opcode::kPredSet,
                          Opcode::kPredClear}) {
        b.opcode(opcode, opcode == Opcode::kLoad ? 2 : 1)
            .simpleAlternative("mem", mem);
    }
    for (Opcode opcode : {Opcode::kAddrAdd, Opcode::kAddrSub})
        b.opcode(opcode, 1).simpleAlternative("alu", alu);
    for (Opcode opcode : kAdderOps)
        b.opcode(opcode, 1).simpleAlternative("alu", alu);
    for (Opcode opcode : {Opcode::kMul, Opcode::kDiv, Opcode::kSqrt})
        b.opcode(opcode, 3).simpleAlternative("alu", alu);
    b.opcode(Opcode::kBranch, 1).simpleAlternative("instr", instr);
    b.opcode(Opcode::kExitIf, 1).simpleAlternative("instr", instr);
    return b.build();
}

} // namespace ims::machine
