#ifndef IMS_MACHINE_MACHINE_BUILDER_HPP
#define IMS_MACHINE_MACHINE_BUILDER_HPP

#include <map>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"

namespace ims::machine {

/**
 * Incremental construction of MachineModel descriptions.
 *
 * @code
 *   MachineBuilder b("toy");
 *   auto alu = b.addResource("alu");
 *   b.opcode(ir::Opcode::kAdd, 2).simpleAlternative("alu", alu);
 *   MachineModel m = b.build();
 * @endcode
 */
class MachineBuilder
{
  public:
    explicit MachineBuilder(std::string name);

    /** Declare a resource; returns its id. */
    ResourceId addResource(const std::string& name);

    /** Scoped helper returned by opcode() for attaching alternatives. */
    class OpcodeConfig
    {
      public:
        OpcodeConfig(MachineBuilder& builder, ir::Opcode opcode)
            : builder_(builder), opcode_(opcode)
        {}

        /** Add an alternative with an explicit reservation table. */
        OpcodeConfig& alternative(const std::string& name,
                                  ReservationTable table);

        /** Add a simple (one resource, one cycle at issue) alternative. */
        OpcodeConfig& simpleAlternative(const std::string& name,
                                        ResourceId resource);

        /** Add a block alternative occupying `resource` for `cycles`. */
        OpcodeConfig& blockAlternative(const std::string& name,
                                       ResourceId resource, int cycles);

      private:
        MachineBuilder& builder_;
        ir::Opcode opcode_;
    };

    /** Begin describing `opcode` with the given latency. */
    OpcodeConfig opcode(ir::Opcode opcode, int latency);

    /** Finalize into an immutable MachineModel. */
    MachineModel build() const;

  private:
    std::string name_;
    std::vector<std::string> resourceNames_;
    std::map<ir::Opcode, OpcodeInfo> opcodes_;
};

} // namespace ims::machine

#endif // IMS_MACHINE_MACHINE_BUILDER_HPP
