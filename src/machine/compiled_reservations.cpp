#include "machine/compiled_reservations.hpp"

#include <algorithm>
#include <cassert>

namespace ims::machine {

CompiledReservationTable::CompiledReservationTable(
    const ReservationTable& table, int ii, int num_resources)
    : ii_(ii), wordsPerRow_((num_resources + 63) / 64)
{
    assert(ii >= 1);
    const auto& uses = table.uses();
    if (uses.empty())
        return;

    // Reduce every use mod II into one packed word each: rotation in the
    // high half, resource in the low half, so raw word order is
    // (rotation, resource) order. ReservationTable uses are normalised
    // by (time, resource), so tables no longer than II arrive sorted —
    // only a wrapped table pays for a sort.
    data_.reserve(uses.size() * (2 + wordsPerRow_));
    bool sorted = true;
    for (const auto& use : uses) {
        assert(use.time >= 0 && use.resource >= 0 &&
               use.resource < num_resources);
        const std::uint64_t word =
            (static_cast<std::uint64_t>(use.time % ii) << 32) |
            static_cast<std::uint32_t>(use.resource);
        sorted = sorted && (data_.empty() || data_.back() <= word);
        data_.push_back(word);
    }
    if (!sorted)
        std::sort(data_.begin(), data_.end());

    // A duplicate (rotation, resource) pair is precisely a modulo
    // self-collision; record the fact and merge it so the masks stay
    // valid for conflict queries.
    const auto first_dup = std::unique(data_.begin(), data_.end());
    selfConflicts_ = first_dup != data_.end();
    data_.erase(first_dup, data_.end());
    numUses_ = static_cast<int>(data_.size());

    // Row-major masks over the non-empty rows, appended after the uses
    // (which are rotation-sorted, so each row's uses are contiguous).
    for (int i = 0; i < numUses_;) {
        const int row = use(i).rotation;
        data_.push_back(static_cast<std::uint64_t>(row));
        data_.resize(data_.size() + wordsPerRow_, 0);
        std::uint64_t* words = data_.data() + data_.size() - wordsPerRow_;
        for (; i < numUses_ && use(i).rotation == row; ++i) {
            const int r = use(i).resource;
            words[r >> 6] |= std::uint64_t{1} << (r & 63);
        }
        ++numRows_;
    }
}

const std::vector<CompiledReservationTable>&
CompiledTableCache::get(const std::vector<Alternative>& alternatives,
                        int ii, int num_resources)
{
    const void* key = &alternatives;
    for (const auto& entry : entries_) {
        if (entry.alternatives == key && entry.ii == ii)
            return entry.compiled;
    }

    Entry entry{key, ii, {}};
    entry.compiled.reserve(alternatives.size());
    for (const auto& alternative : alternatives)
        entry.compiled.emplace_back(alternative.table, ii, num_resources);
    entries_.push_back(std::move(entry));
    return entries_.back().compiled;
}

} // namespace ims::machine
