#ifndef IMS_MACHINE_CYDRA5_HPP
#define IMS_MACHINE_CYDRA5_HPP

#include "machine/machine_model.hpp"

namespace ims::machine {

/**
 * The Cydra-5-like machine model of the paper's Table 2, used for all the
 * corpus experiments:
 *
 *   Functional unit  #  Operations                      Latency
 *   Memory port      2  load                            20 (paper's
 *                                                        substitute for 26)
 *                       store                            1
 *                       predicate set / clear            2
 *   Address ALU      2  address add / subtract           3
 *   Adder            1  int/flp add, sub, min, max,      4
 *                       abs, compare, select, copy*
 *   Multiplier       1  int/flp multiply                 5
 *                       int/flp divide                  22
 *                       flp square root                 26
 *   Instruction unit 1  loop-closing branch              1
 *
 * (*copy may also execute on either address ALU, giving it three
 * alternatives — the multi-alternative case of §2.1.)
 *
 * Reservation tables follow Figure 1: adder and multiplier operations share
 * the two source-operand buses on the issue cycle and the result bus on the
 * last cycle of execution (complex tables); divide and square root block
 * the first multiplier stage for most of their execution (block-heavy
 * tables); memory-port and address-ALU operations use simple tables.
 */
MachineModel cydra5();

} // namespace ims::machine

#endif // IMS_MACHINE_CYDRA5_HPP
