#include "machine/reservation_table.hpp"

#include <algorithm>
#include <cassert>

namespace ims::machine {

ReservationTable::ReservationTable(std::vector<ResourceUse> uses)
    : uses_(std::move(uses))
{
    normalize();
}

void
ReservationTable::normalize()
{
    std::sort(uses_.begin(), uses_.end(),
              [](const ResourceUse& a, const ResourceUse& b) {
                  return a.time != b.time ? a.time < b.time
                                          : a.resource < b.resource;
              });
    uses_.erase(std::unique(uses_.begin(), uses_.end()), uses_.end());
}

void
ReservationTable::addUse(int time, ResourceId resource)
{
    assert(time >= 0);
    uses_.push_back(ResourceUse{time, resource});
    normalize();
}

void
ReservationTable::addBlockUse(int from, int to, ResourceId resource)
{
    assert(from >= 0 && from <= to);
    for (int t = from; t <= to; ++t)
        uses_.push_back(ResourceUse{t, resource});
    normalize();
}

int
ReservationTable::length() const
{
    int max_time = -1;
    for (const auto& use : uses_)
        max_time = std::max(max_time, use.time);
    return max_time + 1;
}

TableKind
ReservationTable::kind() const
{
    if (uses_.empty())
        return TableKind::kSimple; // pseudo-ops: vacuously simple
    const ResourceId resource = uses_.front().resource;
    bool single_resource = true;
    for (const auto& use : uses_)
        single_resource = single_resource && use.resource == resource;
    if (!single_resource)
        return TableKind::kComplex;
    // uses_ is sorted by time and de-duplicated; consecutive-from-zero?
    for (std::size_t i = 0; i < uses_.size(); ++i) {
        if (uses_[i].time != static_cast<int>(i))
            return TableKind::kComplex;
    }
    return uses_.size() == 1 ? TableKind::kSimple : TableKind::kBlock;
}

bool
ReservationTable::collidesWith(const ReservationTable& other, int delta) const
{
    for (const auto& mine : uses_) {
        for (const auto& theirs : other.uses()) {
            if (mine.resource == theirs.resource &&
                mine.time + delta == theirs.time) {
                return true;
            }
        }
    }
    return false;
}

std::string
tableKindName(TableKind kind)
{
    switch (kind) {
      case TableKind::kSimple:
        return "simple";
      case TableKind::kBlock:
        return "block";
      case TableKind::kComplex:
        return "complex";
    }
    return "?";
}

} // namespace ims::machine
