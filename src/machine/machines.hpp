#ifndef IMS_MACHINE_MACHINES_HPP
#define IMS_MACHINE_MACHINES_HPP

#include "machine/machine_model.hpp"

namespace ims::machine {

/**
 * A clean 64-bit-datapath machine: the same functional-unit mix as the
 * Cydra 5 model but with private buses, so every reservation table is
 * simple (one resource for one cycle at issue). This is the machine the
 * paper says future microprocessors resemble; used as an ablation to show
 * how table complexity drives the need for iterative scheduling.
 */
MachineModel clean64();

/**
 * A wide VLIW: four memory ports, four address ALUs, two adders, two
 * multipliers, all with simple tables and shorter latencies. Used by
 * the machine-exploration example and ablation benches.
 */
MachineModel wideVliw();

/**
 * A minimal single-issue-per-class machine with unit latencies; useful in
 * unit tests where hand-computed schedules must stay small.
 */
MachineModel scalarToy();

} // namespace ims::machine

#endif // IMS_MACHINE_MACHINES_HPP
