#include "machine/machine_builder.hpp"

#include <utility>

#include "support/error.hpp"

namespace ims::machine {

MachineBuilder::MachineBuilder(std::string name) : name_(std::move(name)) {}

ResourceId
MachineBuilder::addResource(const std::string& name)
{
    resourceNames_.push_back(name);
    return static_cast<ResourceId>(resourceNames_.size()) - 1;
}

MachineBuilder::OpcodeConfig
MachineBuilder::opcode(ir::Opcode opcode, int latency)
{
    support::check(latency >= 0, "negative latency");
    opcodes_[opcode].latency = latency;
    return OpcodeConfig(*this, opcode);
}

MachineBuilder::OpcodeConfig&
MachineBuilder::OpcodeConfig::alternative(const std::string& name,
                                          ReservationTable table)
{
    builder_.opcodes_[opcode_].alternatives.push_back(
        Alternative{name, std::move(table)});
    return *this;
}

MachineBuilder::OpcodeConfig&
MachineBuilder::OpcodeConfig::simpleAlternative(const std::string& name,
                                                ResourceId resource)
{
    ReservationTable table;
    table.addUse(0, resource);
    return alternative(name, std::move(table));
}

MachineBuilder::OpcodeConfig&
MachineBuilder::OpcodeConfig::blockAlternative(const std::string& name,
                                               ResourceId resource,
                                               int cycles)
{
    support::check(cycles >= 1, "block alternative needs >= 1 cycle");
    ReservationTable table;
    table.addBlockUse(0, cycles - 1, resource);
    return alternative(name, std::move(table));
}

MachineModel
MachineBuilder::build() const
{
    return MachineModel(name_, resourceNames_, opcodes_);
}

} // namespace ims::machine
