#include "machine/machine_io.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace ims::machine {

namespace {

std::string
cleanLine(std::string line)
{
    const auto semi = line.find(';');
    if (semi != std::string::npos)
        line.erase(semi);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
}

std::vector<std::string>
splitWords(const std::string& text)
{
    std::vector<std::string> words;
    std::istringstream in(text);
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

[[noreturn]] void
fail(int line_no, const std::string& message)
{
    throw support::Error("machine line " + std::to_string(line_no) + ": " +
                         message);
}

} // namespace

std::string
printMachine(const MachineModel& machine)
{
    std::ostringstream out;
    out << "machine " << machine.name() << "\n";
    for (ResourceId r = 0; r < machine.numResources(); ++r)
        out << "resource " << machine.resourceName(r) << "\n";
    for (int index = 0; index < ir::kNumRealOpcodes; ++index) {
        const auto opcode = static_cast<ir::Opcode>(index);
        if (!machine.supports(opcode))
            continue;
        const OpcodeInfo& info = machine.info(opcode);
        out << "opcode " << ir::opcodeName(opcode) << " " << info.latency
            << "\n";
        for (const Alternative& alt : info.alternatives) {
            out << "alt " << alt.name;
            for (const ResourceUse& use : alt.table.uses())
                out << " " << use.time << ":"
                    << machine.resourceName(use.resource);
            out << "\n";
        }
    }
    return out.str();
}

MachineModel
parseMachine(const std::string& text)
{
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;

    std::string name;
    bool saw_machine = false;
    std::vector<std::string> resources;
    std::map<std::string, ResourceId> resource_by_name;
    std::map<ir::Opcode, OpcodeInfo> opcodes;
    OpcodeInfo* current = nullptr;

    while (std::getline(in, raw)) {
        ++line_no;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        const auto words = splitWords(line);

        if (!saw_machine) {
            if (words.size() != 2 || words[0] != "machine")
                fail(line_no, "expected 'machine <name>' as first directive");
            name = words[1];
            saw_machine = true;
            continue;
        }
        if (words[0] == "resource") {
            if (words.size() != 2)
                fail(line_no, "expected 'resource <name>'");
            if (!resource_by_name
                     .emplace(words[1],
                              static_cast<ResourceId>(resources.size()))
                     .second)
                fail(line_no, "duplicate resource '" + words[1] + "'");
            resources.push_back(words[1]);
            continue;
        }
        if (words[0] == "opcode") {
            if (words.size() != 3)
                fail(line_no, "expected 'opcode <mnemonic> <latency>'");
            const auto opcode = ir::opcodeFromName(words[1]);
            if (!opcode)
                fail(line_no, "unknown opcode '" + words[1] + "'");
            if (opcodes.count(*opcode))
                fail(line_no, "duplicate opcode '" + words[1] + "'");
            OpcodeInfo info;
            try {
                info.latency = std::stoi(words[2]);
            } catch (const std::exception&) {
                fail(line_no, "bad latency '" + words[2] + "'");
            }
            current = &opcodes.emplace(*opcode, std::move(info))
                           .first->second;
            continue;
        }
        if (words[0] == "alt") {
            if (current == nullptr)
                fail(line_no, "'alt' outside an opcode block");
            if (words.size() < 2)
                fail(line_no, "expected 'alt <name> [<time>:<resource>...]'");
            Alternative alt;
            alt.name = words[1];
            for (std::size_t k = 2; k < words.size(); ++k) {
                const auto colon = words[k].find(':');
                if (colon == std::string::npos)
                    fail(line_no, "malformed use '" + words[k] +
                                      "' (want <time>:<resource>)");
                int time = 0;
                try {
                    time = std::stoi(words[k].substr(0, colon));
                } catch (const std::exception&) {
                    fail(line_no, "bad use time in '" + words[k] + "'");
                }
                const std::string resource = words[k].substr(colon + 1);
                const auto it = resource_by_name.find(resource);
                if (it == resource_by_name.end())
                    fail(line_no, "undeclared resource '" + resource + "'");
                alt.table.addUse(time, it->second);
            }
            current->alternatives.push_back(std::move(alt));
            continue;
        }
        fail(line_no, "unknown directive '" + words[0] + "'");
    }

    support::check(saw_machine, "empty machine text");
    return MachineModel(std::move(name), std::move(resources),
                        std::move(opcodes));
}

} // namespace ims::machine
