#ifndef IMS_MACHINE_COMPILED_RESERVATIONS_HPP
#define IMS_MACHINE_COMPILED_RESERVATIONS_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "machine/machine_model.hpp"
#include "machine/reservation_table.hpp"

namespace ims::machine {

/**
 * A reservation table lowered to bitmasks for one candidate II.
 *
 * The modulo reservation table only ever asks one question of an
 * alternative's table: "which resources does it touch in which row mod
 * II?". That is a pure function of (table, II), so it is compiled once
 * per II attempt instead of being re-derived from the use list on every
 * conflict probe. Two views of the same reservation are kept:
 *
 *  - **Modulo uses** (column-major): the use list with relative times
 *    reduced mod II and duplicate (time mod II, resource) pairs merged.
 *    This drives the word-parallel slot scan: for a use at rotation u of
 *    resource R, the set of issue residues that collide is exactly the
 *    MRT's per-resource row bitset rotated down by u.
 *
 *  - **Row masks** (row-major): for each non-empty row r in [0, II), a
 *    multi-word `uint64_t` bitmask over resources used at relative times
 *    congruent to r. A conflict test at issue time T reduces to ANDing
 *    each row mask against the MRT's occupancy mask of row
 *    (r + T) mod II. Machines with more than 64 resources simply use
 *    more words per row.
 *
 * Compilation also decides, once, whether the table collides with itself
 * under the modulo wrap-around (two uses of one resource in congruent
 * rows). Such an alternative can never be scheduled at this II and is
 * skipped before any slot probe; its masks (with the duplicate merged)
 * are still well-formed for conflict queries.
 *
 * Everything lives in one flat word buffer — the compile step runs once
 * per (opcode, II) but for *every* scheduler instance, so small loops
 * feel its constant factor: uses first (one packed word each), then per
 * non-empty row a header word (the row index) followed by the mask
 * words.
 */
class CompiledReservationTable
{
  public:
    /** One merged use: `rotation` = relative time mod II. */
    struct ModuloUse
    {
        int rotation = 0;
        ResourceId resource = 0;
    };

    CompiledReservationTable() = default;
    CompiledReservationTable(const ReservationTable& table, int ii,
                             int num_resources);

    int ii() const { return ii_; }

    /** Words per row mask: ceil(num_resources / 64). */
    int wordsPerRow() const { return wordsPerRow_; }

    /** True when the source table reserved no resources (pseudo-ops). */
    bool empty() const { return numUses_ == 0; }

    /** Cached ModuloReservationTable::selfConflicts(table, ii). */
    bool selfConflicts() const { return selfConflicts_; }

    /** Merged (rotation, resource) uses, sorted, unique. */
    int numUses() const { return numUses_; }

    ModuloUse
    use(int i) const
    {
        const std::uint64_t word = data_[i];
        return ModuloUse{static_cast<int>(word >> 32),
                         static_cast<ResourceId>(word & 0xffffffffu)};
    }

    /** Number of non-empty rows (<= min(#uses, ii)). */
    int numRows() const { return numRows_; }

    /** Row number of the k-th non-empty row, ascending. */
    int
    rowIndex(int k) const
    {
        return static_cast<int>(data_[rowEntry(k)]);
    }

    /** `wordsPerRow()` mask words of the k-th non-empty row. */
    const std::uint64_t*
    rowWords(int k) const
    {
        return data_.data() + rowEntry(k) + 1;
    }

  private:
    std::size_t
    rowEntry(int k) const
    {
        return static_cast<std::size_t>(numUses_) +
               static_cast<std::size_t>(k) * (1 + wordsPerRow_);
    }

    int ii_ = 1;
    int wordsPerRow_ = 0;
    int numUses_ = 0;
    int numRows_ = 0;
    bool selfConflicts_ = false;
    std::vector<std::uint64_t> data_;
};

/**
 * Cache of compiled alternative lists keyed by (alternative list, II).
 *
 * Every vertex with the same opcode shares one `Alternative` vector
 * inside the (immutable) MachineModel, so the key is that vector's
 * address. The scheduler probes the same few opcodes millions of times
 * per II attempt and revisits IIs across the MII search, hence a cache
 * rather than a per-attempt recompile of every vertex.
 *
 * Not thread-safe: each scheduler (and therefore each BatchPipeliner
 * worker) owns its own cache. Entries borrow the alternative vector, so
 * the machine model must outlive the cache.
 *
 * A machine has a handful of opcodes and the II search visits a handful
 * of candidates, so the cache is a flat sequence scanned linearly —
 * cheaper than a tree or hash map at these sizes, and `get` sits on the
 * per-attempt setup path of every vertex. A deque keeps the returned
 * references stable as entries are appended.
 */
class CompiledTableCache
{
  public:
    const std::vector<CompiledReservationTable>&
    get(const std::vector<Alternative>& alternatives, int ii,
        int num_resources);

    /** Number of distinct (alternative list, II) entries compiled. */
    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        const void* alternatives;
        int ii;
        std::vector<CompiledReservationTable> compiled;
    };

    std::deque<Entry> entries_;
};

} // namespace ims::machine

#endif // IMS_MACHINE_COMPILED_RESERVATIONS_HPP
