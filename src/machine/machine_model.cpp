#include "machine/machine_model.hpp"

#include <cassert>
#include <sstream>

#include "support/error.hpp"

namespace ims::machine {

MachineModel::MachineModel(std::string name,
                           std::vector<std::string> resource_names,
                           std::map<ir::Opcode, OpcodeInfo> opcodes)
    : name_(std::move(name)),
      resourceNames_(std::move(resource_names)),
      opcodes_(std::move(opcodes))
{
    // Pseudo-operations are implicitly supported with zero latency and a
    // single empty alternative so schedulers can treat them uniformly.
    for (ir::Opcode pseudo : {ir::Opcode::kStart, ir::Opcode::kStop}) {
        if (opcodes_.count(pseudo) == 0) {
            OpcodeInfo info;
            info.latency = 0;
            info.alternatives = {Alternative{"pseudo", ReservationTable{}}};
            opcodes_.emplace(pseudo, std::move(info));
        }
    }
    for (const auto& [opcode, info] : opcodes_) {
        support::check(!info.alternatives.empty(),
                       "opcode " + ir::opcodeName(opcode) +
                           " has no alternatives");
        for (const auto& alt : info.alternatives) {
            for (const auto& use : alt.table.uses()) {
                support::check(use.resource >= 0 &&
                                   use.resource < numResources(),
                               "reservation table for " +
                                   ir::opcodeName(opcode) +
                                   " uses undeclared resource");
            }
        }
    }
}

const std::string&
MachineModel::resourceName(ResourceId id) const
{
    assert(id >= 0 && id < numResources());
    return resourceNames_[id];
}

bool
MachineModel::supports(ir::Opcode opcode) const
{
    return opcodes_.count(opcode) != 0;
}

const OpcodeInfo&
MachineModel::info(ir::Opcode opcode) const
{
    auto it = opcodes_.find(opcode);
    support::check(it != opcodes_.end(),
                   "machine '" + name_ + "' does not implement opcode " +
                       ir::opcodeName(opcode));
    return it->second;
}

int
MachineModel::latency(ir::Opcode opcode) const
{
    return info(opcode).latency;
}

int
MachineModel::numAlternatives(ir::Opcode opcode) const
{
    return static_cast<int>(info(opcode).alternatives.size());
}

std::string
MachineModel::toString() const
{
    std::ostringstream out;
    out << "machine " << name_ << "\n  resources:";
    for (const auto& r : resourceNames_)
        out << " " << r;
    out << "\n";
    for (const auto& [opcode, info] : opcodes_) {
        if (ir::isPseudo(opcode))
            continue;
        out << "  " << ir::opcodeName(opcode) << " (latency "
            << info.latency << ")";
        for (const auto& alt : info.alternatives) {
            out << "\n    " << alt.name << " ["
                << tableKindName(alt.table.kind()) << "]:";
            for (const auto& use : alt.table.uses()) {
                out << " t" << use.time << ":"
                    << resourceNames_[use.resource];
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace ims::machine
