#include "machine/machine_model.hpp"

#include <cassert>
#include <sstream>

#include "support/error.hpp"

namespace ims::machine {

MachineModel::MachineModel(std::string name,
                           std::vector<std::string> resource_names,
                           std::map<ir::Opcode, OpcodeInfo> opcodes)
    : name_(std::move(name)),
      resourceNames_(std::move(resource_names)),
      infoByOpcode_(ir::kNumOpcodes)
{
    // Pseudo-operations are implicitly supported with zero latency and a
    // single empty alternative so schedulers can treat them uniformly.
    for (ir::Opcode pseudo : {ir::Opcode::kStart, ir::Opcode::kStop}) {
        if (opcodes.count(pseudo) == 0) {
            OpcodeInfo info;
            info.latency = 0;
            info.alternatives = {Alternative{"pseudo", ReservationTable{}}};
            opcodes.emplace(pseudo, std::move(info));
        }
    }
    for (auto& [opcode, info] : opcodes) {
        support::check(!info.alternatives.empty(),
                       "opcode " + ir::opcodeName(opcode) +
                           " has no alternatives");
        for (const auto& alt : info.alternatives) {
            for (const auto& use : alt.table.uses()) {
                support::check(use.resource >= 0 &&
                                   use.resource < numResources(),
                               "reservation table for " +
                                   ir::opcodeName(opcode) +
                                   " uses undeclared resource");
            }
        }
        infoByOpcode_[static_cast<std::size_t>(opcode)] = std::move(info);
    }
}

void
MachineModel::throwUnsupported(ir::Opcode opcode) const
{
    throw support::Error("machine '" + name_ +
                         "' does not implement opcode " +
                         ir::opcodeName(opcode));
}

const std::string&
MachineModel::resourceName(ResourceId id) const
{
    assert(id >= 0 && id < numResources());
    return resourceNames_[id];
}

int
MachineModel::latency(ir::Opcode opcode) const
{
    return info(opcode).latency;
}

int
MachineModel::numAlternatives(ir::Opcode opcode) const
{
    return static_cast<int>(info(opcode).alternatives.size());
}

std::string
MachineModel::toString() const
{
    std::ostringstream out;
    out << "machine " << name_ << "\n  resources:";
    for (const auto& r : resourceNames_)
        out << " " << r;
    out << "\n";
    for (std::size_t index = 0; index < infoByOpcode_.size(); ++index) {
        const auto opcode = static_cast<ir::Opcode>(index);
        const OpcodeInfo& info = infoByOpcode_[index];
        if (info.alternatives.empty() || ir::isPseudo(opcode))
            continue;
        out << "  " << ir::opcodeName(opcode) << " (latency "
            << info.latency << ")";
        for (const auto& alt : info.alternatives) {
            out << "\n    " << alt.name << " ["
                << tableKindName(alt.table.kind()) << "]:";
            for (const auto& use : alt.table.uses()) {
                out << " t" << use.time << ":"
                    << resourceNames_[use.resource];
            }
        }
        out << "\n";
    }
    return out.str();
}

} // namespace ims::machine
