#ifndef IMS_MACHINE_MACHINE_IO_HPP
#define IMS_MACHINE_MACHINE_IO_HPP

#include <string>

#include "machine/machine_model.hpp"

namespace ims::machine {

/**
 * Render a machine description in a textual format parseable by
 * parseMachine (line oriented; ';' starts a comment):
 *
 *   machine <name>                      -- required first directive
 *   resource <name>                     -- declaration order = ResourceId
 *   opcode <mnemonic> <latency>         -- begins an opcode block
 *   alt <name> [<time>:<resource>...]   -- one alternative of the opcode,
 *                                          empty use list allowed
 *
 * printMachine/parseMachine round-trip exactly (reservation tables are
 * stored normalised), which is what fuzz reproducers rely on to replay a
 * failing case on the machine that produced it. Resource and alternative
 * names must not contain whitespace or ':'.
 */
std::string printMachine(const MachineModel& machine);

/**
 * Parse the textual machine format back into a MachineModel.
 * @throws support::Error with a line number on any syntax violation,
 *         unknown opcode/resource, or duplicate declaration.
 */
MachineModel parseMachine(const std::string& text);

} // namespace ims::machine

#endif // IMS_MACHINE_MACHINE_IO_HPP
