#include "frontend/region_builder.hpp"

#include <cassert>

#include "support/error.hpp"

namespace ims::frontend {

using ir::Opcode;

RegionBuilder::RegionBuilder(std::string name)
    : builder_(std::move(name))
{
}

RegionBuilder&
RegionBuilder::liveIn(const std::string& name)
{
    support::check(kinds_.count(name) == 0,
                   "variable '" + name + "' already declared");
    kinds_[name] = VarKind::kInvariant;
    builder_.liveIn(name);
    return *this;
}

RegionBuilder&
RegionBuilder::recurrence(const std::string& name)
{
    support::check(kinds_.count(name) == 0,
                   "variable '" + name + "' already declared");
    kinds_[name] = VarKind::kRecurrence;
    builder_.liveIn(name);
    return *this;
}

std::string
RegionBuilder::freshName(const std::string& base)
{
    return base + "%" + std::to_string(nextId_++);
}

std::string
RegionBuilder::lookupVersion(const std::string& name) const
{
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        const auto& active =
            it->inElse ? it->elseVersions : it->thenVersions;
        if (auto found = active.find(name); found != active.end())
            return found->second;
    }
    if (auto found = topVersions_.find(name); found != topVersions_.end())
        return found->second;
    return "";
}

void
RegionBuilder::recordVersion(const std::string& name,
                             const std::string& version)
{
    if (frames_.empty()) {
        topVersions_[name] = version;
        return;
    }
    Frame& frame = frames_.back();
    (frame.inElse ? frame.elseVersions : frame.thenVersions)[name] =
        version;
}

ir::Operand
RegionBuilder::use(const std::string& name, int distance)
{
    const auto kind_it = kinds_.find(name);
    if (distance > 0) {
        support::check(kind_it != kinds_.end() &&
                           kind_it->second == VarKind::kRecurrence,
                       "cross-iteration read of non-recurrence variable "
                       "'" + name + "'");
        return builder_.reg(name, distance);
    }
    const std::string version = lookupVersion(name);
    if (!version.empty())
        return builder_.reg(version);
    support::check(kind_it != kinds_.end(),
                   "read of undeclared, unassigned variable '" + name +
                       "'");
    if (kind_it->second == VarKind::kRecurrence) {
        // Source semantics: the not-yet-assigned carried variable holds
        // the previous iteration's final value.
        return builder_.reg(name, 1);
    }
    return builder_.reg(name); // invariant
}

ir::Operand
RegionBuilder::imm(double value)
{
    return builder_.imm(value);
}

void
RegionBuilder::assign(Opcode opcode, const std::string& name,
                      std::vector<ir::Operand> sources)
{
    support::check(!finished_, "builder already finished");
    const auto kind_it = kinds_.find(name);
    support::check(kind_it == kinds_.end() ||
                       kind_it->second != VarKind::kInvariant,
                   "cannot assign to invariant '" + name + "'");
    if (kind_it == kinds_.end())
        kinds_[name] = VarKind::kLocal;
    const std::string version = freshName(name);
    builder_.op(opcode, version, std::move(sources));
    recordVersion(name, version);
}

void
RegionBuilder::load(const std::string& name, const std::string& array,
                    int offset, const ir::Operand& address, int stride)
{
    support::check(!finished_, "builder already finished");
    const auto kind_it = kinds_.find(name);
    support::check(kind_it == kinds_.end() ||
                       kind_it->second != VarKind::kInvariant,
                   "cannot assign to invariant '" + name + "'");
    if (kind_it == kinds_.end())
        kinds_[name] = VarKind::kLocal;
    const std::string version = freshName(name);
    builder_.load(version, array, offset, address, "", stride);
    recordVersion(name, version);
}

void
RegionBuilder::store(const std::string& array, int offset,
                     const ir::Operand& address, const ir::Operand& value,
                     int stride)
{
    support::check(!finished_, "builder already finished");
    const auto guard = activeGuard();
    if (guard) {
        builder_.storeIf(array, offset, address, value, *guard, stride);
    } else {
        builder_.store(array, offset, address, value, "", stride);
    }
}

void
RegionBuilder::beginIf(const ir::Operand& condition)
{
    support::check(!finished_, "builder already finished");
    Frame frame;
    frame.condition = freshName("cond");
    // 0/1 condition value: condition > 0.
    builder_.op(Opcode::kCmpGt, frame.condition,
                {condition, builder_.imm(0.0)});
    frames_.push_back(std::move(frame));
}

void
RegionBuilder::elseBranch()
{
    support::check(!frames_.empty(), "elseBranch() outside any if");
    support::check(!frames_.back().inElse,
                   "elseBranch() called twice for the same if");
    frames_.back().inElse = true;
}

std::string
RegionBuilder::materializePath(std::size_t depth, bool else_branch)
{
    Frame& frame = frames_[depth];
    std::string& slot = else_branch ? frame.elsePath : frame.thenPath;
    if (!slot.empty())
        return slot;

    // The branch's own 0/1 factor.
    std::string factor = frame.condition;
    if (else_branch) {
        const std::string inverted = freshName("ncond");
        builder_.op(Opcode::kSub, inverted,
                    {builder_.imm(1.0), builder_.reg(frame.condition)});
        factor = inverted;
    }
    if (depth == 0) {
        slot = factor;
        return slot;
    }
    const std::string parent =
        materializePath(depth - 1, frames_[depth - 1].inElse);
    const std::string combined = freshName("path");
    builder_.op(Opcode::kMul, combined,
                {builder_.reg(parent), builder_.reg(factor)});
    slot = combined;
    return slot;
}

std::string
RegionBuilder::activePath()
{
    if (frames_.empty())
        return "";
    return materializePath(frames_.size() - 1, frames_.back().inElse);
}

std::optional<ir::Operand>
RegionBuilder::activeGuard()
{
    const std::string path = activePath();
    if (path.empty())
        return std::nullopt;
    auto it = guardCache_.find(path);
    if (it != guardCache_.end())
        return builder_.reg(it->second);
    const std::string guard = freshName("guard");
    builder_.op(Opcode::kPredSet, guard,
                {builder_.reg(path), builder_.imm(0.0)});
    guardCache_.emplace(path, guard);
    return builder_.reg(guard);
}

void
RegionBuilder::endIf()
{
    support::check(!frames_.empty(), "endIf() outside any if");
    Frame frame = std::move(frames_.back());
    frames_.pop_back();

    // Merge every variable assigned in either branch.
    std::map<std::string, bool> touched;
    for (const auto& [name, version] : frame.thenVersions)
        touched[name] = true;
    for (const auto& [name, version] : frame.elseVersions)
        touched[name] = true;

    for (const auto& [name, unused] : touched) {
        (void)unused;
        auto resolve = [&](const std::map<std::string, std::string>&
                               branch) -> std::optional<ir::Operand> {
            if (auto it = branch.find(name); it != branch.end())
                return builder_.reg(it->second);
            // Not assigned on this path: the value visible outside.
            const std::string outer = lookupVersion(name);
            if (!outer.empty())
                return builder_.reg(outer);
            const auto kind_it = kinds_.find(name);
            if (kind_it != kinds_.end() &&
                kind_it->second == VarKind::kRecurrence) {
                return builder_.reg(name, 1);
            }
            return std::nullopt;
        };
        const auto then_value = resolve(frame.thenVersions);
        const auto else_value = resolve(frame.elseVersions);
        if (!then_value || !else_value) {
            // A branch-local temporary with no outside value: it simply
            // goes out of scope at the join.
            continue;
        }
        if (then_value->reg == else_value->reg &&
            then_value->distance == else_value->distance) {
            continue; // both paths agree
        }
        const std::string merged = freshName(name);
        builder_.op(Opcode::kSelect, merged,
                    {builder_.reg(frame.condition), *then_value,
                     *else_value});
        recordVersion(name, merged);
    }
}

ir::Loop
RegionBuilder::finish()
{
    support::check(!finished_, "finish() called twice");
    support::check(frames_.empty(),
                   "finish() with unclosed if (missing endIf())");
    finished_ = true;

    // Close assigned recurrence variables into their canonical registers
    // so next-iteration reads (name[d]) observe the final merged value.
    for (const auto& [name, kind] : kinds_) {
        if (kind != VarKind::kRecurrence)
            continue;
        const auto it = topVersions_.find(name);
        if (it == topVersions_.end())
            continue; // never assigned: pure seed
        builder_.op(Opcode::kCopy, name, {builder_.reg(it->second)},
                    "recurrence carry");
    }

    builder_.closeLoopBackSubstituted("region_n");
    return builder_.build();
}

} // namespace ims::frontend
