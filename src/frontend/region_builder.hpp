#ifndef IMS_FRONTEND_REGION_BUILDER_HPP
#define IMS_FRONTEND_REGION_BUILDER_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "ir/loop_builder.hpp"

namespace ims::frontend {

/**
 * IF-conversion frontend: write a loop body with structured control flow
 * (nested if/then/else hammocks, source-style variable assignment) and
 * lower it to the single predicated basic block the modulo scheduler
 * consumes — the paper's step "the selected region is IF-converted, with
 * the result that all branches except for the loop-closing branch
 * disappear ... the region now looks like a single basic block" (§1,
 * citing Allen et al. and Park/Schlansker).
 *
 * Lowering strategy:
 *  - arithmetic and loads execute speculatively (unguarded) on both
 *    paths — the paper's "control dependences may be selectively ignored
 *    thereby enabling speculative code motion";
 *  - stores are never speculated: each is guarded by a predicate
 *    materialised (predset) from its path condition;
 *  - path conditions nest by multiplying 0/1 condition values, so
 *    arbitrarily nested hammocks need no predicate-AND operation;
 *  - values assigned under control flow are merged at the join with a
 *    select on the branch condition (the IF-conversion φ);
 *  - variables are versioned source-style: reading an unassigned
 *    recurrence variable yields the previous iteration's final value,
 *    and finish() closes each assigned recurrence with a copy into its
 *    canonical register (costing one copy latency on such circuits).
 *
 * Example — `if (x[i] > 0) { y[i] = sqrt(x[i]); s += x[i]; }`:
 * @code
 *   RegionBuilder r("sum_positive_roots");
 *   r.recurrence("s");
 *   r.recurrence("ax");
 *   r.assign(ir::Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
 *   r.load("x", "X", 0, r.use("ax"));
 *   r.beginIf(r.use("x"));                    // then-path: x > 0
 *     r.assign(ir::Opcode::kSqrt, "rt", {r.use("x")});
 *     r.store("Y", 0, r.use("ax"), r.use("rt"));
 *     r.assign(ir::Opcode::kAdd, "s", {r.use("s"), r.use("x")});
 *   r.endIf();                                // implicit: else keeps s
 *   ir::Loop loop = r.finish();
 * @endcode
 */
class RegionBuilder
{
  public:
    explicit RegionBuilder(std::string name);

    /** Declare a live-in invariant. */
    RegionBuilder& liveIn(const std::string& name);

    /** Declare a loop-carried variable (live-in seed + carried value). */
    RegionBuilder& recurrence(const std::string& name);

    /**
     * Read variable `name`. Distance 0 reads the current version (for an
     * unassigned recurrence variable: the previous iteration's value);
     * distance d > 0 reads the final value from d iterations back
     * (recurrence variables only).
     */
    ir::Operand use(const std::string& name, int distance = 0);

    /** Immediate operand. */
    ir::Operand imm(double value);

    /** Assign `name` := opcode(sources); creates/updates its version. */
    void assign(ir::Opcode opcode, const std::string& name,
                std::vector<ir::Operand> sources);

    /** Load array[stride*i + offset] into `name` (speculative). */
    void load(const std::string& name, const std::string& array,
              int offset, const ir::Operand& address, int stride = 1);

    /** Store `value` to array[stride*i + offset], path-guarded. */
    void store(const std::string& array, int offset,
               const ir::Operand& address, const ir::Operand& value,
               int stride = 1);

    /** Open an if whose then-path runs when `condition > 0`. Nests. */
    void beginIf(const ir::Operand& condition);

    /** Switch to the else-path of the innermost open if. */
    void elseBranch();

    /** Close the innermost if, merging assigned variables via select. */
    void endIf();

    /**
     * Finalize: require all ifs closed, emit the canonical copies for
     * assigned recurrence variables and the back-substituted control
     * tail, validate, and return the IF-converted loop.
     */
    ir::Loop finish();

  private:
    struct Frame
    {
        /** 0/1 value of this if's condition (register name). */
        std::string condition;
        /** Lazily materialised nested path values ("" = not yet). */
        std::string thenPath;
        std::string elsePath;
        bool inElse = false;
        /** Versions assigned inside each branch. */
        std::map<std::string, std::string> thenVersions;
        std::map<std::string, std::string> elseVersions;
    };

    enum class VarKind { kInvariant, kRecurrence, kLocal };

    std::string freshName(const std::string& base);
    /** Version of `name` visible here, or "" if none. */
    std::string lookupVersion(const std::string& name) const;
    /** Record an assignment's new version in the active scope. */
    void recordVersion(const std::string& name,
                       const std::string& version);
    /** Path-condition value register for the active branch ("" = top). */
    std::string materializePath(std::size_t depth, bool else_branch);
    std::string activePath();
    /** Guard predicate operand for the active path (top level: none). */
    std::optional<ir::Operand> activeGuard();

    ir::LoopBuilder builder_;
    std::map<std::string, VarKind> kinds_;
    std::map<std::string, std::string> topVersions_;
    std::map<std::string, std::string> guardCache_;
    std::vector<Frame> frames_;
    int nextId_ = 0;
    bool finished_ = false;
};

} // namespace ims::frontend

#endif // IMS_FRONTEND_REGION_BUILDER_HPP
