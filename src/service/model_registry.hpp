#ifndef IMS_SERVICE_MODEL_REGISTRY_HPP
#define IMS_SERVICE_MODEL_REGISTRY_HPP

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "machine/machine_model.hpp"

namespace ims::service {

/** One registered machine: the model plus its canonical description. */
struct RegisteredModel
{
    machine::MachineModel model;
    /**
     * Canonical machine_io text (printMachine of the parsed model) — the
     * second component of the content-addressed cache key, computed once
     * at registration so request handling never re-prints the model.
     */
    std::string canonicalText;
};

/**
 * Thread-safe registry of named MachineModels for the schedule service.
 * The built-in models (cydra5, clean64, wide-vliw, scalar-toy) are
 * pre-registered under their CLI names; additional models arrive as
 * machine_io text (registerText) or as constructed models (registerModel).
 *
 * Lookups return shared_ptr<const RegisteredModel>, so a model stays
 * alive for requests already holding it even if re-registered
 * concurrently (re-registering a name atomically replaces the entry —
 * subsequent requests key against the new canonical text, so stale cache
 * entries for the old model can never be returned for the new one).
 */
class ModelRegistry
{
  public:
    /** Registry pre-populated with the built-in machines. */
    ModelRegistry();

    /** Register (or replace) a model under `name`. */
    void registerModel(const std::string& name, machine::MachineModel model);

    /**
     * Parse machine_io text and register it under `name`.
     * @throws support::Error on malformed machine text.
     */
    void registerText(const std::string& name, const std::string& text);

    /** Model by name, or nullptr when unknown. */
    std::shared_ptr<const RegisteredModel>
    lookup(const std::string& name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const RegisteredModel>> models_;
};

} // namespace ims::service

#endif // IMS_SERVICE_MODEL_REGISTRY_HPP
