#include "service/model_registry.hpp"

#include <utility>

#include "machine/cydra5.hpp"
#include "machine/machine_io.hpp"
#include "machine/machines.hpp"

namespace ims::service {

ModelRegistry::ModelRegistry()
{
    registerModel("cydra5", machine::cydra5());
    registerModel("clean64", machine::clean64());
    registerModel("wide-vliw", machine::wideVliw());
    registerModel("scalar-toy", machine::scalarToy());
}

void
ModelRegistry::registerModel(const std::string& name,
                             machine::MachineModel model)
{
    std::string text = machine::printMachine(model);
    auto entry = std::make_shared<RegisteredModel>(
        RegisteredModel{std::move(model), std::move(text)});
    const std::lock_guard<std::mutex> lock(mutex_);
    models_[name] = std::move(entry);
}

void
ModelRegistry::registerText(const std::string& name, const std::string& text)
{
    registerModel(name, machine::parseMachine(text));
}

std::shared_ptr<const RegisteredModel>
ModelRegistry::lookup(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second;
}

std::vector<std::string>
ModelRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [name, model] : models_)
        out.push_back(name);
    return out;
}

} // namespace ims::service
