#ifndef IMS_SERVICE_OPTIONS_CODEC_HPP
#define IMS_SERVICE_OPTIONS_CODEC_HPP

#include <string>

#include "core/pipeliner.hpp"

namespace ims::service {

/**
 * Canonical, byte-stable text rendering of the *semantically relevant*
 * pipeline options — the third component of the content-addressed cache
 * key (see docs/SERVICE.md, "Cache key").
 *
 * Normalization drops every knob that is guaranteed not to change the
 * produced PipelineResult:
 *  - the II-search strategy kind and worker count (the racing search is
 *    bit-identical to linear at any thread count, see docs/ALGORITHM.md),
 *  - the feedback-search knobs (subgraph cap, skip switch, probe
 *    budget): the feedback strategy's skips are sound infeasibility
 *    proofs, so its winning II and schedule equal the linear search's
 *    for every knob setting — feedback requests share cache lines with
 *    linear ones,
 *  - telemetry sinks and trace buffers (observability-only pointers).
 *
 * Everything else — backend strategy, BudgetRatio, maxIiIncrease,
 * priority scheme, forward-progress rule, random seed, exact node
 * budget, delay mode, DSA form, verification flags/trips/seed — is
 * emitted as one "key value" line each, in a fixed order, with doubles
 * in their shortest round-tripping decimal form. Two PipelinerOptions
 * values produce the same text iff they request the same computation.
 */
std::string canonicalOptionsText(const core::PipelinerOptions& options);

/**
 * Inverse of canonicalOptionsText, for cache persistence: rebuild a
 * PipelinerOptions (sinks null, II search linear) from the canonical
 * text. @throws support::Error on unknown keys or malformed values.
 */
core::PipelinerOptions parseOptionsText(const std::string& text);

} // namespace ims::service

#endif // IMS_SERVICE_OPTIONS_CODEC_HPP
