#ifndef IMS_SERVICE_SCHEDULE_SERVICE_HPP
#define IMS_SERVICE_SCHEDULE_SERVICE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/loop.hpp"
#include "service/model_registry.hpp"
#include "service/schedule_cache.hpp"

namespace ims::service {

/** Options for a ScheduleService instance. */
struct ServiceOptions
{
    /** Default pipeline options applied to requests without overrides.
     *  Also the options a loaded cache file is re-materialized under
     *  when an entry carries no recognizable override. */
    core::PipelinerOptions pipeline;
    /** Cache capacity / sharding. */
    CacheOptions cache;
    /**
     * Worker threads for the request queue; <= 0 means hardware
     * concurrency, resolved through support::resolveWorkerThreads — the
     * same >= 1 clamp BatchPipeliner uses, so a platform reporting 0
     * hardware threads still gets a working pool.
     */
    int threads = 0;
    /**
     * Admission control: requests beyond this many *queued* (not yet
     * executing) submissions are rejected with a structured
     * "service.overloaded" response instead of growing the queue without
     * bound.
     */
    std::size_t maxQueuedRequests = 1024;

    ServiceOptions&
    withPipelineOptions(core::PipelinerOptions o)
    {
        pipeline = std::move(o);
        return *this;
    }

    ServiceOptions&
    withCache(CacheOptions c)
    {
        cache = c;
        return *this;
    }

    ServiceOptions&
    withThreads(int count)
    {
        threads = count;
        return *this;
    }

    ServiceOptions&
    withMaxQueuedRequests(std::size_t count)
    {
        maxQueuedRequests = count;
        return *this;
    }
};

/** One schedule request, as text — the service's wire-level unit. */
struct ServiceRequest
{
    /**
     * Fairness key: requests are drained round-robin *across* clients,
     * so one client flooding the queue cannot starve the others. Empty
     * means the shared anonymous lane.
     */
    std::string client;
    /** Registry name of the machine to schedule for. */
    std::string machine = "cydra5";
    /** Loop body in the textual mini-IR format (ir/parser). */
    std::string loopText;
    /** Per-request option overrides; nullopt uses the service default. */
    std::optional<core::PipelinerOptions> options;
};

/** What the service answers. */
struct ServiceResponse
{
    enum class Status
    {
        /** Processed; `result` is set (it may still carry scheduling
         *  diagnostics — check result->ok()). */
        kOk,
        /** Refused by admission control before any work was done. */
        kRejected,
        /** Malformed request (unknown machine, unparsable loop, ...). */
        kError,
    };

    Status status = Status::kError;
    /** True iff the result came out of the content-addressed cache. */
    bool cacheHit = false;
    /** Structured code when status != kOk ("service.overloaded", ...). */
    std::string errorCode;
    std::string errorMessage;
    /** Parsed loop name (set once parsing succeeded). */
    std::string loopName;
    /** The content-addressed cache key digest (0 until keyed). */
    std::uint64_t key = 0;
    /** The memoized or freshly computed result (kOk only). Shared and
     *  immutable: a hit hands every requester the same object. */
    std::shared_ptr<const core::PipelineResult> result;
    /** The canonical parsed loop (kOk only; for reports/fingerprints). */
    std::shared_ptr<const ir::Loop> loop;
    /** The machine the request was scheduled for (kOk only). */
    std::shared_ptr<const RegisteredModel> model;
    /** Time spent waiting in the admission queue. */
    double queueSeconds = 0.0;
    /** Handling time (parse + hash + lookup [+ pipeline on miss]). */
    double serviceSeconds = 0.0;

    bool ok() const { return status == Status::kOk; }
};

/** Aggregate service observability. */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t errors = 0;
    std::size_t queued = 0;
    int workers = 0;
    CacheStats cache;

    /** One-line JSON with svc_* keys (schema ims.service_stats.v1). */
    std::string toJson() const;
};

/**
 * Scheduling-as-a-service: a long-running request layer over the
 * pipeline with
 *
 *  - a machine-model registry (built-ins pre-registered; more arrive as
 *    machine_io text),
 *  - a content-addressed ScheduleCache keyed on FNV-1a of (canonical
 *    loop text, canonical machine text, normalized options text), so
 *    identical loops across requests hit a memoized PipelineResult,
 *  - a bounded async request queue drained by a persistent worker pool
 *    (the same resolveWorkerThreads/parallel substrate as
 *    BatchPipeliner) with per-client round-robin fairness and
 *    "service.overloaded" admission rejections,
 *  - cache persistence: saveCacheText() serializes every memoized
 *    request via the canonical round-trip formats; loadCacheText()
 *    re-materializes them deterministically on restart.
 *
 * Thread-safety: every public method may be called concurrently.
 * Determinism: a cache hit returns a result bit-identical (see
 * fingerprintResult) to the cold run that populated it, regardless of
 * worker count, because the pipeline itself is deterministic and the
 * cache stores immutable results.
 */
class ScheduleService
{
  public:
    explicit ScheduleService(ServiceOptions options = {});
    /** Drains queued requests, then joins the workers. */
    ~ScheduleService();

    ScheduleService(const ScheduleService&) = delete;
    ScheduleService& operator=(const ScheduleService&) = delete;

    ModelRegistry& models() { return registry_; }
    const ServiceOptions& options() const { return options_; }
    /** Resolved worker-pool size (>= 1). */
    int workerThreads() const { return workerThreads_; }

    /**
     * Handle a request synchronously on the calling thread, bypassing
     * the queue (no admission control) but sharing the cache. This is
     * the workers' own execution path.
     */
    ServiceResponse scheduleNow(const ServiceRequest& request);

    /**
     * Enqueue a request; `done` runs exactly once on a worker thread
     * (or inline for admission rejections). Per-client round-robin
     * ordering: within one client requests complete in submission
     * order.
     */
    void submitAsync(ServiceRequest request,
                     std::function<void(const ServiceResponse&)> done);

    /** Future-returning convenience over submitAsync. */
    std::future<ServiceResponse> submit(ServiceRequest request);

    /** Block until the queue is empty and all workers are idle. */
    void drain();

    ServiceStats stats() const;

    /** Serialize the cache's request set (see ScheduleCache::saveText). */
    std::string saveCacheText() const { return cache_.saveText(); }

    /**
     * Re-materialize a saveText() document: each entry's canonical
     * (loop, machine, options) is re-pipelined once, cold, and the
     * result inserted under its original key — determinism makes the
     * loaded entries bit-identical to the ones that were saved. Returns
     * the number of entries loaded. @throws support::Error on malformed
     * or non-canonical input.
     */
    std::size_t loadCacheText(const std::string& text);

  private:
    struct Pending
    {
        ServiceRequest request;
        std::function<void(const ServiceResponse&)> done;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    ServiceResponse handle(const ServiceRequest& request,
                           double queue_seconds);

    ServiceOptions options_;
    int workerThreads_ = 1;
    ModelRegistry registry_;
    ScheduleCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    /** Per-client FIFO lanes; drained round-robin via rotation_. */
    std::map<std::string, std::deque<Pending>> lanes_;
    /** Clients with non-empty lanes, in first-enqueue order. */
    std::vector<std::string> rotation_;
    std::size_t rotationCursor_ = 0;
    std::size_t totalQueued_ = 0;
    int activeWorkers_ = 0;
    bool stopping_ = false;
    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t errors_ = 0;
    std::vector<std::thread> workers_;
};

} // namespace ims::service

#endif // IMS_SERVICE_SCHEDULE_SERVICE_HPP
