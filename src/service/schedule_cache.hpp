#ifndef IMS_SERVICE_SCHEDULE_CACHE_HPP
#define IMS_SERVICE_SCHEDULE_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"

namespace ims::service {

/**
 * Identity of one schedule request, content-addressed: the three
 * canonical texts (loop in printer form, machine in machine_io form,
 * options in canonicalOptionsText form) plus their FNV-1a digest.
 * Lookups compare the *full material* on digest match, so two distinct
 * requests can never share an entry even under a 64-bit hash collision.
 */
struct CacheKey
{
    std::string loopText;
    std::string machineText;
    std::string optionsText;
    std::uint64_t hash = 0;

    /** The concatenated key material (components '\\x1f'-separated). */
    std::string material() const;

    /** Build a key and compute its digest. */
    static CacheKey make(std::string loop_text, std::string machine_text,
                         std::string options_text);
};

/** Cache sizing and sharding knobs. */
struct CacheOptions
{
    /** Entries held across all shards before LRU eviction kicks in. */
    std::size_t capacity = 4096;
    /**
     * Lock shards. Keys are distributed by digest; each shard holds
     * capacity/shards entries and runs its own LRU list, so eviction is
     * approximate global LRU. Use 1 shard for strict LRU (tests).
     */
    int shards = 16;
};

/** Observability counters (monotonically increasing, save/load aside). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    /** Digest matches rejected by the full-material compare. */
    std::uint64_t hashCollisions = 0;
    std::size_t entries = 0;
};

/**
 * Content-addressed, sharded-LRU map from CacheKey to a memoized
 * PipelineResult. Results are held by shared_ptr-to-const: a hit hands
 * out the same immutable object to any number of concurrent readers
 * while eviction merely drops the cache's reference.
 *
 * Failed results (result->ok() == false) are cached too — a loop the
 * scheduler diagnoses as infeasible is diagnosed deterministically, so
 * re-running it for every identical request would only burn the budget
 * again.
 */
class ScheduleCache
{
  public:
    explicit ScheduleCache(CacheOptions options = {});

    /** The memoized result, or nullptr on miss. Promotes the entry to
     *  most-recently-used. */
    std::shared_ptr<const core::PipelineResult> lookup(const CacheKey& key);

    /**
     * Memoize `result` under `key` (no-op if an entry with identical
     * material already exists — the first result wins; by determinism
     * both are identical anyway). Returns the cached pointer.
     */
    std::shared_ptr<const core::PipelineResult>
    insert(const CacheKey& key, core::PipelineResult result);

    CacheStats stats() const;

    /**
     * Serialize every entry's *request* (the three canonical texts) in
     * LRU order, least recent first. Results are deliberately not
     * serialized: the pipeline is deterministic, so a loaded cache is
     * re-materialized by re-running each request once (see
     * ScheduleService::loadCacheText) — the round-trip formats are the
     * only persistence substrate, and a stale or corrupt result can
     * never be resurrected.
     */
    std::string saveText() const;

    /**
     * Parse a saveText() document into its request keys (validation
     * only; re-materialization is the service's job since it needs a
     * pipeliner). @throws support::Error on malformed input.
     */
    static std::vector<CacheKey> parseSaveText(const std::string& text);

  private:
    struct Entry
    {
        CacheKey key;
        std::shared_ptr<const core::PipelineResult> result;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Front = most recently used. */
        std::list<Entry> lru;
        /** Digest -> entries with that digest (usually exactly one). */
        std::unordered_map<std::uint64_t,
                           std::vector<std::list<Entry>::iterator>>
            byHash;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t hashCollisions = 0;
    };

    Shard& shardFor(std::uint64_t hash);
    const Shard& shardFor(std::uint64_t hash) const;

    std::size_t perShardCapacity_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/**
 * Deterministic digest of everything in a PipelineResult that is a pure
 * function of (loop, machine, options): artifact identity via the full
 * schedule (II, times, alternatives), the rendered report, diagnostics,
 * and the deterministic telemetry fields. Wall-clock phase timings and
 * race observability (ii_workers, attempts started/cancelled/wasted) are
 * excluded. This is the bit-identity oracle the cache tests and
 * bench_service gate on: a cache hit must fingerprint identically to a
 * cold run at any thread count.
 */
std::uint64_t fingerprintResult(const ir::Loop& loop,
                                const machine::MachineModel& machine,
                                const core::PipelineResult& result);

} // namespace ims::service

#endif // IMS_SERVICE_SCHEDULE_CACHE_HPP
