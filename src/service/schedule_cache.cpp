#include "service/schedule_cache.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/report.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace ims::service {

namespace {

/** Component separator for the key material: never appears in the
 *  canonical texts (they are printable-ASCII line-oriented formats). */
constexpr char kSeparator = '\x1f';

} // namespace

std::string
CacheKey::material() const
{
    std::string out;
    out.reserve(loopText.size() + machineText.size() + optionsText.size() +
                2);
    out += loopText;
    out += kSeparator;
    out += machineText;
    out += kSeparator;
    out += optionsText;
    return out;
}

CacheKey
CacheKey::make(std::string loop_text, std::string machine_text,
               std::string options_text)
{
    CacheKey key;
    key.loopText = std::move(loop_text);
    key.machineText = std::move(machine_text);
    key.optionsText = std::move(options_text);
    key.hash = support::fnv1a(key.material());
    return key;
}

ScheduleCache::ScheduleCache(CacheOptions options)
{
    const int shards = std::max(1, options.shards);
    const std::size_t capacity = std::max<std::size_t>(1, options.capacity);
    // Ceil division so the global capacity is never under-provisioned.
    perShardCapacity_ =
        (capacity + static_cast<std::size_t>(shards) - 1) / shards;
    shards_.reserve(shards);
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

ScheduleCache::Shard&
ScheduleCache::shardFor(std::uint64_t hash)
{
    return *shards_[hash % shards_.size()];
}

const ScheduleCache::Shard&
ScheduleCache::shardFor(std::uint64_t hash) const
{
    return *shards_[hash % shards_.size()];
}

std::shared_ptr<const core::PipelineResult>
ScheduleCache::lookup(const CacheKey& key)
{
    Shard& shard = shardFor(key.hash);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto bucket = shard.byHash.find(key.hash);
    if (bucket != shard.byHash.end()) {
        for (const auto entry_it : bucket->second) {
            if (entry_it->key.loopText == key.loopText &&
                entry_it->key.machineText == key.machineText &&
                entry_it->key.optionsText == key.optionsText) {
                ++shard.hits;
                // Promote: splice to the front of the LRU list
                // (iterators stay valid, byHash needs no update).
                shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
                return entry_it->result;
            }
            ++shard.hashCollisions;
        }
    }
    ++shard.misses;
    return nullptr;
}

std::shared_ptr<const core::PipelineResult>
ScheduleCache::insert(const CacheKey& key, core::PipelineResult result)
{
    Shard& shard = shardFor(key.hash);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    // First writer wins: a racing duplicate insert returns the existing
    // entry (deterministic pipeline => both results are identical).
    const auto bucket = shard.byHash.find(key.hash);
    if (bucket != shard.byHash.end()) {
        for (const auto entry_it : bucket->second) {
            if (entry_it->key.loopText == key.loopText &&
                entry_it->key.machineText == key.machineText &&
                entry_it->key.optionsText == key.optionsText)
                return entry_it->result;
        }
    }

    shard.lru.push_front(Entry{
        key, std::make_shared<const core::PipelineResult>(
                 std::move(result))});
    shard.byHash[key.hash].push_back(shard.lru.begin());
    ++shard.insertions;

    while (shard.lru.size() > perShardCapacity_) {
        const auto victim = std::prev(shard.lru.end());
        auto& siblings = shard.byHash[victim->key.hash];
        siblings.erase(
            std::remove(siblings.begin(), siblings.end(), victim),
            siblings.end());
        if (siblings.empty())
            shard.byHash.erase(victim->key.hash);
        shard.lru.erase(victim);
        ++shard.evictions;
    }
    return shard.lru.front().result;
}

CacheStats
ScheduleCache::stats() const
{
    CacheStats stats;
    for (const auto& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        stats.hits += shard->hits;
        stats.misses += shard->misses;
        stats.insertions += shard->insertions;
        stats.evictions += shard->evictions;
        stats.hashCollisions += shard->hashCollisions;
        stats.entries += shard->lru.size();
    }
    return stats;
}

std::string
ScheduleCache::saveText() const
{
    std::ostringstream out;
    out << "ims-schedule-cache v1\n";
    for (const auto& shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        // Least recent first so a loader replaying in order leaves the
        // most recently used entries freshest.
        for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
            const CacheKey& key = it->key;
            out << "entry " << key.loopText.size() << " "
                << key.machineText.size() << " " << key.optionsText.size()
                << "\n"
                << key.loopText << key.machineText << key.optionsText;
        }
    }
    return out.str();
}

std::vector<CacheKey>
ScheduleCache::parseSaveText(const std::string& text)
{
    std::istringstream in(text);
    std::string header;
    std::getline(in, header);
    support::check(header == "ims-schedule-cache v1",
                   "cache file: unknown header '" + header + "'");

    std::vector<CacheKey> keys;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream entry(line);
        std::string directive;
        std::size_t loop_bytes = 0;
        std::size_t machine_bytes = 0;
        std::size_t options_bytes = 0;
        entry >> directive >> loop_bytes >> machine_bytes >> options_bytes;
        support::check(directive == "entry" && !entry.fail(),
                       "cache file: malformed entry line '" + line + "'");
        const auto read_block = [&in](std::size_t bytes) {
            std::string block(bytes, '\0');
            in.read(block.data(), static_cast<std::streamsize>(bytes));
            support::check(in.gcount() ==
                               static_cast<std::streamsize>(bytes),
                           "cache file: truncated entry");
            return block;
        };
        std::string loop_text = read_block(loop_bytes);
        std::string machine_text = read_block(machine_bytes);
        std::string options_text = read_block(options_bytes);
        keys.push_back(CacheKey::make(std::move(loop_text),
                                      std::move(machine_text),
                                      std::move(options_text)));
    }
    return keys;
}

std::uint64_t
fingerprintResult(const ir::Loop& loop,
                  const machine::MachineModel& machine,
                  const core::PipelineResult& result)
{
    support::Fnv1a digest;
    digest.update(result.ok() ? "ok" : "failed");
    for (const auto& diagnostic : result.diagnostics) {
        digest.update(diagnostic.severity ==
                              core::Diagnostic::Severity::kError
                          ? "E"
                          : "W");
        digest.update(diagnostic.phase);
        digest.update(diagnostic.message);
        digest.update(diagnostic.code);
    }

    const auto& telemetry = result.telemetry;
    digest.update(telemetry.loop);
    digest.update(static_cast<std::uint64_t>(telemetry.ops));
    digest.update(static_cast<std::uint64_t>(telemetry.resMii));
    digest.update(static_cast<std::uint64_t>(telemetry.mii));
    digest.update(static_cast<std::uint64_t>(telemetry.ii));
    digest.update(static_cast<std::uint64_t>(telemetry.attempts));
    digest.update(static_cast<std::uint64_t>(telemetry.scheduleLength));
    digest.update(static_cast<std::uint64_t>(telemetry.budget));
    digest.update(static_cast<std::uint64_t>(telemetry.stepsTotal));
    digest.update(static_cast<std::uint64_t>(telemetry.backtracks));
    digest.update(telemetry.scheduler);

    if (result.ok()) {
        const auto& artifacts = *result.artifacts;
        const auto& schedule = artifacts.outcome.schedule;
        digest.update(static_cast<std::uint64_t>(schedule.ii));
        for (std::size_t v = 0; v < schedule.times.size(); ++v) {
            digest.update(static_cast<std::uint64_t>(schedule.times[v]));
            digest.update(
                static_cast<std::uint64_t>(schedule.alternatives[v]));
        }
        digest.update(static_cast<std::uint64_t>(schedule.stepsUsed));
        digest.update(static_cast<std::uint64_t>(schedule.unschedules));
        digest.update(
            static_cast<std::uint64_t>(artifacts.minScheduleLength));
        // The rendered report covers kernel rows, MVE plan, register
        // allocation and the baseline comparison in one deterministic
        // text — any divergence in the downstream artifacts shows here.
        digest.update(core::report(loop, machine, artifacts));
    }
    return digest.digest();
}

} // namespace ims::service
