#include "service/options_codec.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace ims::service {

namespace {

/** Shortest decimal form that round-trips the double (cf. ir/printer). */
std::string
formatDoubleKey(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return std::signbit(value) ? "-inf" : "inf";
    char buffer[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        double reparsed = 0.0;
        std::sscanf(buffer, "%lf", &reparsed);
        if (reparsed == value &&
            std::signbit(reparsed) == std::signbit(value))
            break;
    }
    return buffer;
}

std::string
tripsText(const std::vector<int>& trips)
{
    std::string out;
    for (std::size_t i = 0; i < trips.size(); ++i)
        out += (i > 0 ? "," : "") + std::to_string(trips[i]);
    return out.empty() ? "-" : out;
}

std::vector<int>
parseTrips(const std::string& text)
{
    std::vector<int> trips;
    if (text == "-")
        return trips;
    std::string item;
    for (const char c : text + ",") {
        if (c == ',') {
            try {
                trips.push_back(std::stoi(item));
            } catch (const std::exception&) {
                throw support::Error("options text: bad trip '" + item +
                                     "'");
            }
            item.clear();
        } else {
            item += c;
        }
    }
    return trips;
}

} // namespace

std::string
canonicalOptionsText(const core::PipelinerOptions& options)
{
    const auto& schedule = options.schedule;
    std::ostringstream out;
    out << "strategy " << sched::schedulerStrategyName(schedule.strategy)
        << "\n"
        << "budget_ratio " << formatDoubleKey(schedule.search.budgetRatio)
        << "\n"
        << "max_ii_increase " << schedule.search.maxIiIncrease << "\n"
        << "priority " << sched::prioritySchemeName(schedule.priority)
        << "\n"
        << "forward_progress " << (schedule.forwardProgressRule ? 1 : 0)
        << "\n"
        << "random_seed " << schedule.randomSeed << "\n"
        << "exact_node_budget " << schedule.exactNodeBudget << "\n"
        << "delay_mode " << graph::delayModeName(options.graph.delayMode)
        << "\n"
        << "dsa_form " << (options.graph.dsaForm ? 1 : 0) << "\n"
        << "verify " << (options.verify ? 1 : 0) << "\n"
        << "verify_sim " << (options.verifySim ? 1 : 0) << "\n"
        << "verify_sim_trips " << tripsText(options.verifySimTrips) << "\n"
        << "verify_sim_seed " << options.verifySimSeed << "\n";
    return out.str();
}

core::PipelinerOptions
parseOptionsText(const std::string& text)
{
    core::PipelinerOptions options;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto space = line.find(' ');
        support::check(space != std::string::npos,
                       "options text line " + std::to_string(line_no) +
                           ": expected 'key value'");
        const std::string key = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        try {
            if (key == "strategy") {
                const auto strategy = sched::schedulerStrategyByName(value);
                support::check(strategy.has_value(),
                               "unknown strategy '" + value + "'");
                options.schedule.strategy = *strategy;
            } else if (key == "budget_ratio") {
                options.schedule.search.budgetRatio = std::stod(value);
            } else if (key == "max_ii_increase") {
                options.schedule.search.maxIiIncrease = std::stoi(value);
            } else if (key == "priority") {
                const auto scheme = sched::prioritySchemeByName(value);
                support::check(scheme.has_value(),
                               "unknown priority '" + value + "'");
                options.schedule.priority = *scheme;
            } else if (key == "forward_progress") {
                options.schedule.forwardProgressRule = value == "1";
            } else if (key == "random_seed") {
                options.schedule.randomSeed = std::stoull(value);
            } else if (key == "exact_node_budget") {
                options.schedule.exactNodeBudget = std::stoll(value);
            } else if (key == "delay_mode") {
                const auto mode = graph::delayModeByName(value);
                support::check(mode.has_value(),
                               "unknown delay mode '" + value + "'");
                options.graph.delayMode = *mode;
            } else if (key == "dsa_form") {
                options.graph.dsaForm = value == "1";
            } else if (key == "verify") {
                options.verify = value == "1";
            } else if (key == "verify_sim") {
                options.verifySim = value == "1";
            } else if (key == "verify_sim_trips") {
                options.verifySimTrips = parseTrips(value);
            } else if (key == "verify_sim_seed") {
                options.verifySimSeed = std::stoull(value);
            } else {
                throw support::Error("unknown key '" + key + "'");
            }
        } catch (const support::Error&) {
            throw;
        } catch (const std::exception&) {
            throw support::Error("options text line " +
                                 std::to_string(line_no) + ": bad value '" +
                                 value + "' for '" + key + "'");
        }
    }
    return options;
}

} // namespace ims::service
