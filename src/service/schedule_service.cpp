#include "service/schedule_service.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/machine_io.hpp"
#include "service/options_codec.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace ims::service {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

std::string
ServiceStats::toJson() const
{
    std::ostringstream out;
    out << "{\"schema\":\"ims.service_stats.v1\""
        << ",\"svc_submitted\":" << submitted
        << ",\"svc_completed\":" << completed
        << ",\"svc_rejected\":" << rejected
        << ",\"svc_errors\":" << errors
        << ",\"svc_queued\":" << queued
        << ",\"svc_workers\":" << workers
        << ",\"svc_cache_hits\":" << cache.hits
        << ",\"svc_cache_misses\":" << cache.misses
        << ",\"svc_cache_insertions\":" << cache.insertions
        << ",\"svc_cache_evictions\":" << cache.evictions
        << ",\"svc_cache_hash_collisions\":" << cache.hashCollisions
        << ",\"svc_cache_entries\":" << cache.entries << "}";
    return out.str();
}

ScheduleService::ScheduleService(ServiceOptions options)
    : options_(std::move(options)),
      workerThreads_(support::resolveWorkerThreads(options_.threads)),
      cache_(options_.cache)
{
    workers_.reserve(static_cast<std::size_t>(workerThreads_));
    for (int i = 0; i < workerThreads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ScheduleService::~ScheduleService()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

ServiceResponse
ScheduleService::handle(const ServiceRequest& request, double queue_seconds)
{
    const auto started = Clock::now();
    ServiceResponse response;
    response.queueSeconds = queue_seconds;

    const auto fail = [&](std::string code, std::string message) {
        response.status = ServiceResponse::Status::kError;
        response.errorCode = std::move(code);
        response.errorMessage = std::move(message);
        response.serviceSeconds = secondsSince(started);
        return response;
    };

    const auto model = registry_.lookup(request.machine);
    if (!model)
        return fail("service.unknown_machine",
                    "no machine registered under '" + request.machine + "'");
    response.model = model;

    std::shared_ptr<const ir::Loop> loop;
    std::string canonical_loop;
    try {
        loop = std::make_shared<const ir::Loop>(
            ir::parseLoop(request.loopText));
        canonical_loop = ir::printLoop(*loop);
    } catch (const support::Error& error) {
        return fail("service.bad_loop", error.what());
    }
    response.loop = loop;
    response.loopName = loop->name();

    const core::PipelinerOptions& effective =
        request.options ? *request.options : options_.pipeline;
    const CacheKey key = CacheKey::make(std::move(canonical_loop),
                                        model->canonicalText,
                                        canonicalOptionsText(effective));
    response.key = key.hash;

    if (auto cached = cache_.lookup(key)) {
        response.status = ServiceResponse::Status::kOk;
        response.cacheHit = true;
        response.result = std::move(cached);
        response.serviceSeconds = secondsSince(started);
        return response;
    }

    try {
        const core::SoftwarePipeliner pipeliner(model->model, effective);
        core::PipelineResult result =
            pipeliner.pipeline(core::PipelineRequest(*loop));
        response.result = cache_.insert(key, std::move(result));
    } catch (const support::Error& error) {
        return fail("service.internal", error.what());
    }
    response.status = ServiceResponse::Status::kOk;
    response.serviceSeconds = secondsSince(started);
    return response;
}

ServiceResponse
ScheduleService::scheduleNow(const ServiceRequest& request)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
    }
    ServiceResponse response = handle(request, 0.0);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++completed_;
        if (response.status == ServiceResponse::Status::kError)
            ++errors_;
    }
    return response;
}

void
ScheduleService::submitAsync(ServiceRequest request,
                             std::function<void(const ServiceResponse&)> done)
{
    bool rejected = false;
    bool stopping = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        if (stopping_ || totalQueued_ >= options_.maxQueuedRequests) {
            ++rejected_;
            rejected = true;
            stopping = stopping_;
        } else {
            auto& lane = lanes_[request.client];
            if (lane.empty())
                rotation_.push_back(request.client);
            lane.push_back(Pending{std::move(request), std::move(done),
                                   Clock::now()});
            ++totalQueued_;
        }
    }
    if (rejected) {
        // Structured rejection, delivered inline: admission control must
        // not block and must not consume a worker.
        ServiceResponse response;
        response.status = ServiceResponse::Status::kRejected;
        response.errorCode =
            stopping ? "service.stopping" : "service.overloaded";
        response.errorMessage =
            "queue full (" + std::to_string(options_.maxQueuedRequests) +
            " requests pending); retry later";
        if (done)
            done(response);
        return;
    }
    workCv_.notify_one();
}

std::future<ServiceResponse>
ScheduleService::submit(ServiceRequest request)
{
    auto promise = std::make_shared<std::promise<ServiceResponse>>();
    std::future<ServiceResponse> future = promise->get_future();
    submitAsync(std::move(request), [promise](const ServiceResponse& r) {
        promise->set_value(r);
    });
    return future;
}

void
ScheduleService::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [this] { return stopping_ || totalQueued_ > 0; });
        if (totalQueued_ == 0) {
            if (stopping_)
                return;
            continue;
        }

        // Round-robin across client lanes: take the head of the cursor's
        // lane, then advance so the next dequeue serves the next client.
        rotationCursor_ %= rotation_.size();
        const std::string client = rotation_[rotationCursor_];
        auto lane_it = lanes_.find(client);
        Pending pending = std::move(lane_it->second.front());
        lane_it->second.pop_front();
        --totalQueued_;
        if (lane_it->second.empty()) {
            lanes_.erase(lane_it);
            // Erasing at the cursor makes it point at the next client.
            rotation_.erase(rotation_.begin() +
                            static_cast<std::ptrdiff_t>(rotationCursor_));
        } else {
            ++rotationCursor_;
        }
        ++activeWorkers_;
        lock.unlock();

        ServiceResponse response =
            handle(pending.request, secondsSince(pending.enqueued));
        if (pending.done)
            pending.done(response);

        lock.lock();
        ++completed_;
        if (response.status == ServiceResponse::Status::kError)
            ++errors_;
        --activeWorkers_;
        if (totalQueued_ == 0 && activeWorkers_ == 0)
            idleCv_.notify_all();
    }
}

void
ScheduleService::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock,
                 [this] { return totalQueued_ == 0 && activeWorkers_ == 0; });
}

ServiceStats
ScheduleService::stats() const
{
    ServiceStats stats;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stats.submitted = submitted_;
        stats.completed = completed_;
        stats.rejected = rejected_;
        stats.errors = errors_;
        stats.queued = totalQueued_;
    }
    stats.workers = workerThreads_;
    stats.cache = cache_.stats();
    return stats;
}

std::size_t
ScheduleService::loadCacheText(const std::string& text)
{
    const std::vector<CacheKey> keys = ScheduleCache::parseSaveText(text);
    std::size_t loaded = 0;
    for (const CacheKey& saved : keys) {
        if (cache_.lookup(saved))
            continue; // already materialized (idempotent reload)

        // Re-parse each component and require it to round-trip back to
        // the saved bytes: a save file is canonical by construction, so
        // any mismatch means the file was edited or corrupted and the
        // entry would be keyed inconsistently.
        const ir::Loop loop = ir::parseLoop(saved.loopText);
        support::check(ir::printLoop(loop) == saved.loopText,
                       "cache file: non-canonical loop text for entry " +
                           loop.name());
        const machine::MachineModel machine =
            machine::parseMachine(saved.machineText);
        support::check(machine::printMachine(machine) == saved.machineText,
                       "cache file: non-canonical machine text for entry " +
                           loop.name());
        const core::PipelinerOptions options =
            parseOptionsText(saved.optionsText);
        support::check(canonicalOptionsText(options) == saved.optionsText,
                       "cache file: non-canonical options text for entry " +
                           loop.name());

        const core::SoftwarePipeliner pipeliner(machine, options);
        core::PipelineResult result =
            pipeliner.pipeline(core::PipelineRequest(loop));
        cache_.insert(saved, std::move(result));
        ++loaded;
    }
    return loaded;
}

} // namespace ims::service
