#ifndef IMS_CODEGEN_KERNEL_HPP
#define IMS_CODEGEN_KERNEL_HPP

#include <vector>

#include "ir/loop.hpp"
#include "sched/iterative_scheduler.hpp"

namespace ims::codegen {

/** Placement of one operation in the steady-state kernel. */
struct KernelPlacement
{
    ir::OpId op = -1;
    /** Stage index: SchedTime / II. */
    int stage = 0;
    /** Row within the kernel: SchedTime mod II. */
    int slot = 0;
    /** Machine alternative chosen by the scheduler. */
    int alternative = 0;
};

/**
 * The steady-state kernel of a modulo schedule: each operation issues at
 * row `slot` of every kernel iteration, on behalf of the iteration started
 * `stage` kernel iterations ago.
 */
struct Kernel
{
    int ii = 1;
    /** Number of pipeline stages: floor(max issue time / II) + 1. */
    int stageCount = 1;
    /** One entry per loop operation. */
    std::vector<KernelPlacement> placements;

    /** Operations issuing in row `slot`, in stage order. */
    std::vector<KernelPlacement> rowOf(int slot) const;
};

/** Derive the kernel structure from a schedule. */
Kernel buildKernel(const ir::Loop& loop,
                   const sched::ScheduleResult& schedule);

} // namespace ims::codegen

#endif // IMS_CODEGEN_KERNEL_HPP
