#ifndef IMS_CODEGEN_REGISTER_ALLOCATOR_HPP
#define IMS_CODEGEN_REGISTER_ALLOCATOR_HPP

#include <string>
#include <vector>

#include "codegen/lifetimes.hpp"
#include "codegen/mve.hpp"
#include "ir/loop.hpp"
#include "support/telemetry.hpp"

namespace ims::codegen {

/** Allocation of one virtual register. */
struct RegisterAssignment
{
    ir::RegId reg = ir::kNoReg;
    /**
     * First physical register of this value's block. Rotating targets
     * reserve `copies` consecutive rotating registers; static targets
     * reserve exactly one static register.
     */
    int base = 0;
    /** Number of physical registers assigned. */
    int copies = 1;
    /** True when the block lives in the rotating register file. */
    bool rotating = false;
};

/** Result of kernel register allocation. */
struct RegisterAllocation
{
    std::vector<RegisterAssignment> assignments;
    /** Rotating registers consumed (the EVR-backing file, [35]). */
    int rotatingRegisters = 0;
    /** Static registers consumed (loop invariants / pure live-ins). */
    int staticRegisters = 0;

    /** Assignment for `reg` (must exist). */
    const RegisterAssignment& of(ir::RegId reg) const;

    /**
     * Physical name of `reg`'s instance from `iterations_back` iterations
     * ago, e.g. "rr12[2]" or "sr3". Rotating blocks are indexed modulo
     * their copy count, matching the MVE renaming discipline.
     */
    std::string physicalName(ir::RegId reg, int iterations_back) const;
};

/**
 * Rotating-register-style allocation for a modulo-scheduled kernel:
 * every register defined in the loop receives ceil(lifetime/II)
 * consecutive rotating registers (so each live copy has a distinct
 * physical home); pure live-ins receive one static register each. This is
 * the bookkeeping core of the Rau et al. allocation scheme the paper's
 * step list references ("rotating register allocation is performed for
 * the kernel") without the spill machinery, which a pure scheduling study
 * never triggers.
 */
RegisterAllocation allocateRegisters(const ir::Loop& loop,
                                     const LifetimeAnalysis& lifetimes,
                                     const MvePlan& mve,
                                     support::TelemetrySink* sink = nullptr);

} // namespace ims::codegen

#endif // IMS_CODEGEN_REGISTER_ALLOCATOR_HPP
