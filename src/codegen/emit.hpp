#ifndef IMS_CODEGEN_EMIT_HPP
#define IMS_CODEGEN_EMIT_HPP

#include <string>

#include "codegen/code_generator.hpp"
#include "codegen/register_allocator.hpp"

namespace ims::codegen {

/**
 * Render the full pipelined code (prologue, kernel — replicated
 * `mve.unroll` times with modulo register renaming — and epilogue) as a
 * human-readable assembly-style listing. Register operands are printed
 * with their physical names from `allocation`; each line shows the cycle
 * within its section and each op instance its source-iteration tag.
 */
std::string emitListing(const ir::Loop& loop, const GeneratedCode& code,
                        const RegisterAllocation& allocation);

/** Render only the kernel rows with stage annotations (compact form). */
std::string emitKernel(const ir::Loop& loop, const GeneratedCode& code);

} // namespace ims::codegen

#endif // IMS_CODEGEN_EMIT_HPP
