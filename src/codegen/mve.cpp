#include "codegen/mve.hpp"

#include <algorithm>

namespace ims::codegen {

MvePlan
planMve(const ir::Loop& loop, const LifetimeAnalysis& lifetimes, int ii)
{
    MvePlan plan;
    plan.copies.assign(loop.numRegisters(), 0);
    for (const auto& lifetime : lifetimes.lifetimes) {
        const int k = std::max(1, (lifetime.length() + ii - 1) / ii);
        plan.copies[lifetime.reg] = k;
        plan.unroll = std::max(plan.unroll, k);
    }
    return plan;
}

} // namespace ims::codegen
