#include "codegen/register_allocator.hpp"

#include <cassert>

namespace ims::codegen {

const RegisterAssignment&
RegisterAllocation::of(ir::RegId reg) const
{
    for (const auto& assignment : assignments) {
        if (assignment.reg == reg)
            return assignment;
    }
    assert(false && "register has no assignment");
    return assignments.front();
}

std::string
RegisterAllocation::physicalName(ir::RegId reg, int iterations_back) const
{
    const RegisterAssignment& assignment = of(reg);
    if (!assignment.rotating)
        return "sr" + std::to_string(assignment.base);
    const int index = iterations_back % assignment.copies;
    return "rr" + std::to_string(assignment.base) + "[" +
           std::to_string(index) + "]";
}

RegisterAllocation
allocateRegisters(const ir::Loop& loop, const LifetimeAnalysis& lifetimes,
                  const MvePlan& mve, support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kRegAlloc);
    RegisterAllocation allocation;
    int next_rotating = 0;
    int next_static = 0;

    for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        RegisterAssignment assignment;
        assignment.reg = reg;
        if (loop.definingOp(reg) < 0) {
            // Pure live-in: one static register.
            assignment.base = next_static++;
            assignment.copies = 1;
            assignment.rotating = false;
        } else {
            const int copies =
                mve.copies[reg] > 0 ? mve.copies[reg] : 1;
            assignment.base = next_rotating;
            assignment.copies = copies;
            assignment.rotating = true;
            next_rotating += copies;
        }
        allocation.assignments.push_back(assignment);
    }
    (void)lifetimes;
    allocation.rotatingRegisters = next_rotating;
    allocation.staticRegisters = next_static;
    return allocation;
}

} // namespace ims::codegen
