#include "codegen/kernel_only.hpp"

#include <sstream>

namespace ims::codegen {

KernelOnlyCode
generateKernelOnly(const ir::Loop& loop,
                   const sched::ScheduleResult& schedule)
{
    const Kernel kernel = buildKernel(loop, schedule);
    KernelOnlyCode code;
    code.ii = kernel.ii;
    code.stageCount = kernel.stageCount;
    code.cycles.assign(kernel.ii, {});
    for (const auto& placement : kernel.placements)
        code.cycles[placement.slot].push_back(placement);
    return code;
}

std::string
emitKernelOnly(const ir::Loop& loop, const KernelOnlyCode& code)
{
    std::ostringstream out;
    out << "; kernel-only schema [36]: II=" << code.ii << ", "
        << code.stageCount << " stage predicates, code size " << code.ii
        << " instruction(s)\n";
    for (int cycle = 0; cycle < code.ii; ++cycle) {
        out << "  " << cycle << ":";
        bool first = true;
        for (const auto& placement : code.cycles[cycle]) {
            out << (first ? "  " : " || ")
                << loop.operationToString(loop.operation(placement.op))
                << " if sp[" << placement.stage << "]";
            first = false;
        }
        if (first)
            out << "  (nop)";
        out << "\n";
    }
    out << "  brtop 0\n";
    return out.str();
}

} // namespace ims::codegen
