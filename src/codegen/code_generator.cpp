#include "codegen/code_generator.hpp"

#include <cassert>

#include "codegen/lifetimes.hpp"

namespace ims::codegen {

double
GeneratedCode::codeExpansionRatio(int schedule_length) const
{
    const int kernel_cycles = kernelSection.numCycles() * mve.unroll;
    const int total =
        prologue.numCycles() + kernel_cycles + epilogue.numCycles();
    return schedule_length > 0
               ? static_cast<double>(total) / schedule_length
               : 0.0;
}

long long
GeneratedCode::totalInstances(int trip_count) const
{
    assert(trip_count >= kernel.stageCount);
    const long long kernel_reps = trip_count - kernel.stageCount + 1;
    return prologue.numInstances() +
           kernel_reps * kernelSection.numInstances() +
           epilogue.numInstances();
}

GeneratedCode
generateCode(const ir::Loop& loop, const machine::MachineModel& machine,
             const sched::ScheduleResult& schedule,
             support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kCodegen);
    GeneratedCode code;
    code.kernel = buildKernel(loop, schedule);
    const LifetimeAnalysis lifetimes =
        analyzeLifetimes(loop, machine, schedule);
    code.mve = planMve(loop, lifetimes, schedule.ii);

    const int ii = schedule.ii;
    const int ramp_cycles = (code.kernel.stageCount - 1) * ii;

    // Prologue: flat cycles [0, ramp); instance (P, j) issues at
    // j*II + t_P.
    code.prologue.cycles.assign(ramp_cycles, {});
    for (int op = 0; op < loop.size(); ++op) {
        const int t = schedule.times[op];
        for (int j = 0; t + j * ii < ramp_cycles; ++j)
            code.prologue.cycles[t + j * ii].push_back(OpInstance{op, j});
    }

    // Kernel: II rows; row r issues every op with t_P mod II == r on
    // behalf of the iteration started stage(P) repetitions ago.
    code.kernelSection.cycles.assign(ii, {});
    for (const auto& placement : code.kernel.placements) {
        code.kernelSection.cycles[placement.slot].push_back(
            OpInstance{placement.op, -placement.stage});
    }

    // Epilogue: cycles [0, ramp) after the final kernel repetition;
    // instance (P, m) for the iteration m-from-last issues at epilogue
    // cycle t_P - m*II when that is within range.
    code.epilogue.cycles.assign(ramp_cycles, {});
    for (int op = 0; op < loop.size(); ++op) {
        const int t = schedule.times[op];
        for (int m = 1; t - m * ii >= 0; ++m) {
            code.epilogue.cycles[t - m * ii].push_back(
                OpInstance{op, -m});
        }
    }

    return code;
}

} // namespace ims::codegen
