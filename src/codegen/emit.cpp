#include "codegen/emit.hpp"

#include <sstream>

namespace ims::codegen {

namespace {

/**
 * Render one op instance with physical register names. `iteration_tag`
 * is the emission-time iteration label (modulo the MVE unroll) used to
 * pick register copies.
 */
std::string
renderInstance(const ir::Loop& loop, const RegisterAllocation& allocation,
               const MvePlan& mve, const OpInstance& instance,
               int kernel_copy)
{
    const ir::Operation& op = loop.operation(instance.op);
    std::ostringstream out;

    // The instance belongs to source iteration (kernel_copy +
    // iterationOffset) modulo unroll; register copies cycle with it.
    auto copy_of = [&](int distance) {
        const int unroll = mve.unroll;
        int index =
            (kernel_copy + instance.iterationOffset - distance) % unroll;
        if (index < 0)
            index += unroll;
        return index;
    };

    auto operand_str = [&](const ir::Operand& src) {
        if (!src.isRegister()) {
            std::ostringstream imm;
            imm << "#" << src.immediate;
            return imm.str();
        }
        if (loop.definingOp(src.reg) < 0)
            return allocation.physicalName(src.reg, 0);
        return allocation.physicalName(src.reg, copy_of(src.distance));
    };

    if (op.hasDest())
        out << allocation.physicalName(op.dest, copy_of(0)) << " = ";
    out << ir::opcodeName(op.opcode);
    for (std::size_t i = 0; i < op.sources.size(); ++i)
        out << (i == 0 ? " " : ", ") << operand_str(op.sources[i]);
    if (op.memRef) {
        out << " @" << loop.arrays()[op.memRef->array].name << "[i"
            << (instance.iterationOffset >= 0 ? "+" : "")
            << instance.iterationOffset;
        if (op.memRef->offset != 0) {
            out << (op.memRef->offset >= 0 ? "+" : "")
                << op.memRef->offset;
        }
        out << "]";
    }
    if (op.guard)
        out << " if " << operand_str(*op.guard);
    return out.str();
}

void
renderSection(std::ostringstream& out, const ir::Loop& loop,
              const RegisterAllocation& allocation, const MvePlan& mve,
              const CodeSection& section, const std::string& label,
              int kernel_copy)
{
    out << label << ":\n";
    for (int cycle = 0; cycle < section.numCycles(); ++cycle) {
        out << "  " << cycle << ":";
        if (section.cycles[cycle].empty()) {
            out << "  (nop)\n";
            continue;
        }
        bool first = true;
        for (const auto& instance : section.cycles[cycle]) {
            out << (first ? "  " : " || ")
                << renderInstance(loop, allocation, mve, instance,
                                  kernel_copy);
            first = false;
        }
        out << "\n";
    }
}

} // namespace

std::string
emitListing(const ir::Loop& loop, const GeneratedCode& code,
            const RegisterAllocation& allocation)
{
    std::ostringstream out;
    out << "; loop " << loop.name() << ": II=" << code.kernel.ii
        << " stages=" << code.kernel.stageCount
        << " mve-unroll=" << code.mve.unroll
        << " rotating-regs=" << allocation.rotatingRegisters
        << " static-regs=" << allocation.staticRegisters << "\n";

    renderSection(out, loop, allocation, code.mve, code.prologue,
                  "prologue", 0);
    for (int copy = 0; copy < code.mve.unroll; ++copy) {
        std::ostringstream label;
        label << "kernel";
        if (code.mve.unroll > 1)
            label << " (copy " << copy << ")";
        renderSection(out, loop, allocation, code.mve, code.kernelSection,
                      label.str(), copy);
    }
    renderSection(out, loop, allocation, code.mve, code.epilogue,
                  "epilogue", 0);
    return out.str();
}

std::string
emitKernel(const ir::Loop& loop, const GeneratedCode& code)
{
    std::ostringstream out;
    out << "kernel (II=" << code.kernel.ii << ", "
        << code.kernel.stageCount << " stages):\n";
    for (int slot = 0; slot < code.kernel.ii; ++slot) {
        out << "  row " << slot << ":";
        bool first = true;
        for (const auto& placement : code.kernel.rowOf(slot)) {
            out << (first ? "  " : " || ")
                << loop.operationToString(loop.operation(placement.op))
                << " {stage " << placement.stage << "}";
            first = false;
        }
        if (first)
            out << "  (empty)";
        out << "\n";
    }
    return out.str();
}

} // namespace ims::codegen
