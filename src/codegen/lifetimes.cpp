#include "codegen/lifetimes.hpp"

#include <algorithm>

namespace ims::codegen {

LifetimeAnalysis
analyzeLifetimes(const ir::Loop& loop, const machine::MachineModel& machine,
                 const sched::ScheduleResult& schedule,
                 support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kLifetimes);
    LifetimeAnalysis analysis;
    const int ii = schedule.ii;

    for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        const ir::OpId def = loop.definingOp(reg);
        if (def < 0)
            continue; // pure live-in: allocated outside the loop
        RegisterLifetime lifetime;
        lifetime.reg = reg;
        lifetime.def = def;
        lifetime.defTime = schedule.times[def];
        lifetime.endTime =
            lifetime.defTime + machine.latency(loop.operation(def).opcode);

        for (const auto& op : loop.operations()) {
            auto consider = [&](const ir::Operand& src) {
                if (!src.isRegister() || src.reg != reg)
                    return;
                const int use_end =
                    schedule.times[op.id] + src.distance * ii + 1;
                lifetime.endTime = std::max(lifetime.endTime, use_end);
            };
            for (const auto& src : op.sources)
                consider(src);
            if (op.guard)
                consider(*op.guard);
        }
        analysis.lifetimes.push_back(lifetime);
    }

    analysis.kmin = 1;
    for (const auto& lifetime : analysis.lifetimes) {
        const int k = (lifetime.length() + ii - 1) / ii;
        analysis.kmin = std::max(analysis.kmin, std::max(1, k));
    }

    // MaxLive: for each cycle c of the steady-state kernel, count how many
    // copies of each value are live: copies(v, c) = #{k >= 0 :
    // defTime <= c + k*II < endTime}.
    analysis.maxLive = 0;
    for (int c = 0; c < ii; ++c) {
        int live = 0;
        for (const auto& lifetime : analysis.lifetimes) {
            // Count k with c + k*II in [defTime, endTime).
            for (int t = c; t < lifetime.endTime; t += ii) {
                if (t >= lifetime.defTime)
                    ++live;
            }
        }
        analysis.maxLive = std::max(analysis.maxLive, live);
    }
    return analysis;
}

} // namespace ims::codegen
