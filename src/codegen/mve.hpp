#ifndef IMS_CODEGEN_MVE_HPP
#define IMS_CODEGEN_MVE_HPP

#include <vector>

#include "codegen/lifetimes.hpp"

namespace ims::codegen {

/**
 * Modulo variable expansion plan (§1, citing Lam): when the hardware lacks
 * rotating registers, values whose lifetime exceeds the II would be
 * overwritten by the next iteration's instance; the kernel is unrolled
 * `unroll` times and each expanded register gets `copies[reg]` names,
 * cycled modulo the unroll factor.
 */
struct MvePlan
{
    /** Kernel unroll factor: max over registers of ceil(lifetime/II). */
    int unroll = 1;
    /** Copies needed per register (0 for regs never defined in the loop). */
    std::vector<int> copies;
    /** True when unroll == 1 (rotating registers not required anyway). */
    bool trivial() const { return unroll <= 1; }
};

/** Build the MVE plan from a lifetime analysis. */
MvePlan planMve(const ir::Loop& loop, const LifetimeAnalysis& lifetimes,
                int ii);

} // namespace ims::codegen

#endif // IMS_CODEGEN_MVE_HPP
