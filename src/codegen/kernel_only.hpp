#ifndef IMS_CODEGEN_KERNEL_ONLY_HPP
#define IMS_CODEGEN_KERNEL_ONLY_HPP

#include <string>
#include <vector>

#include "codegen/kernel.hpp"
#include "ir/loop.hpp"

namespace ims::codegen {

/**
 * Kernel-only code for hardware with rotating registers and predicated
 * execution — the code-generation schema of Rau/Schlansker/Tirumalai
 * [36] that §1 invokes for "no code expansion whatsoever". The kernel's
 * II cycles are the entire loop body: every operation is guarded by the
 * stage predicate of its stage, and the pipeline ramps up and down as
 * the hardware turns stage predicates on (one per II, while iterations
 * remain) and off (draining). The loop executes trip + stageCount - 1
 * kernel repetitions in total.
 */
struct KernelOnlyCode
{
    int ii = 1;
    int stageCount = 1;
    /** Row r holds the placements issuing at kernel cycle r. */
    std::vector<std::vector<KernelPlacement>> cycles;

    /** Static code size in VLIW instructions: just the II. */
    int codeCycles() const { return ii; }

    /** Kernel repetitions needed for `trip` iterations. */
    int
    repetitions(int trip) const
    {
        return trip + stageCount - 1;
    }
};

/** Build the kernel-only structure from a schedule. */
KernelOnlyCode generateKernelOnly(const ir::Loop& loop,
                                  const sched::ScheduleResult& schedule);

/**
 * Render as an assembly-style listing with stage-predicate guards
 * ("... if sp[2]") on every operation.
 */
std::string emitKernelOnly(const ir::Loop& loop,
                           const KernelOnlyCode& code);

} // namespace ims::codegen

#endif // IMS_CODEGEN_KERNEL_ONLY_HPP
