#include "codegen/kernel.hpp"

#include <algorithm>
#include <cassert>

namespace ims::codegen {

std::vector<KernelPlacement>
Kernel::rowOf(int slot) const
{
    std::vector<KernelPlacement> row;
    for (const auto& placement : placements) {
        if (placement.slot == slot)
            row.push_back(placement);
    }
    std::sort(row.begin(), row.end(),
              [](const KernelPlacement& a, const KernelPlacement& b) {
                  return a.stage != b.stage ? a.stage < b.stage
                                            : a.op < b.op;
              });
    return row;
}

Kernel
buildKernel(const ir::Loop& loop, const sched::ScheduleResult& schedule)
{
    assert(loop.size() == static_cast<int>(schedule.times.size()));
    Kernel kernel;
    kernel.ii = schedule.ii;
    kernel.placements.reserve(loop.size());
    int max_stage = 0;
    for (int op = 0; op < loop.size(); ++op) {
        KernelPlacement placement;
        placement.op = op;
        placement.stage = schedule.times[op] / schedule.ii;
        placement.slot = schedule.times[op] % schedule.ii;
        placement.alternative = schedule.alternatives[op];
        max_stage = std::max(max_stage, placement.stage);
        kernel.placements.push_back(placement);
    }
    kernel.stageCount = max_stage + 1;
    return kernel;
}

} // namespace ims::codegen
