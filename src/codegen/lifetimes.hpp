#ifndef IMS_CODEGEN_LIFETIMES_HPP
#define IMS_CODEGEN_LIFETIMES_HPP

#include <vector>

#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/iterative_scheduler.hpp"

namespace ims::codegen {

/** Lifetime of one virtual register's value under a modulo schedule. */
struct RegisterLifetime
{
    ir::RegId reg = ir::kNoReg;
    /** Defining operation, or -1 for pure live-ins (not reported). */
    ir::OpId def = -1;
    /** Issue time of the definition within the one-iteration schedule. */
    int defTime = 0;
    /**
     * Last cycle (exclusive) at which some reader, possibly in a later
     * iteration, still needs the value: max over readers R at distance d
     * of SchedTime(R) + d * II + 1. At least defTime + latency(def).
     */
    int endTime = 0;

    /** Lifetime in cycles. */
    int length() const { return endTime - defTime; }
};

/** Lifetime analysis over a schedule. */
struct LifetimeAnalysis
{
    std::vector<RegisterLifetime> lifetimes;
    /**
     * Modulo-variable-expansion unroll requirement:
     * kmin = max over registers of ceil(lifetime / II) (Lam's MVE; §1's
     * "if rotating registers are absent, the kernel is unrolled to enable
     * modulo variable expansion").
     */
    int kmin = 1;
    /**
     * Maximum number of simultaneously live register values in steady
     * state (the rotating-register requirement proxy).
     */
    int maxLive = 0;
};

/**
 * Compute value lifetimes, the MVE unroll factor and MaxLive for a
 * schedule. A register with no readers still lives for its definition
 * latency.
 */
LifetimeAnalysis analyzeLifetimes(const ir::Loop& loop,
                                  const machine::MachineModel& machine,
                                  const sched::ScheduleResult& schedule,
                                  support::TelemetrySink* sink = nullptr);

} // namespace ims::codegen

#endif // IMS_CODEGEN_LIFETIMES_HPP
