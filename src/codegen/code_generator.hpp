#ifndef IMS_CODEGEN_CODE_GENERATOR_HPP
#define IMS_CODEGEN_CODE_GENERATOR_HPP

#include <vector>

#include "codegen/kernel.hpp"
#include "codegen/mve.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/iterative_scheduler.hpp"

namespace ims::codegen {

/**
 * One emitted operation instance. `iterationOffset` identifies which
 * source iteration the instance belongs to: in the prologue it counts from
 * the first iteration (0, 1, ...); in the kernel it is -stage (the
 * iteration started `stage` kernel repetitions before the current one);
 * in the epilogue it counts back from the final iteration (-1 is the last
 * iteration, -2 the one before, ...).
 */
struct OpInstance
{
    ir::OpId op = -1;
    int iterationOffset = 0;
};

/** A straight-line section of VLIW code: one op list per cycle. */
struct CodeSection
{
    std::vector<std::vector<OpInstance>> cycles;

    int numCycles() const { return static_cast<int>(cycles.size()); }

    int
    numInstances() const
    {
        int count = 0;
        for (const auto& cycle : cycles)
            count += static_cast<int>(cycle.size());
        return count;
    }
};

/**
 * The complete code-generation schema for a DO-loop on hardware without
 * predicated kernel-only execution (§1 / [36]): a prologue that ramps the
 * pipeline up over StageCount-1 IIs, the steady-state kernel executed
 * trip - StageCount + 1 times, and an epilogue that drains it. When the
 * MVE plan is non-trivial the kernel section must be replicated
 * `mve.unroll` times with register renaming at emission (see emit.hpp).
 *
 * Requires trip count >= stageCount; shorter trip counts would bypass the
 * pipelined loop entirely (handled by the pipeliner's preconditioning
 * check, not here).
 */
struct GeneratedCode
{
    Kernel kernel;
    MvePlan mve;
    CodeSection prologue;
    /** One kernel repetition (before MVE replication). */
    CodeSection kernelSection;
    CodeSection epilogue;

    /**
     * Static code size in VLIW instructions (cycles), with the kernel
     * counted mve.unroll times, relative to the single-iteration schedule
     * length — the "code expansion" the paper contrasts with unrolling
     * schemes (§4.3's 118% replication threshold).
     */
    double codeExpansionRatio(int schedule_length) const;

    /**
     * Number of op instances the three sections contribute for a given
     * trip count (prologue + (trip - stageCount + 1) * kernel + epilogue);
     * equals trip * numOps for any trip >= stageCount (tested invariant).
     */
    long long totalInstances(int trip_count) const;
};

/**
 * Build the prologue/kernel/epilogue structure for a schedule. When `sink`
 * is non-null the construction is reported as one Phase::kCodegen sample.
 */
GeneratedCode generateCode(const ir::Loop& loop,
                           const machine::MachineModel& machine,
                           const sched::ScheduleResult& schedule,
                           support::TelemetrySink* sink = nullptr);

} // namespace ims::codegen

#endif // IMS_CODEGEN_CODE_GENERATOR_HPP
