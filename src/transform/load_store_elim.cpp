#include "transform/load_store_elim.hpp"

#include <map>
#include <optional>

#include "support/error.hpp"

namespace ims::transform {

namespace {

/** Forwarding plan for one eliminated load. */
struct Plan
{
    ir::OpId load = -1;
    /** Replacement operand template (extra distance added per read). */
    ir::Operand value;
    /** Iteration distance between the store and the load. */
    int distance = 0;
};

} // namespace

ForwardingResult
eliminateRedundantLoads(const ir::Loop& loop)
{
    loop.validate();

    // Stores per array; arrays with several stores are skipped outright.
    std::map<ir::ArrayId, std::vector<const ir::Operation*>> stores;
    for (const auto& op : loop.operations()) {
        if (op.isStore())
            stores[op.memRef->array].push_back(&op);
    }

    std::map<ir::OpId, Plan> plans;
    for (const auto& op : loop.operations()) {
        if (!op.isLoad() || op.guard)
            continue;
        const auto it = stores.find(op.memRef->array);
        if (it == stores.end() || it->second.size() != 1)
            continue;
        const ir::Operation& store = *it->second.front();
        if (store.guard || store.memRef->stride != op.memRef->stride)
            continue;
        const int stride = store.memRef->stride;
        const int diff = store.memRef->offset - op.memRef->offset;
        if (diff % stride != 0)
            continue;
        const int distance = diff / stride;
        if (distance < 0)
            continue;
        if (distance == 0 && store.id > op.id)
            continue; // cell written after the load within the iteration
        // Keep the seeding story simple: only forward same-iteration
        // values (the stored operand read at distance 0) or immediates.
        if (store.sources[1].isRegister() &&
            store.sources[1].distance != 0) {
            continue;
        }
        Plan plan;
        plan.load = op.id;
        plan.value = store.sources[1];
        plan.distance = distance;
        plans.emplace(op.id, plan);
    }

    ForwardingResult result{ir::Loop(loop.name() + "_fwd"), 0, {}};
    if (plans.empty()) {
        // Nothing to do: return a verbatim rebuild.
        result.loop = loop;
        return result;
    }

    // Registers that now carry values across iterations get promoted to
    // live-in (they need pre-loop seeds).
    std::vector<bool> promote(loop.numRegisters(), false);
    for (const auto& [load_id, plan] : plans) {
        if (plan.value.isRegister() && plan.distance > 0)
            promote[plan.value.reg] = true;
    }

    for (const auto& array : loop.arrays())
        result.loop.addArray(array);
    for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        ir::RegisterInfo info = loop.reg(reg);
        info.isLiveIn = info.isLiveIn || promote[reg];
        result.loop.addRegister(info);
    }

    // Operand rewriting: reads of an eliminated load's destination become
    // reads of the stored value, shifted by the forwarding distance.
    auto rewrite = [&](const ir::Operand& src) -> ir::Operand {
        if (!src.isRegister())
            return src;
        const ir::OpId def = loop.definingOp(src.reg);
        const auto it = def >= 0 ? plans.find(def) : plans.end();
        if (it == plans.end())
            return src;
        const Plan& plan = it->second;
        if (!plan.value.isRegister())
            return ir::Operand::makeImm(plan.value.immediate);
        return ir::Operand::makeReg(
            plan.value.reg,
            plan.value.distance + plan.distance + src.distance);
    };

    // Old op ids shift as loads disappear; only operands (by register)
    // matter, so a straight copy works.
    for (const auto& op : loop.operations()) {
        if (plans.count(op.id) != 0) {
            ++result.eliminatedLoads;
            continue; // load eliminated
        }
        ir::Operation clone = op;
        clone.id = -1;
        for (auto& src : clone.sources)
            src = rewrite(src);
        if (clone.guard)
            clone.guard = rewrite(*clone.guard);
        result.loop.addOperation(std::move(clone));
    }

    for (const auto& [load_id, plan] : plans) {
        if (!plan.value.isRegister() || plan.distance == 0)
            continue;
        const auto& load_ref = *loop.operation(load_id).memRef;
        ForwardSeedRule rule;
        rule.reg = loop.reg(plan.value.reg).name;
        rule.array = loop.arrays()[load_ref.array].name;
        // The value register at iteration j mirrors the cell the store
        // writes at iteration j: offset_store = offset_load + d*stride.
        rule.offset = load_ref.offset + plan.distance * load_ref.stride;
        rule.stride = load_ref.stride;
        result.seedRules.push_back(rule);
    }

    result.loop.validate();
    return result;
}

sim::SimSpec
forwardedSimSpec(const ForwardingResult& result, const sim::SimSpec& spec)
{
    sim::SimSpec out = spec;
    const int depth = result.loop.maxDistance();
    for (const auto& rule : result.seedRules) {
        const auto array_it = spec.arrays.find(rule.array);
        support::check(array_it != spec.arrays.end(),
                       "forwarded array '" + rule.array +
                           "' has no initial image in the spec");
        const int first = array_it->second.first;
        const auto& contents = array_it->second.second;
        std::vector<sim::Value> seeds;
        for (int k = 0; k < depth; ++k) {
            // Value register at iteration j = -1-k mirrors the cell
            // array[stride*j + offset].
            const int index = rule.stride * (-1 - k) + rule.offset;
            const int cell = index - first;
            seeds.push_back(cell >= 0 &&
                                    cell < static_cast<int>(
                                               contents.size())
                                ? contents[cell]
                                : 0.0);
        }
        out.seeds[rule.reg] = std::move(seeds);
    }
    return out;
}

} // namespace ims::transform
