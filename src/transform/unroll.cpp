#include "transform/unroll.hpp"

#include <string>
#include <vector>

#include "support/error.hpp"

namespace ims::transform {

namespace {

/** Ops forming the loop-control tail: branches + their counter defs. */
std::vector<bool>
findTail(const ir::Loop& loop)
{
    std::vector<bool> tail(loop.size(), false);
    std::vector<bool> counter_reg(loop.numRegisters(), false);
    for (const auto& op : loop.operations()) {
        if (!op.isBranch())
            continue;
        tail[op.id] = true;
        for (const auto& src : op.sources) {
            if (!src.isRegister())
                continue;
            counter_reg[src.reg] = true;
            const ir::OpId def = loop.definingOp(src.reg);
            if (def >= 0)
                tail[def] = true;
        }
    }
    // The counter must be dedicated to loop control.
    for (const auto& op : loop.operations()) {
        if (tail[op.id])
            continue;
        auto check_read = [&](const ir::Operand& src) {
            if (src.isRegister()) {
                support::check(!counter_reg[src.reg],
                               "loop counter register is read outside "
                               "the control tail; cannot unroll");
            }
        };
        for (const auto& src : op.sources)
            check_read(src);
        if (op.guard)
            check_read(*op.guard);
    }
    return tail;
}

} // namespace

ir::Loop
unrollLoop(const ir::Loop& loop, int factor)
{
    support::check(factor >= 1, "unroll factor must be at least 1");
    loop.validate();

    const std::vector<bool> tail = findTail(loop);

    ir::Loop out(loop.name() + "_x" + std::to_string(factor));

    // Arrays carry over unchanged.
    for (const auto& array : loop.arrays())
        out.addArray(array);

    // Register plan: shared for pure live-ins, per-copy otherwise.
    // copies[v][u] is the new RegId of copy u (all equal when shared).
    std::vector<std::vector<ir::RegId>> copies(loop.numRegisters());
    for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        const auto& info = loop.reg(reg);
        const bool has_def = loop.definingOp(reg) >= 0;
        // Skip counter registers (their def lives in the tail).
        if (has_def && tail[loop.definingOp(reg)])
            continue;
        if (!has_def) {
            const ir::RegId shared = out.addRegister(info);
            copies[reg].assign(factor, shared);
        } else {
            for (int u = 0; u < factor; ++u) {
                ir::RegisterInfo copy = info;
                copy.name = info.name + "__" + std::to_string(u);
                copies[reg].push_back(out.addRegister(copy));
            }
        }
    }

    auto map_operand = [&](const ir::Operand& src, int u) {
        if (!src.isRegister())
            return src;
        const bool has_def = loop.definingOp(src.reg) >= 0;
        if (!has_def) {
            // Invariant: same value at any distance.
            return ir::Operand::makeReg(copies[src.reg][0], 0);
        }
        const int source_index = u - src.distance;
        if (source_index >= 0) {
            // Defined earlier within the same unrolled iteration.
            return ir::Operand::makeReg(copies[src.reg][source_index], 0);
        }
        const int new_distance =
            (src.distance - u + factor - 1) / factor;
        int copy = source_index % factor;
        if (copy < 0)
            copy += factor;
        return ir::Operand::makeReg(copies[src.reg][copy], new_distance);
    };

    for (int u = 0; u < factor; ++u) {
        for (const auto& op : loop.operations()) {
            if (tail[op.id])
                continue;
            ir::Operation clone;
            clone.opcode = op.opcode;
            clone.comment = op.comment;
            if (op.hasDest())
                clone.dest = copies[op.dest][u];
            for (const auto& src : op.sources)
                clone.sources.push_back(map_operand(src, u));
            if (op.guard)
                clone.guard = map_operand(*op.guard, u);
            if (op.memRef) {
                ir::MemRef ref = *op.memRef;
                ref.offset = op.memRef->stride * u + op.memRef->offset;
                ref.stride = op.memRef->stride * factor;
                clone.memRef = ref;
            }
            out.addOperation(std::move(clone));
        }
    }

    // Fresh back-substituted control tail, one per unrolled iteration.
    ir::RegisterInfo counter;
    counter.name = "unroll_n";
    counter.isLiveIn = true;
    const ir::RegId n = out.addRegister(counter);
    ir::Operation decrement;
    decrement.opcode = ir::Opcode::kAddrSub;
    decrement.dest = n;
    decrement.sources = {ir::Operand::makeReg(n, 3),
                         ir::Operand::makeImm(3.0 * factor)};
    decrement.comment = "trip count decrement (unrolled)";
    out.addOperation(std::move(decrement));
    ir::Operation branch;
    branch.opcode = ir::Opcode::kBranch;
    branch.sources = {ir::Operand::makeReg(n, 0)};
    branch.comment = "loop-closing branch";
    out.addOperation(std::move(branch));

    out.validate();
    return out;
}

sim::SimSpec
unrolledSimSpec(const ir::Loop& original, const sim::SimSpec& spec,
                int factor)
{
    support::check(factor >= 1 && spec.tripCount % factor == 0,
                   "trip count must be divisible by the unroll factor");
    sim::SimSpec out;
    out.tripCount = spec.tripCount / factor;
    out.margin = spec.margin;
    out.arrays = spec.arrays;
    out.liveIn = spec.liveIn; // invariants keep their names

    for (ir::RegId reg = 0; reg < original.numRegisters(); ++reg) {
        const auto& info = original.reg(reg);
        if (!info.isLiveIn || original.definingOp(reg) < 0)
            continue;
        // Recurrence register: seed each copy. Copy c at unrolled
        // iteration -1-j holds the original value of iteration
        // (-1-j)*factor + c, i.e. original seed index
        // (j+1)*factor - c - 1.
        const auto it = spec.seeds.find(info.name);
        const auto live = spec.liveIn.find(info.name);
        const double fallback =
            live != spec.liveIn.end() ? live->second : 0.0;
        const int depth =
            (original.maxDistance() + factor - 1) / factor + 1;
        for (int c = 0; c < factor; ++c) {
            const std::string name =
                info.name + "__" + std::to_string(c);
            out.liveIn[name] = fallback;
            std::vector<sim::Value> seeds;
            for (int j = 0; j < depth; ++j) {
                const int orig_index = (j + 1) * factor - c - 1;
                if (it != spec.seeds.end() &&
                    orig_index <
                        static_cast<int>(it->second.size())) {
                    seeds.push_back(it->second[orig_index]);
                } else {
                    seeds.push_back(fallback);
                }
            }
            out.seeds[name] = std::move(seeds);
        }
    }
    return out;
}

} // namespace ims::transform
