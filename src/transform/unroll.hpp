#ifndef IMS_TRANSFORM_UNROLL_HPP
#define IMS_TRANSFORM_UNROLL_HPP

#include "ir/loop.hpp"
#include "sim/sequential_interpreter.hpp"

namespace ims::transform {

/**
 * Unroll a loop body `factor` times.
 *
 * The paper needs this transform in two places: §2's fractional-MII
 * recovery ("if the percentage degradation in rounding [the MII] up to
 * the next larger integer is unacceptably high, the body of the loop may
 * be unrolled prior to scheduling"), and the comparison against
 * "unroll-before-scheduling" schemes in §4.3/§5.
 *
 * Semantics: iteration I of the unrolled loop performs iterations
 * I*factor .. I*factor + factor - 1 of the original. Every register
 * defined in the body is split into `factor` copies named `v__u`;
 * cross-iteration operand distances are re-derived (a read of v at
 * distance d in copy u becomes a read of copy (u-d) mod factor at
 * distance ceil((d-u)/factor)); memory references get their stride
 * multiplied and per-copy offsets folded in; pure live-ins stay shared.
 * The loop-control tail (the branch and its dedicated counter decrement)
 * is stripped and re-emitted once, stepping by 3*factor.
 *
 * @throws support::Error if the counter register is read by non-control
 *         operations (the tail cannot be safely stripped), or factor < 1.
 */
ir::Loop unrollLoop(const ir::Loop& loop, int factor);

/**
 * Map a simulation input for the original loop onto the unrolled loop so
 * both compute the same memory trace: tripCount must be divisible by
 * `factor`; array images and invariants are shared; recurrence seeds are
 * re-indexed per copy (`v__c` at unrolled iteration -1-j is the original
 * v at iteration -( (j+1)*factor - c )).
 */
sim::SimSpec unrolledSimSpec(const ir::Loop& original,
                             const sim::SimSpec& spec, int factor);

} // namespace ims::transform

#endif // IMS_TRANSFORM_UNROLL_HPP
