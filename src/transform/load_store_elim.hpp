#ifndef IMS_TRANSFORM_LOAD_STORE_ELIM_HPP
#define IMS_TRANSFORM_LOAD_STORE_ELIM_HPP

#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "sim/sequential_interpreter.hpp"

namespace ims::transform {

/**
 * How a forwarded register must be seeded so pre-loop iterations still
 * observe the original array contents: the value register stands for the
 * cell array[stride*j + offset] at (negative) iteration j.
 */
struct ForwardSeedRule
{
    /** Register that replaced the eliminated load's source. */
    std::string reg;
    std::string array;
    int offset = 0;
    int stride = 1;
};

/** Outcome of redundant-load elimination. */
struct ForwardingResult
{
    ir::Loop loop;
    int eliminatedLoads = 0;
    std::vector<ForwardSeedRule> seedRules;
};

/**
 * The memory dataflow optimisation of the paper's §1 step list
 * ("memory reference data flow analysis and optimization are performed
 * in order to eliminate partially redundant loads and stores [32]. This
 * can improve the schedule if either a load is on a critical path or if
 * the memory ports are the critical resources"): a load of
 * array[s*i + offL] whose cell is always written by a store of
 * array[s*(i-d) + offS] (d = (offS - offL)/s >= 0) is replaced by a
 * register read of the stored value at distance d, turning a
 * memory-carried recurrence into a register-carried one.
 *
 * Safety conditions (conservative): load and store are unguarded, share
 * the stride, the store is the only store to that array, the forwarded
 * distance is exact, and for d == 0 the store precedes the load in
 * program order. Loads that do not qualify are left alone.
 *
 * Forwarding with d >= 1 reads the value register across iterations; it
 * is promoted to live-in and must be seeded with the original array
 * contents (seedRules; see forwardedSimSpec).
 */
ForwardingResult eliminateRedundantLoads(const ir::Loop& loop);

/**
 * Map a simulation input of the original loop onto the forwarded loop:
 * seeds for each promoted value register are drawn from the original
 * initial array image, so both loops compute identical results.
 */
sim::SimSpec forwardedSimSpec(const ForwardingResult& result,
                              const sim::SimSpec& spec);

} // namespace ims::transform

#endif // IMS_TRANSFORM_LOAD_STORE_ELIM_HPP
