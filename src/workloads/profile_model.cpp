#include "workloads/profile_model.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace ims::workloads {

LoopProfile
syntheticProfile(int index, std::uint64_t seed)
{
    support::Rng rng(seed + static_cast<std::uint64_t>(index) * 0x9E37ULL);
    LoopProfile profile;
    profile.executed = rng.bernoulli(0.45);
    if (!profile.executed)
        return profile;

    // Entry count: geometric-ish; most loops entered a few times.
    profile.entryFreq =
        1 + static_cast<std::uint64_t>(
                std::floor(std::pow(10.0, rng.uniformReal() * 2.5) - 1.0));

    // Trip count per entry: skewed between 3 and ~2000.
    const double trips = std::pow(10.0, 0.5 + rng.uniformReal() * 2.8);
    profile.loopFreq =
        profile.entryFreq *
        static_cast<std::uint64_t>(std::max(3.0, std::floor(trips)));
    return profile;
}

double
executionTime(const LoopProfile& profile, int schedule_length, int ii)
{
    if (!profile.executed)
        return 0.0;
    return static_cast<double>(profile.entryFreq) * schedule_length +
           static_cast<double>(profile.loopFreq - profile.entryFreq) * ii;
}

} // namespace ims::workloads
