#ifndef IMS_WORKLOADS_CORPUS_HPP
#define IMS_WORKLOADS_CORPUS_HPP

#include <cstdint>
#include <vector>

#include "workloads/kernels.hpp"

namespace ims::workloads {

/** Composition of the experimental corpus. */
struct CorpusSpec
{
    /** Loops per suite, matching §4.1: 1002 + 298 + 27 = 1327 loops. */
    int perfectLoops = 1002;
    int specLoops = 298;
    int lfkLoops = 27;
    /** Master seed for the random suites. */
    std::uint64_t seed = 0x1994'0B27ULL; // MICRO-27, November 1994
};

/**
 * Build the full synthetic corpus standing in for the paper's 1327
 * modulo-schedulable loops from the Perfect Club, Spec and Livermore
 * suites (substitution #1 in DESIGN.md): the "lfk" suite uses the
 * hand-written kernel library; the "perfect" and "spec" suites are drawn
 * from the calibrated random generator with slightly different profiles.
 * Deterministic in `spec.seed`.
 */
std::vector<Workload> buildCorpus(const CorpusSpec& spec = {});

} // namespace ims::workloads

#endif // IMS_WORKLOADS_CORPUS_HPP
