#ifndef IMS_WORKLOADS_KERNELS_HPP
#define IMS_WORKLOADS_KERNELS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "sim/sequential_interpreter.hpp"

namespace ims::workloads {

/** A loop together with its provenance tag. */
struct Workload
{
    ir::Loop loop;
    /** Suite tag: "lfk", "perfect" or "spec" (mirroring §4.1's corpus). */
    std::string suite;
    std::string description;
};

/**
 * The hand-written kernel library: 39 loops modelled on the Livermore
 * Fortran Kernels and the inner-loop idioms of the Perfect Club / Spec
 * suites — initialization loops, streaming vectorizable bodies,
 * reductions (raw and back-substituted), register and memory recurrences,
 * IF-converted (predicated) bodies, strided/unrolled accesses, and
 * block-reservation-table stress kernels (divide, square root).
 *
 * Every loop validates, is in intra-iteration topological order, and can
 * be simulated end-to-end.
 */
std::vector<Workload> kernelLibrary();

/** Kernel by name; throws support::Error if unknown. */
Workload kernelByName(const std::string& name);

/**
 * Build a deterministic simulation input for `loop`: arrays filled with
 * seeded pseudo-random contents over the full margin range, live-in
 * registers given small random values, and recurrence seeds supplied up to
 * the loop's maximum operand distance.
 */
sim::SimSpec makeSimSpec(const ir::Loop& loop, int trip_count,
                         std::uint64_t seed);

} // namespace ims::workloads

#endif // IMS_WORKLOADS_KERNELS_HPP
