#ifndef IMS_WORKLOADS_PROFILE_MODEL_HPP
#define IMS_WORKLOADS_PROFILE_MODEL_HPP

#include <cstdint>

namespace ims::workloads {

/**
 * Synthetic execution profile for one loop, standing in for the paper's
 * benchmark profiling (substitution #2 in DESIGN.md). Execution time is
 * the paper's §4.3 model:
 *
 *   EntryFreq * SL + (LoopFreq - EntryFreq) * II.
 */
struct LoopProfile
{
    /** True when the loop is executed by the profiled inputs (~45% are,
     *  597 of 1327 in the paper). */
    bool executed = false;
    /** Number of times the loop is entered. */
    std::uint64_t entryFreq = 0;
    /** Number of times the loop body is traversed (>= entryFreq). */
    std::uint64_t loopFreq = 0;
};

/**
 * Deterministic profile for loop `index` of the corpus: ~45% of loops
 * executed, entry counts and trip counts drawn from heavily skewed
 * distributions (most loops entered a handful of times with modest trip
 * counts; a few hot loops dominate).
 */
LoopProfile syntheticProfile(int index, std::uint64_t seed = 0x90F11EULL);

/** The paper's execution-time formula. */
double executionTime(const LoopProfile& profile, int schedule_length,
                     int ii);

} // namespace ims::workloads

#endif // IMS_WORKLOADS_PROFILE_MODEL_HPP
