#ifndef IMS_WORKLOADS_PROGRAMS_HPP
#define IMS_WORKLOADS_PROGRAMS_HPP

#include <string>
#include <vector>

#include "program/program.hpp"

namespace ims::workloads {

/** A named whole-program workload with its provenance tag. */
struct ProgramWorkload
{
    program::Program program;
    std::string description;
};

/**
 * The named real-kernel program corpus: every entry is a full
 * pre-loop / pipelined-loop / post-loop program (not a bare loop body)
 * built around the kernel library's Livermore, stencil, reduction,
 * IF-converted and WHILE-loop bodies, plus a frontend::RegionBuilder
 * lowering. Names follow "prog.<kernel>"; the fuzzer, benches,
 * ims-schedule --program and the CI equivalence smoke all draw from
 * this list. Every program validates and runs end to end at any trip
 * count (including 0).
 */
std::vector<ProgramWorkload> programLibrary();

/** Corpus program by name; throws support::Error if unknown. */
program::Program programByName(const std::string& name);

/**
 * Wrap a bare loop body as a minimal full program for differential
 * fuzzing: identity live-in bindings, every in-loop register exported
 * as an output "out.<reg>" (DO-loops only), the iteration count in
 * "wrap.iters", a small independent pre-loop block and a post-loop
 * block that stores the exported state to a fresh "wrap.out" array.
 */
program::Program wrapLoopAsProgram(ir::Loop loop,
                                   const std::string& name);

} // namespace ims::workloads

#endif // IMS_WORKLOADS_PROGRAMS_HPP
