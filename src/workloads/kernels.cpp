#include "workloads/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "ir/loop_builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ims::workloads {

namespace {

using ir::LoopBuilder;
using ir::Opcode;

/** Fresh builder with a back-substituted address chain "ax". */
LoopBuilder
streamBuilder(const std::string& name)
{
    LoopBuilder b(name);
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)},
         "address increment (back-substituted)");
    return b;
}

ir::Loop
initStore()
{
    // LFK-style initialization loop: a[i] = c. The paper notes a "large
    // number of initialization loops" drives the small-loop statistics.
    LoopBuilder b = streamBuilder("init_store");
    b.liveIn("c");
    b.store("A", 0, b.reg("ax"), b.reg("c"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
vecCopy()
{
    LoopBuilder b = streamBuilder("vec_copy");
    b.load("x", "X", 0, b.reg("ax"));
    b.store("Y", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
vecScale()
{
    LoopBuilder b = streamBuilder("vec_scale");
    b.liveIn("a");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("a"), b.reg("x")});
    b.store("Y", 0, b.reg("ax"), b.reg("t"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
daxpy()
{
    // y[i] = y[i] + a * x[i].
    LoopBuilder b = streamBuilder("daxpy");
    b.liveIn("a");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("a"), b.reg("x")});
    b.op(Opcode::kAdd, "s", {b.reg("t"), b.reg("y")});
    b.store("Y", 0, b.reg("ax"), b.reg("s"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
dotRaw()
{
    // s += x[i] * y[i], raw recurrence: RecMII = adder latency.
    LoopBuilder b = streamBuilder("dot_raw");
    b.recurrence("s");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("x"), b.reg("y")});
    b.op(Opcode::kAdd, "s", {b.reg("s", 1), b.reg("t")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
dotBs4()
{
    // Back-substituted dot product: four interleaved partial sums.
    LoopBuilder b = streamBuilder("dot_bs4");
    b.recurrence("s");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("x"), b.reg("y")});
    b.op(Opcode::kAdd, "s", {b.reg("s", 4), b.reg("t")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
firstOrderRec()
{
    // x_{i} = a * x_{i-1} + b[i]: the classic two-op recurrence SCC.
    LoopBuilder b = streamBuilder("first_order_rec");
    b.liveIn("a");
    b.recurrence("x");
    b.load("bv", "B", 0, b.reg("ax"));
    b.op(Opcode::kMul, "m", {b.reg("a"), b.reg("x", 1)});
    b.op(Opcode::kAdd, "x", {b.reg("m"), b.reg("bv")});
    b.store("X", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
tridiag()
{
    // LFK 5: x[i] = z[i] * (y[i] - x[i-1]), register-carried.
    LoopBuilder b = streamBuilder("tridiag");
    b.recurrence("x");
    b.load("y", "Y", 0, b.reg("ax"));
    b.load("z", "Z", 0, b.reg("ax"));
    b.op(Opcode::kSub, "d", {b.reg("y"), b.reg("x", 1)});
    b.op(Opcode::kMul, "x", {b.reg("z"), b.reg("d")});
    b.store("X", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
hydroFrag()
{
    // LFK 1: x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]).
    LoopBuilder b = streamBuilder("hydro_frag");
    b.liveIn("q").liveIn("r").liveIn("t");
    b.load("y", "Y", 0, b.reg("ax"));
    b.load("z10", "Z", 10, b.reg("ax"));
    b.load("z11", "Z", 11, b.reg("ax"));
    b.op(Opcode::kMul, "rz", {b.reg("r"), b.reg("z10")});
    b.op(Opcode::kMul, "tz", {b.reg("t"), b.reg("z11")});
    b.op(Opcode::kAdd, "zz", {b.reg("rz"), b.reg("tz")});
    b.op(Opcode::kMul, "yz", {b.reg("y"), b.reg("zz")});
    b.op(Opcode::kAdd, "x", {b.reg("q"), b.reg("yz")});
    b.store("X", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
stateFrag()
{
    // LFK 7 flavour: heavy streaming arithmetic over several arrays.
    LoopBuilder b = streamBuilder("state_frag");
    b.liveIn("r").liveIn("t");
    b.load("u", "U", 0, b.reg("ax"));
    b.load("z", "Z", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.load("u3", "U", 3, b.reg("ax"));
    b.load("u6", "U", 6, b.reg("ax"));
    b.op(Opcode::kMul, "rz", {b.reg("r"), b.reg("z")});
    b.op(Opcode::kAdd, "a1", {b.reg("u"), b.reg("rz")});
    b.op(Opcode::kMul, "ty", {b.reg("t"), b.reg("y")});
    b.op(Opcode::kAdd, "a2", {b.reg("a1"), b.reg("ty")});
    b.op(Opcode::kMul, "m1", {b.reg("u3"), b.reg("t")});
    b.op(Opcode::kAdd, "a3", {b.reg("a2"), b.reg("m1")});
    b.op(Opcode::kMul, "m2", {b.reg("u6"), b.reg("r")});
    b.op(Opcode::kAdd, "a4", {b.reg("a3"), b.reg("m2")});
    b.store("X", 0, b.reg("ax"), b.reg("a4"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
iccgLike()
{
    // LFK 2 flavour with strided (unrolled) accesses: v[i] = x[2i] -
    // w[i] * x[2i+1].
    LoopBuilder b = streamBuilder("iccg_like");
    b.load("xe", "X", 0, b.reg("ax"), "", 2);
    b.load("xo", "X", 1, b.reg("ax"), "", 2);
    b.load("w", "W", 0, b.reg("ax"));
    b.op(Opcode::kMul, "wx", {b.reg("w"), b.reg("xo")});
    b.op(Opcode::kSub, "v", {b.reg("xe"), b.reg("wx")});
    b.store("V", 0, b.reg("ax"), b.reg("v"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
bandedInner()
{
    // Banded linear equations inner loop: two address chains, fused
    // multiply-add into a back-substituted accumulator.
    LoopBuilder b("banded_inner");
    b.recurrence("ai").recurrence("aj").recurrence("s");
    b.op(Opcode::kAddrAdd, "ai", {b.reg("ai", 3), b.imm(24)});
    b.op(Opcode::kAddrSub, "aj", {b.reg("aj", 3), b.imm(24)});
    b.load("p", "P", 0, b.reg("ai"));
    b.load("q", "Q", 0, b.reg("aj"));
    b.op(Opcode::kMul, "t", {b.reg("p"), b.reg("q")});
    b.op(Opcode::kAdd, "s", {b.reg("s", 4), b.reg("t")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
stencil3()
{
    // y[i] = w * (x[i-1] + x[i] + x[i+1]): read-only stencil.
    LoopBuilder b = streamBuilder("stencil3");
    b.liveIn("w");
    b.load("xm", "X", -1, b.reg("ax"));
    b.load("x0", "X", 0, b.reg("ax"));
    b.load("xp", "X", 1, b.reg("ax"));
    b.op(Opcode::kAdd, "s1", {b.reg("xm"), b.reg("x0")});
    b.op(Opcode::kAdd, "s2", {b.reg("s1"), b.reg("xp")});
    b.op(Opcode::kMul, "y", {b.reg("w"), b.reg("s2")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
memRecurrence()
{
    // a[i] = a[i-1] * r + b[i]: loop-carried dependence through memory,
    // dominated by the 20-cycle load (large RecMII tail of Table 3).
    LoopBuilder b = streamBuilder("mem_recurrence");
    b.liveIn("r");
    b.load("prev", "A", -1, b.reg("ax"));
    b.load("bv", "B", 0, b.reg("ax"));
    b.op(Opcode::kMul, "m", {b.reg("prev"), b.reg("r")});
    b.op(Opcode::kAdd, "v", {b.reg("m"), b.reg("bv")});
    b.store("A", 0, b.reg("ax"), b.reg("v"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
condStore()
{
    // if (x[i] > 0) y[i] = x[i]: IF-converted body with a guarded store.
    LoopBuilder b = streamBuilder("cond_store");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kPredSet, "p", {b.reg("x"), b.imm(0)});
    b.storeIf("Y", 0, b.reg("ax"), b.reg("x"), b.reg("p"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
clipSelect()
{
    // y[i] = min(x[i], hi) via compare + select (IF-conversion merge).
    LoopBuilder b = streamBuilder("clip_select");
    b.liveIn("hi");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kCmpGt, "t", {b.reg("x"), b.reg("hi")});
    b.op(Opcode::kSelect, "y", {b.reg("t"), b.reg("hi"), b.reg("x")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
maxReduce()
{
    // m = max(m, x[i]): reduction with a reflexive adder recurrence.
    LoopBuilder b = streamBuilder("max_reduce");
    b.recurrence("m");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kMax, "m", {b.reg("m", 1), b.reg("x")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
argmaxLike()
{
    // LFK 24 flavour: track the running maximum and a tagged payload
    // (intertwined recurrences).
    LoopBuilder b = streamBuilder("argmax_like");
    b.recurrence("m").recurrence("idx");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("tag", "T", 0, b.reg("ax"));
    b.op(Opcode::kCmpGt, "c", {b.reg("x"), b.reg("m", 1)});
    b.op(Opcode::kMax, "m", {b.reg("m", 1), b.reg("x")});
    b.op(Opcode::kSelect, "idx",
         {b.reg("c"), b.reg("tag"), b.reg("idx", 1)});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
divKernel()
{
    // y[i] = a[i] / b[i]: the divide's block reservation table makes this
    // resource-bound (ResMII ~ the blocked multiplier stage occupancy).
    LoopBuilder b = streamBuilder("div_kernel");
    b.load("a", "A", 0, b.reg("ax"));
    b.load("bv", "B", 0, b.reg("ax"));
    b.op(Opcode::kDiv, "y", {b.reg("a"), b.reg("bv")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
sqrtKernel()
{
    LoopBuilder b = streamBuilder("sqrt_kernel");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kSqrt, "y", {b.reg("x")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
hornerRec()
{
    // s = s * x + c[i]: polynomial evaluation (two-op recurrence with an
    // invariant multiplicand).
    LoopBuilder b = streamBuilder("horner_rec");
    b.liveIn("x");
    b.recurrence("s");
    b.load("c", "C", 0, b.reg("ax"));
    b.op(Opcode::kMul, "sx", {b.reg("s", 1), b.reg("x")});
    b.op(Opcode::kAdd, "s", {b.reg("sx"), b.reg("c")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
unrolledDaxpy2()
{
    // daxpy unrolled by two: stride-2 accesses, two independent lanes.
    LoopBuilder b("unrolled_daxpy2");
    b.liveIn("a");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(48)});
    for (int lane = 0; lane < 2; ++lane) {
        const std::string sfx = std::to_string(lane);
        b.load("x" + sfx, "X", lane, b.reg("ax"), "", 2);
        b.load("y" + sfx, "Y", lane, b.reg("ax"), "", 2);
        b.op(Opcode::kMul, "t" + sfx, {b.reg("a"), b.reg("x" + sfx)});
        b.op(Opcode::kAdd, "s" + sfx,
             {b.reg("t" + sfx), b.reg("y" + sfx)});
        b.store("Y", lane, b.reg("ax"), b.reg("s" + sfx), "", 2);
    }
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
predicatedMix()
{
    // Hyperblock flavour: two complementary guarded stores.
    LoopBuilder b = streamBuilder("predicated_mix");
    b.liveIn("lo");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kPredSet, "p", {b.reg("x"), b.reg("lo")});
    b.op(Opcode::kPredSet, "q", {b.reg("lo"), b.reg("x")});
    b.op(Opcode::kMul, "x2", {b.reg("x"), b.reg("x")});
    b.storeIf("Y", 0, b.reg("ax"), b.reg("x2"), b.reg("p"));
    b.storeIf("Z", 0, b.reg("ax"), b.reg("x"), b.reg("q"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
wideTree()
{
    // A wide balanced reduction tree over eight loads (ILP-rich).
    LoopBuilder b = streamBuilder("wide_tree");
    for (int k = 0; k < 8; ++k) {
        b.load("x" + std::to_string(k), "X", k, b.reg("ax"));
    }
    for (int k = 0; k < 4; ++k) {
        b.op(Opcode::kAdd, "s" + std::to_string(k),
             {b.reg("x" + std::to_string(2 * k)),
              b.reg("x" + std::to_string(2 * k + 1))});
    }
    b.op(Opcode::kAdd, "t0", {b.reg("s0"), b.reg("s1")});
    b.op(Opcode::kAdd, "t1", {b.reg("s2"), b.reg("s3")});
    b.op(Opcode::kAdd, "r", {b.reg("t0"), b.reg("t1")});
    b.store("Y", 0, b.reg("ax"), b.reg("r"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
longChain()
{
    // A serial chain of dependent adds: long SL, small II (latency-bound
    // schedule length, resource-light).
    LoopBuilder b = streamBuilder("long_chain");
    b.load("x", "X", 0, b.reg("ax"));
    std::string prev = "x";
    for (int k = 0; k < 10; ++k) {
        const std::string name = "c" + std::to_string(k);
        b.op(Opcode::kAdd, name, {b.reg(prev), b.imm(1.0)});
        prev = name;
    }
    b.store("Y", 0, b.reg("ax"), b.reg(prev));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
multiArray()
{
    // Four independent copy streams: memory-port bound.
    LoopBuilder b = streamBuilder("multi_array");
    const char* sources[] = {"A", "B", "C", "D"};
    const char* sinks[] = {"E", "F", "G", "H"};
    for (int k = 0; k < 4; ++k) {
        const std::string v = "v" + std::to_string(k);
        b.load(v, sources[k], 0, b.reg("ax"));
        b.store(sinks[k], 0, b.reg("ax"), b.reg(v));
    }
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
fatLoop()
{
    // A large streaming body (~60 ops): the Table 3 long-tail shape.
    LoopBuilder b = streamBuilder("fat_loop");
    b.liveIn("a").liveIn("c");
    for (int k = 0; k < 8; ++k) {
        const std::string sfx = std::to_string(k);
        b.load("x" + sfx, "X", k, b.reg("ax"));
        b.load("y" + sfx, "Y", k, b.reg("ax"));
        b.op(Opcode::kMul, "m" + sfx, {b.reg("a"), b.reg("x" + sfx)});
        b.op(Opcode::kAdd, "s" + sfx,
             {b.reg("m" + sfx), b.reg("y" + sfx)});
        b.op(Opcode::kMax, "w" + sfx, {b.reg("s" + sfx), b.reg("c")});
        b.store("Z", k, b.reg("ax"), b.reg("w" + sfx));
    }
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
secondOrderRec()
{
    // x_i = a * x_{i-1} + b * x_{i-2}: second-order linear recurrence.
    LoopBuilder b = streamBuilder("second_order_rec");
    b.liveIn("a").liveIn("c");
    b.recurrence("x");
    b.op(Opcode::kMul, "m1", {b.reg("a"), b.reg("x", 1)});
    b.op(Opcode::kMul, "m2", {b.reg("c"), b.reg("x", 2)});
    b.op(Opcode::kAdd, "x", {b.reg("m1"), b.reg("m2")});
    b.store("X", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
avgPair()
{
    // y[i] = (x[i] + x[i+1]) / 2 via multiply by 0.5 (pair averaging).
    LoopBuilder b = streamBuilder("avg_pair");
    b.load("x0", "X", 0, b.reg("ax"));
    b.load("x1", "X", 1, b.reg("ax"));
    b.op(Opcode::kAdd, "s", {b.reg("x0"), b.reg("x1")});
    b.op(Opcode::kMul, "y", {b.reg("s"), b.imm(0.5)});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
absDiffSum()
{
    // s += |x[i] - y[i]| with a back-substituted accumulator.
    LoopBuilder b = streamBuilder("abs_diff_sum");
    b.recurrence("s");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kSub, "d", {b.reg("x"), b.reg("y")});
    b.op(Opcode::kAbs, "ad", {b.reg("d")});
    b.op(Opcode::kAdd, "s", {b.reg("s", 4), b.reg("ad")});
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
lfk9Predictors()
{
    // LFK 9 flavour (integrate predictors): one output as a weighted sum
    // of many neighbouring inputs with invariant coefficients.
    LoopBuilder b = streamBuilder("lfk9_predictors");
    std::string sum;
    for (int k = 0; k < 9; ++k) {
        const std::string coeff = "c" + std::to_string(k);
        b.liveIn(coeff);
        const std::string value = "px" + std::to_string(k);
        b.load(value, "PX", k, b.reg("ax"));
        const std::string term = "m" + std::to_string(k);
        b.op(Opcode::kMul, term, {b.reg(coeff), b.reg(value)});
        if (k == 0) {
            sum = term;
        } else {
            const std::string next = "s" + std::to_string(k);
            b.op(Opcode::kAdd, next, {b.reg(sum), b.reg(term)});
            sum = next;
        }
    }
    b.store("PX", -1, b.reg("ax"), b.reg(sum));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
lfk12FirstDiff()
{
    // LFK 12: x[i] = y[i+1] - y[i].
    LoopBuilder b = streamBuilder("lfk12_first_diff");
    b.load("y0", "Y", 0, b.reg("ax"));
    b.load("y1", "Y", 1, b.reg("ax"));
    b.op(Opcode::kSub, "d", {b.reg("y1"), b.reg("y0")});
    b.store("X", 0, b.reg("ax"), b.reg("d"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
lfk20Ordinates()
{
    // LFK 20 flavour (discrete ordinates): a divide inside a first-order
    // recurrence — a very long recurrence circuit (the MII tail).
    LoopBuilder b = streamBuilder("lfk20_ordinates");
    b.liveIn("a").liveIn("c");
    b.recurrence("xx");
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kMul, "num", {b.reg("a"), b.reg("xx", 1)});
    b.op(Opcode::kAdd, "num2", {b.reg("num"), b.reg("y")});
    b.op(Opcode::kAdd, "den", {b.reg("y"), b.reg("c")});
    b.op(Opcode::kDiv, "xx", {b.reg("num2"), b.reg("den")});
    b.store("X", 0, b.reg("ax"), b.reg("xx"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
fir8()
{
    // 8-tap FIR filter: y[i] = sum_k c_k * x[i+k], balanced add tree.
    LoopBuilder b = streamBuilder("fir8");
    for (int k = 0; k < 8; ++k) {
        b.liveIn("c" + std::to_string(k));
        b.load("x" + std::to_string(k), "X", k, b.reg("ax"));
        b.op(Opcode::kMul, "m" + std::to_string(k),
             {b.reg("c" + std::to_string(k)),
              b.reg("x" + std::to_string(k))});
    }
    for (int k = 0; k < 4; ++k) {
        b.op(Opcode::kAdd, "a" + std::to_string(k),
             {b.reg("m" + std::to_string(2 * k)),
              b.reg("m" + std::to_string(2 * k + 1))});
    }
    b.op(Opcode::kAdd, "b0", {b.reg("a0"), b.reg("a1")});
    b.op(Opcode::kAdd, "b1", {b.reg("a2"), b.reg("a3")});
    b.op(Opcode::kAdd, "y", {b.reg("b0"), b.reg("b1")});
    b.store("Y", 0, b.reg("ax"), b.reg("y"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
complexMult()
{
    // Interleaved complex multiply: (a+bi)(c+di), stride-2 arrays.
    LoopBuilder b("complex_mult");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(48)});
    b.load("ar", "A", 0, b.reg("ax"), "", 2);
    b.load("ai", "A", 1, b.reg("ax"), "", 2);
    b.load("br", "B", 0, b.reg("ax"), "", 2);
    b.load("bi", "B", 1, b.reg("ax"), "", 2);
    b.op(Opcode::kMul, "rr", {b.reg("ar"), b.reg("br")});
    b.op(Opcode::kMul, "ii", {b.reg("ai"), b.reg("bi")});
    b.op(Opcode::kMul, "ri", {b.reg("ar"), b.reg("bi")});
    b.op(Opcode::kMul, "ir", {b.reg("ai"), b.reg("br")});
    b.op(Opcode::kSub, "cr", {b.reg("rr"), b.reg("ii")});
    b.op(Opcode::kAdd, "ci", {b.reg("ri"), b.reg("ir")});
    b.store("C", 0, b.reg("ax"), b.reg("cr"), "", 2);
    b.store("C", 1, b.reg("ax"), b.reg("ci"), "", 2);
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
lfk10DiffPredictors()
{
    // LFK 10 flavour: cascading differences, each cascade level stored
    // to its own array — heavily memory-port bound.
    LoopBuilder b = streamBuilder("lfk10_diff_predictors");
    b.load("v", "CX", 0, b.reg("ax"));
    std::string prev = "v";
    for (int k = 0; k < 5; ++k) {
        const std::string hist = "h" + std::to_string(k);
        b.load(hist, "PY" + std::to_string(k), 0, b.reg("ax"));
        const std::string diff = "d" + std::to_string(k);
        b.op(Opcode::kSub, diff, {b.reg(prev), b.reg(hist)});
        b.store("PY" + std::to_string(k), 0, b.reg("ax"), b.reg(prev));
        prev = diff;
    }
    b.store("DX", 0, b.reg("ax"), b.reg(prev));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
dualStore()
{
    // y[i] = x[i] and z[i] = x[i]: three memory references and no adder
    // traffic, so the rational ResMII is 3/2 — the fractional-MII case
    // §2 addresses by unrolling before modulo scheduling.
    LoopBuilder b = streamBuilder("dual_store");
    b.load("x", "X", 0, b.reg("ax"));
    b.store("Y", 0, b.reg("ax"), b.reg("x"));
    b.store("Z", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();
    return b.build();
}

ir::Loop
rawCounterLoop()
{
    // A loop whose control recurrence was NOT back-substituted: the
    // distance-1 counter forces RecMII = address-ALU latency.
    LoopBuilder b("raw_counter");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)},
         "raw address increment");
    b.liveIn("c");
    b.store("A", 0, b.reg("ax"), b.reg("c"));
    b.closeLoop();
    return b.build();
}

} // namespace

ir::Loop
searchSum()
{
    // WHILE-loop flavour: accumulate x[i] into S[i] until a negative
    // element is found (or the trip-count cap runs out). The store and
    // the accumulator update follow the exit in program order, so they
    // do not execute in the exiting iteration.
    LoopBuilder b = streamBuilder("search_sum");
    b.recurrence("s");
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kSub, "neg", {b.imm(0), b.reg("x")});
    b.exitIf(b.reg("neg"), "leave at the first negative element");
    b.op(Opcode::kAdd, "s", {b.reg("s", 1), b.reg("x")});
    b.store("S", 0, b.reg("ax"), b.reg("s"));
    b.closeLoopBackSubstituted();
    return b.build();
}

std::vector<Workload>
kernelLibrary()
{
    std::vector<Workload> kernels;
    auto add = [&kernels](ir::Loop loop, const std::string& description) {
        kernels.push_back(
            Workload{std::move(loop), "lfk", description});
    };

    add(initStore(), "initialization loop: a[i] = c");
    add(vecCopy(), "vector copy");
    add(vecScale(), "vector scale: y = a*x");
    add(daxpy(), "daxpy: y += a*x");
    add(dotRaw(), "dot product, raw recurrence");
    add(dotBs4(), "dot product, 4-way back-substituted");
    add(firstOrderRec(), "first-order linear recurrence");
    add(tridiag(), "LFK5 tridiagonal elimination");
    add(hydroFrag(), "LFK1 hydro fragment");
    add(stateFrag(), "LFK7 state equation fragment");
    add(iccgLike(), "LFK2 ICCG flavour, strided");
    add(bandedInner(), "banded matmul inner product");
    add(stencil3(), "3-point stencil");
    add(memRecurrence(), "recurrence through memory");
    add(condStore(), "predicated conditional store");
    add(clipSelect(), "clip via compare+select");
    add(maxReduce(), "max reduction");
    add(argmaxLike(), "LFK24 location-of-max flavour");
    add(divKernel(), "elementwise divide (block table)");
    add(sqrtKernel(), "elementwise sqrt (block table)");
    add(hornerRec(), "Horner polynomial recurrence");
    add(unrolledDaxpy2(), "daxpy unrolled by 2 (stride 2)");
    add(predicatedMix(), "hyperblock with two guarded stores");
    add(wideTree(), "wide reduction tree");
    add(longChain(), "serial dependence chain");
    add(multiArray(), "four parallel copy streams");
    add(fatLoop(), "large streaming body");
    add(secondOrderRec(), "second-order linear recurrence");
    add(avgPair(), "pair averaging");
    add(absDiffSum(), "sum of absolute differences");
    add(lfk9Predictors(), "LFK9 integrate predictors (weighted window)");
    add(lfk12FirstDiff(), "LFK12 first difference");
    add(lfk20Ordinates(), "LFK20 discrete ordinates (div recurrence)");
    add(fir8(), "8-tap FIR filter");
    add(complexMult(), "interleaved complex multiply (stride 2)");
    add(lfk10DiffPredictors(), "LFK10 difference predictors (store-heavy)");
    add(dualStore(), "dual store (fractional ResMII 3/2)");
    add(rawCounterLoop(), "non-back-substituted counter loop");
    add(searchSum(), "WHILE-loop: accumulate until a negative element");

    return kernels;
}

Workload
kernelByName(const std::string& name)
{
    for (auto& workload : kernelLibrary()) {
        if (workload.loop.name() == name)
            return workload;
    }
    throw support::Error("unknown kernel '" + name + "'");
}

sim::SimSpec
makeSimSpec(const ir::Loop& loop, int trip_count, std::uint64_t seed)
{
    support::Rng rng(seed);
    sim::SimSpec spec;
    spec.tripCount = trip_count;

    int max_offset = 0;
    int max_stride = 1;
    for (const auto& op : loop.operations()) {
        if (op.memRef) {
            max_offset = std::max(max_offset, std::abs(op.memRef->offset));
            max_stride = std::max(max_stride, op.memRef->stride);
        }
    }
    spec.margin = std::max(8, max_offset + loop.maxDistance() + 2);

    const int cells = max_stride * trip_count + 2 * spec.margin;
    for (const auto& array : loop.arrays()) {
        std::vector<sim::Value> contents;
        contents.reserve(cells);
        for (int k = 0; k < cells; ++k)
            contents.push_back(rng.uniformReal() * 4.0 - 2.0);
        spec.arrays[array.name] = {-spec.margin, std::move(contents)};
    }

    for (const auto& reg : loop.registers()) {
        if (!reg.isLiveIn)
            continue;
        spec.liveIn[reg.name] =
            reg.isPredicate ? 0.0 : rng.uniformReal() * 4.0 - 2.0;
        if (loop.maxDistance() > 0) {
            std::vector<sim::Value> seeds;
            for (int k = 0; k < loop.maxDistance(); ++k)
                seeds.push_back(rng.uniformReal() * 4.0 - 2.0);
            spec.seeds[reg.name] = std::move(seeds);
        }
    }
    return spec;
}

} // namespace ims::workloads
