#ifndef IMS_WORKLOADS_RANDOM_LOOPS_HPP
#define IMS_WORKLOADS_RANDOM_LOOPS_HPP

#include <cstdint>

#include "ir/loop.hpp"
#include "support/rng.hpp"

namespace ims::workloads {

/**
 * Knobs of the calibrated random loop generator. The defaults are tuned so
 * a large sample reproduces the input-side distributions of the paper's
 * Table 3 (operation counts with median ~12 / mean ~19.5 / max 163, ~77%
 * of loops with no non-trivial SCC, SCC sizes heavily skewed towards 1,
 * about three dependence-graph edges per operation).
 */
struct GeneratorProfile
{
    /** Probability of each loop category. */
    double pInit = 0.27;       ///< tiny initialization loops
    double pStreaming = 0.34;  ///< vectorizable load/compute/store bodies
    double pReduction = 0.14;  ///< accumulator loops (some back-subst.)
    double pRecurrence = 0.20; ///< loops with 2+-op recurrence circuits
    double pPredicated = 0.05; ///< IF-converted bodies with guards

    /** Within eligible categories, chance a reduction stays raw (dist 1). */
    double pRawReduction = 0.35;
    /** Chance the loop-control counter stays raw (not back-substituted). */
    double pRawCounter = 0.05;
    /** Chance a streaming loop mixes in divide/sqrt operations. */
    double pExpensiveOp = 0.08;
    /** Within the recurrence category, chance of a memory-carried
     *  recurrence (load a[i-d] ... store a[i]) whose 20-cycle load makes
     *  RecMII large (the Table 3 long tail). */
    double pMemRecurrence = 0.35;

    /** Size-class weights (small, medium, large, huge bodies). */
    double pSmall = 0.42;  ///< ~4-10 operations
    double pMedium = 0.36; ///< ~10-25 operations
    double pLarge = 0.17;  ///< ~25-60 operations
    double pHuge = 0.05;   ///< ~60-160 operations
};

/**
 * Generate one pseudo-random loop. The result always validates, is in
 * intra-iteration topological order (simulatable), and contains the
 * canonical loop-control tail. Deterministic in (`rng` state, `name`).
 */
ir::Loop generateLoop(support::Rng& rng, const std::string& name,
                      const GeneratorProfile& profile = {});

/**
 * Profile tuned for fuzzing rather than corpus calibration: bodies stay
 * small (fast cases, small reproducers before minimization even starts)
 * while the structurally interesting categories — recurrences (including
 * memory-carried ones), predicated bodies, expensive-op mixes — are
 * drawn far more often than their Table 3 frequency.
 */
GeneratorProfile fuzzProfile();

} // namespace ims::workloads

#endif // IMS_WORKLOADS_RANDOM_LOOPS_HPP
