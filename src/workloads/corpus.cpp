#include "workloads/corpus.hpp"

#include "support/error.hpp"
#include "workloads/random_loops.hpp"

namespace ims::workloads {

std::vector<Workload>
buildCorpus(const CorpusSpec& spec)
{
    std::vector<Workload> corpus;
    corpus.reserve(spec.perfectLoops + spec.specLoops + spec.lfkLoops);

    // Livermore suite: hand-written kernels (cycled if more requested).
    const auto library = kernelLibrary();
    support::check(!library.empty(), "empty kernel library");
    for (int k = 0; k < spec.lfkLoops; ++k)
        corpus.push_back(library[k % library.size()]);

    // Perfect Club stand-in: scientific Fortran flavour — slightly larger
    // bodies, more recurrences.
    {
        support::Rng rng(spec.seed);
        GeneratorProfile profile;
        profile.pRecurrence = 0.24;
        profile.pReduction = 0.15;
        profile.pStreaming = 0.31;
        for (int k = 0; k < spec.perfectLoops; ++k) {
            corpus.push_back(Workload{
                generateLoop(rng, "perfect_" + std::to_string(k), profile),
                "perfect", "synthetic Perfect Club stand-in"});
        }
    }

    // Spec stand-in: more small loops, fewer recurrences.
    {
        support::Rng rng(spec.seed ^ 0x5EC5'5EC5ULL);
        GeneratorProfile profile;
        profile.pInit = 0.30;
        profile.pStreaming = 0.40;
        profile.pReduction = 0.12;
        profile.pRecurrence = 0.13;
        profile.pSmall = 0.50;
        profile.pHuge = 0.03;
        for (int k = 0; k < spec.specLoops; ++k) {
            corpus.push_back(Workload{
                generateLoop(rng, "spec_" + std::to_string(k), profile),
                "spec", "synthetic Spec stand-in"});
        }
    }

    return corpus;
}

} // namespace ims::workloads
