#include "workloads/programs.hpp"

#include "frontend/region_builder.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace ims::workloads {

namespace {

using ir::Opcode;
using program::Block;
using program::Program;
using program::c;
using program::v;

Program
withLoop(const std::string& program_name, const std::string& kernel)
{
    return Program(program_name, kernelByName(kernel).loop);
}

/**
 * prog.daxpy — scale factor computed in the pre-loop, y += a*x, then a
 * checksum over the written vector plus the exported last sum. The post
 * block touches the loop's arrays and outputs, so the epilogue stays
 * uncompressed; the pre block's trailing statements are independent of
 * the marshal and may slide under the ramp-up.
 */
Program
progDaxpy()
{
    Program p = withLoop("prog.daxpy", "daxpy");
    Block setup("scale.setup");
    setup.assign(Opcode::kMul, "a", {v("alpha"), v("scale")},
                 "loop live-in");
    setup.assign(Opcode::kMul, "aux", {v("alpha"), v("alpha")});
    setup.store("R", 3, v("aux"), "independent of the loop marshal");
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["y.last"] = "s";
    p.loop.itersVar = "iters";
    Block checksum("checksum");
    checksum.load("y0", "Y", 0);
    checksum.load("y1", "Y", 1);
    checksum.assign(Opcode::kAdd, "chk", {v("y0"), v("y1")});
    checksum.assign(Opcode::kAdd, "chk2", {v("chk"), v("y.last")});
    checksum.store("R", 0, v("chk2"));
    p.postBlocks.push_back(std::move(checksum));
    return p;
}

/** prog.dot — dot product with a normalization epilogue. */
Program
progDot()
{
    Program p = withLoop("prog.dot", "dot_raw");
    Block setup("norm.setup");
    setup.assign(Opcode::kDiv, "inv", {c(1.0), v("count")});
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["sum"] = "s";
    p.loop.itersVar = "iters";
    Block norm("normalize");
    // Independent head (overlappable with the drain) ...
    norm.assign(Opcode::kMul, "inv2", {v("inv"), v("inv")});
    norm.assign(Opcode::kAdd, "t", {v("inv2"), v("bias")});
    norm.store("R", 1, v("t"));
    // ... then the output-dependent tail.
    norm.assign(Opcode::kMul, "mean", {v("sum"), v("inv")});
    norm.store("R", 0, v("mean"));
    p.postBlocks.push_back(std::move(norm));
    return p;
}

/** prog.tridiag — LFK5 with the recurrence seeded from memory. */
Program
progTridiag()
{
    Program p = withLoop("prog.tridiag", "tridiag");
    Block seed("seed.load");
    seed.load("x.prev", "X", -1, "x[i-1] for the first iteration");
    p.preBlocks.push_back(std::move(seed));
    p.loop.seedBindings["x"] = {"x.prev"};
    p.loop.outputs["x.last"] = "x";
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.load("x0", "X", 0);
    tail.assign(Opcode::kSub, "d", {v("x.last"), v("x0")});
    tail.store("R", 0, v("d"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/**
 * prog.hydro — LFK1 with its three coefficients computed in the
 * pre-loop and an independent post-loop tail: the showcase for both
 * compression directions.
 */
Program
progHydro()
{
    Program p = withLoop("prog.hydro", "hydro_frag");
    Block coeff("coeff");
    coeff.assign(Opcode::kAdd, "q", {v("q0"), c(0.5)});
    coeff.assign(Opcode::kMul, "r", {v("r0"), v("r0")});
    coeff.assign(Opcode::kSub, "t", {v("t0"), v("q0")});
    coeff.assign(Opcode::kMul, "aux", {v("q0"), v("t0")},
                 "independent of the marshal: may slide under ramp-up");
    coeff.store("W", 0, v("aux"));
    p.preBlocks.push_back(std::move(coeff));
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.assign(Opcode::kMul, "u", {v("q"), v("r")},
                "independent of the drain: may slide under ramp-down");
    tail.store("W", 1, v("u"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/** prog.stencil — 3-point stencil with boundary rewrite afterwards. */
Program
progStencil()
{
    Program p = withLoop("prog.stencil", "stencil3");
    Block setup("weight");
    setup.assign(Opcode::kDiv, "w", {c(1.0), c(3.0)});
    p.preBlocks.push_back(std::move(setup));
    p.loop.itersVar = "iters";
    Block boundary("boundary");
    boundary.load("e0", "X", 0);
    boundary.store("Y", 0, v("e0"), "boundary element is copied, not "
                                    "smoothed");
    p.postBlocks.push_back(std::move(boundary));
    return p;
}

/** prog.state — LFK7 state fragment, coefficients from the pre-loop. */
Program
progState()
{
    Program p = withLoop("prog.state", "state_frag");
    Block coeff("coeff");
    coeff.assign(Opcode::kAdd, "r", {v("r0"), c(1.0)});
    coeff.assign(Opcode::kMul, "t", {v("t0"), v("r0")});
    p.preBlocks.push_back(std::move(coeff));
    p.loop.itersVar = "iters";
    return p;
}

/** prog.init — initialization loop with a verification tail. */
Program
progInit()
{
    Program p = withLoop("prog.init", "init_store");
    Block setup("setup");
    setup.assign(Opcode::kMul, "c", {v("base"), v("base")});
    p.preBlocks.push_back(std::move(setup));
    p.loop.itersVar = "iters";
    Block verify("verify");
    verify.load("a0", "A", 0);
    verify.assign(Opcode::kSub, "err", {v("a0"), v("c")});
    verify.store("R", 0, v("err"));
    p.postBlocks.push_back(std::move(verify));
    return p;
}

/** prog.memrec — recurrence through memory, last value exported. */
Program
progMemRec()
{
    Program p = withLoop("prog.memrec", "mem_recurrence");
    Block setup("setup");
    setup.assign(Opcode::kMul, "r", {v("decay"), v("decay")});
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["a.last"] = "v";
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.store("R", 0, v("a.last"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/** prog.iccg — strided LFK2 flavour, no scalar marshaling at all. */
Program
progIccg()
{
    Program p = withLoop("prog.iccg", "iccg_like");
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.load("v0", "V", 0);
    tail.store("R", 0, v("v0"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/** prog.cond_store — IF-converted guarded store. */
Program
progCondStore()
{
    Program p = withLoop("prog.cond_store", "cond_store");
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.load("y0", "Y", 0);
    tail.store("R", 0, v("y0"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/** prog.clip — compare+select hyperblock with the bound precomputed. */
Program
progClip()
{
    Program p = withLoop("prog.clip", "clip_select");
    Block setup("bound");
    setup.assign(Opcode::kMin, "hi", {v("lo.bound"), v("hi.bound")});
    p.preBlocks.push_back(std::move(setup));
    p.loop.itersVar = "iters";
    return p;
}

/**
 * prog.search — WHILE-loop: sum until the first negative element. The
 * exit point flows out through the iteration-count variable; register
 * outputs are illegal for early-exit loops (post-exit state is
 * speculative), so the post block works from memory and the count.
 */
Program
progSearch()
{
    Program p = withLoop("prog.search", "search_sum");
    p.loop.itersVar = "found";
    Block tail("tail");
    tail.assign(Opcode::kMul, "found2", {v("found"), c(2.0)});
    tail.store("R", 0, v("found2"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

/**
 * prog.roots — the RegionBuilder IF-conversion example (§1): sum the
 * square roots of positive elements, built through the structured
 * frontend rather than a hand-predicated body.
 */
Program
progRoots()
{
    frontend::RegionBuilder r("sum_positive_roots");
    r.recurrence("s");
    r.recurrence("ax");
    r.assign(Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
    r.load("x", "X", 0, r.use("ax"));
    r.beginIf(r.use("x"));
    r.assign(Opcode::kSqrt, "rt", {r.use("x")});
    r.store("Y", 0, r.use("ax"), r.use("rt"));
    r.assign(Opcode::kAdd, "s", {r.use("s"), r.use("x")});
    r.endIf();

    Program p("prog.roots", r.finish());
    Block setup("setup");
    setup.assign(Opcode::kAdd, "bias", {v("b0"), c(1.0)});
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["sum.pos"] = "s";
    p.loop.itersVar = "iters";
    Block tail("tail");
    tail.assign(Opcode::kAdd, "total", {v("sum.pos"), v("bias")});
    tail.store("R", 0, v("total"));
    p.postBlocks.push_back(std::move(tail));
    return p;
}

} // namespace

std::vector<ProgramWorkload>
programLibrary()
{
    std::vector<ProgramWorkload> programs;
    const auto add = [&programs](Program program,
                                 const std::string& description) {
        program.validate();
        programs.push_back(
            ProgramWorkload{std::move(program), description});
    };
    add(progDaxpy(), "daxpy with checksum epilogue");
    add(progDot(), "dot product, normalized afterwards");
    add(progTridiag(), "LFK5 tridiagonal, memory-seeded recurrence");
    add(progHydro(), "LFK1 hydro fragment, compression showcase");
    add(progStencil(), "3-point stencil with boundary rewrite");
    add(progState(), "LFK7 state fragment");
    add(progInit(), "initialization loop with verification tail");
    add(progMemRec(), "memory recurrence, last value exported");
    add(progIccg(), "LFK2 strided flavour");
    add(progCondStore(), "IF-converted conditional store");
    add(progClip(), "compare+select clip with precomputed bound");
    add(progSearch(), "WHILE-loop search & accumulate");
    add(progRoots(), "RegionBuilder IF-conversion example");
    return programs;
}

program::Program
programByName(const std::string& name)
{
    for (auto& entry : programLibrary()) {
        if (entry.program.name == name)
            return std::move(entry.program);
    }
    throw support::Error("unknown program '" + name + "'");
}

program::Program
wrapLoopAsProgram(ir::Loop loop, const std::string& name)
{
    Program p(name, std::move(loop));
    p.loop.itersVar = "wrap.iters";

    Block pre("wrap.pre");
    pre.assign(Opcode::kAdd, "wrap.bias", {v("wrap.seed"), c(1.0)});
    p.preBlocks.push_back(std::move(pre));

    Block post("wrap.post");
    post.store("wrap.out", 0, v("wrap.iters"));
    post.assign(Opcode::kMul, "wrap.chk", {v("wrap.bias"), c(2.0)});
    post.store("wrap.out", 1, v("wrap.chk"));
    if (!p.loop.hasEarlyExit()) {
        int index = 2;
        const ir::Loop& body = p.loop.body;
        for (ir::RegId reg = 0; reg < body.numRegisters(); ++reg) {
            if (body.definingOp(reg) < 0)
                continue;
            const std::string out = "out." + body.reg(reg).name;
            p.loop.outputs[out] = body.reg(reg).name;
            post.store("wrap.out", index++, v(out));
        }
    }
    p.postBlocks.push_back(std::move(post));
    p.validate();
    return p;
}

} // namespace ims::workloads
