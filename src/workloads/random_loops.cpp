#include "workloads/random_loops.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "ir/loop_builder.hpp"

namespace ims::workloads {

namespace {

using ir::LoopBuilder;
using ir::Opcode;

/** Loop category drawn from the profile. */
enum class Category { kInit, kStreaming, kReduction, kRecurrence,
                      kPredicated };

/** Mutable state while growing one random loop body. */
class BodyBuilder
{
  public:
    BodyBuilder(support::Rng& rng, const std::string& name,
                const GeneratorProfile& profile)
        : rng_(rng), profile_(profile), b_(name)
    {
    }

    ir::Loop
    generate()
    {
        const Category category = pickCategory();
        const int target = pickTarget(category);

        // Invariants every category can draw operands from.
        const int num_invariants = rng_.uniformInt(1, 3);
        for (int k = 0; k < num_invariants; ++k) {
            const std::string name = "inv" + std::to_string(k);
            b_.liveIn(name);
            invariants_.push_back(name);
        }

        // Address chains: roughly one per dozen operations.
        const int num_chains =
            std::clamp(1 + (target - 4) / 14, 1, 4);
        for (int k = 0; k < num_chains; ++k) {
            const std::string name = "ax" + std::to_string(k);
            b_.recurrence(name);
            b_.op(Opcode::kAddrAdd, name,
                  {b_.reg(name, 3), b_.imm(24)});
            chains_.push_back(name);
            ++ops_;
        }

        switch (category) {
          case Category::kInit:
            growInit();
            break;
          case Category::kStreaming:
            growStreaming(target, false);
            break;
          case Category::kReduction:
            growStreaming(target - 2, false);
            growReduction();
            break;
          case Category::kRecurrence:
            growStreaming(std::max(4, target - 4), false);
            growRecurrences();
            break;
          case Category::kPredicated:
            growStreaming(target, true);
            break;
        }

        // Loop-control tail.
        if (rng_.bernoulli(profile_.pRawCounter))
            b_.closeLoop();
        else
            b_.closeLoopBackSubstituted();
        return b_.build();
    }

  private:
    Category
    pickCategory()
    {
        const std::size_t index = rng_.weightedIndex(
            {profile_.pInit, profile_.pStreaming, profile_.pReduction,
             profile_.pRecurrence, profile_.pPredicated});
        return static_cast<Category>(index);
    }

    int
    pickTarget(Category category)
    {
        if (category == Category::kInit)
            return rng_.uniformInt(4, 8);
        const std::size_t size_class = rng_.weightedIndex(
            {profile_.pSmall, profile_.pMedium, profile_.pLarge,
             profile_.pHuge});
        switch (size_class) {
          case 0:
            return rng_.uniformInt(5, 10);
          case 1:
            return rng_.uniformInt(10, 25);
          case 2:
            return rng_.uniformInt(25, 60);
          default:
            return rng_.uniformInt(60, 160);
        }
    }

    const std::string&
    randomChain()
    {
        return chains_[static_cast<std::size_t>(
            rng_.uniformInt(0, static_cast<int>(chains_.size()) - 1))];
    }

    /** Random operand: computed value if possible, else invariant. */
    ir::Operand
    randomValue()
    {
        if (!values_.empty() && rng_.bernoulli(0.8)) {
            // Half the time chain off one of the most recent values:
            // this lengthens critical paths the way real expression
            // trees do.
            const int n = static_cast<int>(values_.size());
            const int lo = rng_.bernoulli(0.5) ? std::max(0, n - 3) : 0;
            const auto& name = values_[static_cast<std::size_t>(
                rng_.uniformInt(lo, n - 1))];
            return b_.reg(name);
        }
        if (rng_.bernoulli(0.85)) {
            const auto& name = invariants_[static_cast<std::size_t>(
                rng_.uniformInt(
                    0, static_cast<int>(invariants_.size()) - 1))];
            return b_.reg(name);
        }
        return b_.imm(rng_.uniformReal() * 4.0 - 2.0);
    }

    std::string
    freshName(const char* prefix)
    {
        return std::string(prefix) + std::to_string(nextId_++);
    }

    void
    emitLoad(bool guarded)
    {
        const std::string dest = freshName("v");
        const std::string array =
            "A" + std::to_string(rng_.uniformInt(0, 3));
        const int offset = rng_.uniformInt(0, 2);
        if (guarded && currentGuard_) {
            b_.loadIf(dest, array, offset, b_.reg(randomChain()),
                      *currentGuard_);
        } else {
            b_.load(dest, array, offset, b_.reg(randomChain()));
        }
        values_.push_back(dest);
        ++ops_;
    }

    void
    emitArith(bool guarded)
    {
        const std::size_t pick = rng_.weightedIndex(
            {0.32, 0.14, 0.24, 0.05, 0.05, 0.03, 0.05,
             rng_.bernoulli(profile_.pExpensiveOp) ? 0.06 : 0.0,
             rng_.bernoulli(profile_.pExpensiveOp) ? 0.03 : 0.0,
             0.06});
        static const Opcode kArith[] = {
            Opcode::kAdd, Opcode::kSub,  Opcode::kMul, Opcode::kMin,
            Opcode::kMax, Opcode::kAbs,  Opcode::kCopy, Opcode::kDiv,
            Opcode::kSqrt, Opcode::kCmpGt};
        const Opcode opcode = kArith[pick];
        const std::string dest = freshName("t");
        std::vector<ir::Operand> sources;
        for (int k = 0; k < ir::sourceCount(opcode); ++k)
            sources.push_back(randomValue());
        if (guarded && currentGuard_)
            b_.opIf(opcode, dest, std::move(sources), *currentGuard_);
        else
            b_.op(opcode, dest, std::move(sources));
        values_.push_back(dest);
        ++ops_;
    }

    void
    emitStore(bool guarded)
    {
        const std::string array =
            "S" + std::to_string(rng_.uniformInt(0, 2));
        if (guarded && currentGuard_) {
            b_.storeIf(array, 0, b_.reg(randomChain()), randomValue(),
                       *currentGuard_);
        } else {
            b_.store(array, 0, b_.reg(randomChain()), randomValue());
        }
        ++ops_;
    }

    void
    growInit()
    {
        // A little invariant arithmetic before the stores, so the size
        // distribution is not a spike at the minimum.
        const int fillers = rng_.uniformInt(0, 3);
        for (int k = 0; k < fillers; ++k)
            emitArith(false);
        const int stores = rng_.uniformInt(1, 2);
        for (int k = 0; k < stores; ++k)
            emitStore(false);
    }

    /**
     * Fill the body towards `target` ops with a load/compute/store mix;
     * `predicated` inserts a guard definition and guards a fraction of
     * the body (IF-converted shape).
     */
    void
    growStreaming(int target, bool predicated)
    {
        const int tail = 2; // counter + branch appended later
        if (predicated) {
            // Guard computed from a loaded value.
            emitLoad(false);
            const std::string pred = freshName("p");
            b_.op(Opcode::kPredSet, pred,
                  {b_.reg(values_.back()), b_.imm(0.0)});
            ++ops_;
            currentGuard_ = b_.reg(pred);
        }
        bool stored = false;
        while (ops_ < target - tail) {
            const bool guard_this =
                predicated && rng_.bernoulli(0.55);
            const std::size_t action = rng_.weightedIndex(
                {values_.size() < 2 ? 0.8 : 0.3, // load
                 0.5,                            // arithmetic
                 0.2});                          // store
            if (action == 0) {
                emitLoad(guard_this);
            } else if (action == 1 || values_.empty()) {
                emitArith(guard_this);
            } else {
                emitStore(guard_this);
                stored = true;
            }
        }
        if (!stored && !values_.empty())
            emitStore(false);
    }

    void
    growReduction()
    {
        const bool raw = rng_.bernoulli(profile_.pRawReduction);
        const int distance = raw ? 1 : 4;
        const std::string acc = freshName("acc");
        b_.recurrence(acc);
        b_.op(rng_.bernoulli(0.8) ? Opcode::kAdd : Opcode::kMax, acc,
              {b_.reg(acc, distance), randomValue()});
        ++ops_;
    }

    void
    growRecurrences()
    {
        if (rng_.bernoulli(profile_.pMemRecurrence)) {
            growMemoryRecurrence();
            if (rng_.bernoulli(0.3))
                growRegisterRecurrence();
            return;
        }
        const int circuits = rng_.uniformInt(1, 2);
        for (int c = 0; c < circuits; ++c)
            growRegisterRecurrence();
    }

    void
    growRegisterRecurrence()
    {
        const std::string reg = freshName("r");
        b_.recurrence(reg);
        // Mostly short circuits; occasionally a deep one (the Table 3
        // nodes-per-SCC tail reaches 42).
        const int length = rng_.bernoulli(0.16)
                               ? rng_.uniformInt(4, 18)
                               : rng_.uniformInt(2, 4);
        ir::Operand carried = b_.reg(reg, 1);
        for (int k = 0; k < length - 1; ++k) {
            const std::string mid = freshName("rc");
            b_.op(rng_.bernoulli(0.5) ? Opcode::kAdd : Opcode::kMul,
                  mid, {carried, randomValue()});
            carried = b_.reg(mid);
            values_.push_back(mid);
            ++ops_;
        }
        b_.op(rng_.bernoulli(0.6) ? Opcode::kAdd : Opcode::kMul, reg,
              {carried, randomValue()});
        ++ops_;
    }

    /** a[i] = f(a[i-d], ...): recurrence carried through memory. */
    void
    growMemoryRecurrence()
    {
        const int distance = rng_.uniformInt(1, 3);
        const std::string prev = freshName("mr");
        b_.load(prev, "R", -distance, b_.reg(randomChain()));
        values_.push_back(prev);
        ++ops_;
        const int length = rng_.uniformInt(1, 3);
        ir::Operand carried = b_.reg(prev);
        for (int k = 0; k < length; ++k) {
            const std::string mid = freshName("mc");
            b_.op(rng_.bernoulli(0.6) ? Opcode::kAdd : Opcode::kMul,
                  mid, {carried, randomValue()});
            carried = b_.reg(mid);
            values_.push_back(mid);
            ++ops_;
        }
        b_.store("R", 0, b_.reg(randomChain()), carried);
        ++ops_;
    }

    support::Rng& rng_;
    const GeneratorProfile& profile_;
    LoopBuilder b_;
    std::vector<std::string> invariants_;
    std::vector<std::string> chains_;
    std::vector<std::string> values_;
    std::optional<ir::Operand> currentGuard_;
    int ops_ = 0;
    int nextId_ = 0;
};

} // namespace

ir::Loop
generateLoop(support::Rng& rng, const std::string& name,
             const GeneratorProfile& profile)
{
    BodyBuilder builder(rng, name, profile);
    return builder.generate();
}

GeneratorProfile
fuzzProfile()
{
    GeneratorProfile profile;
    profile.pInit = 0.10;
    profile.pStreaming = 0.30;
    profile.pReduction = 0.15;
    profile.pRecurrence = 0.25;
    profile.pPredicated = 0.20;
    profile.pRawReduction = 0.50;
    profile.pRawCounter = 0.15;
    profile.pExpensiveOp = 0.15;
    profile.pMemRecurrence = 0.40;
    profile.pSmall = 0.70;
    profile.pMedium = 0.26;
    profile.pLarge = 0.04;
    profile.pHuge = 0.0;
    return profile;
}

} // namespace ims::workloads
