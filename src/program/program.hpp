#ifndef IMS_PROGRAM_PROGRAM_HPP
#define IMS_PROGRAM_PROGRAM_HPP

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/loop.hpp"

namespace ims::program {

/**
 * Source operand of a straight-line block statement: a named program
 * variable or an immediate. Program variables are the architectural state
 * between sections — unlike loop virtual registers they are plain named
 * scalars with no iteration distance.
 */
struct VarOperand
{
    enum class Kind { kVariable, kImmediate };

    Kind kind = Kind::kImmediate;
    std::string var;
    double immediate = 0.0;

    static VarOperand
    makeVar(std::string name)
    {
        VarOperand operand;
        operand.kind = Kind::kVariable;
        operand.var = std::move(name);
        return operand;
    }

    static VarOperand
    makeImm(double value)
    {
        VarOperand operand;
        operand.kind = Kind::kImmediate;
        operand.immediate = value;
        return operand;
    }

    bool isVariable() const { return kind == Kind::kVariable; }
};

/** Shorthand constructors used throughout the corpus definitions. */
inline VarOperand
v(std::string name)
{
    return VarOperand::makeVar(std::move(name));
}

inline VarOperand
c(double value)
{
    return VarOperand::makeImm(value);
}

/**
 * One statement of a straight-line (pre- or post-loop) block. Arithmetic
 * statements assign `dest = opcode(sources)`; loads read `array[index]`
 * into `dest`; stores write `sources[0]` to `array[index]`. Indices are
 * fixed logical element numbers (the blocks are not loops), addressed in
 * the same logical index space the loop's MemRefs use.
 */
struct Statement
{
    ir::Opcode opcode = ir::Opcode::kAdd;
    /** Assigned variable; empty for stores. */
    std::string dest;
    /** Value operands; for stores exactly one (the stored value). */
    std::vector<VarOperand> sources;
    /** Array symbol for load/store, empty otherwise. */
    std::string array;
    /** Fixed logical element index for load/store. */
    int index = 0;
    std::string comment;
};

/**
 * A straight-line basic block: an ordered statement list over program
 * variables and arrays. The ProgramCompiler lowers each block to a
 * single-iteration SSA loop body and list-schedules it on the same
 * machine model as the pipelined loop.
 */
struct Block
{
    std::string name;
    std::vector<Statement> statements;

    Block() = default;
    explicit Block(std::string n) : name(std::move(n)) {}

    Block&
    assign(ir::Opcode opcode, std::string dest,
           std::vector<VarOperand> sources, std::string comment = "")
    {
        Statement s;
        s.opcode = opcode;
        s.dest = std::move(dest);
        s.sources = std::move(sources);
        s.comment = std::move(comment);
        statements.push_back(std::move(s));
        return *this;
    }

    Block&
    load(std::string dest, std::string array, int index,
         std::string comment = "")
    {
        Statement s;
        s.opcode = ir::Opcode::kLoad;
        s.dest = std::move(dest);
        s.array = std::move(array);
        s.index = index;
        s.comment = std::move(comment);
        statements.push_back(std::move(s));
        return *this;
    }

    Block&
    store(std::string array, int index, VarOperand value,
          std::string comment = "")
    {
        Statement s;
        s.opcode = ir::Opcode::kStore;
        s.array = std::move(array);
        s.index = index;
        s.sources = {std::move(value)};
        s.comment = std::move(comment);
        statements.push_back(std::move(s));
        return *this;
    }
};

/**
 * The pipelinable loop section: an IF-converted DSA loop body (the input
 * of the modulo scheduler) plus the bindings that marshal program state
 * in and out of the loop's virtual registers.
 *
 * Marshaling model:
 *  - `tripVar` names the program variable holding the trip count
 *    (a non-negative integer value; never assigned by any block);
 *  - each live-in loop register reads the program variable named by
 *    `liveInBindings` (defaulting to the register's own name);
 *  - `seedBindings[reg]` optionally names the program variables holding
 *    a recurrence register's pre-loop history (entry k = the value at
 *    iteration -1-k), falling back to the live-in value like SimSpec;
 *  - every loop array is shared with the program array of the same name;
 *  - after a DO-loop completes with trip >= 1, each `outputs` entry
 *    copies a loop register's final value to a program variable
 *    (at trip 0 the variables keep their pre-loop values, matching the
 *    sequential engines' empty final-register state);
 *  - `itersVar` (optional) receives the executed iteration count — the
 *    trip count for DO-loops, the exit point for WHILE-loops.
 *
 * WHILE-loops (bodies containing kExitIf) must have no `outputs`:
 * post-exit register state is speculative (see sim::SimResult).
 */
struct LoopSection
{
    ir::Loop body;
    std::string tripVar = "n.trip";
    std::map<std::string, std::string> liveInBindings;
    std::map<std::string, std::vector<std::string>> seedBindings;
    /** program variable <- loop register (final value). */
    std::map<std::string, std::string> outputs;
    std::string itersVar;

    explicit LoopSection(ir::Loop loop_body) : body(std::move(loop_body)) {}

    /** Program variable feeding live-in register `reg`. */
    const std::string&
    liveInVar(const std::string& reg) const
    {
        const auto it = liveInBindings.find(reg);
        return it == liveInBindings.end() ? reg : it->second;
    }

    /** True if the body contains a kExitIf (WHILE-loop / early exit). */
    bool hasEarlyExit() const;
};

/**
 * A multi-block program: straight-line pre-loop block(s), one pipelinable
 * counted or WHILE loop, and post-loop block(s) — the region shape Rau's
 * §1 compilation flow hands to the modulo scheduler after region
 * selection and IF-conversion. This is the unit the ProgramCompiler
 * compiles end to end and the program-level simulator executes.
 *
 * Variable names starting with '$' are reserved for compiler-generated
 * loop-control state (the EC/LC registers) and are rejected in source
 * programs; both executors strip them from the final state.
 */
struct Program
{
    std::string name;
    std::vector<Block> preBlocks;
    LoopSection loop;
    std::vector<Block> postBlocks;

    Program(std::string program_name, ir::Loop loop_body)
        : name(std::move(program_name)), loop(std::move(loop_body))
    {
    }

    /** Throw support::Error describing the first structural violation. */
    void validate() const;

    /** Human-readable multi-line listing of all sections. */
    std::string toString() const;

    /**
     * Program variables that must be supplied by the initial state: every
     * variable read before any definition, in sorted order. The trip
     * variable is excluded (the executors set it from the spec), and
     * loop output variables read by post-blocks are included (they are
     * only conditionally defined — a 0-trip loop writes nothing).
     */
    std::vector<std::string> inputVariables() const;

    /** All array names referenced anywhere (blocks and loop), sorted. */
    std::vector<std::string> arrayNames() const;

    /** Names of arrays the loop body stores to, sorted. */
    std::vector<std::string> loopWrittenArrays() const;

    /** Names of arrays the loop body loads or stores, sorted. */
    std::vector<std::string> loopAccessedArrays() const;

    /** Largest memory stride appearing in any section (>= 1). */
    int maxStride() const;

    /** Largest |logical index| accessed by any block statement. */
    int maxBlockIndex() const;
};

/** Reserved prefix for compiler-generated control variables. */
inline constexpr char kControlVarPrefix = '$';

} // namespace ims::program

#endif // IMS_PROGRAM_PROGRAM_HPP
