#ifndef IMS_PROGRAM_PROGRAM_EXECUTOR_HPP
#define IMS_PROGRAM_PROGRAM_EXECUTOR_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"
#include "program/program.hpp"
#include "program/program_compiler.hpp"
#include "sim/value.hpp"

namespace ims::program {

/**
 * Input state for running a whole program: the trip count, every input
 * variable's value (see Program::inputVariables), and initial array
 * contents as (first logical index, values) spans.
 */
struct ProgramSpec
{
    int trip = 16;
    std::map<std::string, sim::Value> variables;
    std::map<std::string, std::pair<int, std::vector<sim::Value>>> arrays;
};

/**
 * Final architectural state of a program run: every program variable
 * (compiler-internal '$' control variables stripped) and every array as
 * a sparse cell map (absent cells read as 0.0, like unwritten memory).
 */
struct ProgramState
{
    std::map<std::string, sim::Value> variables;
    std::map<std::string, std::map<int, sim::Value>> arrays;
    /** Iterations the loop section entered (trip, or the exit point). */
    int loopIterations = 0;
};

/**
 * Reference semantics: blocks statement by statement in program order,
 * the loop section via sim::runSequential with the marshaling model of
 * LoopSection (live-in/seed bindings in, written arrays and outputs
 * out). The gold standard the compiled execution must match bit for bit.
 *
 * @throws support::Error on invalid programs or missing input variables.
 */
ProgramState runProgramSequential(const Program& program,
                                  const ProgramSpec& spec);

/**
 * Execute the compiled program the way the emitted machine code would
 * run: scheduled block cycles in issue order, then the pipelined loop
 * under EC/LC control — SC-1 ramp-up kernel repetitions under stage
 * predicates, $lc steady-state repetitions, $ec ramp-down repetitions —
 * with the compressed prologue/epilogue cycles interleaved with the
 * adjacent blocks' overlap cycles. The $lc/$ec values are read from the
 * program variables the lowered pre-loop statements computed: the
 * control lowering is executed, not assumed. WHILE-loops run the flat
 * schedule (sim::runPipelined) instead, compression off.
 *
 * @throws support::Error on inconsistent compiled programs.
 */
ProgramState runProgramCompiled(const CompiledProgram& compiled,
                                const ProgramSpec& spec);

/**
 * Random-but-deterministic input state for `program` at `trip`,
 * mirroring workloads::makeSimSpec: every input variable uniform in
 * [-2, 2) (variables feeding predicate live-ins get 0.0), every array
 * filled over the full simulated range.
 */
ProgramSpec makeProgramSpec(const Program& program, int trip,
                            std::uint64_t seed);

/** NaN-tolerant equality of two final states (absent cells = 0.0). */
bool equivalentState(const ProgramState& a, const ProgramState& b);

/** First difference between two final states, "" when equivalent. */
std::string describeStateDifference(const ProgramState& a,
                                    const ProgramState& b);

/**
 * The program-level equivalence oracle: compile `program` with
 * `options`, and for each trip count run the sequential reference
 * against the compiled execution on makeProgramSpec inputs. Returns one
 * kError diagnostic per divergence ("program.mismatch"), engine failure
 * ("program.error"), or compile failure (the compiler's own codes);
 * empty means equivalent everywhere.
 */
std::vector<core::Diagnostic>
programEquivalenceDiagnostics(const Program& program,
                              const machine::MachineModel& machine,
                              const ProgramOptions& options,
                              const std::vector<int>& trips,
                              std::uint64_t seed);

} // namespace ims::program

namespace ims::sim {

/**
 * Program-level simulator facade over the section executors: one
 * compiled program, run at any spec. Thin wrapper over
 * program::runProgramCompiled for call sites that want an object.
 */
class ProgramExecutor
{
  public:
    explicit ProgramExecutor(program::CompiledProgram compiled)
        : compiled_(std::move(compiled))
    {
    }

    const program::CompiledProgram& compiled() const { return compiled_; }

    program::ProgramState
    run(const program::ProgramSpec& spec) const
    {
        return program::runProgramCompiled(compiled_, spec);
    }

  private:
    program::CompiledProgram compiled_;
};

} // namespace ims::sim

#endif // IMS_PROGRAM_PROGRAM_EXECUTOR_HPP
