#include "program/program.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace ims::program {

namespace {

bool
isControlVar(const std::string& name)
{
    return !name.empty() && name[0] == kControlVarPrefix;
}

/** True for opcodes a straight-line block statement may use. */
bool
blockOpcodeAllowed(ir::Opcode opcode)
{
    switch (opcode) {
    case ir::Opcode::kBranch:
    case ir::Opcode::kExitIf:
    case ir::Opcode::kStart:
    case ir::Opcode::kStop:
        return false;
    default:
        return true;
    }
}

void
validateStatement(const Block& block, const Statement& statement,
                  const std::string& trip_var)
{
    const std::string where =
        "block '" + block.name + "': statement '" +
        ir::opcodeName(statement.opcode) +
        (statement.dest.empty() ? "" : " " + statement.dest) + "'";

    support::check(blockOpcodeAllowed(statement.opcode),
                   where + ": opcode not allowed in straight-line blocks");
    support::check(!isControlVar(statement.dest),
                   where + ": '" + std::string(1, kControlVarPrefix) +
                       "'-prefixed variables are reserved for the "
                       "compiler's loop-control state");
    support::check(statement.dest != trip_var,
                   where + ": blocks must not assign the trip-count "
                           "variable '" +
                       trip_var + "'");
    for (const auto& source : statement.sources) {
        if (source.isVariable()) {
            support::check(!source.var.empty(),
                           where + ": empty source variable name");
            support::check(!isControlVar(source.var),
                           where + ": reads reserved control variable '" +
                               source.var + "'");
        }
    }

    if (statement.opcode == ir::Opcode::kLoad) {
        support::check(!statement.dest.empty(),
                       where + ": load needs a destination variable");
        support::check(!statement.array.empty(),
                       where + ": load needs an array");
        support::check(statement.sources.empty(),
                       where + ": load takes no value operands (the "
                               "element index is part of the statement)");
        return;
    }
    if (statement.opcode == ir::Opcode::kStore) {
        support::check(statement.dest.empty(),
                       where + ": store has no destination variable");
        support::check(!statement.array.empty(),
                       where + ": store needs an array");
        support::check(statement.sources.size() == 1,
                       where + ": store takes exactly the stored value");
        return;
    }
    support::check(!statement.dest.empty(),
                   where + ": arithmetic statement needs a destination");
    support::check(statement.array.empty(),
                   where + ": only load/store reference arrays");
    support::check(static_cast<int>(statement.sources.size()) ==
                       ir::sourceCount(statement.opcode),
                   where + ": operand count does not match the opcode");
}

} // namespace

bool
LoopSection::hasEarlyExit() const
{
    for (const auto& op : body.operations()) {
        if (op.opcode == ir::Opcode::kExitIf)
            return true;
    }
    return false;
}

void
Program::validate() const
{
    support::check(!name.empty(), "program needs a name");
    loop.body.validate();

    support::check(!loop.tripVar.empty(),
                   "program '" + name + "': loop section needs a "
                                        "trip-count variable");
    support::check(!isControlVar(loop.tripVar),
                   "program '" + name + "': trip variable uses the "
                                        "reserved control prefix");

    for (const auto* blocks : {&preBlocks, &postBlocks}) {
        for (const auto& block : *blocks) {
            support::check(!block.name.empty(),
                           "program '" + name + "': block needs a name");
            for (const auto& statement : block.statements)
                validateStatement(block, statement, loop.tripVar);
        }
    }

    // Register-name lookup for binding validation.
    const auto regIdByName = [&](const std::string& reg) -> ir::RegId {
        for (ir::RegId id = 0; id < loop.body.numRegisters(); ++id) {
            if (loop.body.reg(id).name == reg)
                return id;
        }
        return ir::kNoReg;
    };

    for (const auto& [reg, var] : loop.liveInBindings) {
        const ir::RegId id = regIdByName(reg);
        support::check(id != ir::kNoReg && loop.body.reg(id).isLiveIn,
                       "program '" + name + "': live-in binding for '" +
                           reg + "' names no live-in loop register");
        support::check(!var.empty() && !isControlVar(var),
                       "program '" + name + "': live-in binding for '" +
                           reg + "' uses an invalid variable name");
    }
    for (const auto& [reg, vars] : loop.seedBindings) {
        const ir::RegId id = regIdByName(reg);
        support::check(id != ir::kNoReg && loop.body.definingOp(id) >= 0,
                       "program '" + name + "': seed binding for '" + reg +
                           "' names no in-loop-defined register");
        for (const auto& var : vars) {
            support::check(!var.empty() && !isControlVar(var),
                           "program '" + name + "': seed binding for '" +
                               reg + "' uses an invalid variable name");
        }
    }
    const bool early_exit = loop.hasEarlyExit();
    support::check(!early_exit || loop.outputs.empty(),
                   "program '" + name + "': WHILE-loops cannot bind "
                                        "register outputs (post-exit state "
                                        "is speculative)");
    for (const auto& [var, reg] : loop.outputs) {
        const ir::RegId id = regIdByName(reg);
        support::check(id != ir::kNoReg && loop.body.definingOp(id) >= 0,
                       "program '" + name + "': output '" + var +
                           "' binds no in-loop-defined register");
        support::check(!var.empty() && !isControlVar(var) &&
                           var != loop.tripVar,
                       "program '" + name + "': output variable '" + var +
                           "' is invalid");
    }
    if (!loop.itersVar.empty()) {
        support::check(!isControlVar(loop.itersVar) &&
                           loop.itersVar != loop.tripVar &&
                           loop.outputs.find(loop.itersVar) ==
                               loop.outputs.end(),
                       "program '" + name + "': iteration-count variable "
                                            "collides with another "
                                            "binding");
    }
}

std::string
Program::toString() const
{
    std::ostringstream out;
    out << "program " << name << "\n";
    const auto renderBlock = [&](const Block& block) {
        out << "  block " << block.name << "\n";
        for (const auto& s : block.statements) {
            out << "    ";
            if (s.opcode == ir::Opcode::kLoad) {
                out << s.dest << " = " << s.array << "[" << s.index << "]";
            } else if (s.opcode == ir::Opcode::kStore) {
                out << s.array << "[" << s.index << "] = "
                    << (s.sources[0].isVariable()
                            ? s.sources[0].var
                            : std::to_string(s.sources[0].immediate));
            } else {
                out << s.dest << " = " << ir::opcodeName(s.opcode) << "(";
                for (std::size_t k = 0; k < s.sources.size(); ++k) {
                    if (k)
                        out << ", ";
                    if (s.sources[k].isVariable())
                        out << s.sources[k].var;
                    else
                        out << s.sources[k].immediate;
                }
                out << ")";
            }
            if (!s.comment.empty())
                out << "  ; " << s.comment;
            out << "\n";
        }
    };
    for (const auto& block : preBlocks)
        renderBlock(block);
    out << "  loop (trip = " << loop.tripVar;
    if (loop.hasEarlyExit())
        out << ", early exit";
    if (!loop.itersVar.empty())
        out << ", iterations -> " << loop.itersVar;
    out << ")\n";
    std::istringstream body(loop.body.toString());
    for (std::string line; std::getline(body, line);)
        out << "    " << line << "\n";
    for (const auto& [var, reg] : loop.outputs)
        out << "    output " << var << " <- " << reg << "\n";
    for (const auto& block : postBlocks)
        renderBlock(block);
    return out.str();
}

std::vector<std::string>
Program::inputVariables() const
{
    std::set<std::string> defined;
    std::set<std::string> inputs;
    const auto read = [&](const std::string& var) {
        if (var != loop.tripVar && defined.find(var) == defined.end())
            inputs.insert(var);
    };
    const auto scanBlock = [&](const Block& block) {
        for (const auto& statement : block.statements) {
            for (const auto& source : statement.sources) {
                if (source.isVariable())
                    read(source.var);
            }
            if (!statement.dest.empty())
                defined.insert(statement.dest);
        }
    };
    for (const auto& block : preBlocks)
        scanBlock(block);
    for (ir::RegId id = 0; id < loop.body.numRegisters(); ++id) {
        if (loop.body.reg(id).isLiveIn)
            read(loop.liveInVar(loop.body.reg(id).name));
    }
    for (const auto& [reg, vars] : loop.seedBindings) {
        for (const auto& var : vars)
            read(var);
    }
    // Output variables stay conditionally defined (a 0-trip loop writes
    // nothing), so post-block reads of them still count as inputs; the
    // iteration count is written unconditionally.
    if (!loop.itersVar.empty())
        defined.insert(loop.itersVar);
    for (const auto& block : postBlocks)
        scanBlock(block);
    return {inputs.begin(), inputs.end()};
}

std::vector<std::string>
Program::arrayNames() const
{
    std::set<std::string> names;
    for (const auto& array : loop.body.arrays())
        names.insert(array.name);
    for (const auto* blocks : {&preBlocks, &postBlocks}) {
        for (const auto& block : *blocks) {
            for (const auto& statement : block.statements) {
                if (!statement.array.empty())
                    names.insert(statement.array);
            }
        }
    }
    return {names.begin(), names.end()};
}

std::vector<std::string>
Program::loopWrittenArrays() const
{
    std::set<std::string> names;
    for (const auto& op : loop.body.operations()) {
        if (op.isStore() && op.memRef)
            names.insert(loop.body.arrays()[op.memRef->array].name);
    }
    return {names.begin(), names.end()};
}

std::vector<std::string>
Program::loopAccessedArrays() const
{
    std::set<std::string> names;
    for (const auto& op : loop.body.operations()) {
        if (op.memRef)
            names.insert(loop.body.arrays()[op.memRef->array].name);
    }
    return {names.begin(), names.end()};
}

int
Program::maxStride() const
{
    int stride = 1;
    for (const auto& op : loop.body.operations()) {
        if (op.memRef)
            stride = std::max(stride, op.memRef->stride);
    }
    return stride;
}

int
Program::maxBlockIndex() const
{
    int index = 0;
    for (const auto* blocks : {&preBlocks, &postBlocks}) {
        for (const auto& block : *blocks) {
            for (const auto& statement : block.statements) {
                if (!statement.array.empty())
                    index = std::max(index, std::abs(statement.index));
            }
        }
    }
    return index;
}

} // namespace ims::program
