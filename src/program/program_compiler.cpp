#include "program/program_compiler.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "graph/graph_builder.hpp"
#include "ir/loop_builder.hpp"
#include "sched/list_scheduler.hpp"
#include "support/error.hpp"

namespace ims::program {

namespace {

using ir::Opcode;

/**
 * Lower a straight-line block to a single-iteration SSA loop body:
 * program variables become versioned virtual registers (reads before any
 * assignment become live-ins named after the variable, later versions
 * get "#n" suffixes), loads/stores carry their fixed element index as
 * the MemRef offset with a symbolic immediate address operand (the
 * simulators address memory through the MemRef, as the loop engines do).
 */
struct LoweredBlock
{
    ir::Loop body;
    /** Final version's program variable per register ("" = none). */
    std::vector<std::string> writeback;
};

LoweredBlock
lowerBlock(const Block& block)
{
    ir::LoopBuilder b(block.name);
    std::map<std::string, std::string> version;
    std::map<std::string, int> versionCount;
    std::map<std::string, std::string> finalVersion;

    const auto readVar = [&](const std::string& var) {
        auto it = version.find(var);
        if (it == version.end()) {
            b.liveIn(var);
            it = version.emplace(var, var).first;
            versionCount[var] = 1;
        }
        return b.reg(it->second);
    };
    const auto operand = [&](const VarOperand& source) {
        return source.isVariable() ? readVar(source.var)
                                   : b.imm(source.immediate);
    };
    const auto defineVar = [&](const std::string& var) {
        int& count = versionCount[var];
        const std::string name =
            count == 0 ? var : var + "#" + std::to_string(count);
        ++count;
        version[var] = name;
        finalVersion[var] = name;
        return name;
    };

    for (const auto& statement : block.statements) {
        // Sources read the versions visible *before* this statement.
        std::vector<ir::Operand> sources;
        sources.reserve(statement.sources.size());
        for (const auto& source : statement.sources)
            sources.push_back(operand(source));

        if (statement.opcode == Opcode::kLoad) {
            b.load(defineVar(statement.dest), statement.array,
                   statement.index, b.imm(0.0), statement.comment);
        } else if (statement.opcode == Opcode::kStore) {
            b.store(statement.array, statement.index, b.imm(0.0),
                    sources[0], statement.comment);
        } else {
            b.op(statement.opcode, defineVar(statement.dest),
                 std::move(sources), statement.comment);
        }
    }

    LoweredBlock lowered{b.build(), {}};
    lowered.writeback.assign(lowered.body.numRegisters(), "");
    for (const auto& [var, reg_name] : finalVersion) {
        for (ir::RegId id = 0; id < lowered.body.numRegisters(); ++id) {
            if (lowered.body.reg(id).name == reg_name)
                lowered.writeback[id] = var;
        }
    }
    return lowered;
}

/** EC/LC initialization statements (see ControlVars). */
void
appendControlStatements(Block& block, const std::string& trip_var,
                        const ControlVars& control, int stage_count)
{
    const double ramp = static_cast<double>(stage_count - 1);
    block.assign(Opcode::kSub, control.scratch, {v(trip_var), c(ramp)},
                 "EC/LC lowering: trip - (SC - 1)");
    block.assign(Opcode::kMax, control.lc, {v(control.scratch), c(0.0)},
                 "LC: steady-state kernel repetitions");
    block.assign(Opcode::kMin, control.ec, {v(trip_var), c(ramp)},
                 "EC: ramp-down repetitions");
}

/** Dense (cycle, resource) occupancy grid. */
class OccupancyGrid
{
  public:
    explicit OccupancyGrid(int num_resources)
        : numResources_(num_resources)
    {
    }

    void
    set(int cycle, machine::ResourceId resource)
    {
        if (cycle >= static_cast<int>(used_.size() / numResources_))
            used_.resize(static_cast<std::size_t>(cycle + 1) *
                             numResources_,
                         false);
        used_[static_cast<std::size_t>(cycle) * numResources_ + resource] =
            true;
    }

    bool
    taken(int cycle, machine::ResourceId resource) const
    {
        if (cycle < 0 ||
            cycle >= static_cast<int>(used_.size() / numResources_))
            return false;
        return used_[static_cast<std::size_t>(cycle) * numResources_ +
                     resource];
    }

    int
    cycleSpan() const
    {
        return static_cast<int>(used_.size() / numResources_);
    }

  private:
    int numResources_;
    std::vector<bool> used_;
};

const machine::ReservationTable&
tableOf(const machine::MachineModel& machine, const ir::Operation& op,
        int alternative)
{
    return machine.info(op.opcode).alternatives[alternative].table;
}

/** Absolute occupancy of a scheduled block (issue tails included). */
OccupancyGrid
blockOccupancy(const CompiledBlock& block,
               const machine::MachineModel& machine)
{
    OccupancyGrid grid(machine.numResources());
    for (const auto& op : block.body.operations()) {
        const auto& table =
            tableOf(machine, op, block.alternatives[op.id]);
        for (const auto& use : table.uses())
            grid.set(block.times[op.id] + use.time, use.resource);
    }
    return grid;
}

/** Hazard sets controlling which block ops may enter an overlap region. */
struct MarshalHazards
{
    std::set<std::string> loopVars;  // live-in / seed / trip variables
    std::set<std::string> outputVars;
    std::set<std::string> loopArrays;
    const ControlVars* control = nullptr;
};

MarshalHazards
hazardsOf(const Program& program, const ControlVars& control)
{
    MarshalHazards hazards;
    const auto& loop = program.loop;
    for (ir::RegId id = 0; id < loop.body.numRegisters(); ++id) {
        if (loop.body.reg(id).isLiveIn)
            hazards.loopVars.insert(loop.liveInVar(loop.body.reg(id).name));
    }
    for (const auto& [reg, vars] : loop.seedBindings)
        hazards.loopVars.insert(vars.begin(), vars.end());
    hazards.loopVars.insert(loop.tripVar);
    for (const auto& [var, reg] : loop.outputs)
        hazards.outputVars.insert(var);
    if (!loop.itersVar.empty())
        hazards.outputVars.insert(loop.itersVar);
    for (const auto& name : program.loopAccessedArrays())
        hazards.loopArrays.insert(name);
    hazards.control = &control;
    return hazards;
}

/**
 * Prologue compression: merge the last k cycles of the final pre-loop
 * block with the first k ramp-up cycles. Legal when every block
 * operation issuing in the overlap
 *  - touches no array the loop accesses (one shared memory on real
 *    hardware: the split-domain executor would otherwise hide a hazard),
 *  - writes back no variable the loop marshals in (live-ins, seeds,
 *    trip count — the marshal happens at the overlap start),
 *  - if it defines an EC/LC control variable, completes before the
 *    steady-state phase needs the value,
 * and no block resource use collides with a ramp-up reservation (ramp-up
 * repetition r statically issues only stages <= r) or spills past the
 * ramp into the steady-state kernel.
 */
int
prologueOverlapDepth(const CompiledProgram& cp,
                     const machine::MachineModel& machine,
                     const MarshalHazards& hazards)
{
    if (cp.pre.empty())
        return 0;
    const CompiledBlock& block = cp.pre.back();
    const auto& kernel = cp.loop.kernel;
    const int ii = kernel.ii;
    const int ramp = cp.rampCycles();
    const int n = block.cycleCount;
    if (ramp == 0 || n == 0)
        return 0;

    OccupancyGrid loopOcc(machine.numResources());
    for (int rep = 0; rep < kernel.stageCount - 1; ++rep) {
        for (const auto& placement : kernel.placements) {
            if (placement.stage > rep)
                continue; // statically dead in ramp-up repetition `rep`
            const int issue = rep * ii + placement.slot;
            const auto& table =
                tableOf(machine,
                        cp.source.loop.body.operation(placement.op),
                        placement.alternative);
            for (const auto& use : table.uses())
                loopOcc.set(issue + use.time, use.resource);
        }
    }
    const OccupancyGrid blockOcc = blockOccupancy(block, machine);

    const auto opAllowed = [&](const ir::Operation& op, int merged_cycle) {
        if (op.memRef &&
            hazards.loopArrays.count(
                block.body.arrays()[op.memRef->array].name))
            return false;
        if (!op.hasDest())
            return true;
        const std::string& wb = block.writeback[op.dest];
        if (wb.empty())
            return true;
        if (hazards.loopVars.count(wb))
            return false;
        if (wb == hazards.control->lc || wb == hazards.control->ec ||
            wb == hazards.control->scratch) {
            // Control values gate the steady-state phase: ready by then.
            return merged_cycle + machine.latency(op.opcode) <= ramp;
        }
        return true;
    };

    for (int k = std::min(n, ramp); k >= 1; --k) {
        bool feasible = true;
        for (const auto& op : block.body.operations()) {
            if (block.times[op.id] < n - k)
                continue;
            if (!opAllowed(op, block.times[op.id] - (n - k))) {
                feasible = false;
                break;
            }
        }
        for (int t = n - k; feasible && t < blockOcc.cycleSpan(); ++t) {
            const int merged = t - (n - k);
            for (machine::ResourceId r = 0;
                 feasible && r < machine.numResources(); ++r) {
                if (!blockOcc.taken(t, r))
                    continue;
                // Spilling past the ramp would collide with the steady
                // kernel; inside the ramp, with its reservations.
                if (merged >= ramp || loopOcc.taken(merged, r))
                    feasible = false;
            }
        }
        if (feasible)
            return k;
    }
    return 0;
}

/**
 * Epilogue compression: merge the first k cycles of the first post-loop
 * block with the last k ramp-down cycles. The ramp-down length is
 * trip-dependent ($ec repetitions), so k is restricted to whole kernel
 * repetitions (multiples of II): the merged block cycles then keep the
 * same kernel-row alignment at every trip and one modulo occupancy test
 * (the full kernel row pattern, a superset of every drain repetition)
 * covers all of them. Overlapped block ops must not read or write the
 * loop's outputs/iteration count (marshaled out at the drain's end) nor
 * touch any loop-accessed array.
 */
int
epilogueOverlapDepth(const CompiledProgram& cp,
                     const machine::MachineModel& machine,
                     const MarshalHazards& hazards)
{
    if (cp.post.empty())
        return 0;
    const CompiledBlock& block = cp.post.front();
    const auto& kernel = cp.loop.kernel;
    const int ii = kernel.ii;
    const int ramp = cp.rampCycles();
    const int n = block.cycleCount;
    if (ramp == 0 || n == 0)
        return 0;

    const OccupancyGrid blockOcc = blockOccupancy(block, machine);

    const auto opAllowed = [&](const ir::Operation& op) {
        if (op.memRef &&
            hazards.loopArrays.count(
                block.body.arrays()[op.memRef->array].name))
            return false;
        for (const auto& source : op.sources) {
            if (source.isRegister() &&
                block.body.definingOp(source.reg) < 0 &&
                hazards.outputVars.count(block.body.reg(source.reg).name))
                return false;
        }
        if (op.hasDest() && !block.writeback[op.dest].empty() &&
            hazards.outputVars.count(block.writeback[op.dest]))
            return false;
        return true;
    };

    const int sc = kernel.stageCount;
    const int maxReps = std::min(sc - 1, n / ii);
    for (int reps = maxReps; reps >= 1; --reps) {
        const int k = reps * ii;
        bool feasible = true;
        for (const auto& op : block.body.operations()) {
            if (block.times[op.id] < k && !opAllowed(op)) {
                feasible = false;
                break;
            }
        }
        // Resource legality against the draining kernel. The drain's
        // repetitions progressively turn stages off: the repetition at
        // distance j from the drain's end only issues operations of
        // stage >= sc-1-j (the stage predicates have retired everything
        // younger). A kernel use issued at slot `s` in that repetition
        // lands on post-block cycle (reps_eff-j-1)*ii + s + use.time
        // when the runtime overlap is reps_eff repetitions; the clamp
        // reps_eff = min(reps, ec) means every value from 1 to reps can
        // occur, and spills from repetitions before the window (j >=
        // reps_eff) can still reach into it, so all j up to sc-2 are
        // checked.
        for (const auto& placement : kernel.placements) {
            if (!feasible)
                break;
            const auto& table = tableOf(
                machine, cp.source.loop.body.operation(placement.op),
                placement.alternative);
            for (int reps_eff = 1; feasible && reps_eff <= reps;
                 ++reps_eff) {
                for (int j = sc - 1 - placement.stage;
                     feasible && j <= sc - 2; ++j) {
                    const int base =
                        (reps_eff - j - 1) * ii + placement.slot;
                    for (const auto& use : table.uses()) {
                        const int t = base + use.time;
                        if (t >= 0 && t < blockOcc.cycleSpan() &&
                            blockOcc.taken(t, use.resource)) {
                            feasible = false;
                            break;
                        }
                    }
                }
            }
        }
        if (feasible)
            return k;
    }
    return 0;
}

CompiledBlock
scheduleLoweredBlock(const Block& block,
                     const machine::MachineModel& machine)
{
    LoweredBlock lowered = lowerBlock(block);
    const graph::DepGraph graph =
        graph::buildDepGraph(lowered.body, machine);
    const sched::ListScheduleResult schedule =
        sched::listSchedule(lowered.body, machine, graph);

    CompiledBlock compiled;
    compiled.name = block.name;
    compiled.body = std::move(lowered.body);
    compiled.writeback = std::move(lowered.writeback);
    compiled.times = schedule.times;
    compiled.alternatives = schedule.alternatives;
    compiled.cycleCount = schedule.scheduleLength;

    int last = 0;
    for (const auto& op : compiled.body.operations())
        last = std::max(last, compiled.times[op.id] + 1);
    compiled.cycles.assign(
        std::max(compiled.cycleCount, last), {});
    for (const auto& op : compiled.body.operations())
        compiled.cycles[compiled.times[op.id]].push_back(op.id);
    compiled.cycleCount = static_cast<int>(compiled.cycles.size());
    return compiled;
}

core::Diagnostic
errorDiagnostic(const std::string& phase, const std::exception& error)
{
    core::Diagnostic diagnostic;
    diagnostic.severity = core::Diagnostic::Severity::kError;
    diagnostic.phase = phase;
    diagnostic.message = error.what();
    if (const auto* coded =
            dynamic_cast<const support::CodedError*>(&error)) {
        diagnostic.code = coded->code();
    } else {
        diagnostic.code = "error." + phase;
    }
    return diagnostic;
}

} // namespace

int
CompiledProgram::rampCycles() const
{
    return (loop.kernel.stageCount - 1) * loop.kernel.ii;
}

long long
CompiledProgram::naiveCycles(int trip) const
{
    long long blocks = 0;
    for (const auto& block : pre)
        blocks += block.cycleCount;
    for (const auto& block : post)
        blocks += block.cycleCount;
    if (loop.isWhile) {
        // Flat-schedule model (PipelineResult::cycles) at the trip bound.
        const long long loop_cycles =
            trip <= 0 ? 0
                      : static_cast<long long>(trip - 1) * loop.kernel.ii +
                            loop.schedule.scheduleLength;
        return blocks + loop_cycles;
    }
    const int sc = loop.kernel.stageCount;
    const long long lc = std::max(0, trip - (sc - 1));
    const long long ec = std::min(trip, sc - 1);
    return blocks + (sc - 1 + lc + ec) * loop.kernel.ii;
}

long long
CompiledProgram::compiledCycles(int trip) const
{
    long long total = naiveCycles(trip);
    if (loop.isWhile)
        return total;
    const long long ec = std::min(trip, loop.kernel.stageCount - 1);
    total -= prologueOverlap;
    total -= std::min<long long>(epilogueOverlap, ec * loop.kernel.ii);
    return total;
}

std::string
ProgramCompileResult::firstError() const
{
    for (const auto& diagnostic : diagnostics) {
        if (diagnostic.severity == core::Diagnostic::Severity::kError)
            return diagnostic.message;
    }
    return "";
}

std::string
ProgramCompileResult::toJson() const
{
    std::ostringstream out;
    const auto& name =
        compiled ? compiled->source.name : std::string("<failed>");
    out << "{\"program\":\"" << name << "\",\"ok\":"
        << (ok() ? "true" : "false");
    if (compiled) {
        long long pre_cycles = 0;
        long long post_cycles = 0;
        for (const auto& block : compiled->pre)
            pre_cycles += block.cycleCount;
        for (const auto& block : compiled->post)
            post_cycles += block.cycleCount;
        out << ",\"scheduler\":\"" << compiled->loop.scheduler << "\""
            << ",\"ii\":" << compiled->loop.kernel.ii
            << ",\"mii\":" << compiled->loop.mii
            << ",\"stages\":" << compiled->loop.kernel.stageCount
            << ",\"while\":" << (compiled->loop.isWhile ? "true" : "false")
            << ",\"pre_cycles\":" << pre_cycles
            << ",\"post_cycles\":" << post_cycles
            << ",\"prologue_overlap\":" << compiled->prologueOverlap
            << ",\"epilogue_overlap\":" << compiled->epilogueOverlap
            << ",\"naive_cycles_17\":" << compiled->naiveCycles(17)
            << ",\"compiled_cycles_17\":" << compiled->compiledCycles(17);
    }
    out << ",\"errors\":";
    int errors = 0;
    for (const auto& diagnostic : diagnostics) {
        if (diagnostic.severity == core::Diagnostic::Severity::kError)
            ++errors;
    }
    out << errors << "}";
    return out.str();
}

ProgramCompiler::ProgramCompiler(machine::MachineModel machine,
                                 ProgramOptions options)
    : machine_(std::move(machine)), options_(std::move(options))
{
}

ProgramCompileResult
ProgramCompiler::compile(const Program& program) const
{
    ProgramCompileResult result;
    try {
        program.validate();
    } catch (const std::exception& error) {
        result.diagnostics.push_back(
            errorDiagnostic("program_validate", error));
        return result;
    }

    const bool is_while = program.loop.hasEarlyExit();

    // (b) The loop section through the full SchedulerStrategy /
    // IiSearchStrategy stack.
    const core::SoftwarePipeliner pipeliner(machine_, options_.pipeline);
    core::PipelineResult loop_result =
        pipeliner.pipeline(core::PipelineRequest(program.loop.body));
    result.loopTelemetry = loop_result.telemetry;

    SectionReport loop_report;
    loop_report.name = program.loop.body.name();
    loop_report.kind = "loop";
    loop_report.ops = program.loop.body.size();
    loop_report.diagnostics = loop_result.diagnostics;
    for (const auto& diagnostic : loop_result.diagnostics)
        result.diagnostics.push_back(diagnostic);

    bool ok = loop_result.ok();
    CompiledProgram cp{program};
    if (ok) {
        const auto& artifacts = *loop_result.artifacts;
        cp.loop.schedule = artifacts.outcome.schedule;
        cp.loop.kernel = artifacts.code.kernel;
        cp.loop.body = codegen::generateKernelOnly(
            program.loop.body, artifacts.outcome.schedule);
        cp.loop.isWhile = is_while;
        cp.loop.scheduler = artifacts.outcome.scheduler;
        cp.loop.mii = artifacts.outcome.mii;
        cp.loop.resMii = artifacts.outcome.resMii;
        loop_report.ii = cp.loop.kernel.ii;
        loop_report.stageCount = cp.loop.kernel.stageCount;
        loop_report.cycles = cp.loop.kernel.ii;
    }

    // (a) Straight-line sections, with (c) the EC/LC loop-control
    // initialization lowered into the final pre-loop block.
    std::vector<Block> pre_blocks = program.preBlocks;
    if (ok && !is_while) {
        if (pre_blocks.empty())
            pre_blocks.emplace_back("loop.control");
        appendControlStatements(pre_blocks.back(), program.loop.tripVar,
                                cp.control, cp.loop.kernel.stageCount);
    }

    std::vector<SectionReport> pre_reports;
    std::vector<SectionReport> post_reports;
    const auto compileBlocks = [&](const std::vector<Block>& blocks,
                                   const std::string& kind,
                                   std::vector<CompiledBlock>& compiled,
                                   std::vector<SectionReport>& reports) {
        for (const auto& block : blocks) {
            SectionReport report;
            report.name = block.name;
            report.kind = kind;
            report.ops = static_cast<int>(block.statements.size());
            try {
                compiled.push_back(scheduleLoweredBlock(block, machine_));
                report.cycles = compiled.back().cycleCount;
            } catch (const std::exception& error) {
                const auto diagnostic =
                    errorDiagnostic("block_compile", error);
                report.diagnostics.push_back(diagnostic);
                result.diagnostics.push_back(diagnostic);
                ok = false;
            }
            reports.push_back(std::move(report));
        }
    };
    compileBlocks(pre_blocks, "pre-block", cp.pre, pre_reports);
    compileBlocks(program.postBlocks, "post-block", cp.post, post_reports);

    if (ok) {
        cp.writtenArrays = program.loopWrittenArrays();
        // (c) Pipeline compression into the adjacent blocks.
        if (options_.compress && !is_while) {
            const MarshalHazards hazards = hazardsOf(program, cp.control);
            cp.prologueOverlap =
                prologueOverlapDepth(cp, machine_, hazards);
            cp.epilogueOverlap =
                epilogueOverlapDepth(cp, machine_, hazards);
        }
        result.compiled = std::move(cp);
    }

    result.sections = std::move(pre_reports);
    result.sections.push_back(std::move(loop_report));
    for (auto& report : post_reports)
        result.sections.push_back(std::move(report));
    return result;
}

CompiledBlock
compileBlock(const Block& block, const machine::MachineModel& machine)
{
    return scheduleLoweredBlock(block, machine);
}

std::string
emitProgram(const CompiledProgram& compiled)
{
    std::ostringstream out;
    out << "program " << compiled.source.name << "\n";
    const auto renderBlock = [&](const CompiledBlock& block) {
        out << "block " << block.name << "  ; " << block.cycleCount
            << " cycles\n";
        for (std::size_t cycle = 0; cycle < block.cycles.size(); ++cycle) {
            out << "  " << cycle << ":";
            if (block.cycles[cycle].empty())
                out << "  nop";
            for (const ir::OpId op : block.cycles[cycle]) {
                out << "  "
                    << block.body.operationToString(
                           block.body.operation(op));
            }
            out << "\n";
        }
    };
    for (std::size_t i = 0; i < compiled.pre.size(); ++i) {
        renderBlock(compiled.pre[i]);
        if (i + 1 == compiled.pre.size() && compiled.prologueOverlap > 0) {
            out << "  ; last " << compiled.prologueOverlap
                << " cycles overlap the ramp-up (compressed)\n";
        }
    }
    out << "loop  ; II " << compiled.loop.kernel.ii << ", "
        << compiled.loop.kernel.stageCount << " stages"
        << (compiled.loop.isWhile ? ", early exit (ESC schema)" : "")
        << "\n";
    out << codegen::emitKernelOnly(compiled.source.loop.body,
                                   compiled.loop.body);
    for (std::size_t i = 0; i < compiled.post.size(); ++i) {
        if (i == 0 && compiled.epilogueOverlap > 0) {
            out << "  ; first " << compiled.epilogueOverlap
                << " cycles overlap the ramp-down (compressed)\n";
        }
        renderBlock(compiled.post[i]);
    }
    return out.str();
}

} // namespace ims::program
