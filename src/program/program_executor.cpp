#include "program/program_executor.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "sim/pipeline_simulator.hpp"
#include "sim/section_executor.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace ims::program {

namespace {

using ArrayStore = std::map<std::string, std::map<int, sim::Value>>;
using Variables = std::map<std::string, sim::Value>;

bool
isControlVar(const std::string& name)
{
    return !name.empty() && name[0] == kControlVarPrefix;
}

sim::Value
readVariable(const Variables& variables, const std::string& name,
             const std::string& who)
{
    const auto it = variables.find(name);
    support::check(it != variables.end(),
                   who + " reads undefined program variable '" + name +
                       "'");
    return it->second;
}

sim::Value
readCell(const ArrayStore& store, const std::string& array, int index)
{
    const auto it = store.find(array);
    if (it == store.end())
        return 0.0;
    const auto cell = it->second.find(index);
    return cell == it->second.end() ? 0.0 : cell->second;
}

ir::ArrayId
arrayIdByName(const ir::Loop& loop, const std::string& name)
{
    for (ir::ArrayId id = 0; id < loop.numArrays(); ++id) {
        if (loop.arrays()[id].name == name)
            return id;
    }
    return -1;
}

/** Loop-local simulation margin, identical to workloads::makeSimSpec. */
int
loopMargin(const ir::Loop& loop)
{
    int max_offset = 0;
    for (const auto& op : loop.operations()) {
        if (op.memRef)
            max_offset = std::max(max_offset, std::abs(op.memRef->offset));
    }
    return std::max(8, max_offset + loop.maxDistance() + 2);
}

int
loopStride(const ir::Loop& loop)
{
    int stride = 1;
    for (const auto& op : loop.operations()) {
        if (op.memRef)
            stride = std::max(stride, op.memRef->stride);
    }
    return stride;
}

/**
 * Marshal program state into a loop SimSpec: live-in and seed bindings
 * from the variables, shared arrays clipped to the loop's simulated
 * range. Both engines build their loop spec through here, so the loop
 * sees identical state either way.
 */
sim::SimSpec
makeLoopSpec(const LoopSection& loop, int trip, const Variables& variables,
             const ArrayStore& store)
{
    sim::SimSpec spec;
    spec.tripCount = trip;
    spec.margin = loopMargin(loop.body);

    for (const auto& reg : loop.body.registers()) {
        if (!reg.isLiveIn)
            continue;
        spec.liveIn[reg.name] = readVariable(
            variables, loop.liveInVar(reg.name),
            "loop '" + loop.body.name() + "' live-in '" + reg.name + "'");
    }
    for (const auto& [reg, vars] : loop.seedBindings) {
        std::vector<sim::Value> seeds;
        seeds.reserve(vars.size());
        for (const auto& var : vars) {
            seeds.push_back(readVariable(variables, var,
                                         "loop '" + loop.body.name() +
                                             "' seed for '" + reg + "'"));
        }
        spec.seeds[reg] = std::move(seeds);
    }

    const int cells = loopStride(loop.body) * trip + 2 * spec.margin;
    for (const auto& array : loop.body.arrays()) {
        std::vector<sim::Value> contents;
        contents.reserve(cells);
        for (int k = 0; k < cells; ++k)
            contents.push_back(
                readCell(store, array.name, k - spec.margin));
        spec.arrays[array.name] = {-spec.margin, std::move(contents)};
    }
    return spec;
}

/** Copy the loop's written arrays back into the program store. */
void
copyBackArrays(const LoopSection& loop, const sim::Memory& memory,
               int trip, ArrayStore& store)
{
    const int margin = loopMargin(loop.body);
    const int cells = loopStride(loop.body) * trip + 2 * margin;
    std::set<std::string> written;
    for (const auto& op : loop.body.operations()) {
        if (op.isStore() && op.memRef)
            written.insert(loop.body.arrays()[op.memRef->array].name);
    }
    for (const auto& name : written) {
        const ir::ArrayId id = arrayIdByName(loop.body, name);
        const auto values = memory.snapshot(id, -margin, cells);
        auto& cellsOut = store[name];
        for (int k = 0; k < cells; ++k)
            cellsOut[k - margin] = values[k];
    }
}

/** Apply output bindings and the iteration count after the loop ran. */
void
applyLoopOutputs(const LoopSection& loop,
                 const std::map<std::string, sim::Value>& final_registers,
                 int executed, int trip, Variables& variables)
{
    if (trip >= 1 && !loop.hasEarlyExit()) {
        for (const auto& [var, reg] : loop.outputs) {
            const auto it = final_registers.find(reg);
            support::check(it != final_registers.end(),
                           "loop '" + loop.body.name() + "' output '" +
                               var + "': register '" + reg +
                               "' has no final value");
            variables[var] = it->second;
        }
    }
    if (!loop.itersVar.empty())
        variables[loop.itersVar] = static_cast<sim::Value>(executed);
}

// ---------------------------------------------------------------------
// Sequential reference.
// ---------------------------------------------------------------------

void
runStatement(const Block& block, const Statement& statement,
             Variables& variables, ArrayStore& store)
{
    const std::string who =
        "block '" + block.name + "' statement '" +
        ir::opcodeName(statement.opcode) + "'";
    if (statement.opcode == ir::Opcode::kLoad) {
        variables[statement.dest] =
            readCell(store, statement.array, statement.index);
        return;
    }
    std::vector<sim::Value> sources;
    sources.reserve(statement.sources.size());
    for (const auto& source : statement.sources) {
        sources.push_back(source.isVariable()
                              ? readVariable(variables, source.var, who)
                              : source.immediate);
    }
    if (statement.opcode == ir::Opcode::kStore) {
        store[statement.array][statement.index] = sources[0];
        return;
    }
    variables[statement.dest] = sim::evaluate(statement.opcode, sources);
}

// ---------------------------------------------------------------------
// Compiled execution.
// ---------------------------------------------------------------------

/**
 * Execution state of one scheduled block: register values plus the
 * live-in snapshot taken at block entry (SSA semantics — a later
 * same-variable writeback must not change what this block's live-in
 * reads see).
 */
struct BlockRun
{
    const CompiledBlock* block = nullptr;
    std::vector<sim::Value> regs;
    std::vector<char> written;
    std::vector<char> deferred;

    BlockRun() = default;

    /**
     * Live-ins named in `deferred_vars` are not read yet: they are the
     * variables the loop marshals out (outputs, iteration count), which
     * do not exist when an overlapped post-block starts issuing. The
     * compression eligibility check guarantees no overlap cycle reads
     * them; refreshLiveIns() fills them in after the marshal.
     */
    BlockRun(const CompiledBlock& compiled, const Variables& variables,
             const std::set<std::string>& deferred_vars = {})
        : block(&compiled)
    {
        regs.assign(compiled.body.numRegisters(), 0.0);
        written.assign(compiled.body.numRegisters(), 0);
        deferred.assign(compiled.body.numRegisters(), 0);
        for (ir::RegId id = 0; id < compiled.body.numRegisters(); ++id) {
            if (!compiled.body.reg(id).isLiveIn)
                continue;
            if (deferred_vars.count(compiled.body.reg(id).name)) {
                deferred[id] = 1;
                continue;
            }
            regs[id] = readVariable(variables, compiled.body.reg(id).name,
                                    "block '" + compiled.name + "'");
            written[id] = 1;
        }
    }

    /** Re-read the deferred live-ins once the loop has marshaled out. */
    void
    refreshLiveIns(const Variables& variables)
    {
        for (ir::RegId id = 0; id < block->body.numRegisters(); ++id) {
            if (!deferred[id])
                continue;
            regs[id] = readVariable(variables, block->body.reg(id).name,
                                    "block '" + block->name + "'");
            written[id] = 1;
            deferred[id] = 0;
        }
    }

    sim::Value
    operand(const ir::Operand& op) const
    {
        if (!op.isRegister())
            return op.immediate;
        support::check(!deferred[op.reg],
                       "block '" + block->name + "' reads variable '" +
                           block->body.reg(op.reg).name +
                           "' before the loop marshaled it out "
                           "(compression eligibility bug)");
        support::check(written[op.reg],
                       "block '" + block->name + "' reads register '" +
                           block->body.reg(op.reg).name +
                           "' before its definition executed (schedule "
                           "bug)");
        return regs[op.reg];
    }

    /** Execute one scheduled cycle against the program state. */
    void
    runCycle(int cycle, Variables& variables, ArrayStore& store)
    {
        const auto& ops = block->cycles[cycle];
        for (const bool store_phase : {false, true}) {
            for (const ir::OpId id : ops) {
                const auto& op = block->body.operation(id);
                if (op.isStore() != store_phase)
                    continue;
                const std::string& array =
                    op.memRef
                        ? block->body.arrays()[op.memRef->array].name
                        : std::string();
                if (op.isStore()) {
                    store[array][op.memRef->offset] =
                        operand(op.sources[1]);
                    continue;
                }
                sim::Value result;
                if (op.isLoad()) {
                    result = readCell(store, array, op.memRef->offset);
                } else {
                    std::vector<sim::Value> sources;
                    sources.reserve(op.sources.size());
                    for (const auto& source : op.sources)
                        sources.push_back(operand(source));
                    result = sim::evaluate(op.opcode, sources);
                }
                regs[op.dest] = result;
                written[op.dest] = 1;
                // Final versions write through to the program variable
                // immediately (the marshal into the loop may happen while
                // this block's overlap cycles are still issuing).
                const std::string& wb = block->writeback[op.dest];
                if (!wb.empty())
                    variables[wb] = result;
            }
        }
    }

    void
    runCycles(int from, int to, Variables& variables, ArrayStore& store)
    {
        for (int cycle = from; cycle < to; ++cycle)
            runCycle(cycle, variables, store);
    }
};

long long
roundedCount(sim::Value value, const std::string& what)
{
    const long long count = std::llround(value);
    support::check(std::isfinite(value) && count >= 0,
                   what + " must be a non-negative count, got " +
                       std::to_string(value));
    return count;
}

ProgramState
finishState(Variables variables, ArrayStore store, int loop_iterations)
{
    ProgramState state;
    for (auto& [name, value] : variables) {
        if (!isControlVar(name))
            state.variables.emplace(name, value);
    }
    state.arrays = std::move(store);
    state.loopIterations = loop_iterations;
    return state;
}

ArrayStore
initialStore(const ProgramSpec& spec)
{
    ArrayStore store;
    for (const auto& [name, init] : spec.arrays) {
        auto& cells = store[name];
        for (std::size_t k = 0; k < init.second.size(); ++k)
            cells[init.first + static_cast<int>(k)] = init.second[k];
    }
    return store;
}

} // namespace

ProgramState
runProgramSequential(const Program& program, const ProgramSpec& spec)
{
    program.validate();
    support::check(spec.trip >= 0, "trip count must be non-negative");

    Variables variables = spec.variables;
    variables[program.loop.tripVar] = static_cast<sim::Value>(spec.trip);
    ArrayStore store = initialStore(spec);

    for (const auto& block : program.preBlocks) {
        for (const auto& statement : block.statements)
            runStatement(block, statement, variables, store);
    }

    const sim::SimSpec loop_spec =
        makeLoopSpec(program.loop, spec.trip, variables, store);
    const sim::SimResult result =
        sim::runSequential(program.loop.body, loop_spec);
    copyBackArrays(program.loop, result.memory, spec.trip, store);
    applyLoopOutputs(program.loop, result.finalRegisters,
                     result.executedIterations, spec.trip, variables);

    for (const auto& block : program.postBlocks) {
        for (const auto& statement : block.statements)
            runStatement(block, statement, variables, store);
    }
    return finishState(std::move(variables), std::move(store),
                       result.executedIterations);
}

ProgramState
runProgramCompiled(const CompiledProgram& compiled,
                   const ProgramSpec& spec)
{
    const Program& source = compiled.source;
    support::check(spec.trip >= 0, "trip count must be non-negative");
    const int trip = spec.trip;

    Variables variables = spec.variables;
    variables[source.loop.tripVar] = static_cast<sim::Value>(trip);
    ArrayStore store = initialStore(spec);

    // Pre-loop blocks; the final one holds back its overlap cycles.
    const int overlap = compiled.prologueOverlap;
    BlockRun lastPre;
    for (std::size_t i = 0; i < compiled.pre.size(); ++i) {
        BlockRun run(compiled.pre[i], variables);
        const bool isLast = i + 1 == compiled.pre.size();
        const int held = isLast ? overlap : 0;
        run.runCycles(0, compiled.pre[i].cycleCount - held, variables,
                      store);
        if (isLast)
            lastPre = std::move(run);
    }

    if (compiled.loop.isWhile) {
        // WHILE-loops run the flat schedule; compression is off.
        const sim::SimSpec loop_spec =
            makeLoopSpec(source.loop, trip, variables, store);
        const sim::PipelineResult result = sim::runPipelined(
            source.loop.body, compiled.loop.schedule, loop_spec);
        copyBackArrays(source.loop, result.state.memory, trip, store);
        applyLoopOutputs(source.loop, result.state.finalRegisters,
                         result.state.executedIterations, trip, variables);
        for (const auto& block : compiled.post)
            BlockRun(block, variables)
                .runCycles(0, block.cycleCount, variables, store);
        return finishState(std::move(variables), std::move(store),
                           result.state.executedIterations);
    }

    // EC/LC-controlled kernel-only execution of the counted loop.
    const ir::Loop& body = source.loop.body;
    const auto& kernel = compiled.loop.body;
    const int ii = kernel.ii;
    const int sc = kernel.stageCount;

    const sim::SimSpec loop_spec =
        makeLoopSpec(source.loop, trip, variables, store);
    sim::Memory memory(body, trip, loop_spec.margin);
    for (const auto& [name, init] : loop_spec.arrays) {
        const ir::ArrayId id = arrayIdByName(body, name);
        if (id >= 0)
            memory.init(id, init.first, init.second);
    }
    sim::RegisterFile registers(body, loop_spec, trip);

    // One kernel row under the stage predicates: repetition `rep`'s
    // instance at stage s runs iteration rep - s when that iteration is
    // live (0 <= rep - s < trip).
    const auto runKernelRow = [&](int rep, int row) {
        for (const bool store_phase : {false, true}) {
            for (const auto& placement : kernel.cycles[row]) {
                const int iter = rep - placement.stage;
                if (iter < 0 || iter >= trip)
                    continue;
                sim::executeOpInstance(body, body.operation(placement.op),
                                       iter, registers, memory,
                                       store_phase);
            }
        }
    };

    // Ramp-up: SC-1 repetitions, interleaved with the held-back overlap
    // cycles of the final pre-loop block.
    const int ramp = (sc - 1) * ii;
    const int preBase =
        lastPre.block ? lastPre.block->cycleCount - overlap : 0;
    for (int cycle = 0; cycle < ramp; ++cycle) {
        if (cycle < overlap)
            lastPre.runCycle(preBase + cycle, variables, store);
        runKernelRow(cycle / ii, cycle % ii);
    }
    if (lastPre.block && overlap > ramp)
        lastPre.runCycles(preBase + ramp, lastPre.block->cycleCount,
                          variables, store);

    // The EC/LC registers were computed by the lowered statements above;
    // their values now control the remaining phases.
    const long long lc = roundedCount(
        readVariable(variables, compiled.control.lc, "loop control"),
        "$lc");
    const long long ec = roundedCount(
        readVariable(variables, compiled.control.ec, "loop control"),
        "$ec");
    support::check(lc + ec == trip,
                   "EC/LC lowering is inconsistent: lc + ec = " +
                       std::to_string(lc + ec) + " but trip = " +
                       std::to_string(trip));

    // Steady state: $lc unpredicated repetitions.
    for (long long s = 0; s < lc; ++s) {
        const int rep = sc - 1 + static_cast<int>(s);
        for (int row = 0; row < ii; ++row)
            runKernelRow(rep, row);
    }

    // Ramp-down: $ec repetitions, the last epilogue cycles interleaved
    // with the first post-loop block's overlap cycles. The compiler
    // chose the overlap in whole kernel repetitions, so clamping to the
    // runtime drain length preserves the kernel-row alignment.
    const int drain = static_cast<int>(ec) * ii;
    const int postOverlap =
        std::min(compiled.epilogueOverlap, drain);
    std::set<std::string> marshaled;
    for (const auto& [var, reg] : source.loop.outputs)
        marshaled.insert(var);
    if (!source.loop.itersVar.empty())
        marshaled.insert(source.loop.itersVar);
    BlockRun firstPost;
    if (!compiled.post.empty())
        firstPost = BlockRun(compiled.post.front(), variables, marshaled);
    for (int cycle = 0; cycle < drain; ++cycle) {
        const int rep = sc - 1 + static_cast<int>(lc) + cycle / ii;
        runKernelRow(rep, cycle % ii);
        if (cycle >= drain - postOverlap)
            firstPost.runCycle(cycle - (drain - postOverlap), variables,
                               store);
    }

    // Marshal out: written arrays, outputs, iteration count.
    copyBackArrays(source.loop, memory, trip, store);
    std::map<std::string, sim::Value> final_registers;
    if (trip >= 1) {
        for (ir::RegId reg = 0; reg < body.numRegisters(); ++reg) {
            if (body.definingOp(reg) >= 0)
                final_registers[body.reg(reg).name] =
                    registers.read(reg, trip - 1);
        }
    }
    applyLoopOutputs(source.loop, final_registers, trip, trip, variables);

    // The post block's overlap cycles could not touch the marshaled
    // variables (compression eligibility), so refreshing their live-in
    // snapshot now is exact.
    if (firstPost.block) {
        firstPost.refreshLiveIns(variables);
        firstPost.runCycles(postOverlap, firstPost.block->cycleCount,
                            variables, store);
    }
    for (std::size_t i = 1; i < compiled.post.size(); ++i) {
        BlockRun(compiled.post[i], variables)
            .runCycles(0, compiled.post[i].cycleCount, variables, store);
    }
    return finishState(std::move(variables), std::move(store), trip);
}

ProgramSpec
makeProgramSpec(const Program& program, int trip, std::uint64_t seed)
{
    support::Rng rng(seed);
    ProgramSpec spec;
    spec.trip = trip;

    // Variables feeding predicate live-ins must hold predicate values.
    std::set<std::string> predicateVars;
    for (const auto& reg : program.loop.body.registers()) {
        if (reg.isLiveIn && reg.isPredicate)
            predicateVars.insert(program.loop.liveInVar(reg.name));
    }
    for (const auto& var : program.inputVariables()) {
        spec.variables[var] = predicateVars.count(var)
                                  ? 0.0
                                  : rng.uniformReal() * 4.0 - 2.0;
    }

    const int margin = loopMargin(program.loop.body);
    const int stride = loopStride(program.loop.body);
    const int cells =
        std::max(stride * trip + margin, program.maxBlockIndex() + 1) +
        margin;
    for (const auto& name : program.arrayNames()) {
        std::vector<sim::Value> contents;
        contents.reserve(cells);
        for (int k = 0; k < cells; ++k)
            contents.push_back(rng.uniformReal() * 4.0 - 2.0);
        spec.arrays[name] = {-margin, std::move(contents)};
    }
    return spec;
}

bool
equivalentState(const ProgramState& a, const ProgramState& b)
{
    return describeStateDifference(a, b).empty();
}

std::string
describeStateDifference(const ProgramState& a, const ProgramState& b)
{
    if (a.loopIterations != b.loopIterations) {
        return "loop iterations: " + std::to_string(a.loopIterations) +
               " vs " + std::to_string(b.loopIterations);
    }
    {
        std::set<std::string> names;
        for (const auto& [name, value] : a.variables)
            names.insert(name);
        for (const auto& [name, value] : b.variables)
            names.insert(name);
        for (const auto& name : names) {
            const auto ita = a.variables.find(name);
            const auto itb = b.variables.find(name);
            if (ita == a.variables.end() || itb == b.variables.end()) {
                return "variable '" + name + "' only defined on " +
                       (ita == a.variables.end() ? "the second side"
                                                 : "the first side");
            }
            if (!sim::sameValue(ita->second, itb->second)) {
                return "variable '" + name +
                       "': " + std::to_string(ita->second) + " vs " +
                       std::to_string(itb->second);
            }
        }
    }
    std::set<std::string> arrays;
    for (const auto& [name, cells] : a.arrays)
        arrays.insert(name);
    for (const auto& [name, cells] : b.arrays)
        arrays.insert(name);
    static const std::map<int, sim::Value> kEmpty;
    for (const auto& name : arrays) {
        const auto ita = a.arrays.find(name);
        const auto itb = b.arrays.find(name);
        const auto& cellsA = ita == a.arrays.end() ? kEmpty : ita->second;
        const auto& cellsB = itb == b.arrays.end() ? kEmpty : itb->second;
        std::set<int> indices;
        for (const auto& [index, value] : cellsA)
            indices.insert(index);
        for (const auto& [index, value] : cellsB)
            indices.insert(index);
        for (const int index : indices) {
            const auto ca = cellsA.find(index);
            const auto cb = cellsB.find(index);
            const sim::Value va = ca == cellsA.end() ? 0.0 : ca->second;
            const sim::Value vb = cb == cellsB.end() ? 0.0 : cb->second;
            if (!sim::sameValue(va, vb)) {
                return "array '" + name + "' index " +
                       std::to_string(index) + ": " + std::to_string(va) +
                       " vs " + std::to_string(vb);
            }
        }
    }
    return "";
}

std::vector<core::Diagnostic>
programEquivalenceDiagnostics(const Program& program,
                              const machine::MachineModel& machine,
                              const ProgramOptions& options,
                              const std::vector<int>& trips,
                              std::uint64_t seed)
{
    std::vector<core::Diagnostic> out;
    const ProgramCompiler compiler(machine, options);
    const ProgramCompileResult result = compiler.compile(program);
    if (!result.ok()) {
        for (const auto& diagnostic : result.diagnostics) {
            if (diagnostic.severity == core::Diagnostic::Severity::kError)
                out.push_back(diagnostic);
        }
        if (out.empty()) {
            out.push_back({core::Diagnostic::Severity::kError, "compile",
                           "program compilation failed without an error "
                           "diagnostic",
                           "program.error"});
        }
        return out;
    }

    for (const int trip : trips) {
        if (trip < 0)
            continue;
        const ProgramSpec spec = makeProgramSpec(program, trip, seed);

        ProgramState reference;
        try {
            reference = runProgramSequential(program, spec);
        } catch (const std::exception& error) {
            out.push_back({core::Diagnostic::Severity::kError, "verify",
                           "sequential program reference failed at trip " +
                               std::to_string(trip) + ": " + error.what(),
                           "program.error"});
            continue;
        }
        try {
            const ProgramState got =
                runProgramCompiled(*result.compiled, spec);
            const std::string diff =
                describeStateDifference(reference, got);
            if (!diff.empty()) {
                out.push_back(
                    {core::Diagnostic::Severity::kError, "verify",
                     "compiled program diverges from sequential at trip " +
                         std::to_string(trip) + ": " + diff,
                     "program.mismatch"});
            }
        } catch (const std::exception& error) {
            out.push_back({core::Diagnostic::Severity::kError, "verify",
                           "compiled program failed at trip " +
                               std::to_string(trip) + ": " + error.what(),
                           "program.error"});
        }
    }
    return out;
}

} // namespace ims::program
