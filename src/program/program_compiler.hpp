#ifndef IMS_PROGRAM_PROGRAM_COMPILER_HPP
#define IMS_PROGRAM_PROGRAM_COMPILER_HPP

#include <optional>
#include <string>
#include <vector>

#include "codegen/kernel.hpp"
#include "codegen/kernel_only.hpp"
#include "core/pipeliner.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "program/program.hpp"

namespace ims::program {

/**
 * A straight-line block after lowering and scheduling: the block's
 * statements as a single-iteration SSA loop body (variables renamed to
 * versioned virtual registers, reads-before-write turned into live-ins
 * named after their program variable), the resource-aware list schedule
 * over it, and the write-back map restoring final register values to
 * program variables.
 */
struct CompiledBlock
{
    std::string name;
    /** Lowered single-iteration body (validated, topologically ordered). */
    ir::Loop body{std::string()};
    /** Issue time / chosen machine alternative per operation. */
    std::vector<int> times;
    std::vector<int> alternatives;
    /** Operations issuing at each cycle, in op order. */
    std::vector<std::vector<ir::OpId>> cycles;
    /** Cycles until the block completes (list schedule length). */
    int cycleCount = 0;
    /**
     * Per register: the program variable receiving this register's value
     * ("" for intermediate versions and live-ins). Only the final version
     * of an assigned variable writes back.
     */
    std::vector<std::string> writeback;
};

/**
 * The compiled loop section: the modulo-schedule outcome, the kernel
 * structure, and the kernel-only (stage-predicated) body that the EC/LC
 * execution schema repeats. WHILE-loops keep the flat schedule and are
 * executed by the pipeline simulator (counted loop control does not
 * apply; see docs/PROGRAM.md).
 */
struct CompiledLoop
{
    sched::ScheduleResult schedule;
    codegen::Kernel kernel;
    /** Stage-predicated kernel rows (the [36] schema). */
    codegen::KernelOnlyCode body;
    bool isWhile = false;
    /** Scheduler backend identity and MII statistics. */
    std::string scheduler;
    int mii = 1;
    int resMii = 1;
};

/**
 * Compiler-chosen control-variable names. The EC/LC initialization is
 * lowered into the last pre-loop block as ordinary statements:
 *
 *   $lc = max(tripVar - (SC - 1), 0)   — steady-state kernel repetitions
 *   $ec = min(tripVar, SC - 1)         — ramp-down (drain) repetitions
 *
 * so prologue (SC-1 repetitions) + $lc + $ec = trip + SC - 1 kernel
 * repetitions in total, the [36] iteration-count identity. The program
 * executor's steady phase runs exactly $lc unpredicated repetitions and
 * its ramp-down exactly $ec predicated ones — the lowered values are
 * load-bearing, not decorative.
 */
struct ControlVars
{
    std::string lc = "$lc";
    std::string ec = "$ec";
    std::string scratch = "$t0";
};

/** One fully compiled program, executable by program::ProgramExecutor. */
struct CompiledProgram
{
    explicit CompiledProgram(Program program)
        : source(std::move(program))
    {
    }

    /** The source program (without the synthesized control statements). */
    Program source;
    /** Pre-loop blocks; the last one carries the EC/LC initialization. */
    std::vector<CompiledBlock> pre;
    CompiledLoop loop;
    std::vector<CompiledBlock> post;
    ControlVars control;
    /**
     * Pipeline compression (§1's "overlapping the prologue and epilogue
     * with adjacent blocks"): the last `prologueOverlap` cycles of the
     * final pre-loop block issue together with the first ramp-up cycles,
     * and the first `epilogueOverlap` cycles of the first post-loop
     * block issue together with the last ramp-down cycles. 0 = none.
     */
    int prologueOverlap = 0;
    int epilogueOverlap = 0;

    /** Names of arrays the loop writes (marshaled back after the loop). */
    std::vector<std::string> writtenArrays;

    /** Ramp-up length in cycles: (SC - 1) * II. */
    int rampCycles() const;

    /**
     * Total execution cycles at `trip` under the EC/LC model with
     * compression applied: blocks + (SC-1 + $lc + $ec) * II - overlaps.
     */
    long long compiledCycles(int trip) const;

    /** Same without compression (prologue/epilogue fully sequential). */
    long long naiveCycles(int trip) const;
};

/** Per-section compilation report. */
struct SectionReport
{
    std::string name;
    /** "pre-block", "loop" or "post-block". */
    std::string kind;
    int ops = 0;
    int cycles = 0;
    /** Loop sections only. */
    int ii = 0;
    int stageCount = 0;
    std::vector<core::Diagnostic> diagnostics;
};

/** Options for the end-to-end program driver. */
struct ProgramOptions
{
    /** Loop-section scheduling options (full strategy stack). */
    core::PipelinerOptions pipeline;
    /** Overlap prologue/epilogue with adjacent blocks when legal. */
    bool compress = true;

    ProgramOptions&
    withPipeline(core::PipelinerOptions options)
    {
        pipeline = std::move(options);
        return *this;
    }

    ProgramOptions&
    withCompression(bool enabled)
    {
        compress = enabled;
        return *this;
    }
};

/**
 * Result of compiling one program. Input problems surface as kError
 * diagnostics (with `compiled` empty), never as exceptions, mirroring
 * core::PipelineResult.
 */
struct ProgramCompileResult
{
    std::optional<CompiledProgram> compiled;
    std::vector<SectionReport> sections;
    /** Program-level diagnostics (section diagnostics are also here). */
    std::vector<core::Diagnostic> diagnostics;
    /** Loop-section pipeline telemetry (phases, II vs MII, budget). */
    support::PipelineTelemetry loopTelemetry;

    bool ok() const { return compiled.has_value(); }

    /** First kError message, or "" when compilation succeeded. */
    std::string firstError() const;

    /** Deterministic one-line JSON telemetry summary for the program. */
    std::string toJson() const;
};

/**
 * The end-to-end driver (the compilation flow of §1): list-schedule the
 * straight-line sections, modulo-schedule the loop through the full
 * SchedulerStrategy / IiSearchStrategy stack, lower the counted-loop
 * control to EC/LC initialization statements in the pre-loop block,
 * assign stage predicates for ramp-up/ramp-down, and compress the
 * pipeline into the adjacent blocks where the reservation tables and the
 * marshaling hazards allow.
 */
class ProgramCompiler
{
  public:
    explicit ProgramCompiler(machine::MachineModel machine,
                             ProgramOptions options = {});

    const machine::MachineModel& machine() const { return machine_; }
    const ProgramOptions& options() const { return options_; }

    /** Compile `program`. Never throws for bad input. */
    ProgramCompileResult compile(const Program& program) const;

  private:
    machine::MachineModel machine_;
    ProgramOptions options_;
};

/**
 * Lower one straight-line block to its scheduled form (exposed for
 * tests; the compiler applies it to every block).
 *
 * @throws support::Error for statements the machine cannot execute.
 */
CompiledBlock compileBlock(const Block& block,
                           const machine::MachineModel& machine);

/** Assembly-style listing of the whole compiled program. */
std::string emitProgram(const CompiledProgram& compiled);

} // namespace ims::program

#endif // IMS_PROGRAM_PROGRAM_COMPILER_HPP
