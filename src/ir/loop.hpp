#ifndef IMS_IR_LOOP_HPP
#define IMS_IR_LOOP_HPP

#include <string>
#include <vector>

#include "ir/operation.hpp"

namespace ims::ir {

/** Declaration of a virtual register of the loop. */
struct RegisterInfo
{
    std::string name;
    /** Predicate registers guard IF-converted operations. */
    bool isPredicate = false;
    /**
     * Live-in registers are defined before the loop (loop invariants or
     * initial values of recurrences) and have no defining operation inside
     * the body.
     */
    bool isLiveIn = false;
};

/** Declaration of an array symbol referenced by loads/stores. */
struct ArrayInfo
{
    std::string name;
};

/**
 * An innermost loop body after IF-conversion, in dynamic single assignment
 * form: a single basic block of operations plus register and array symbol
 * tables. This is the input to the software pipeliner, corresponding to
 * the intermediate representation the paper's research scheduler reads in
 * (§4.1).
 *
 * Structural invariants (checked by validate()):
 *  - every non-live-in register read (at distance 0) has a defining op;
 *  - registers are defined by at most one operation (single assignment);
 *  - reads with distance d > 0 are only legal for registers that are
 *    defined inside the loop or seeded as live-in recurrences;
 *  - operand counts match the opcode arity; memory ops carry a MemRef.
 */
class Loop
{
  public:
    explicit Loop(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    /** Declare a register; returns its id. */
    RegId addRegister(RegisterInfo info);

    /** Declare an array symbol; returns its id. */
    ArrayId addArray(ArrayInfo info);

    /** Append an operation; its `id` field is assigned. Returns the id. */
    OpId addOperation(Operation operation);

    const std::vector<Operation>& operations() const { return operations_; }
    const Operation& operation(OpId id) const { return operations_[id]; }
    int size() const { return static_cast<int>(operations_.size()); }

    const std::vector<RegisterInfo>& registers() const { return registers_; }
    const RegisterInfo& reg(RegId id) const { return registers_[id]; }
    int numRegisters() const { return static_cast<int>(registers_.size()); }

    const std::vector<ArrayInfo>& arrays() const { return arrays_; }
    int numArrays() const { return static_cast<int>(arrays_.size()); }

    /** The operation defining `reg`, or -1 for live-ins. */
    OpId definingOp(RegId reg) const;

    /** Largest operand distance appearing anywhere in the body. */
    int maxDistance() const;

    /** Throw support::Error describing the first structural violation. */
    void validate() const;

    /** Human-readable multi-line listing of the body. */
    std::string toString() const;

    /** Render one operation (with register names). */
    std::string operationToString(const Operation& operation) const;

  private:
    std::string name_;
    std::vector<RegisterInfo> registers_;
    std::vector<ArrayInfo> arrays_;
    std::vector<Operation> operations_;
    std::vector<OpId> defOf_; // per register: defining op or -1
};

} // namespace ims::ir

#endif // IMS_IR_LOOP_HPP
