#ifndef IMS_IR_OPERATION_HPP
#define IMS_IR_OPERATION_HPP

#include <optional>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

namespace ims::ir {

/** Index of a virtual register within its Loop. */
using RegId = int;
/** Index of an operation within its Loop. */
using OpId = int;
/** Index of an array symbol within its Loop. */
using ArrayId = int;

/** Sentinel for "no register". */
inline constexpr RegId kNoReg = -1;

/**
 * A source operand: either a virtual-register read or an immediate.
 *
 * Register reads carry an iteration `distance`: the loop body is in dynamic
 * single assignment (EVR) form (§2.2 of the paper), so `reg` with
 * `distance == d` denotes the value written to that register d iterations
 * earlier (d == 0 means this iteration). Reads of live-in registers (which
 * have no defining operation) always use distance 0.
 */
struct Operand
{
    enum class Kind { kRegister, kImmediate };

    Kind kind = Kind::kImmediate;
    /** Register read: which register. */
    RegId reg = kNoReg;
    /** Register read: how many iterations back the value was defined. */
    int distance = 0;
    /** Immediate payload. */
    double immediate = 0.0;

    /** Make a register-read operand of the value defined `distance` back. */
    static Operand
    makeReg(RegId reg, int distance = 0)
    {
        Operand operand;
        operand.kind = Kind::kRegister;
        operand.reg = reg;
        operand.distance = distance;
        return operand;
    }

    /** Make an immediate operand. */
    static Operand
    makeImm(double value)
    {
        Operand operand;
        operand.kind = Kind::kImmediate;
        operand.immediate = value;
        return operand;
    }

    bool isRegister() const { return kind == Kind::kRegister; }
};

/**
 * Memory reference metadata carried by load/store operations.
 *
 * Accesses are to `array[stride * i + offset]` where i is the loop's
 * canonical iteration number. The dependence-graph builder derives memory
 * dependence distances from the affine access functions of accesses to the
 * same array (e.g. a store to a[i] and a load of a[i-1] form a flow
 * dependence of distance 1), and the simulator uses the same metadata to
 * execute the access. Strides other than 1 appear in unrolled loop bodies.
 */
struct MemRef
{
    ArrayId array = -1;
    /** Element index relative to the iteration counter. */
    int offset = 0;
    /** Elements advanced per iteration (>= 1). */
    int stride = 1;
};

/**
 * One operation of the loop body.
 *
 * Operations are stored by value inside a Loop; `id` is the operation's
 * index there. A negative-kNoReg `dest` means the op produces no register
 * result (stores, branches).
 */
struct Operation
{
    OpId id = -1;
    Opcode opcode = Opcode::kAdd;
    /** Result register, or kNoReg. */
    RegId dest = kNoReg;
    /** Source operands, length matching sourceCount(opcode). */
    std::vector<Operand> sources;
    /**
     * Optional guard predicate (IF-converted code): the op only takes
     * effect when the predicate value, read at the given distance, is true.
     */
    std::optional<Operand> guard;
    /** Memory reference for load/store. */
    std::optional<MemRef> memRef;
    /** Free-form annotation used when printing. */
    std::string comment;

    bool isLoad() const { return opcode == Opcode::kLoad; }
    bool isStore() const { return opcode == Opcode::kStore; }
    bool isBranch() const { return opcode == Opcode::kBranch; }
    bool hasDest() const { return dest != kNoReg; }
};

} // namespace ims::ir

#endif // IMS_IR_OPERATION_HPP
