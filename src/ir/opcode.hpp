#ifndef IMS_IR_OPCODE_HPP
#define IMS_IR_OPCODE_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace ims::ir {

/**
 * Operation repertoire of the loop IR.
 *
 * The set mirrors the operation classes of the paper's Table 2 machine
 * model (memory ports, address ALUs, adder, multiplier, instruction unit)
 * plus the pseudo-operations START/STOP that iterative modulo scheduling
 * adds to the dependence graph (§3.1), and a few generic data ops (copy,
 * select, compare) that IF-converted loop bodies need.
 */
enum class Opcode : std::uint8_t
{
    // Memory-port operations.
    kLoad,      ///< Load from an array element.
    kStore,     ///< Store to an array element.
    kPredSet,   ///< Compare-and-set-predicate (IF-conversion guard def).
    kPredClear, ///< Clear a predicate.

    // Address ALU operations.
    kAddrAdd, ///< Address/integer add on the address ALU.
    kAddrSub, ///< Address/integer subtract on the address ALU.

    // Adder (integer/floating-point ALU) operations.
    kAdd,    ///< Add.
    kSub,    ///< Subtract.
    kMin,    ///< Minimum.
    kMax,    ///< Maximum.
    kAbs,    ///< Absolute value.
    kCmpGt,  ///< Compare greater-than (data result 0/1).
    kSelect, ///< Select(pred_value, a, b) merge after IF-conversion.
    kCopy,   ///< Register move.

    // Multiplier pipeline operations.
    kMul,  ///< Multiply.
    kDiv,  ///< Divide.
    kSqrt, ///< Square root.

    // Instruction-unit operations.
    kBranch, ///< Loop-closing branch (BRTOP-style).
    kExitIf, ///< Early exit: leaves the loop when its operand is > 0
             ///< (WHILE-loops / loops with early exits, §5).

    // Scheduling pseudo-operations (never appear in loop bodies).
    kStart, ///< Predecessor of every operation in the dependence graph.
    kStop,  ///< Successor of every operation in the dependence graph.
};

/** Number of real (non-pseudo) opcodes; pseudo ops sort after these. */
inline constexpr int kNumRealOpcodes = static_cast<int>(Opcode::kExitIf) + 1;

/** Total number of opcodes including the pseudo-operations. */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kStop) + 1;

/** Mnemonic for an opcode (e.g. "load", "addradd"). */
std::string opcodeName(Opcode opcode);

/** Inverse of opcodeName; empty if the mnemonic is unknown. */
std::optional<Opcode> opcodeFromName(const std::string& name);

/** True for kStart/kStop. */
bool isPseudo(Opcode opcode);

/** True for kLoad/kStore: operations that carry a memory reference. */
bool accessesMemory(Opcode opcode);

/** True if the opcode writes a result register. */
bool definesRegister(Opcode opcode);

/** True if the opcode's result is a predicate register. */
bool definesPredicate(Opcode opcode);

/** Number of register/immediate source operands the opcode expects. */
int sourceCount(Opcode opcode);

} // namespace ims::ir

#endif // IMS_IR_OPCODE_HPP
