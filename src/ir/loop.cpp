#include "ir/loop.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "support/error.hpp"

namespace ims::ir {

RegId
Loop::addRegister(RegisterInfo info)
{
    registers_.push_back(std::move(info));
    defOf_.push_back(-1);
    return static_cast<RegId>(registers_.size()) - 1;
}

ArrayId
Loop::addArray(ArrayInfo info)
{
    arrays_.push_back(std::move(info));
    return static_cast<ArrayId>(arrays_.size()) - 1;
}

OpId
Loop::addOperation(Operation operation)
{
    operation.id = static_cast<OpId>(operations_.size());
    if (operation.hasDest()) {
        assert(operation.dest >= 0 && operation.dest < numRegisters());
        support::check(defOf_[operation.dest] < 0,
                       "register '" + registers_[operation.dest].name +
                           "' defined more than once (loop is in single "
                           "assignment form)");
        defOf_[operation.dest] = operation.id;
    }
    operations_.push_back(std::move(operation));
    return operations_.back().id;
}

OpId
Loop::definingOp(RegId reg) const
{
    assert(reg >= 0 && reg < numRegisters());
    return defOf_[reg];
}

int
Loop::maxDistance() const
{
    int max_distance = 0;
    for (const auto& op : operations_) {
        for (const auto& src : op.sources) {
            if (src.isRegister())
                max_distance = std::max(max_distance, src.distance);
        }
        if (op.guard && op.guard->isRegister())
            max_distance = std::max(max_distance, op.guard->distance);
    }
    return max_distance;
}

void
Loop::validate() const
{
    auto check_operand = [this](const Operation& op, const Operand& src,
                                const char* what) {
        if (!src.isRegister())
            return;
        support::check(src.reg >= 0 && src.reg < numRegisters(),
                       "operation " + std::to_string(op.id) +
                           " reads undeclared register");
        support::check(src.distance >= 0,
                       "negative operand distance on op " +
                           std::to_string(op.id));
        const RegisterInfo& info = registers_[src.reg];
        if (src.distance == 0 && !info.isLiveIn) {
            support::check(defOf_[src.reg] >= 0,
                           std::string(what) + " of op " +
                               std::to_string(op.id) + " reads register '" +
                               info.name + "' which is never defined");
        }
        if (src.distance > 0) {
            // Cross-iteration reads need a live-in seed: at iteration
            // i < distance the value read predates the loop.
            support::check(info.isLiveIn,
                           "cross-iteration read of register '" + info.name +
                               "' which has no pre-loop seed; declare it "
                               "live-in (recurrence)");
        }
    };

    for (const auto& op : operations_) {
        support::check(!isPseudo(op.opcode),
                       "pseudo opcodes may not appear in loop bodies");
        support::check(static_cast<int>(op.sources.size()) ==
                           sourceCount(op.opcode),
                       "operation " + std::to_string(op.id) + " (" +
                           opcodeName(op.opcode) + ") has " +
                           std::to_string(op.sources.size()) +
                           " operands, expected " +
                           std::to_string(sourceCount(op.opcode)));
        support::check(definesRegister(op.opcode) == op.hasDest(),
                       "operation " + std::to_string(op.id) +
                           " dest does not match opcode");
        if (op.hasDest()) {
            const bool pred_dest = registers_[op.dest].isPredicate;
            support::check(pred_dest == definesPredicate(op.opcode),
                           "operation " + std::to_string(op.id) +
                               " result register class mismatch");
        }
        support::check(accessesMemory(op.opcode) == op.memRef.has_value(),
                       "operation " + std::to_string(op.id) +
                           " memory reference mismatch");
        if (op.memRef) {
            support::check(op.memRef->array >= 0 &&
                               op.memRef->array < numArrays(),
                           "operation " + std::to_string(op.id) +
                               " references undeclared array");
            support::check(op.memRef->stride >= 1,
                           "operation " + std::to_string(op.id) +
                               " has a non-positive memory stride");
        }
        for (const auto& src : op.sources)
            check_operand(op, src, "operand");
        if (op.guard) {
            support::check(op.guard->isRegister(),
                           "guard of op " + std::to_string(op.id) +
                               " must be a predicate register");
            check_operand(op, *op.guard, "guard");
            support::check(registers_[op.guard->reg].isPredicate,
                           "guard of op " + std::to_string(op.id) +
                               " is not a predicate register");
        }
    }
}

std::string
Loop::operationToString(const Operation& operation) const
{
    std::ostringstream out;
    auto operand_str = [this](const Operand& src) {
        if (!src.isRegister()) {
            std::ostringstream imm;
            imm << "#" << src.immediate;
            return imm.str();
        }
        std::string text = registers_[src.reg].name;
        if (src.distance > 0)
            text += "[" + std::to_string(src.distance) + "]";
        return text;
    };

    if (operation.hasDest())
        out << registers_[operation.dest].name << " = ";
    out << opcodeName(operation.opcode);
    for (std::size_t i = 0; i < operation.sources.size(); ++i)
        out << (i == 0 ? " " : ", ") << operand_str(operation.sources[i]);
    if (operation.memRef) {
        out << " @ " << arrays_[operation.memRef->array].name << "[";
        if (operation.memRef->stride != 1)
            out << operation.memRef->stride << "*";
        out << "i" << (operation.memRef->offset >= 0 ? "+" : "")
            << operation.memRef->offset << "]";
    }
    if (operation.guard)
        out << " if " << operand_str(*operation.guard);
    if (!operation.comment.empty())
        out << "  ; " << operation.comment;
    return out.str();
}

std::string
Loop::toString() const
{
    std::ostringstream out;
    out << "loop " << name_ << " (" << size() << " ops)\n";
    for (const auto& op : operations_)
        out << "  [" << op.id << "] " << operationToString(op) << "\n";
    return out.str();
}

} // namespace ims::ir
