#ifndef IMS_IR_LOOP_BUILDER_HPP
#define IMS_IR_LOOP_BUILDER_HPP

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "ir/loop.hpp"

namespace ims::ir {

/**
 * Convenience builder for Loop bodies.
 *
 * Registers and arrays are created on first mention by name; `reg("x")`
 * returns an operand reading x from this iteration and `reg("x", 1)` from
 * the previous one. The finished loop is validated before being returned.
 *
 * Example (daxpy-like body):
 * @code
 *   LoopBuilder b("daxpy");
 *   b.liveIn("a");
 *   b.recurrence("ax");  // address live-in updated every iteration
 *   b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 1), b.imm(8)});
 *   b.load("xv", "X", 0, b.reg("ax"));
 *   ...
 *   Loop loop = b.build();
 * @endcode
 */
class LoopBuilder
{
  public:
    explicit LoopBuilder(std::string name);

    /** Declare a live-in (loop-invariant or recurrence seed) register. */
    LoopBuilder& liveIn(const std::string& name, bool predicate = false);

    /**
     * Declare a register that is read at distance >= 1 before being defined
     * in program order (a recurrence); identical to liveIn and provided
     * only for readability at call sites.
     */
    LoopBuilder& recurrence(const std::string& name);

    /** Operand reading register `name` from `distance` iterations back. */
    Operand reg(const std::string& name, int distance = 0);

    /** Immediate operand. */
    Operand imm(double value);

    /**
     * Append a generic operation. `dest` may be "" for result-less opcodes.
     * Returns the operation id.
     */
    OpId op(Opcode opcode, const std::string& dest,
            std::vector<Operand> sources, const std::string& comment = "");

    /** Append a guarded operation (IF-converted). */
    OpId opIf(Opcode opcode, const std::string& dest,
              std::vector<Operand> sources, const Operand& guard,
              const std::string& comment = "");

    /**
     * Append a load of array[stride*i + offset] with the given address
     * operand.
     */
    OpId load(const std::string& dest, const std::string& array, int offset,
              const Operand& address, const std::string& comment = "",
              int stride = 1);

    /** Append a store of `value` to array[stride*i + offset]. */
    OpId store(const std::string& array, int offset, const Operand& address,
               const Operand& value, const std::string& comment = "",
               int stride = 1);

    /** Guarded variants of load/store. */
    OpId loadIf(const std::string& dest, const std::string& array, int offset,
                const Operand& address, const Operand& guard,
                int stride = 1);
    OpId storeIf(const std::string& array, int offset, const Operand& address,
                 const Operand& value, const Operand& guard,
                 int stride = 1);

    /**
     * Append an early-exit operation: the loop leaves after this point of
     * iteration i when `condition` > 0 (WHILE-loops / early exits, §5).
     */
    OpId exitIf(const Operand& condition, const std::string& comment = "");

    /**
     * Append the canonical loop-control tail: the trip-count decrement
     * `n = asub n[1] - 1` and the loop-closing branch reading n. Most
     * kernels call this last. `counter` must be declared live-in first
     * (done automatically).
     */
    void closeLoop(const std::string& counter = "n");

    /**
     * Back-substituted variant of closeLoop (the form the paper's input
     * comes in after "recurrence back-substitution", §4.1): the decrement
     * reads the counter from `factor` iterations back and subtracts
     * `factor`, so the recurrence constrains the II by only
     * ceil(latency / factor) instead of the full address-ALU latency.
     */
    void closeLoopBackSubstituted(const std::string& counter = "n",
                                  int factor = 3);

    /** Finalize: validate and return the loop (builder becomes empty). */
    Loop build();

  private:
    RegId ensureRegister(const std::string& name, bool predicate,
                         bool live_in);
    ArrayId ensureArray(const std::string& name);
    /** Attach a pending guard-aware operation. */
    OpId append(Operation operation);

    Loop loop_;
    std::map<std::string, RegId> regByName_;
    std::map<std::string, ArrayId> arrayByName_;
};

} // namespace ims::ir

#endif // IMS_IR_LOOP_BUILDER_HPP
