#ifndef IMS_IR_PRINTER_HPP
#define IMS_IR_PRINTER_HPP

#include <string>

#include "ir/loop.hpp"

namespace ims::ir {

/**
 * Render `loop` in the textual mini-IR format accepted by parseLoop
 * (the inverse of the parser; see parser.hpp for the grammar).
 *
 * The output is canonical and deterministic: declarations come first
 * (live-ins, predicates and recurrences in register-id order, arrays in
 * array-id order), operations follow in body order, and immediates are
 * printed with enough digits to round-trip IEEE doubles exactly. For every
 * valid loop, `parseLoop(printLoop(loop))` is semantically identical to
 * `loop` (same operations, operands, guards and memory references under
 * name-based register/array matching; see equivalentLoops). This is what
 * fuzz reproducer emission and the repro replay path rely on.
 */
std::string printLoop(const Loop& loop);

/**
 * Semantic equality of two loops under name-based symbol matching: same
 * operation sequence (opcode, destination name, operand values/distances,
 * guard, memory reference incl. array name, offset and stride) and the
 * same register declarations (live-in/predicate flags of referenced
 * registers). Array/register *ids* may differ; unreferenced symbols are
 * ignored. Used by the round-trip property tests.
 */
bool equivalentLoops(const Loop& a, const Loop& b);

} // namespace ims::ir

#endif // IMS_IR_PRINTER_HPP
