#include "ir/opcode.hpp"

#include <array>
#include <cassert>
#include <utility>

namespace ims::ir {

namespace {

struct OpcodeDescriptor
{
    Opcode opcode;
    const char* name;
    int sources;
    bool definesReg;
    bool definesPred;
    bool memory;
    bool pseudo;
};

constexpr std::array<OpcodeDescriptor, 21> kDescriptors = {{
    {Opcode::kLoad, "load", 1, true, false, true, false},
    {Opcode::kStore, "store", 2, false, false, true, false},
    {Opcode::kPredSet, "predset", 2, true, true, false, false},
    {Opcode::kPredClear, "predclear", 0, true, true, false, false},
    {Opcode::kAddrAdd, "aadd", 2, true, false, false, false},
    {Opcode::kAddrSub, "asub", 2, true, false, false, false},
    {Opcode::kAdd, "add", 2, true, false, false, false},
    {Opcode::kSub, "sub", 2, true, false, false, false},
    {Opcode::kMin, "min", 2, true, false, false, false},
    {Opcode::kMax, "max", 2, true, false, false, false},
    {Opcode::kAbs, "abs", 1, true, false, false, false},
    {Opcode::kCmpGt, "cmpgt", 2, true, false, false, false},
    {Opcode::kSelect, "select", 3, true, false, false, false},
    {Opcode::kCopy, "copy", 1, true, false, false, false},
    {Opcode::kMul, "mul", 2, true, false, false, false},
    {Opcode::kDiv, "div", 2, true, false, false, false},
    {Opcode::kSqrt, "sqrt", 1, true, false, false, false},
    {Opcode::kBranch, "branch", 1, false, false, false, false},
    {Opcode::kExitIf, "exitif", 1, false, false, false, false},
    {Opcode::kStart, "start", 0, false, false, false, true},
    {Opcode::kStop, "stop", 0, false, false, false, true},
}};

const OpcodeDescriptor&
descriptor(Opcode opcode)
{
    for (const auto& d : kDescriptors) {
        if (d.opcode == opcode)
            return d;
    }
    assert(false && "unknown opcode");
    return kDescriptors.back();
}

} // namespace

std::string
opcodeName(Opcode opcode)
{
    return descriptor(opcode).name;
}

std::optional<Opcode>
opcodeFromName(const std::string& name)
{
    for (const auto& d : kDescriptors) {
        if (name == d.name)
            return d.opcode;
    }
    return std::nullopt;
}

bool
isPseudo(Opcode opcode)
{
    return descriptor(opcode).pseudo;
}

bool
accessesMemory(Opcode opcode)
{
    return descriptor(opcode).memory;
}

bool
definesRegister(Opcode opcode)
{
    return descriptor(opcode).definesReg;
}

bool
definesPredicate(Opcode opcode)
{
    return descriptor(opcode).definesPred;
}

int
sourceCount(Opcode opcode)
{
    return descriptor(opcode).sources;
}

} // namespace ims::ir
