#include "ir/loop_builder.hpp"

#include <cassert>
#include <utility>

#include "support/error.hpp"

namespace ims::ir {

LoopBuilder::LoopBuilder(std::string name) : loop_(std::move(name)) {}

RegId
LoopBuilder::ensureRegister(const std::string& name, bool predicate,
                            bool live_in)
{
    auto it = regByName_.find(name);
    if (it != regByName_.end())
        return it->second;
    RegisterInfo info;
    info.name = name;
    info.isPredicate = predicate;
    info.isLiveIn = live_in;
    const RegId id = loop_.addRegister(std::move(info));
    regByName_.emplace(name, id);
    return id;
}

ArrayId
LoopBuilder::ensureArray(const std::string& name)
{
    auto it = arrayByName_.find(name);
    if (it != arrayByName_.end())
        return it->second;
    const ArrayId id = loop_.addArray(ArrayInfo{name});
    arrayByName_.emplace(name, id);
    return id;
}

LoopBuilder&
LoopBuilder::liveIn(const std::string& name, bool predicate)
{
    ensureRegister(name, predicate, true);
    return *this;
}

LoopBuilder&
LoopBuilder::recurrence(const std::string& name)
{
    return liveIn(name, false);
}

Operand
LoopBuilder::reg(const std::string& name, int distance)
{
    auto it = regByName_.find(name);
    support::check(it != regByName_.end(),
                   "operand register '" + name +
                       "' read before any definition; declare it with "
                       "liveIn()/recurrence() or define it first");
    return Operand::makeReg(it->second, distance);
}

Operand
LoopBuilder::imm(double value)
{
    return Operand::makeImm(value);
}

OpId
LoopBuilder::append(Operation operation)
{
    return loop_.addOperation(std::move(operation));
}

OpId
LoopBuilder::op(Opcode opcode, const std::string& dest,
                std::vector<Operand> sources, const std::string& comment)
{
    Operation operation;
    operation.opcode = opcode;
    operation.sources = std::move(sources);
    operation.comment = comment;
    if (!dest.empty()) {
        operation.dest =
            ensureRegister(dest, definesPredicate(opcode), false);
    }
    return append(std::move(operation));
}

OpId
LoopBuilder::opIf(Opcode opcode, const std::string& dest,
                  std::vector<Operand> sources, const Operand& guard,
                  const std::string& comment)
{
    Operation operation;
    operation.opcode = opcode;
    operation.sources = std::move(sources);
    operation.guard = guard;
    operation.comment = comment;
    if (!dest.empty()) {
        operation.dest =
            ensureRegister(dest, definesPredicate(opcode), false);
    }
    return append(std::move(operation));
}

OpId
LoopBuilder::load(const std::string& dest, const std::string& array,
                  int offset, const Operand& address,
                  const std::string& comment, int stride)
{
    Operation operation;
    operation.opcode = Opcode::kLoad;
    operation.dest = ensureRegister(dest, false, false);
    operation.sources = {address};
    operation.memRef = MemRef{ensureArray(array), offset, stride};
    operation.comment = comment;
    return append(std::move(operation));
}

OpId
LoopBuilder::store(const std::string& array, int offset,
                   const Operand& address, const Operand& value,
                   const std::string& comment, int stride)
{
    Operation operation;
    operation.opcode = Opcode::kStore;
    operation.sources = {address, value};
    operation.memRef = MemRef{ensureArray(array), offset, stride};
    operation.comment = comment;
    return append(std::move(operation));
}

OpId
LoopBuilder::loadIf(const std::string& dest, const std::string& array,
                    int offset, const Operand& address, const Operand& guard,
                    int stride)
{
    Operation operation;
    operation.opcode = Opcode::kLoad;
    operation.dest = ensureRegister(dest, false, false);
    operation.sources = {address};
    operation.memRef = MemRef{ensureArray(array), offset, stride};
    operation.guard = guard;
    return append(std::move(operation));
}

OpId
LoopBuilder::storeIf(const std::string& array, int offset,
                     const Operand& address, const Operand& value,
                     const Operand& guard, int stride)
{
    Operation operation;
    operation.opcode = Opcode::kStore;
    operation.sources = {address, value};
    operation.memRef = MemRef{ensureArray(array), offset, stride};
    operation.guard = guard;
    return append(std::move(operation));
}

OpId
LoopBuilder::exitIf(const Operand& condition, const std::string& comment)
{
    Operation operation;
    operation.opcode = Opcode::kExitIf;
    operation.sources = {condition};
    operation.comment = comment;
    return append(std::move(operation));
}

void
LoopBuilder::closeLoop(const std::string& counter)
{
    liveIn(counter);
    op(Opcode::kAddrSub, counter, {reg(counter, 1), imm(1)},
       "trip count decrement");
    Operation branch;
    branch.opcode = Opcode::kBranch;
    branch.sources = {reg(counter)};
    branch.comment = "loop-closing branch";
    append(std::move(branch));
}

void
LoopBuilder::closeLoopBackSubstituted(const std::string& counter, int factor)
{
    liveIn(counter);
    op(Opcode::kAddrSub, counter,
       {reg(counter, factor), imm(static_cast<double>(factor))},
       "trip count decrement (back-substituted)");
    Operation branch;
    branch.opcode = Opcode::kBranch;
    branch.sources = {reg(counter)};
    branch.comment = "loop-closing branch";
    append(std::move(branch));
}

Loop
LoopBuilder::build()
{
    loop_.validate();
    return std::move(loop_);
}

} // namespace ims::ir
