#ifndef IMS_IR_PARSER_HPP
#define IMS_IR_PARSER_HPP

#include <string>

#include "ir/loop.hpp"

namespace ims::ir {

/**
 * Parse the textual mini-IR format into a Loop.
 *
 * Grammar (line oriented; ';' starts a comment; blank lines ignored):
 *
 *   loop <name>                      -- required first directive
 *   array <name>                     -- declare an array symbol
 *   livein <name>                    -- declare a live-in register
 *   predicate <name>                 -- declare a live-in predicate register
 *   recurrence <name>                -- live-in register also defined below
 *   <dest> = <opcode> <operands>     -- operation with a result
 *   _ = <opcode> <operands>          -- operation without a result
 *
 * where <operands> is a comma-separated list of
 *   <reg>              read this iteration's value
 *   <reg>[d]           read the value defined d iterations earlier
 *   #<number>          immediate
 * optionally followed by
 *   @ <array> <offset> [stride]   memory reference (loads/stores);
 *                                 stride defaults to 1
 *   if <reg>[d]?                  guard predicate
 *
 * Example:
 * @code
 *   loop daxpy
 *   array X
 *   array Y
 *   livein a
 *   recurrence ax
 *   ax = aadd ax[1], #8
 *   xv = load ax @ X 0
 *   yv = load ax @ Y 0
 *   t  = mul a, xv
 *   s  = add t, yv
 *   _  = store ax, s @ Y 0
 *   recurrence n      ; declarations may appear anywhere before first use
 *   n  = asub n[1], #1
 *   _  = branch n
 * @endcode
 *
 * @throws support::Error with a line number on any syntax or semantic
 *         violation.
 */
Loop parseLoop(const std::string& text);

} // namespace ims::ir

#endif // IMS_IR_PARSER_HPP
