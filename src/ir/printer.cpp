#include "ir/printer.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ims::ir {

namespace {

/**
 * Shortest decimal form that round-trips the double through parsing.
 *
 * Printing must be a pure function of the value with exactly one spelling
 * per value — the content-addressed schedule cache keys on this text, so
 * print(parse(print(x))) == print(x) byte-for-byte is load-bearing. NaN
 * collapses to "nan" regardless of sign bit or payload (printf would emit
 * "-nan" for negative NaNs on glibc), infinities to "inf"/"-inf", and the
 * signbit check keeps "-0" distinct from "0" (the == comparison alone
 * treats them as equal).
 */
std::string
formatImmediate(double value)
{
    if (std::isnan(value))
        return "nan";
    if (std::isinf(value))
        return std::signbit(value) ? "-inf" : "inf";
    char buffer[64];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        double reparsed = 0.0;
        std::sscanf(buffer, "%lf", &reparsed);
        if (reparsed == value &&
            std::signbit(reparsed) == std::signbit(value))
            break;
    }
    return buffer;
}

std::string
operandText(const Loop& loop, const Operand& operand)
{
    if (!operand.isRegister())
        return "#" + formatImmediate(operand.immediate);
    std::string text = loop.reg(operand.reg).name;
    if (operand.distance > 0)
        text += "[" + std::to_string(operand.distance) + "]";
    return text;
}

} // namespace

std::string
printLoop(const Loop& loop)
{
    std::ostringstream out;
    out << "loop " << loop.name() << "\n";

    // Declarations: only live-in registers need declaring (the parser
    // creates plain registers and arrays on first mention). "recurrence"
    // and "livein" are synonyms; use the former when the register is also
    // defined in the body, matching hand-written kernels.
    for (RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        const RegisterInfo& info = loop.reg(reg);
        if (!info.isLiveIn)
            continue;
        if (info.isPredicate)
            out << "predicate " << info.name << "\n";
        else if (loop.definingOp(reg) >= 0)
            out << "recurrence " << info.name << "\n";
        else
            out << "livein " << info.name << "\n";
    }

    for (const Operation& op : loop.operations()) {
        out << (op.hasDest() ? loop.reg(op.dest).name : std::string("_"))
            << " = " << opcodeName(op.opcode);
        for (std::size_t i = 0; i < op.sources.size(); ++i) {
            out << (i == 0 ? " " : ", ")
                << operandText(loop, op.sources[i]);
        }
        if (op.memRef) {
            out << " @ " << loop.arrays()[op.memRef->array].name << " "
                << op.memRef->offset;
            if (op.memRef->stride != 1)
                out << " " << op.memRef->stride;
        }
        if (op.guard)
            out << " if " << operandText(loop, *op.guard);
        out << "\n";
    }
    return out.str();
}

bool
equivalentLoops(const Loop& a, const Loop& b)
{
    if (a.size() != b.size())
        return false;

    auto same_operand = [&](const Operand& x, const Operand& y) {
        if (x.kind != y.kind)
            return false;
        if (!x.isRegister()) {
            return x.immediate == y.immediate ||
                   (std::isnan(x.immediate) && std::isnan(y.immediate));
        }
        const RegisterInfo& rx = a.reg(x.reg);
        const RegisterInfo& ry = b.reg(y.reg);
        return x.distance == y.distance && rx.name == ry.name &&
               rx.isPredicate == ry.isPredicate &&
               rx.isLiveIn == ry.isLiveIn;
    };

    for (OpId id = 0; id < a.size(); ++id) {
        const Operation& x = a.operation(id);
        const Operation& y = b.operation(id);
        if (x.opcode != y.opcode || x.hasDest() != y.hasDest())
            return false;
        if (x.hasDest() &&
            (a.reg(x.dest).name != b.reg(y.dest).name ||
             a.reg(x.dest).isPredicate != b.reg(y.dest).isPredicate))
            return false;
        if (x.sources.size() != y.sources.size())
            return false;
        for (std::size_t k = 0; k < x.sources.size(); ++k) {
            if (!same_operand(x.sources[k], y.sources[k]))
                return false;
        }
        if (x.guard.has_value() != y.guard.has_value())
            return false;
        if (x.guard && !same_operand(*x.guard, *y.guard))
            return false;
        if (x.memRef.has_value() != y.memRef.has_value())
            return false;
        if (x.memRef) {
            if (a.arrays()[x.memRef->array].name !=
                    b.arrays()[y.memRef->array].name ||
                x.memRef->offset != y.memRef->offset ||
                x.memRef->stride != y.memRef->stride)
                return false;
        }
    }
    return true;
}

} // namespace ims::ir
