#include "ir/parser.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <vector>

#include "ir/loop_builder.hpp"
#include "support/error.hpp"

namespace ims::ir {

namespace {

/** Strip leading/trailing whitespace and trailing ';' comment. */
std::string
cleanLine(std::string line)
{
    // ';' starts a comment ('#' cannot: it introduces immediates).
    const auto semi = line.find(';');
    if (semi != std::string::npos)
        line.erase(semi);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
}

std::vector<std::string>
splitWords(const std::string& text)
{
    std::vector<std::string> words;
    std::istringstream in(text);
    std::string word;
    while (in >> word)
        words.push_back(word);
    return words;
}

[[noreturn]] void
fail(int line_no, const std::string& message)
{
    throw support::Error("line " + std::to_string(line_no) + ": " + message);
}

/** Parse "name" or "name[d]" into (name, distance). */
std::pair<std::string, int>
parseRegRef(const std::string& token, int line_no)
{
    const auto bracket = token.find('[');
    if (bracket == std::string::npos)
        return {token, 0};
    if (token.back() != ']')
        fail(line_no, "malformed register reference '" + token + "'");
    const std::string name = token.substr(0, bracket);
    const std::string dist =
        token.substr(bracket + 1, token.size() - bracket - 2);
    try {
        return {name, std::stoi(dist)};
    } catch (const std::exception&) {
        fail(line_no, "bad distance in '" + token + "'");
    }
}

} // namespace

Loop
parseLoop(const std::string& text)
{
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    std::optional<LoopBuilder> builder;

    while (std::getline(in, raw)) {
        ++line_no;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        auto words = splitWords(line);
        if (!builder) {
            if (words.size() != 2 || words[0] != "loop")
                fail(line_no, "expected 'loop <name>' as first directive");
            builder.emplace(words[1]);
            continue;
        }

        if (words[0] == "array") {
            if (words.size() != 2)
                fail(line_no, "expected 'array <name>'");
            // Arrays are created lazily on first reference; a declaration
            // without any reference is accepted by touching the symbol via
            // a throwaway reference path below. Declarations are optional.
            continue;
        }
        if (words[0] == "livein" || words[0] == "recurrence" ||
            words[0] == "predicate") {
            if (words.size() != 2)
                fail(line_no, "expected '" + words[0] + " <name>'");
            builder->liveIn(words[1], words[0] == "predicate");
            continue;
        }

        // Operation line: <dest> = <opcode> operands...
        if (words.size() < 3 || words[1] != "=")
            fail(line_no, "expected '<dest> = <opcode> ...'");
        const std::string dest = words[0] == "_" ? "" : words[0];
        const auto opcode = opcodeFromName(words[2]);
        if (!opcode)
            fail(line_no, "unknown opcode '" + words[2] + "'");

        // Re-join the operand tail and split on commas / keywords.
        std::string tail;
        for (std::size_t i = 3; i < words.size(); ++i)
            tail += (i > 3 ? " " : "") + words[i];

        // Extract "if <reg>" guard.
        std::optional<Operand> guard;
        const auto if_pos = tail.find(" if ");
        std::string guard_text;
        if (if_pos != std::string::npos) {
            guard_text = cleanLine(tail.substr(if_pos + 4));
            tail = cleanLine(tail.substr(0, if_pos));
        } else if (tail.rfind("if ", 0) == 0) {
            guard_text = cleanLine(tail.substr(3));
            tail.clear();
        }

        // Extract "@ <array> <offset> [stride]" memory reference.
        struct MemSpec
        {
            std::string array;
            int offset;
            int stride;
        };
        std::optional<MemSpec> mem;
        const auto at_pos = tail.find('@');
        if (at_pos != std::string::npos) {
            auto mem_words = splitWords(tail.substr(at_pos + 1));
            if (mem_words.size() != 2 && mem_words.size() != 3)
                fail(line_no, "expected '@ <array> <offset> [stride]'");
            try {
                mem = MemSpec{mem_words[0], std::stoi(mem_words[1]),
                              mem_words.size() == 3
                                  ? std::stoi(mem_words[2])
                                  : 1};
            } catch (const std::exception&) {
                fail(line_no, "bad memory offset/stride");
            }
            tail = cleanLine(tail.substr(0, at_pos));
        }

        // Parse comma-separated operands.
        std::vector<Operand> operands;
        std::string token;
        std::istringstream operand_in(tail);
        while (std::getline(operand_in, token, ',')) {
            token = cleanLine(token);
            if (token.empty())
                continue;
            if (token[0] == '#') {
                // strtod instead of std::stod: stod throws out_of_range
                // for denormals (e.g. "5e-324"), which the printer emits
                // for subnormal immediates; strtod returns the rounded
                // value, keeping print -> parse lossless.
                const std::string literal = token.substr(1);
                char* end = nullptr;
                const double value = std::strtod(literal.c_str(), &end);
                if (end == literal.c_str() || *end != '\0')
                    fail(line_no, "bad immediate '" + token + "'");
                operands.push_back(Operand::makeImm(value));
            } else {
                auto [name, distance] = parseRegRef(token, line_no);
                try {
                    operands.push_back(builder->reg(name, distance));
                } catch (const support::Error& e) {
                    fail(line_no, e.what());
                }
            }
        }

        if (!guard_text.empty()) {
            auto [name, distance] = parseRegRef(guard_text, line_no);
            try {
                guard = builder->reg(name, distance);
            } catch (const support::Error& e) {
                fail(line_no, e.what());
            }
        }

        try {
            if (*opcode == Opcode::kLoad) {
                if (!mem)
                    fail(line_no, "load requires '@ <array> <offset>'");
                if (operands.size() != 1)
                    fail(line_no, "load takes one address operand");
                if (guard) {
                    builder->loadIf(dest, mem->array, mem->offset,
                                    operands[0], *guard, mem->stride);
                } else {
                    builder->load(dest, mem->array, mem->offset,
                                  operands[0], "", mem->stride);
                }
            } else if (*opcode == Opcode::kStore) {
                if (!mem)
                    fail(line_no, "store requires '@ <array> <offset>'");
                if (operands.size() != 2)
                    fail(line_no, "store takes address and value operands");
                if (guard) {
                    builder->storeIf(mem->array, mem->offset, operands[0],
                                     operands[1], *guard, mem->stride);
                } else {
                    builder->store(mem->array, mem->offset, operands[0],
                                   operands[1], "", mem->stride);
                }
            } else if (guard) {
                builder->opIf(*opcode, dest, std::move(operands), *guard);
            } else {
                builder->op(*opcode, dest, std::move(operands));
            }
        } catch (const support::Error& e) {
            fail(line_no, e.what());
        }
    }

    support::check(builder.has_value(), "empty loop text");
    return builder->build();
}

} // namespace ims::ir
