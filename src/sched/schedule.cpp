#include "sched/schedule.hpp"

#include "graph/graph_builder.hpp"
#include "support/error.hpp"

namespace ims::sched {

std::string
schedulerStrategyName(SchedulerStrategy strategy)
{
    switch (strategy) {
      case SchedulerStrategy::kIterative:
        return "iterative";
      case SchedulerStrategy::kSlack:
        return "slack";
      case SchedulerStrategy::kExact:
        return "exact";
    }
    return "?";
}

std::optional<SchedulerStrategy>
schedulerStrategyByName(std::string_view name)
{
    if (name == "iterative")
        return SchedulerStrategy::kIterative;
    if (name == "slack")
        return SchedulerStrategy::kSlack;
    if (name == "exact")
        return SchedulerStrategy::kExact;
    return std::nullopt;
}

ModuloScheduleOutcome
schedule(const ir::Loop& loop, const machine::MachineModel& machine,
         const graph::DepGraph& graph, const graph::SccResult& sccs,
         const ScheduleOptions& options, support::Counters* counters)
{
    support::check(options.search.budgetRatio > 0,
                   "BudgetRatio must be positive");
    support::check(options.trace == nullptr ||
                       (options.search.kind == IiSearchKind::kLinear &&
                        options.strategy == SchedulerStrategy::kIterative),
                   "trace capture requires the iterative backend under the "
                   "linear II search");
    switch (options.strategy) {
      case SchedulerStrategy::kIterative:
        return detail::runIterativeSchedule(loop, machine, graph, sccs,
                                            options, counters);
      case SchedulerStrategy::kSlack:
        return detail::runSlackSchedule(loop, machine, graph, sccs, options,
                                        counters);
      case SchedulerStrategy::kExact:
        return detail::runExactSchedule(loop, machine, graph, sccs, options,
                                        counters);
    }
    throw support::Error("unknown scheduler strategy");
}

ModuloScheduleOutcome
schedule(const ir::Loop& loop, const machine::MachineModel& machine,
         const ScheduleOptions& options, support::Counters* counters)
{
    const graph::DepGraph graph = graph::buildDepGraph(loop, machine);
    const graph::SccResult sccs = graph::findSccs(graph);
    return schedule(loop, machine, graph, sccs, options, counters);
}

} // namespace ims::sched
