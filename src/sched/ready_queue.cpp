#include "sched/ready_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace ims::sched {

ReadyQueue::ReadyQueue(const std::vector<std::int64_t>& priority)
{
    const int n = static_cast<int>(priority.size());
    vertexAt_.resize(n);
    std::iota(vertexAt_.begin(), vertexAt_.end(), 0);
    std::sort(vertexAt_.begin(), vertexAt_.end(),
              [&priority](graph::VertexId a, graph::VertexId b) {
                  if (priority[a] != priority[b])
                      return priority[a] > priority[b];
                  return a < b;
              });
    rankOf_.resize(n);
    for (int rank = 0; rank < n; ++rank)
        rankOf_[vertexAt_[rank]] = rank;

    const int words = (n + 63) / 64;
    bits_.assign(words, ~0ULL);
    if (n % 64 != 0)
        bits_.back() = (1ULL << (n % 64)) - 1;
    summary_.assign((words + 63) / 64, 0);
    for (int w = 0; w < words; ++w) {
        if (bits_[w] != 0)
            summary_[w >> 6] |= 1ULL << (w & 63);
    }
    size_ = n;
}

void
ReadyQueue::push(graph::VertexId v)
{
    const int rank = rankOf_[v];
    const int word = rank >> 6;
    const std::uint64_t bit = 1ULL << (rank & 63);
    if (bits_[word] & bit)
        return;
    bits_[word] |= bit;
    summary_[word >> 6] |= 1ULL << (word & 63);
    ++size_;
}

void
ReadyQueue::erase(graph::VertexId v)
{
    const int rank = rankOf_[v];
    const int word = rank >> 6;
    const std::uint64_t bit = 1ULL << (rank & 63);
    if (!(bits_[word] & bit))
        return;
    bits_[word] &= ~bit;
    if (bits_[word] == 0)
        summary_[word >> 6] &= ~(1ULL << (word & 63));
    --size_;
}

graph::VertexId
ReadyQueue::top() const
{
    assert(size_ > 0 && "top() on an empty ready queue");
    for (std::size_t s = 0; s < summary_.size(); ++s) {
        if (summary_[s] == 0)
            continue;
        const int word = static_cast<int>(s) * 64 +
                         std::countr_zero(summary_[s]);
        const int rank = word * 64 + std::countr_zero(bits_[word]);
        return vertexAt_[rank];
    }
    assert(false && "summary bitmap inconsistent with size");
    return -1;
}

} // namespace ims::sched
