#include "sched/slack_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "sched/partial_schedule.hpp"
#include "sched/schedule.hpp"
#include "support/error.hpp"

namespace ims::sched {

namespace {

constexpr std::int64_t kInf = INT64_MAX / 4;

/** One slack-scheduling attempt at a fixed II. */
class SlackAttempt
{
  public:
    SlackAttempt(const ir::Loop& loop,
                 const machine::MachineModel& machine,
                 const graph::DepGraph& graph, int ii,
                 support::Counters* counters,
                 const support::CancellationToken* cancel)
        : graph_(graph),
          ii_(ii),
          cancel_(cancel),
          dist_(graph, ii, counters),
          schedule_(graph, loop, machine, ii),
          unplaced_(graph.numVertices(), true),
          numUnplaced_(graph.numVertices())
    {
    }

    bool
    run(std::int64_t budget, std::int64_t& steps_used,
        std::int64_t& unschedules)
    {
        if (!schedule_.allVerticesPlaceable()) {
            infeasible_ = true;
            return false;
        }

        const int deadline = static_cast<int>(
            dist_.atVertex(graph_.start(), graph_.stop()));

        place(graph_.start(), 0, 0);
        --budget;
        // Pre-place STOP at the critical-path deadline so every ltime is
        // finite; it is ejected and re-placed if a forced placement
        // pushes past it.
        place(graph_.stop(), deadline, 0);
        --budget;

        while (numUnplaced_ > 0 && budget > 0) {
            // Same cooperative check as the iterative scheduler's budget
            // loop: once a racing search accepts a lower II this
            // attempt's result is dead, stop within one step.
            if (cancel_ != nullptr && cancel_->cancelled(ii_)) {
                cancelled_ = true;
                return false;
            }
            const graph::VertexId op = pickMinSlack();
            const auto [etime, ltime] = window(op);
            const bool early = placeEarly(op);

            int slot = -1;
            int alternative = -1;
            if (etime <= ltime) {
                const std::int64_t lo = etime;
                const std::int64_t hi =
                    std::min<std::int64_t>(ltime, etime + ii_ - 1);
                if (early) {
                    for (std::int64_t t = lo; t <= hi; ++t) {
                        ++slotProbes_;
                        alternative = schedule_.fittingAlternative(
                            op, static_cast<int>(t));
                        if (alternative >= 0) {
                            slot = static_cast<int>(t);
                            break;
                        }
                    }
                } else {
                    const std::int64_t down_lo =
                        std::max<std::int64_t>(lo, ltime - ii_ + 1);
                    for (std::int64_t t = ltime; t >= down_lo; --t) {
                        ++slotProbes_;
                        alternative = schedule_.fittingAlternative(
                            op, static_cast<int>(t));
                        if (alternative >= 0) {
                            slot = static_cast<int>(t);
                            break;
                        }
                    }
                }
            }

            if (slot < 0) {
                // Forced placement with the forward-progress rule.
                if (schedule_.neverScheduled(op) ||
                    etime > schedule_.prevScheduleTime(op)) {
                    slot = static_cast<int>(etime);
                } else {
                    slot = schedule_.prevScheduleTime(op) + 1;
                }
                forceEject(op, slot, unschedules);
                alternative = schedule_.fittingAlternative(op, slot);
                assert(alternative >= 0);
            }

            place(op, slot, alternative);
            ejectDependenceViolations(op, slot, unschedules);
            --budget;
            ++steps_used;
            ++scheduleSteps_;
        }
        return numUnplaced_ == 0;
    }

    const PartialSchedule& schedule() const { return schedule_; }

    bool cancelled() const { return cancelled_; }

    /** True when this II is proven impossible (modulo self-collision). */
    bool provenInfeasible() const { return infeasible_; }

    /** Batched counter deltas, flushed once per attempt by the driver. */
    std::uint64_t estartVisits() const { return estartVisits_; }
    std::uint64_t slotProbes() const { return slotProbes_; }
    std::uint64_t scheduleSteps() const { return scheduleSteps_; }
    std::uint64_t unscheduleSteps() const { return unscheduleSteps_; }

  private:
    /** Dynamic (etime, ltime) window against the placed operations. */
    std::pair<std::int64_t, std::int64_t>
    window(graph::VertexId op) const
    {
        std::int64_t etime = 0;
        std::int64_t ltime = kInf;
        for (graph::VertexId v = 0; v < graph_.numVertices(); ++v) {
            if (unplaced_[v] || v == op)
                continue;
            ++estartVisits_;
            const std::int64_t to_op = dist_.atVertex(v, op);
            if (to_op != mii::MinDistMatrix::kMinusInf) {
                etime = std::max(etime, schedule_.timeOf(v) + to_op);
            }
            const std::int64_t from_op = dist_.atVertex(op, v);
            if (from_op != mii::MinDistMatrix::kMinusInf) {
                ltime = std::min(ltime,
                                 schedule_.timeOf(v) - from_op);
            }
        }
        if (ltime == kInf)
            ltime = etime + ii_ - 1; // e.g. a re-placed STOP
        return {etime, ltime};
    }

    graph::VertexId
    pickMinSlack()
    {
        graph::VertexId best = -1;
        std::int64_t best_slack = kInf;
        for (graph::VertexId v = 0; v < graph_.numVertices(); ++v) {
            if (!unplaced_[v])
                continue;
            const auto [etime, ltime] = window(v);
            const std::int64_t slack = ltime - etime;
            if (best < 0 || slack < best_slack) {
                best = v;
                best_slack = slack;
            }
        }
        assert(best >= 0);
        return best;
    }

    /** Huff's direction rule: early if more unplaced consumers wait. */
    bool
    placeEarly(graph::VertexId op) const
    {
        int unplaced_preds = 0;
        int unplaced_succs = 0;
        for (graph::EdgeId eid : graph_.inEdges(op)) {
            const auto& e = graph_.edge(eid);
            if (e.from != op && unplaced_[e.from])
                ++unplaced_preds;
        }
        for (graph::EdgeId eid : graph_.outEdges(op)) {
            const auto& e = graph_.edge(eid);
            if (e.to != op && unplaced_[e.to])
                ++unplaced_succs;
        }
        return unplaced_succs >= unplaced_preds;
    }

    void
    place(graph::VertexId op, int time, int alternative)
    {
        schedule_.place(op, time, alternative);
        unplaced_[op] = false;
        ++numPlaced_;
        --numUnplaced_;
    }

    void
    eject(graph::VertexId victim, std::int64_t& unschedules)
    {
        assert(victim != graph_.start());
        if (unplaced_[victim])
            return;
        schedule_.remove(victim);
        unplaced_[victim] = true;
        --numPlaced_;
        ++numUnplaced_;
        ++unschedules;
        ++unscheduleSteps_;
    }

    /** Eject everything conflicting with any alternative at `slot`. */
    void
    forceEject(graph::VertexId op, int slot, std::int64_t& unschedules)
    {
        const auto& alternatives = schedule_.alternativesOf(op);
        const auto& compiled = schedule_.compiledAlternativesOf(op);
        for (std::size_t alt = 0; alt < alternatives.size(); ++alt) {
            if (compiled[alt].selfConflicts())
                continue;
            for (int victim : schedule_.mrt().conflictingOps(
                     alternatives[alt].table, slot)) {
                eject(victim, unschedules);
            }
        }
    }

    /**
     * Because placement is bidirectional, both placed predecessors and
     * placed successors can end up violated; eject them (they re-enter
     * the worklist with updated windows).
     */
    void
    ejectDependenceViolations(graph::VertexId op, int slot,
                              std::int64_t& unschedules)
    {
        for (graph::EdgeId eid : graph_.outEdges(op)) {
            const auto& e = graph_.edge(eid);
            if (e.to == op || unplaced_[e.to])
                continue;
            const std::int64_t earliest =
                static_cast<std::int64_t>(slot) + e.delay -
                static_cast<std::int64_t>(ii_) * e.distance;
            if (schedule_.timeOf(e.to) < earliest)
                eject(e.to, unschedules);
        }
        for (graph::EdgeId eid : graph_.inEdges(op)) {
            const auto& e = graph_.edge(eid);
            if (e.from == op || unplaced_[e.from] ||
                e.from == graph_.start()) {
                continue;
            }
            const std::int64_t latest =
                static_cast<std::int64_t>(slot) - e.delay +
                static_cast<std::int64_t>(ii_) * e.distance;
            if (schedule_.timeOf(e.from) > latest)
                eject(e.from, unschedules);
        }
    }

    const graph::DepGraph& graph_;
    int ii_;
    const support::CancellationToken* cancel_;
    bool cancelled_ = false;
    bool infeasible_ = false;
    mii::MinDistMatrix dist_;
    PartialSchedule schedule_;
    std::vector<bool> unplaced_;
    int numPlaced_ = 0;
    int numUnplaced_ = 0;
    /** Plain locals instead of per-event Counters writes on the hot
        path; `window` is const, hence mutable. */
    mutable std::uint64_t estartVisits_ = 0;
    std::uint64_t slotProbes_ = 0;
    std::uint64_t scheduleSteps_ = 0;
    std::uint64_t unscheduleSteps_ = 0;
};

} // namespace

namespace detail {

ModuloScheduleOutcome
runSlackSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
                 const graph::DepGraph& graph, const graph::SccResult& sccs,
                 const ScheduleOptions& options, support::Counters* counters)
{
    const mii::MiiResult mii = mii::computeMii(loop, machine, graph, sccs,
                                               counters, options.telemetry);
    const std::int64_t budget = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(
               options.search.budgetRatio * (loop.size() + 2))));

    // Every slack attempt builds its state (MinDist matrix, partial
    // schedule) from scratch, so unlike the iterative scheduler no
    // per-worker reuse is needed: the attempt callback is already safe
    // for any worker index.
    const IiAttemptFn attempt =
        [&](int ii, int /*worker*/,
            const support::CancellationToken& cancel) {
            IiAttemptOutcome out;
            SlackAttempt attempt(loop, machine, graph, ii, &out.counters,
                                 &cancel);
            std::int64_t steps = 0;
            std::int64_t unschedules = 0;
            const bool scheduled = attempt.run(budget, steps, unschedules);
            if (scheduled)
                out.status = AttemptStatus::kScheduled;
            else if (attempt.cancelled())
                out.status = AttemptStatus::kCancelled;
            else if (attempt.provenInfeasible())
                out.status = AttemptStatus::kInfeasible;
            else
                out.status = AttemptStatus::kBudgetExhausted;
            out.counters.estartPredecessorVisits += attempt.estartVisits();
            out.counters.findTimeSlotProbes += attempt.slotProbes();
            out.counters.scheduleSteps += attempt.scheduleSteps();
            out.counters.unscheduleSteps += attempt.unscheduleSteps();
            out.counters.mrtMaskProbes +=
                attempt.schedule().mrt().maskProbes();
            out.counters.mrtSlotScans +=
                attempt.schedule().mrt().slotScans();
            if (scheduled) {
                ScheduleResult result;
                result.ii = ii;
                result.times.resize(graph.numOps());
                result.alternatives.resize(graph.numOps());
                for (graph::VertexId v = 0; v < graph.numOps(); ++v) {
                    result.times[v] = attempt.schedule().timeOf(v);
                    result.alternatives[v] =
                        attempt.schedule().alternativeOf(v);
                }
                result.scheduleLength =
                    attempt.schedule().timeOf(graph.stop());
                result.stepsUsed = steps;
                result.unschedules = unschedules;
                out.schedule = std::move(result);
            }
            return out;
        };

    ModuloScheduleOutcome outcome = runIiSearch(
        options.search, mii.resMii, mii.mii, budget, attempt, counters,
        options.telemetry, [&] {
            return "slack scheduler found no schedule for '" +
                   loop.name() + "' within " +
                   std::to_string(options.search.maxIiIncrease) +
                   " IIs above the MII";
        });
    outcome.scheduler = schedulerStrategyName(SchedulerStrategy::kSlack);
    return outcome;
}

} // namespace detail

} // namespace ims::sched
