#include "sched/slack_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "mii/mii.hpp"
#include "mii/min_dist.hpp"
#include "sched/attempt_state.hpp"
#include "sched/feedback_probe.hpp"
#include "sched/partial_schedule.hpp"
#include "sched/schedule.hpp"
#include "support/error.hpp"

namespace ims::sched {

namespace {

constexpr std::int64_t kInf = INT64_MAX / 4;

/**
 * One slack-scheduling attempt at a fixed II.
 *
 * Unlike the iterative scheduler, the (etime, ltime) window is computed
 * through the MinDist matrix against *every* placed vertex — a
 * transitive, bidirectional bound, not the one-edge-deep Estart of
 * Figure 5(b) — so the incremental EstartTracker does not apply here;
 * the shared AttemptCounters and ejection helpers do.
 */
class SlackAttempt
{
  public:
    SlackAttempt(const ir::Loop& loop,
                 const machine::MachineModel& machine,
                 const graph::DepGraph& graph, int ii,
                 support::Counters* counters,
                 const support::CancellationToken* cancel,
                 AttemptFeedback* feedback = nullptr)
        : graph_(graph),
          ii_(ii),
          cancel_(cancel),
          feedback_(feedback),
          dist_(graph, ii, counters),
          schedule_(graph, loop, machine, ii)
    {
        if (feedback_ != nullptr) {
            displaceCount_.assign(
                static_cast<std::size_t>(graph.numVertices()), 0);
            resourceEvictions_.assign(
                static_cast<std::size_t>(machine.numResources()), 0);
        }
    }

    bool
    run(std::int64_t budget, std::int64_t& steps_used,
        std::int64_t& unschedules)
    {
        if (!schedule_.allVerticesPlaceable()) {
            infeasible_ = true;
            return false;
        }

        const int deadline = static_cast<int>(
            dist_.atVertex(graph_.start(), graph_.stop()));

        schedule_.place(graph_.start(), 0, 0);
        --budget;
        // Pre-place STOP at the critical-path deadline so every ltime is
        // finite; it is ejected and re-placed if a forced placement
        // pushes past it.
        schedule_.place(graph_.stop(), deadline, 0);
        --budget;

        while (numUnplaced() > 0 && budget > 0) {
            // Same cooperative check as the iterative scheduler's budget
            // loop: once a racing search accepts a lower II this
            // attempt's result is dead, stop within one step.
            if (cancel_ != nullptr && cancel_->cancelled(ii_)) {
                cancelled_ = true;
                return false;
            }
            const graph::VertexId op = pickMinSlack();
            const auto [etime, ltime] = window(op);
            const bool early = placeEarly(op);

            int slot = -1;
            int alternative = -1;
            if (etime <= ltime) {
                const std::int64_t lo = etime;
                const std::int64_t hi =
                    std::min<std::int64_t>(ltime, etime + ii_ - 1);
                if (early) {
                    for (std::int64_t t = lo; t <= hi; ++t) {
                        ++stats_.slotProbes;
                        alternative = schedule_.fittingAlternative(
                            op, static_cast<int>(t));
                        if (alternative >= 0) {
                            slot = static_cast<int>(t);
                            break;
                        }
                    }
                } else {
                    const std::int64_t down_lo =
                        std::max<std::int64_t>(lo, ltime - ii_ + 1);
                    for (std::int64_t t = ltime; t >= down_lo; --t) {
                        ++stats_.slotProbes;
                        alternative = schedule_.fittingAlternative(
                            op, static_cast<int>(t));
                        if (alternative >= 0) {
                            slot = static_cast<int>(t);
                            break;
                        }
                    }
                }
            }

            if (slot < 0) {
                // Forced placement with the forward-progress rule.
                if (schedule_.neverScheduled(op) ||
                    etime > schedule_.prevScheduleTime(op)) {
                    slot = static_cast<int>(etime);
                } else {
                    slot = schedule_.prevScheduleTime(op) + 1;
                }
                forceEject(op, slot, unschedules);
                alternative = schedule_.fittingAlternative(op, slot);
                assert(alternative >= 0);
            }

            schedule_.place(op, slot, alternative);
            // Because placement is bidirectional, both placed
            // predecessors and placed successors can end up violated;
            // eject them (they re-enter the worklist with updated
            // windows).
            const auto eject_victim = [this,
                                       &unschedules](graph::VertexId v) {
                eject(v, unschedules);
            };
            ejectViolatedSuccessors(graph_, schedule_, op, slot, ii_,
                                    eject_victim);
            ejectViolatedPredecessors(graph_, schedule_, op, slot, ii_,
                                      eject_victim);
            --budget;
            ++steps_used;
            ++stats_.scheduleSteps;
        }
        return numUnplaced() == 0;
    }

    const PartialSchedule& schedule() const { return schedule_; }

    bool cancelled() const { return cancelled_; }

    /** True when this II is proven impossible (modulo self-collision). */
    bool provenInfeasible() const { return infeasible_; }

    /** Batched counter deltas, flushed once per attempt by the driver. */
    const AttemptCounters& stats() const { return stats_; }

    /** Write the bottleneck report (see finalizeAttemptFeedback). */
    void
    flushFeedback(AttemptStatus status)
    {
        if (feedback_ == nullptr)
            return;
        finalizeAttemptFeedback(*feedback_, ii_, status, schedule_, graph_,
                                displaceCount_, resourceEvictions_);
    }

  private:
    int
    numUnplaced() const
    {
        return graph_.numVertices() - schedule_.numScheduled();
    }

    /** Dynamic (etime, ltime) window against the placed operations. */
    std::pair<std::int64_t, std::int64_t>
    window(graph::VertexId op) const
    {
        std::int64_t etime = 0;
        std::int64_t ltime = kInf;
        for (graph::VertexId v = 0; v < graph_.numVertices(); ++v) {
            if (!schedule_.isScheduled(v) || v == op)
                continue;
            ++stats_.estartVisits;
            const std::int64_t to_op = dist_.atVertex(v, op);
            if (to_op != mii::MinDistMatrix::kMinusInf) {
                etime = std::max(etime, schedule_.timeOf(v) + to_op);
            }
            const std::int64_t from_op = dist_.atVertex(op, v);
            if (from_op != mii::MinDistMatrix::kMinusInf) {
                ltime = std::min(ltime,
                                 schedule_.timeOf(v) - from_op);
            }
        }
        if (ltime == kInf)
            ltime = etime + ii_ - 1; // e.g. a re-placed STOP
        return {etime, ltime};
    }

    graph::VertexId
    pickMinSlack()
    {
        graph::VertexId best = -1;
        std::int64_t best_slack = kInf;
        for (graph::VertexId v = 0; v < graph_.numVertices(); ++v) {
            if (schedule_.isScheduled(v))
                continue;
            const auto [etime, ltime] = window(v);
            const std::int64_t slack = ltime - etime;
            if (best < 0 || slack < best_slack) {
                best = v;
                best_slack = slack;
            }
        }
        assert(best >= 0);
        return best;
    }

    /** Huff's direction rule: early if more unplaced consumers wait. */
    bool
    placeEarly(graph::VertexId op) const
    {
        int unplaced_preds = 0;
        int unplaced_succs = 0;
        for (const graph::Dep& dep : graph_.inDeps(op)) {
            if (dep.other != op && !schedule_.isScheduled(dep.other))
                ++unplaced_preds;
        }
        for (const graph::Dep& dep : graph_.outDeps(op)) {
            if (dep.other != op && !schedule_.isScheduled(dep.other))
                ++unplaced_succs;
        }
        return unplaced_succs >= unplaced_preds;
    }

    void
    eject(graph::VertexId victim, std::int64_t& unschedules)
    {
        assert(victim != graph_.start());
        if (!schedule_.isScheduled(victim))
            return;
        schedule_.remove(victim);
        ++unschedules;
        ++stats_.unscheduleSteps;
        if (feedback_ != nullptr)
            ++displaceCount_[victim];
    }

    /** Eject everything conflicting with any alternative at `slot`. */
    void
    forceEject(graph::VertexId op, int slot, std::int64_t& unschedules)
    {
        const auto& alternatives = schedule_.alternativesOf(op);
        const auto& compiled = schedule_.compiledAlternativesOf(op);
        for (std::size_t alt = 0; alt < alternatives.size(); ++alt) {
            if (compiled[alt].selfConflicts())
                continue;
            int evicted = 0;
            for (int victim : schedule_.mrt().conflictingOps(
                     alternatives[alt].table, slot)) {
                eject(victim, unschedules);
                ++evicted;
            }
            if (feedback_ != nullptr && evicted > 0) {
                const auto& uses = alternatives[alt].table.uses();
                for (std::size_t i = 0; i < uses.size(); ++i) {
                    bool seen = false;
                    for (std::size_t j = 0; j < i && !seen; ++j)
                        seen = uses[j].resource == uses[i].resource;
                    if (!seen)
                        resourceEvictions_[uses[i].resource] += evicted;
                }
            }
        }
    }

    const graph::DepGraph& graph_;
    int ii_;
    const support::CancellationToken* cancel_;
    AttemptFeedback* feedback_;
    bool cancelled_ = false;
    bool infeasible_ = false;
    mii::MinDistMatrix dist_;
    PartialSchedule schedule_;
    /** Batched instrumentation; `window` is const, hence mutable. */
    mutable AttemptCounters stats_;
    /** Feedback-only (empty when feedback_ is null). */
    std::vector<std::int32_t> displaceCount_;
    std::vector<std::int64_t> resourceEvictions_;
};

} // namespace

namespace detail {

ModuloScheduleOutcome
runSlackSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
                 const graph::DepGraph& graph, const graph::SccResult& sccs,
                 const ScheduleOptions& options, support::Counters* counters)
{
    const mii::MiiResult mii = mii::computeMii(loop, machine, graph, sccs,
                                               counters, options.telemetry);
    const std::int64_t budget = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(std::llround(
               options.search.budgetRatio * (loop.size() + 2))));

    // Feedback strategy plumbing, as in runIterativeSchedule: the
    // single feedback worker writes each failed attempt's bottleneck
    // report into the outcome, and the probe decides skips with the
    // exact backend on the accumulated bottleneck subgraph.
    const bool wants_feedback =
        options.search.kind == IiSearchKind::kFeedback;
    std::optional<FeedbackProbe> prober;
    IiInfeasibilityProbe probe;
    if (wants_feedback && options.search.feedbackSkipInfeasible) {
        prober.emplace(loop, machine, graph, sccs,
                       options.search.feedbackSubgraphCap,
                       options.search.feedbackProbeBudget);
        probe = [&prober](int ii, const AttemptFeedback& feedback) {
            return (*prober)(ii, feedback);
        };
    }

    // Every slack attempt builds its state (MinDist matrix, partial
    // schedule) from scratch, so unlike the iterative scheduler no
    // per-worker reuse is needed: the attempt callback is already safe
    // for any worker index.
    const IiAttemptFn attempt =
        [&](int ii, int /*worker*/,
            const support::CancellationToken& cancel) {
            IiAttemptOutcome out;
            SlackAttempt attempt(loop, machine, graph, ii, &out.counters,
                                 &cancel,
                                 wants_feedback ? &out.feedback : nullptr);
            std::int64_t steps = 0;
            std::int64_t unschedules = 0;
            const bool scheduled = attempt.run(budget, steps, unschedules);
            if (scheduled)
                out.status = AttemptStatus::kScheduled;
            else if (attempt.cancelled())
                out.status = AttemptStatus::kCancelled;
            else if (attempt.provenInfeasible())
                out.status = AttemptStatus::kInfeasible;
            else
                out.status = AttemptStatus::kBudgetExhausted;
            attempt.stats().flushInto(out.counters,
                                      attempt.schedule().mrt());
            attempt.flushFeedback(out.status);
            if (scheduled) {
                out.schedule = extractScheduleResult(
                    attempt.schedule(), graph, ii, steps, unschedules);
            }
            return out;
        };

    ModuloScheduleOutcome outcome = runIiSearch(
        options.search, mii.resMii, mii.mii, budget, attempt, probe,
        counters, options.telemetry, [&] {
            return "slack scheduler found no schedule for '" +
                   loop.name() + "' within " +
                   std::to_string(options.search.maxIiIncrease) +
                   " IIs above the MII";
        });
    outcome.scheduler = schedulerStrategyName(SchedulerStrategy::kSlack);
    return outcome;
}

} // namespace detail

} // namespace ims::sched
