#ifndef IMS_SCHED_MODULO_SCHEDULER_HPP
#define IMS_SCHED_MODULO_SCHEDULER_HPP

#include <cstdint>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/iterative_scheduler.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/** Options for the full ModuloSchedule driver (Figure 2). */
struct ModuloScheduleOptions
{
    /**
     * "BudgetRatio is the ratio of the maximum number of operation
     * scheduling steps attempted (before giving up and trying a larger
     * initiation interval) to the number of operations in the loop." The
     * paper's experiments use 6 for the quality study and recommend 2
     * (§4.3/§5); 2 is the default here.
     */
    double budgetRatio = 2.0;
    IterativeScheduleOptions inner;
    /** Safety bound on II above the MII before giving up entirely. */
    int maxIiIncrease = 4096;
};

/** Outcome of modulo scheduling a loop. */
struct ModuloScheduleOutcome
{
    ScheduleResult schedule;
    /** Resource-constrained lower bound. */
    int resMii = 1;
    /** MII = max(ResMII, RecMII) as computed by the production protocol. */
    int mii = 1;
    /** Number of candidate IIs attempted (>= 1). */
    int attempts = 0;
    /** Per-attempt step budget (BudgetRatio * NumberOfOperations). */
    std::int64_t budget = 0;
    /** Scheduling steps summed over all attempts, failed ones included. */
    std::int64_t totalSteps = 0;
    /** Unschedule steps summed over all attempts. */
    std::int64_t totalUnschedules = 0;
};

/**
 * The paper's procedure ModuloSchedule (Figure 2): compute the MII, then
 * invoke IterativeSchedule with successively larger candidate IIs, each
 * with a budget of BudgetRatio * NumberOfOperations scheduling steps,
 * until a legal modulo schedule is found.
 *
 * @throws support::Error if no schedule is found within
 *         options.maxIiIncrease above the MII (in practice an acyclic
 *         graph is always schedulable once II reaches the list-schedule
 *         length, so this indicates a pathological input).
 */
ModuloScheduleOutcome moduloSchedule(const ir::Loop& loop,
                                     const machine::MachineModel& machine,
                                     const graph::DepGraph& graph,
                                     const graph::SccResult& sccs,
                                     const ModuloScheduleOptions& options =
                                         {},
                                     support::Counters* counters = nullptr);

/** Convenience overload: builds the dependence graph and SCCs itself. */
ModuloScheduleOutcome moduloSchedule(const ir::Loop& loop,
                                     const machine::MachineModel& machine,
                                     const ModuloScheduleOptions& options =
                                         {},
                                     support::Counters* counters = nullptr);

} // namespace ims::sched

#endif // IMS_SCHED_MODULO_SCHEDULER_HPP
