#ifndef IMS_SCHED_MODULO_SCHEDULER_HPP
#define IMS_SCHED_MODULO_SCHEDULER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/ii_search.hpp"
#include "sched/iterative_scheduler.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * How the II search itself went: strategy identity plus race
 * observability. Everything except `strategy`, `records` and the
 * derived deterministic statistics depends on thread timing —
 * speculative attempts above the winner may or may not have launched —
 * and must not feed anything that is compared bit-for-bit.
 */
struct IiSearchStats
{
    /** "linear", "racing" or "feedback". */
    std::string strategy = "linear";
    /** Workers the search ran with. */
    int workers = 1;
    /** Attempts actually launched (>= the deterministic attempt count). */
    int attemptsStarted = 0;
    /** Attempts aborted mid-run by the cancellation token. */
    int attemptsCancelled = 0;
    /** Attempts launched above the winning II (discarded speculation). */
    int attemptsWasted = 0;
    /**
     * Deterministic-prefix attempts whose candidate II was *proven*
     * infeasible (AttemptStatus::kInfeasible), as opposed to running out
     * of budget. Deterministic, unlike the started/cancelled/wasted
     * trio; for the exact backend this counts actual optimality proofs
     * (see sched/exact_scheduler.hpp).
     */
    int attemptsProvenInfeasible = 0;
    /**
     * Deterministic-prefix candidates the feedback strategy skipped
     * because its probe proved them infeasible without attempting them
     * (their records carry `skipped`; no budget is billed for them).
     * Deterministic; always 0 for linear/racing.
     */
    int skippedIis = 0;
    /** End-to-end wall time of the search. */
    double wallSeconds = 0.0;
    /** Summed per-attempt wall times (> wallSeconds measures overlap). */
    double cpuSeconds = 0.0;
    /** Deterministic prefix records, in II order (see IiSearchResult). */
    std::vector<IiAttemptRecord> records;
};

/** Outcome of modulo scheduling a loop. */
struct ModuloScheduleOutcome
{
    ScheduleResult schedule;
    /**
     * Stable name of the backend that produced the schedule
     * ("iterative", "slack", "exact" — see sched::SchedulerStrategy), so
     * downstream consumers (telemetry JSON, benches, scripts/check_perf)
     * can assert which scheduler actually ran.
     */
    std::string scheduler = "iterative";
    /** Resource-constrained lower bound. */
    int resMii = 1;
    /** MII = max(ResMII, RecMII) as computed by the production protocol. */
    int mii = 1;
    /** Number of candidate IIs attempted (>= 1). Deterministic: under a
     *  racing search this counts the prefix [MII, winner], exactly the
     *  attempts the linear search performs. */
    int attempts = 0;
    /** Per-attempt step budget (BudgetRatio * NumberOfOperations). */
    std::int64_t budget = 0;
    /** Scheduling steps summed over all attempts, failed ones included. */
    std::int64_t totalSteps = 0;
    /** Unschedule steps summed over all attempts. */
    std::int64_t totalUnschedules = 0;
    /** II-search strategy identity and race observability. */
    IiSearchStats search;
};

/**
 * The shared Figure-2 outer-loop driver: run `attempt` over the
 * candidate IIs [mii, mii + options.maxIiIncrease] under the strategy
 * selected by `options`, and fold the deterministic prefix into one
 * ModuloScheduleOutcome — counters flushed into `counters`, one
 * Phase::kIiAttempt sample per prefix candidate replayed into
 * `telemetry` in II order, §4.3 budget accounting (every failed attempt
 * bills its full budget; the winner bills the steps it used).
 *
 * Every backend behind sched::schedule() (iterative, slack, exact) is a
 * thin wrapper over this driver; they differ only in the attempt
 * callback, the infeasibility probe they can offer the feedback
 * strategy, and the exhaustion message.
 *
 * `probe` is consumed by the feedback strategy only (see
 * IiInfeasibilityProbe); pass an empty function when the backend has no
 * sound infeasibility oracle — the feedback strategy then degenerates to
 * the linear walk. Budget accounting bills every *attempted* failed
 * candidate its full budget; probe-skipped candidates bill nothing
 * (that saving is the strategy's point).
 *
 * @throws support::CodedError (code "sched.ii_exhausted", message built
 *         lazily from `exhausted_message`) when every candidate fails.
 */
ModuloScheduleOutcome
runIiSearch(const IiSearchOptions& options, int res_mii, int mii,
            std::int64_t budget, const IiAttemptFn& attempt,
            const IiInfeasibilityProbe& probe, support::Counters* counters,
            support::TelemetrySink* telemetry,
            const std::function<std::string()>& exhausted_message);

/** Probe-less convenience overload (linear/racing callers). */
inline ModuloScheduleOutcome
runIiSearch(const IiSearchOptions& options, int res_mii, int mii,
            std::int64_t budget, const IiAttemptFn& attempt,
            support::Counters* counters, support::TelemetrySink* telemetry,
            const std::function<std::string()>& exhausted_message)
{
    return runIiSearch(options, res_mii, mii, budget, attempt,
                       IiInfeasibilityProbe{}, counters, telemetry,
                       exhausted_message);
}

} // namespace ims::sched

#endif // IMS_SCHED_MODULO_SCHEDULER_HPP
