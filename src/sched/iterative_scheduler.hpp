#ifndef IMS_SCHED_ITERATIVE_SCHEDULER_HPP
#define IMS_SCHED_ITERATIVE_SCHEDULER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/compiled_reservations.hpp"
#include "machine/machine_model.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/priority.hpp"
#include "support/cancellation.hpp"
#include "support/counters.hpp"
#include "support/telemetry.hpp"

namespace ims::sched {

// TraceEvent, AttemptStatus and the per-attempt counters moved to
// sched/attempt_feedback.hpp (the strategy-neutral attempt vocabulary
// shared by every backend); this header re-exports them via the include
// above, so existing includers keep compiling unchanged.

/** Options for one iterative-scheduling attempt. */
struct IterativeScheduleOptions
{
    PriorityScheme priority = PriorityScheme::kHeightR;
    /**
     * The forward-progress rule of §3.4: when re-placing a previously
     * scheduled operation whose Estart does not exceed its previous slot,
     * schedule it one cycle later than before so two operations cannot
     * displace each other endlessly. Disabling this (ablation) always
     * chooses Estart.
     */
    bool forwardProgressRule = true;
    /** Seed for PriorityScheme::kRandom. */
    std::uint64_t randomSeed = 1;
    /** When non-null, every scheduling step is appended here. */
    std::vector<TraceEvent>* trace = nullptr;
    /**
     * When non-null, a failed attempt writes its bottleneck report here
     * (unplaceable operations, displacement storm, contended resource
     * classes — see sched/attempt_feedback.hpp). A successful attempt
     * clears the sink. Collection costs one per-vertex counter bump per
     * displacement plus an O(V) summary per attempt; a null sink keeps
     * the hot path exactly as before.
     */
    AttemptFeedback* feedback = nullptr;
    /**
     * Sink receiving the phases surrounding scheduling (MII bounds, and
     * the Phase::kIiAttempt samples the II-search driver replays for the
     * deterministic prefix of candidate IIs — see sched/ii_search.hpp).
     * trySchedule itself emits nothing: under a racing search the sink
     * would otherwise observe speculative attempts in a nondeterministic
     * order.
     */
    support::TelemetrySink* telemetry = nullptr;
};

/** A complete modulo schedule for one II. */
struct ScheduleResult
{
    int ii = 0;
    /** Issue time per loop operation. */
    std::vector<int> times;
    /** Chosen machine alternative per loop operation. */
    std::vector<int> alternatives;
    /** Schedule time of STOP: the schedule length SL for one iteration. */
    int scheduleLength = 0;
    /** Operation scheduling steps consumed (the paper's budget unit). */
    std::int64_t stepsUsed = 0;
    /** Operations displaced during the attempt. */
    std::int64_t unschedules = 0;
};

/**
 * One invocation of the paper's IterativeSchedule (Figure 3): attempt to
 * schedule `loop` at initiation interval `ii` within `budget` operation
 * scheduling steps. Returns the schedule on success, std::nullopt when the
 * budget is exhausted (or no alternative of some operation is usable at
 * this II).
 *
 * The dependence graph and SCCs must correspond to `loop` on `machine`.
 *
 * A scheduler instance reuses its priority/reservation-table buffers
 * across candidate IIs and is therefore NOT safe for concurrent
 * trySchedule calls; the racing II search gives every worker its own
 * instance (see sched/ii_search.hpp).
 */
class IterativeScheduler
{
  public:
    IterativeScheduler(const ir::Loop& loop,
                       const machine::MachineModel& machine,
                       const graph::DepGraph& graph,
                       const graph::SccResult& sccs,
                       IterativeScheduleOptions options = {},
                       support::Counters* counters = nullptr);

    /**
     * Attempt to find a schedule at `ii` within `budget` steps.
     *
     * When `cancel` is non-null it is polled once per budget-loop
     * iteration with key `ii`; a cancelled attempt abandons work within
     * one scheduling step and returns nullopt. `status`, when non-null,
     * reports why the attempt ended.
     */
    std::optional<ScheduleResult>
    trySchedule(int ii, std::int64_t budget,
                const support::CancellationToken* cancel = nullptr,
                AttemptStatus* status = nullptr);

  private:
    const ir::Loop& loop_;
    const machine::MachineModel& machine_;
    const graph::DepGraph& graph_;
    const graph::SccResult& sccs_;
    IterativeScheduleOptions options_;
    support::Counters* counters_;
    /** Priority/HeightR buffers reused across candidate IIs, so a failed
     *  attempt does not reallocate (see PriorityWorkspace). */
    PriorityWorkspace priorityWorkspace_;
    /** Reservation tables lowered to bitmasks, keyed by (alternative
     *  list, II); shared across every attempt of this scheduler. */
    machine::CompiledTableCache compiledCache_;
};

} // namespace ims::sched

#endif // IMS_SCHED_ITERATIVE_SCHEDULER_HPP
