#include "sched/modulo_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.hpp"
#include "mii/mii.hpp"
#include "support/error.hpp"

namespace ims::sched {

ModuloScheduleOutcome
moduloSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
               const graph::DepGraph& graph, const graph::SccResult& sccs,
               const ModuloScheduleOptions& options,
               support::Counters* counters)
{
    support::check(options.budgetRatio > 0, "BudgetRatio must be positive");

    const mii::MiiResult mii = mii::computeMii(loop, machine, graph, sccs,
                                               counters,
                                               options.inner.telemetry);

    // NumberOfOperations in Figure 2/3 counts the dependence-graph
    // operations including the START/STOP pseudo-ops (operation 1 is
    // START), so a BudgetRatio of 1 affords exactly one scheduling step
    // per vertex.
    const std::int64_t budget = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::llround(options.budgetRatio * (loop.size() + 2))));

    IterativeScheduler scheduler(loop, machine, graph, sccs, options.inner,
                                 counters);

    ModuloScheduleOutcome outcome;
    outcome.resMii = mii.resMii;
    outcome.mii = mii.mii;
    outcome.budget = budget;

    for (int ii = mii.mii; ii <= mii.mii + options.maxIiIncrease; ++ii) {
        ++outcome.attempts;
        auto result = scheduler.trySchedule(ii, budget);
        if (result) {
            outcome.totalSteps += result->stepsUsed;
            outcome.totalUnschedules += result->unschedules;
            outcome.schedule = std::move(*result);
            return outcome;
        }
        // A failed attempt consumes its entire budget (§4.3:
        // "IterativeSchedule, on all but the last, successful invocation,
        // expends its entire budget each time") — except when the II is
        // structurally infeasible, which costs nothing.
        outcome.totalSteps += budget;
    }
    throw support::Error("no modulo schedule found for loop '" +
                         loop.name() + "' within " +
                         std::to_string(options.maxIiIncrease) +
                         " IIs above the MII");
}

ModuloScheduleOutcome
moduloSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
               const ModuloScheduleOptions& options,
               support::Counters* counters)
{
    const graph::DepGraph graph = graph::buildDepGraph(loop, machine);
    const graph::SccResult sccs = graph::findSccs(graph);
    return moduloSchedule(loop, machine, graph, sccs, options, counters);
}

} // namespace ims::sched
