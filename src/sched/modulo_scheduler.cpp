#include "sched/modulo_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "graph/graph_builder.hpp"
#include "mii/mii.hpp"
#include "sched/feedback_probe.hpp"
#include "sched/schedule.hpp"
#include "support/error.hpp"

namespace ims::sched {

ModuloScheduleOutcome
runIiSearch(const IiSearchOptions& options, int res_mii, int mii,
            std::int64_t budget, const IiAttemptFn& attempt,
            const IiInfeasibilityProbe& probe, support::Counters* counters,
            support::TelemetrySink* telemetry,
            const std::function<std::string()>& exhausted_message)
{
    const auto strategy = makeIiSearchStrategy(options);
    IiSearchResult found =
        strategy->search(mii, mii + options.maxIiIncrease, attempt, probe);

    // Fold the deterministic prefix into the caller-visible accounting:
    // the counter deltas and the replayed Phase::kIiAttempt samples cover
    // exactly the candidates [mii, winner] in II order — what the linear
    // search reports natively — so sinks and counters are bit-identical
    // across strategies and thread counts (timings aside).
    if (counters != nullptr)
        *counters += found.counters;
    if (telemetry != nullptr) {
        for (const IiAttemptRecord& record : found.records) {
            support::PhaseSample sample;
            sample.phase = support::Phase::kIiAttempt;
            sample.detail = record.ii;
            sample.seconds = record.seconds;
            sample.succeeded = record.feasible;
            telemetry->onPhase(sample);
        }
    }

    ModuloScheduleOutcome outcome;
    outcome.resMii = res_mii;
    outcome.mii = mii;
    outcome.budget = budget;
    outcome.attempts = found.searchedIis;
    outcome.search.strategy = strategy->name();
    outcome.search.workers = found.workers;
    outcome.search.attemptsStarted = found.attemptsStarted;
    outcome.search.attemptsCancelled = found.attemptsCancelled;
    outcome.search.attemptsWasted = found.attemptsWasted;
    outcome.search.attemptsProvenInfeasible = found.attemptsProvenInfeasible;
    outcome.search.skippedIis = found.skippedIis;
    outcome.search.wallSeconds = found.wallSeconds;
    outcome.search.cpuSeconds = found.cpuSeconds;
    outcome.search.records = std::move(found.records);

    if (!found.schedule.has_value()) {
        // The message is built only on this cold path; the code gives
        // the pipeliner's Diagnostic a stable machine-readable identity.
        throw support::CodedError("sched.ii_exhausted", exhausted_message());
    }

    // §4.3: "IterativeSchedule, on all but the last, successful
    // invocation, expends its entire budget each time." Probe-skipped
    // candidates never invoked the scheduler, so they bill nothing —
    // the step saving the feedback strategy exists to deliver.
    outcome.totalSteps =
        budget * (found.searchedIis - 1 - found.skippedIis) +
        found.schedule->stepsUsed;
    outcome.totalUnschedules = found.schedule->unschedules;
    outcome.schedule = std::move(*found.schedule);
    return outcome;
}

namespace detail {

ModuloScheduleOutcome
runIterativeSchedule(const ir::Loop& loop,
                     const machine::MachineModel& machine,
                     const graph::DepGraph& graph,
                     const graph::SccResult& sccs,
                     const ScheduleOptions& options,
                     support::Counters* counters)
{
    const mii::MiiResult mii = mii::computeMii(loop, machine, graph, sccs,
                                               counters, options.telemetry);

    // NumberOfOperations in Figure 2/3 counts the dependence-graph
    // operations including the START/STOP pseudo-ops (operation 1 is
    // START), so a BudgetRatio of 1 affords exactly one scheduling step
    // per vertex.
    const std::int64_t budget = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               options.search.budgetRatio * (loop.size() + 2))));

    // Per-worker scheduler state: trySchedule reuses priority and
    // compiled-reservation buffers across candidate IIs, so concurrent
    // attempts must not share an IterativeScheduler. The strategy
    // guarantees at most one in-flight attempt per worker index;
    // schedulers are built lazily so a race that ends early never pays
    // for idle workers' state.
    const auto strategy = makeIiSearchStrategy(options.search);
    const int workers =
        strategy->plannedWorkers(options.search.maxIiIncrease + 1);

    IterativeScheduleOptions inner = options.inner();
    inner.telemetry = nullptr; // kIiAttempt samples are replayed by the
                               // driver for the deterministic prefix only

    // Feedback strategy plumbing: one shared bottleneck-report sink is
    // safe because the feedback strategy is single-worker by contract
    // (plannedWorkers() == 1); the probe accumulates the bottleneck
    // subgraph and decides candidates with the exact backend.
    const bool wants_feedback =
        options.search.kind == IiSearchKind::kFeedback;
    AttemptFeedback feedback_sink;
    if (wants_feedback)
        inner.feedback = &feedback_sink;
    std::optional<FeedbackProbe> prober;
    IiInfeasibilityProbe probe;
    if (wants_feedback && options.search.feedbackSkipInfeasible) {
        prober.emplace(loop, machine, graph, sccs,
                       options.search.feedbackSubgraphCap,
                       options.search.feedbackProbeBudget);
        probe = [&prober](int ii, const AttemptFeedback& feedback) {
            return (*prober)(ii, feedback);
        };
    }

    struct WorkerState
    {
        support::Counters counters;
        std::optional<IterativeScheduler> scheduler;
    };
    std::vector<WorkerState> states(static_cast<std::size_t>(workers));

    const IiAttemptFn attempt =
        [&](int ii, int worker, const support::CancellationToken& cancel) {
            WorkerState& state = states[static_cast<std::size_t>(worker)];
            state.counters = {};
            if (!state.scheduler.has_value()) {
                state.scheduler.emplace(loop, machine, graph, sccs, inner,
                                        &state.counters);
            }
            IiAttemptOutcome out;
            AttemptStatus status = AttemptStatus::kBudgetExhausted;
            out.schedule =
                state.scheduler->trySchedule(ii, budget, &cancel, &status);
            out.status = status;
            out.counters = state.counters;
            if (wants_feedback)
                out.feedback = feedback_sink;
            return out;
        };

    ModuloScheduleOutcome outcome = runIiSearch(
        options.search, mii.resMii, mii.mii, budget, attempt, probe,
        counters, options.telemetry, [&] {
            return "no modulo schedule found for loop '" + loop.name() +
                   "' within " +
                   std::to_string(options.search.maxIiIncrease) +
                   " IIs above the MII";
        });
    outcome.scheduler = schedulerStrategyName(SchedulerStrategy::kIterative);
    return outcome;
}

} // namespace detail

} // namespace ims::sched
