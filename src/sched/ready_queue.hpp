#ifndef IMS_SCHED_READY_QUEUE_HPP
#define IMS_SCHED_READY_QUEUE_HPP

#include <cstdint>
#include <vector>

#include "graph/dep_graph.hpp"

namespace ims::sched {

/**
 * Priority-ordered ready set for HighestPriorityOperation (Figure 3).
 *
 * The paper's selection rule — highest priority first, lowest vertex id
 * on ties — is a *static* total order for one IterativeSchedule attempt:
 * priorities are fixed per candidate II. So the queue ranks every vertex
 * once up front (O(V log V)) and afterwards represents the ready set as a
 * two-level bitmap over ranks: rank 0 is the globally best vertex, and
 * `top()` is find-first-set — one summary-word scan plus two bit scans,
 * O(V/4096) worst case and effectively O(1) for every real loop —
 * replacing the seed's O(V) linear scan per scheduling step. `push` /
 * `erase` are O(1) bit flips, so displacement (unscheduling) re-enters a
 * vertex at its correct position for free.
 *
 * The bitmap tie-breaks identically to the seed's linear scan (the rank
 * order sorts by priority descending, then vertex id ascending), which the
 * determinism tests pin down.
 */
class ReadyQueue
{
  public:
    /** Rank all vertices by (priority descending, id ascending); the
     *  queue starts full (every vertex ready). */
    explicit ReadyQueue(const std::vector<std::int64_t>& priority);

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }

    bool
    contains(graph::VertexId v) const
    {
        const int rank = rankOf_[v];
        return (bits_[rank >> 6] >> (rank & 63)) & 1U;
    }

    /** Mark `v` ready. No-op if it already is. */
    void push(graph::VertexId v);

    /** Remove `v` from the ready set. No-op if it is not ready. */
    void erase(graph::VertexId v);

    /** Highest-priority ready vertex (lowest id on ties); empty() must be
     *  false. */
    graph::VertexId top() const;

  private:
    std::vector<int> rankOf_;              ///< vertex -> rank
    std::vector<graph::VertexId> vertexAt_; ///< rank -> vertex
    std::vector<std::uint64_t> bits_;      ///< ready bit per rank
    std::vector<std::uint64_t> summary_;   ///< bit per non-empty bits_ word
    int size_ = 0;
};

} // namespace ims::sched

#endif // IMS_SCHED_READY_QUEUE_HPP
