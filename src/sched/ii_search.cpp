#include "sched/ii_search.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace ims::sched {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * The race engine both strategies share. Workers claim candidate IIs off
 * an atomic cursor in increasing order; a successful attempt lowers the
 * cancellation ceiling to its II, which (a) stops further claims above
 * it and (b) cooperatively aborts in-flight attempts above it. The
 * linear strategy is the same engine with one worker run inline — the
 * single worker claims minIi, minIi+1, ... and stops at the first claim
 * above the ceiling, i.e. right after its first success — so the two
 * strategies cannot drift apart behaviourally.
 *
 * Determinism: an attempt at `ii` can be skipped or cancelled only when
 * the ceiling is below `ii`, i.e. only when some attempt at ii' < ii
 * succeeded. The winner is the lowest successful II, so for every
 * ii <= winner no such ii' exists: attempts at ii < winner always run
 * to (deterministic) failure, and the winner's attempt always runs to
 * success. The prefix [minIi, winner] therefore reproduces the linear
 * search exactly; everything at higher IIs is discarded speculation.
 *
 * The feedback strategy adds a pre-claim skip: with a non-null `probe`
 * (single worker only — a probe decision depends on the full attempt
 * history, which concurrent claims would make timing-dependent), each
 * claimed candidate is first offered to the probe together with the most
 * recent failed attempt's feedback report; a proven-infeasible candidate
 * is marked skipped and never attempted. Soundness of the proof is the
 * probe's contract, and it is what preserves the determinism argument:
 * a skipped II is exactly one the linear walk would have attempted and
 * failed, so the winner and everything derived from it are unchanged.
 */
IiSearchResult
runRace(int min_ii, int max_ii, int workers, const IiAttemptFn& attempt,
        const IiInfeasibilityProbe* probe = nullptr)
{
    assert(min_ii <= max_ii);
    assert((probe == nullptr || workers == 1) &&
           "feedback skipping requires the single-worker walk");
    const int candidates = max_ii - min_ii + 1;

    struct Slot
    {
        bool started = false;
        bool skipped = false;
        double seconds = 0.0;
        IiAttemptOutcome outcome;
        std::exception_ptr error;
    };

    /**
     * Chunked, lazily allocated slot store. The candidate range is
     * maxIiIncrease+1 wide (4097 by default) but a search normally
     * touches only [minIi, winner] — a handful of slots — so
     * value-initialising a flat vector of ~200-byte Slots burned tens of
     * microseconds per schedule() call on zeroing memory nobody reads.
     * Chunks materialise on first touch behind a double-checked atomic
     * pointer (publish with release, read with acquire), so concurrent
     * workers may allocate distinct chunks race-free while untouched
     * chunks stay null; a null chunk at assembly time means "no attempt
     * in this range started".
     */
    constexpr int kSlotChunk = 16;
    const int num_chunks = (candidates + kSlotChunk - 1) / kSlotChunk;
    struct SlotStore
    {
        explicit SlotStore(int num_chunks) : chunks(num_chunks) {}
        ~SlotStore()
        {
            for (auto& chunk : chunks)
                delete[] chunk.load(std::memory_order_relaxed);
        }
        std::vector<std::atomic<Slot*>> chunks;
        std::mutex allocMutex;
    };
    SlotStore store(num_chunks);
    const auto slot_at = [&](int index) -> Slot& {
        auto& entry = store.chunks[index / kSlotChunk];
        Slot* chunk = entry.load(std::memory_order_acquire);
        if (chunk == nullptr) {
            std::lock_guard<std::mutex> lock(store.allocMutex);
            chunk = entry.load(std::memory_order_relaxed);
            if (chunk == nullptr) {
                chunk = new Slot[kSlotChunk];
                entry.store(chunk, std::memory_order_release);
            }
        }
        return chunk[index % kSlotChunk];
    };
    /** The slot for `index`, or nullptr when its chunk was never touched
        (single-threaded assembly use only). */
    const auto peek_slot = [&](int index) -> Slot* {
        Slot* chunk = store.chunks[index / kSlotChunk].load(
            std::memory_order_acquire);
        return chunk == nullptr ? nullptr : chunk + index % kSlotChunk;
    };

    support::CancellationToken token;
    std::atomic<int> cursor{min_ii};

    // Feedback state (single-worker only): the report of the most recent
    // failed attempt, offered to the probe before each claim is run.
    const AttemptFeedback* last_feedback = nullptr;

    const auto search_start = std::chrono::steady_clock::now();
    const auto body = [&](int worker) {
        while (true) {
            const int ii = cursor.fetch_add(1, std::memory_order_relaxed);
            // Claims arrive in increasing II order, so once one claim is
            // above the ceiling every later claim of this worker would be
            // too: return instead of spinning through the tail.
            if (ii > max_ii || token.cancelled(ii))
                return;
            Slot& slot = slot_at(ii - min_ii);
            if (probe != nullptr && last_feedback != nullptr &&
                last_feedback->conclusive()) {
                const auto probe_start = std::chrono::steady_clock::now();
                bool proven = false;
                try {
                    proven = (*probe)(ii, *last_feedback);
                } catch (...) {
                    slot.error = std::current_exception();
                    slot.seconds = secondsSince(probe_start);
                    slot.started = true;
                    return;
                }
                if (proven) {
                    slot.skipped = true;
                    slot.seconds = secondsSince(probe_start);
                    slot.outcome.status = AttemptStatus::kInfeasible;
                    continue;
                }
            }
            slot.started = true;
            const auto attempt_start = std::chrono::steady_clock::now();
            try {
                slot.outcome = attempt(ii, worker, token);
            } catch (...) {
                // Park the exception (threaded bodies must not throw);
                // the assembly step below rethrows it iff the linear
                // search would have reached this II. An exception is not
                // speculation — the deterministic search dies at this II
                // — so this worker stops claiming candidates instead of
                // burning through the rest of the range.
                slot.error = std::current_exception();
                slot.seconds = secondsSince(attempt_start);
                return;
            }
            slot.seconds = secondsSince(attempt_start);
            if (slot.outcome.schedule.has_value()) {
                token.lowerCeiling(ii);
            } else if (probe != nullptr &&
                       slot.outcome.status != AttemptStatus::kCancelled) {
                last_feedback = &slot.outcome.feedback;
            }
        }
    };

    if (workers <= 1) {
        body(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(body, w);
        for (auto& thread : pool)
            thread.join();
    }

    IiSearchResult result;
    result.workers = workers < 1 ? 1 : workers;
    result.wallSeconds = secondsSince(search_start);

    // The winner is the lowest successful II; a parked exception below it
    // takes precedence (the linear search would have thrown there before
    // ever reaching the winner). Exceptions parked *above* the winner
    // belong to speculative attempts the linear search never runs — they
    // are discarded with the rest of the speculation.
    int winner = -1;
    for (int i = 0; i < candidates; ++i) {
        Slot* slot = peek_slot(i);
        if (slot == nullptr) {
            i += kSlotChunk - 1 - i % kSlotChunk; // skip untouched chunk
            continue;
        }
        if (slot->error != nullptr)
            std::rethrow_exception(slot->error);
        if (slot->outcome.schedule.has_value()) {
            winner = i;
            break;
        }
    }

    const int prefix = winner >= 0 ? winner + 1 : candidates;
    result.searchedIis = prefix;
    result.records.reserve(static_cast<std::size_t>(prefix));
    for (int i = 0; i < prefix; ++i) {
        // Deterministic-prefix invariant (see the engine comment): every
        // prefix attempt was claimed and ran to completion, uncancelled,
        // so its chunk exists; the null/unstarted skips are defensive.
        Slot* slot = peek_slot(i);
        if (slot == nullptr) {
            i += kSlotChunk - 1 - i % kSlotChunk;
            continue;
        }
        if (slot->skipped) {
            // A probe-proven skip: record it (status kInfeasible, seconds
            // = probe time) but fold no counters and count no attempt —
            // the whole point is that no attempt ran. It does not count
            // toward attemptsProvenInfeasible either, which stays "prefix
            // *attempts* that ended kInfeasible" across strategies.
            ++result.skippedIis;
            result.records.push_back({min_ii + i, false,
                                      AttemptStatus::kInfeasible,
                                      slot->seconds, /*skipped=*/true});
            continue;
        }
        if (!slot->started)
            continue;
        assert(slot->outcome.status != AttemptStatus::kCancelled);
        result.counters += slot->outcome.counters;
        if (slot->outcome.status == AttemptStatus::kInfeasible)
            ++result.attemptsProvenInfeasible;
        result.records.push_back({min_ii + i,
                                  slot->outcome.schedule.has_value(),
                                  slot->outcome.status, slot->seconds,
                                  /*skipped=*/false});
    }
    if (winner >= 0)
        result.schedule = std::move(peek_slot(winner)->outcome.schedule);

    for (int i = 0; i < candidates; ++i) {
        Slot* slot = peek_slot(i);
        if (slot == nullptr) {
            i += kSlotChunk - 1 - i % kSlotChunk;
            continue;
        }
        if (!slot->started)
            continue;
        ++result.attemptsStarted;
        result.cpuSeconds += slot->seconds;
        if (slot->outcome.status == AttemptStatus::kCancelled)
            ++result.attemptsCancelled;
        if (winner >= 0 && i > winner)
            ++result.attemptsWasted;
    }
    return result;
}

class LinearIiSearch final : public IiSearchStrategy
{
  public:
    std::string
    name() const override
    {
        return "linear";
    }

    int
    plannedWorkers(int /*candidates*/) const override
    {
        return 1;
    }

    IiSearchResult
    search(int min_ii, int max_ii, const IiAttemptFn& attempt,
           const IiInfeasibilityProbe& /*probe*/) const override
    {
        return runRace(min_ii, max_ii, 1, attempt);
    }
};

class RacingIiSearch final : public IiSearchStrategy
{
  public:
    explicit RacingIiSearch(int threads) : threads_(threads) {}

    std::string
    name() const override
    {
        return "racing";
    }

    int
    plannedWorkers(int candidates) const override
    {
        return support::resolveThreads(threads_,
                                       static_cast<std::size_t>(
                                           candidates < 1 ? 1 : candidates));
    }

    IiSearchResult
    search(int min_ii, int max_ii, const IiAttemptFn& attempt,
           const IiInfeasibilityProbe& /*probe*/) const override
    {
        return runRace(min_ii, max_ii,
                       plannedWorkers(max_ii - min_ii + 1), attempt);
    }

  private:
    int threads_;
};

/**
 * The linear walk plus probe-driven skipping (see the engine comment and
 * ii_search.hpp). Single-worker by design: a skip decision reads the
 * full attempt history, which concurrent claims would make
 * timing-dependent and break the deterministic-prefix contract.
 */
class FeedbackIiSearch final : public IiSearchStrategy
{
  public:
    explicit FeedbackIiSearch(bool skip_infeasible)
        : skipInfeasible_(skip_infeasible)
    {
    }

    std::string
    name() const override
    {
        return "feedback";
    }

    int
    plannedWorkers(int /*candidates*/) const override
    {
        return 1;
    }

    IiSearchResult
    search(int min_ii, int max_ii, const IiAttemptFn& attempt,
           const IiInfeasibilityProbe& probe) const override
    {
        const bool use_probe = skipInfeasible_ && probe != nullptr;
        return runRace(min_ii, max_ii, 1, attempt,
                       use_probe ? &probe : nullptr);
    }

  private:
    bool skipInfeasible_;
};

} // namespace

std::string
attemptStatusName(AttemptStatus status)
{
    switch (status) {
      case AttemptStatus::kScheduled:
        return "scheduled";
      case AttemptStatus::kBudgetExhausted:
        return "budget_exhausted";
      case AttemptStatus::kInfeasible:
        return "infeasible";
      case AttemptStatus::kCancelled:
        return "cancelled";
    }
    return "?";
}

std::string
iiSearchKindName(IiSearchKind kind)
{
    switch (kind) {
      case IiSearchKind::kLinear:
        return "linear";
      case IiSearchKind::kRacing:
        return "racing";
      case IiSearchKind::kFeedback:
        return "feedback";
    }
    return "?";
}

std::optional<IiSearchKind>
iiSearchKindByName(std::string_view name)
{
    if (name == "linear")
        return IiSearchKind::kLinear;
    if (name == "racing")
        return IiSearchKind::kRacing;
    if (name == "feedback")
        return IiSearchKind::kFeedback;
    return std::nullopt;
}

std::unique_ptr<IiSearchStrategy>
makeIiSearchStrategy(const IiSearchOptions& options)
{
    support::check(options.budgetRatio > 0, "BudgetRatio must be positive");
    support::check(options.maxIiIncrease >= 0,
                   "maxIiIncrease must be non-negative");
    support::check(options.feedbackSubgraphCap > 0,
                   "feedbackSubgraphCap must be positive");
    support::check(options.feedbackProbeBudget > 0,
                   "feedbackProbeBudget must be positive");
    switch (options.kind) {
      case IiSearchKind::kLinear:
        return std::make_unique<LinearIiSearch>();
      case IiSearchKind::kRacing:
        return std::make_unique<RacingIiSearch>(options.threads);
      case IiSearchKind::kFeedback:
        return std::make_unique<FeedbackIiSearch>(
            options.feedbackSkipInfeasible);
    }
    throw support::Error("unknown II search kind");
}

} // namespace ims::sched
