#ifndef IMS_SCHED_LIST_SCHEDULER_HPP
#define IMS_SCHED_LIST_SCHEDULER_HPP

#include <vector>

#include "graph/dep_graph.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "support/counters.hpp"
#include "support/telemetry.hpp"

namespace ims::sched {

/** Result of acyclic list scheduling one loop iteration. */
struct ListScheduleResult
{
    /** Issue time per loop operation. */
    std::vector<int> times;
    /** Chosen alternative per loop operation. */
    std::vector<int> alternatives;
    /** Completion time of the whole iteration (STOP's time). */
    int scheduleLength = 0;
};

/**
 * Baseline acyclic list scheduler: operation scheduling in height-priority
 * order over the intra-iteration (distance-0) subgraph, with a linear
 * (non-modulo) reservation table and an unbounded MaxTime, exactly the
 * degenerate case §3.1 describes ("if MaxTime is infinite and a regular,
 * linear schedule reservation table is employed, the functioning of
 * FindTimeSlot is just as it would be for list scheduling").
 *
 * Its schedule length provides (together with MinDist[START, STOP]) the
 * lower bound on the modulo schedule length used in Table 3, and its cost
 * per operation is the paper's baseline for scheduling effort.
 */
ListScheduleResult listSchedule(const ir::Loop& loop,
                                const machine::MachineModel& machine,
                                const graph::DepGraph& graph,
                                support::Counters* counters = nullptr,
                                support::TelemetrySink* sink = nullptr);

} // namespace ims::sched

#endif // IMS_SCHED_LIST_SCHEDULER_HPP
