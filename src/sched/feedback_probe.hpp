#ifndef IMS_SCHED_FEEDBACK_PROBE_HPP
#define IMS_SCHED_FEEDBACK_PROBE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/attempt_feedback.hpp"

namespace ims::sched {

/**
 * The feedback II-search strategy's infeasibility oracle (see
 * docs/ALGORITHM.md, "Feedback-guided search").
 *
 * The probe accumulates a *bottleneck subgraph* from the feedback
 * reports of failed attempts — unplaceable operations first, then
 * displacement-storm vertices, each closed under its dependence SCC when
 * the whole component fits under the cap (a recurrence is only as hard
 * as its full cycle) — and decides candidate IIs by running the exact
 * branch-and-bound backend on the *induced subproblem*: the selected
 * operations with every dependence edge between them and their original
 * reservation alternatives.
 *
 * Soundness (what licenses skipping a candidate without attempting it):
 * any modulo schedule of the full loop restricts to a legal modulo
 * schedule of the induced subproblem at the same II — every subproblem
 * dependence is an original dependence with unchanged delay/distance,
 * and removing operations only frees modulo-reservation-table slots. So
 * "subproblem infeasible at II" proves "loop infeasible at II", which is
 * exactly the certificate the feedback strategy needs: a skipped II is
 * one the linear walk would have attempted and failed, leaving the
 * winner (and the winning schedule) bit-identical to linear.
 *
 * A probe run that exhausts its node budget is *inconclusive* — the
 * strategy attempts the candidate normally, degrading gracefully toward
 * the plain linear walk. The cap keeps the exact subproblem small enough
 * that this is rare in practice (see bench_ii_search's provable-gap
 * family).
 *
 * Invoked sequentially from the single feedback worker, so the mutable
 * accumulation needs no locking (see IiInfeasibilityProbe).
 */
class FeedbackProbe
{
  public:
    FeedbackProbe(const ir::Loop& loop, const machine::MachineModel& machine,
                  const graph::DepGraph& graph, const graph::SccResult& sccs,
                  int subgraph_cap, std::int64_t node_budget);
    ~FeedbackProbe();

    FeedbackProbe(const FeedbackProbe&) = delete;
    FeedbackProbe& operator=(const FeedbackProbe&) = delete;

    /**
     * IiInfeasibilityProbe entry point: fold `feedback` (the most recent
     * failed attempt's report) into the bottleneck subgraph, then return
     * true iff candidate `ii` is proven infeasible for the subproblem —
     * and hence, by the restriction argument above, for the loop.
     */
    bool operator()(int ii, const AttemptFeedback& feedback);

    /** Current bottleneck members (loop operation ids, ascending). */
    const std::vector<graph::VertexId>&
    members() const
    {
        return members_;
    }

    /** Exact subproblem runs performed / skips they proved. */
    int probesRun() const { return probesRun_; }
    int probesProven() const { return probesProven_; }

  private:
    struct Subproblem;

    /** Fold a report into the member set; true when the set grew. */
    bool merge(const AttemptFeedback& feedback);

    /** Materialise the induced subproblem for the current member set. */
    std::unique_ptr<Subproblem> buildSubproblem() const;

    const ir::Loop& loop_;
    const machine::MachineModel& machine_;
    const graph::DepGraph& graph_;
    const graph::SccResult& sccs_;
    int cap_;
    std::int64_t nodeBudget_;
    std::vector<std::uint8_t> inSet_;
    std::vector<graph::VertexId> members_;
    std::unique_ptr<Subproblem> sub_;
    int probesRun_ = 0;
    int probesProven_ = 0;
};

/**
 * Operations of `loop` with at least one alternative, all of whose
 * alternatives modulo-self-collide at `ii` (two uses of one resource a
 * multiple of II apart): such an operation cannot be placed at any slot,
 * so the loop is infeasible at `ii` and every attempt fails instantly
 * with AttemptStatus::kInfeasible. Used by the exact backend to populate
 * AttemptFeedback::unplaceable (the heuristic backends detect the same
 * set through their compiled reservation tables).
 */
std::vector<graph::VertexId>
collectUnplaceableOps(const ir::Loop& loop,
                      const machine::MachineModel& machine, int ii);

} // namespace ims::sched

#endif // IMS_SCHED_FEEDBACK_PROBE_HPP
