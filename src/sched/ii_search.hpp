#ifndef IMS_SCHED_II_SEARCH_HPP
#define IMS_SCHED_II_SEARCH_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/iterative_scheduler.hpp"
#include "support/cancellation.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * How the outer loop of Figure 2 walks the candidate IIs. Both policies
 * return the *lowest feasible* II: linear tries mii, mii+1, ... strictly
 * sequentially; racing launches attempts for several candidate IIs
 * concurrently and cancels in-flight attempts above the lowest success.
 *
 * Racing is deterministic by construction — see docs/ALGORITHM.md, "II
 * search strategies": an attempt at a candidate II is a pure function of
 * the immutable inputs and the II itself (per-worker scheduler state,
 * per-attempt (seed, ii) RNG derivation), and no attempt below the
 * eventual winner can ever be cancelled, so the returned (ii, schedule)
 * — and every statistic derived from the deterministic prefix
 * [mii, winner] — is bit-identical to the linear search regardless of
 * thread count or timing.
 *
 * Feedback walks the candidates sequentially like linear, but mines each
 * failed attempt's AttemptFeedback report: before attempting the next
 * candidate it asks an infeasibility probe (the exact backend run on the
 * bottleneck subgraph of the failed attempts) whether the candidate is
 * *provably* impossible, and skips it without attempting when so. A
 * skipped II is one the linear search would have attempted and failed,
 * so the winner — and the winning schedule, a pure function of the
 * winning II — is bit-identical to linear; when the probe is
 * inconclusive the strategy degenerates to exactly the linear walk. See
 * docs/ALGORITHM.md, "Feedback-guided search".
 */
enum class IiSearchKind
{
    kLinear,
    kRacing,
    kFeedback,
};

/** Stable lowercase name ("linear", "racing", "feedback"). */
std::string iiSearchKindName(IiSearchKind kind);

/** Inverse of iiSearchKindName; nullopt for unknown names. */
std::optional<IiSearchKind> iiSearchKindByName(std::string_view name);

/**
 * The II-search policy shared by the iterative and the slack modulo
 * schedulers (both consume it through their respective options structs,
 * so the budget/maxIiIncrease knobs exist exactly once).
 */
struct IiSearchOptions
{
    IiSearchKind kind = IiSearchKind::kLinear;
    /**
     * "BudgetRatio is the ratio of the maximum number of operation
     * scheduling steps attempted (before giving up and trying a larger
     * initiation interval) to the number of operations in the loop." The
     * paper's experiments use 6 for the quality study and recommend 2
     * (§4.3/§5); 2 is the default here.
     */
    double budgetRatio = 2.0;
    /** Safety bound on II above the MII before giving up entirely. */
    int maxIiIncrease = 4096;
    /** Racing worker count; <= 0 means hardware concurrency. Ignored by
     *  the linear and feedback strategies (both are single-worker; see
     *  docs/ALGORITHM.md on why feedback skipping cannot race). */
    int threads = 0;
    /**
     * Feedback strategy: at most this many operations in the bottleneck
     * subgraph handed to the infeasibility probe. Unplaceable operations
     * are picked first, then displacement-storm vertices; the probe
     * closes the set under dependence SCCs up to the cap. Small caps keep
     * the exact probe cheap; the probe is skipped entirely when the
     * feedback so far is inconclusive.
     */
    int feedbackSubgraphCap = 12;
    /** Feedback strategy: skip candidate IIs the probe proves infeasible
     *  (the strategy equals linear exactly when disabled). */
    bool feedbackSkipInfeasible = true;
    /** Feedback strategy: branch-and-bound node budget per probe call; an
     *  exhausted probe counts as inconclusive (no skip). */
    std::int64_t feedbackProbeBudget = 200'000;

    IiSearchOptions&
    withKind(IiSearchKind k)
    {
        kind = k;
        return *this;
    }

    IiSearchOptions&
    withBudgetRatio(double ratio)
    {
        budgetRatio = ratio;
        return *this;
    }

    IiSearchOptions&
    withMaxIiIncrease(int increase)
    {
        maxIiIncrease = increase;
        return *this;
    }

    IiSearchOptions&
    withThreads(int t)
    {
        threads = t;
        return *this;
    }

    IiSearchOptions&
    withFeedbackSubgraphCap(int cap)
    {
        feedbackSubgraphCap = cap;
        return *this;
    }

    IiSearchOptions&
    withFeedbackSkipInfeasible(bool skip)
    {
        feedbackSkipInfeasible = skip;
        return *this;
    }

    IiSearchOptions&
    withFeedbackProbeBudget(std::int64_t budget)
    {
        feedbackProbeBudget = budget;
        return *this;
    }
};

/** Stable lowercase name of an AttemptStatus ("scheduled", ...). */
std::string attemptStatusName(AttemptStatus status);

/**
 * One schedule attempt at a fixed candidate II, as seen by the search
 * strategy. `counters` is the attempt's *own* batched counter delta (the
 * strategy folds only the deterministic prefix into the search result);
 * `status` reports *why* the attempt ended — in particular it
 * distinguishes kInfeasible (this II is proven impossible; re-trying
 * with a larger budget is pointless) from kBudgetExhausted (undecided),
 * and kCancelled marks an attempt that abandoned work because the
 * token's ceiling dropped below its II mid-run.
 */
struct IiAttemptOutcome
{
    std::optional<ScheduleResult> schedule;
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    support::Counters counters;
    /**
     * The attempt's bottleneck report (sched/attempt_feedback.hpp). Every
     * backend populates it when the search strategy consumes feedback
     * (the driver passes the backend a sink iff the strategy asks);
     * otherwise it stays empty and costs nothing.
     */
    AttemptFeedback feedback;
};

/**
 * Callback scheduling one candidate II. `worker` is in
 * [0, plannedWorkers()); the strategy guarantees at most one concurrent
 * invocation per worker index, so per-worker mutable state (scheduler
 * buffers, counters) needs no locking. The token must be polled
 * cooperatively (IterativeScheduler::trySchedule does, once per
 * budget-loop iteration).
 */
using IiAttemptFn = std::function<IiAttemptOutcome(
    int ii, int worker, const support::CancellationToken& cancel)>;

/**
 * Infeasibility probe for the feedback strategy: given the next
 * candidate II and the most recent failed attempt's feedback report,
 * return true iff the candidate is *proven* infeasible (so the search
 * may skip it without attempting). Soundness is the caller's obligation
 * — a skip without a proof would desynchronise the feedback search from
 * linear. The probe is invoked sequentially from the single feedback
 * worker, so it may keep mutable state (the accumulated bottleneck
 * subgraph) without locking.
 */
using IiInfeasibilityProbe =
    std::function<bool(int ii, const AttemptFeedback& feedback)>;

/** One candidate II of the deterministic prefix, for telemetry. */
struct IiAttemptRecord
{
    int ii = 0;
    bool feasible = false;
    /** Why the attempt ended (kScheduled iff `feasible`). Deterministic:
     *  prefix attempts are never cancelled. */
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    /** Wall time of the attempt (nondeterministic; observability only). */
    double seconds = 0.0;
    /** True when the feedback strategy skipped this candidate: the probe
     *  proved it infeasible and no attempt ran (`status` is kInfeasible,
     *  `seconds` is the probe time). Always false for linear/racing. */
    bool skipped = false;
};

/** What a strategy's search() returns. */
struct IiSearchResult
{
    /** The winning schedule; nullopt when every candidate failed. */
    std::optional<ScheduleResult> schedule;
    /**
     * Length of the deterministic prefix: the number of candidate IIs
     * the equivalent linear search would have attempted
     * (winner - minIi + 1, or the whole range on exhaustion). This, the
     * schedule, `counters` and `records` are bit-identical across
     * strategies and thread counts.
     */
    int searchedIis = 0;
    /** Counter deltas summed over the deterministic prefix only. */
    support::Counters counters;
    /** Per-candidate records for the deterministic prefix, in II order. */
    std::vector<IiAttemptRecord> records;
    /**
     * Prefix attempts that ended with AttemptStatus::kInfeasible — the
     * candidate II was *proven* impossible (as opposed to merely running
     * out of budget). Deterministic, like everything derived from the
     * prefix. Always the case for the exact backend's failed prefix
     * attempts; the heuristic backends prove it only when some operation
     * has no usable alternative at that II.
     */
    int attemptsProvenInfeasible = 0;
    /**
     * Prefix candidates the feedback strategy skipped because the probe
     * proved them infeasible (subset of searchedIis; their records carry
     * `skipped`). Deterministic — the single feedback worker's skip
     * decisions are a pure function of the attempt history. Always 0 for
     * linear/racing.
     */
    int skippedIis = 0;

    // Everything below is observability for the race itself and is NOT
    // deterministic (it depends on thread scheduling): speculative
    // attempts above the winner may or may not have started.
    /** Attempts actually launched (>= searchedIis under racing). */
    int attemptsStarted = 0;
    /** Attempts that aborted mid-run via the cancellation token. */
    int attemptsCancelled = 0;
    /** Attempts launched above the winning II (their work is discarded). */
    int attemptsWasted = 0;
    /** Workers the strategy ran with. */
    int workers = 1;
    /** End-to-end wall time of the search. */
    double wallSeconds = 0.0;
    /** Sum of per-attempt wall times — with racing, cpuSeconds >
     *  wallSeconds measures the achieved overlap. */
    double cpuSeconds = 0.0;
};

/**
 * Strategy interface for the outer II loop. Implementations must return
 * the lowest feasible II in [minIi, maxIi] with deterministic results
 * (see IiSearchKind).
 */
class IiSearchStrategy
{
  public:
    virtual ~IiSearchStrategy() = default;

    /** Stable strategy name ("linear", "racing", "feedback"). */
    virtual std::string name() const = 0;

    /**
     * Worker indices the strategy will use for a range of `candidates`
     * IIs; the attempt callback sees `worker` < this value. Callers
     * pre-size per-worker state with it.
     */
    virtual int plannedWorkers(int candidates) const = 0;

    /**
     * Search [minIi, maxIi] (inclusive) for the lowest feasible II.
     * `probe` is consumed by the feedback strategy only (linear and
     * racing ignore it); an empty probe makes feedback degenerate to the
     * linear walk.
     */
    virtual IiSearchResult search(int minIi, int maxIi,
                                  const IiAttemptFn& attempt,
                                  const IiInfeasibilityProbe& probe) const = 0;

    /** Convenience overload without a probe. */
    IiSearchResult
    search(int min_ii, int max_ii, const IiAttemptFn& attempt) const
    {
        return search(min_ii, max_ii, attempt, IiInfeasibilityProbe{});
    }
};

/** Build the strategy selected by `options`. */
std::unique_ptr<IiSearchStrategy>
makeIiSearchStrategy(const IiSearchOptions& options);

} // namespace ims::sched

#endif // IMS_SCHED_II_SEARCH_HPP
