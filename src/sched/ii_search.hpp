#ifndef IMS_SCHED_II_SEARCH_HPP
#define IMS_SCHED_II_SEARCH_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/iterative_scheduler.hpp"
#include "support/cancellation.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * How the outer loop of Figure 2 walks the candidate IIs. Both policies
 * return the *lowest feasible* II: linear tries mii, mii+1, ... strictly
 * sequentially; racing launches attempts for several candidate IIs
 * concurrently and cancels in-flight attempts above the lowest success.
 *
 * Racing is deterministic by construction — see docs/ALGORITHM.md, "II
 * search strategies": an attempt at a candidate II is a pure function of
 * the immutable inputs and the II itself (per-worker scheduler state,
 * per-attempt (seed, ii) RNG derivation), and no attempt below the
 * eventual winner can ever be cancelled, so the returned (ii, schedule)
 * — and every statistic derived from the deterministic prefix
 * [mii, winner] — is bit-identical to the linear search regardless of
 * thread count or timing.
 */
enum class IiSearchKind
{
    kLinear,
    kRacing,
};

/** Stable lowercase name ("linear", "racing"). */
std::string iiSearchKindName(IiSearchKind kind);

/** Inverse of iiSearchKindName; nullopt for unknown names. */
std::optional<IiSearchKind> iiSearchKindByName(std::string_view name);

/**
 * The II-search policy shared by the iterative and the slack modulo
 * schedulers (both consume it through their respective options structs,
 * so the budget/maxIiIncrease knobs exist exactly once).
 */
struct IiSearchOptions
{
    IiSearchKind kind = IiSearchKind::kLinear;
    /**
     * "BudgetRatio is the ratio of the maximum number of operation
     * scheduling steps attempted (before giving up and trying a larger
     * initiation interval) to the number of operations in the loop." The
     * paper's experiments use 6 for the quality study and recommend 2
     * (§4.3/§5); 2 is the default here.
     */
    double budgetRatio = 2.0;
    /** Safety bound on II above the MII before giving up entirely. */
    int maxIiIncrease = 4096;
    /** Racing worker count; <= 0 means hardware concurrency. Ignored by
     *  the linear strategy. */
    int threads = 0;

    IiSearchOptions&
    withKind(IiSearchKind k)
    {
        kind = k;
        return *this;
    }

    IiSearchOptions&
    withBudgetRatio(double ratio)
    {
        budgetRatio = ratio;
        return *this;
    }

    IiSearchOptions&
    withMaxIiIncrease(int increase)
    {
        maxIiIncrease = increase;
        return *this;
    }

    IiSearchOptions&
    withThreads(int t)
    {
        threads = t;
        return *this;
    }
};

/** Stable lowercase name of an AttemptStatus ("scheduled", ...). */
std::string attemptStatusName(AttemptStatus status);

/**
 * One schedule attempt at a fixed candidate II, as seen by the search
 * strategy. `counters` is the attempt's *own* batched counter delta (the
 * strategy folds only the deterministic prefix into the search result);
 * `status` reports *why* the attempt ended — in particular it
 * distinguishes kInfeasible (this II is proven impossible; re-trying
 * with a larger budget is pointless) from kBudgetExhausted (undecided),
 * and kCancelled marks an attempt that abandoned work because the
 * token's ceiling dropped below its II mid-run.
 */
struct IiAttemptOutcome
{
    std::optional<ScheduleResult> schedule;
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    support::Counters counters;
};

/**
 * Callback scheduling one candidate II. `worker` is in
 * [0, plannedWorkers()); the strategy guarantees at most one concurrent
 * invocation per worker index, so per-worker mutable state (scheduler
 * buffers, counters) needs no locking. The token must be polled
 * cooperatively (IterativeScheduler::trySchedule does, once per
 * budget-loop iteration).
 */
using IiAttemptFn = std::function<IiAttemptOutcome(
    int ii, int worker, const support::CancellationToken& cancel)>;

/** One candidate II of the deterministic prefix, for telemetry. */
struct IiAttemptRecord
{
    int ii = 0;
    bool feasible = false;
    /** Why the attempt ended (kScheduled iff `feasible`). Deterministic:
     *  prefix attempts are never cancelled. */
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    /** Wall time of the attempt (nondeterministic; observability only). */
    double seconds = 0.0;
};

/** What a strategy's search() returns. */
struct IiSearchResult
{
    /** The winning schedule; nullopt when every candidate failed. */
    std::optional<ScheduleResult> schedule;
    /**
     * Length of the deterministic prefix: the number of candidate IIs
     * the equivalent linear search would have attempted
     * (winner - minIi + 1, or the whole range on exhaustion). This, the
     * schedule, `counters` and `records` are bit-identical across
     * strategies and thread counts.
     */
    int searchedIis = 0;
    /** Counter deltas summed over the deterministic prefix only. */
    support::Counters counters;
    /** Per-candidate records for the deterministic prefix, in II order. */
    std::vector<IiAttemptRecord> records;
    /**
     * Prefix attempts that ended with AttemptStatus::kInfeasible — the
     * candidate II was *proven* impossible (as opposed to merely running
     * out of budget). Deterministic, like everything derived from the
     * prefix. Always the case for the exact backend's failed prefix
     * attempts; the heuristic backends prove it only when some operation
     * has no usable alternative at that II.
     */
    int attemptsProvenInfeasible = 0;

    // Everything below is observability for the race itself and is NOT
    // deterministic (it depends on thread scheduling): speculative
    // attempts above the winner may or may not have started.
    /** Attempts actually launched (>= searchedIis under racing). */
    int attemptsStarted = 0;
    /** Attempts that aborted mid-run via the cancellation token. */
    int attemptsCancelled = 0;
    /** Attempts launched above the winning II (their work is discarded). */
    int attemptsWasted = 0;
    /** Workers the strategy ran with. */
    int workers = 1;
    /** End-to-end wall time of the search. */
    double wallSeconds = 0.0;
    /** Sum of per-attempt wall times — with racing, cpuSeconds >
     *  wallSeconds measures the achieved overlap. */
    double cpuSeconds = 0.0;
};

/**
 * Strategy interface for the outer II loop. Implementations must return
 * the lowest feasible II in [minIi, maxIi] with deterministic results
 * (see IiSearchKind).
 */
class IiSearchStrategy
{
  public:
    virtual ~IiSearchStrategy() = default;

    /** Stable strategy name ("linear", "racing"). */
    virtual std::string name() const = 0;

    /**
     * Worker indices the strategy will use for a range of `candidates`
     * IIs; the attempt callback sees `worker` < this value. Callers
     * pre-size per-worker state with it.
     */
    virtual int plannedWorkers(int candidates) const = 0;

    /** Search [minIi, maxIi] (inclusive) for the lowest feasible II. */
    virtual IiSearchResult search(int minIi, int maxIi,
                                  const IiAttemptFn& attempt) const = 0;
};

/** Build the strategy selected by `options`. */
std::unique_ptr<IiSearchStrategy>
makeIiSearchStrategy(const IiSearchOptions& options);

} // namespace ims::sched

#endif // IMS_SCHED_II_SEARCH_HPP
