#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <utility>

#include "sched/height_r.hpp"

namespace ims::sched {

namespace {

/** Unbounded (linear) schedule reservation table. */
class LinearReservationTable
{
  public:
    bool
    conflicts(const machine::ReservationTable& table, int time) const
    {
        for (const auto& use : table.uses()) {
            if (cells_.count({time + use.time, use.resource}) != 0)
                return true;
        }
        return false;
    }

    void
    reserve(const machine::ReservationTable& table, int time)
    {
        for (const auto& use : table.uses()) {
            [[maybe_unused]] const bool inserted =
                cells_.insert({time + use.time, use.resource}).second;
            assert(inserted);
        }
    }

  private:
    std::set<std::pair<int, machine::ResourceId>> cells_;
};

} // namespace

ListScheduleResult
listSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
             const graph::DepGraph& graph, support::Counters* counters,
             support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kListSchedule);
    const auto height = computeAcyclicHeight(graph, counters);

    // Operation scheduling in decreasing height order; distance-0 edges
    // only. Since predecessors always have strictly earlier... no — equal
    // heights are possible, so process in a topological-compatible order:
    // sort by (height desc, id asc) and schedule each op at the first
    // conflict-free slot at or after its Estart over already-placed
    // predecessors. Every predecessor of an op has strictly greater
    // height + delay, hence is placed earlier in this order.
    std::vector<graph::VertexId> order;
    for (graph::VertexId v = 0; v < graph.numVertices(); ++v)
        order.push_back(v);
    std::sort(order.begin(), order.end(),
              [&](graph::VertexId a, graph::VertexId b) {
                  return height[a] != height[b] ? height[a] > height[b]
                                                : a < b;
              });

    std::vector<int> time(graph.numVertices(), 0);
    std::vector<int> alternative(graph.numVertices(), 0);
    std::vector<bool> placed(graph.numVertices(), false);
    LinearReservationTable reservations;

    for (graph::VertexId v : order) {
        // Estart over placed predecessors (distance-0 edges only).
        int estart = 0;
        for (graph::EdgeId eid : graph.inEdges(v)) {
            const graph::DepEdge& edge = graph.edge(eid);
            if (edge.distance != 0 || !placed[edge.from])
                continue;
            estart = std::max(estart, time[edge.from] + edge.delay);
        }
        if (graph.isPseudo(v)) {
            time[v] = estart;
            placed[v] = true;
            continue;
        }
        const auto& alternatives =
            machine.info(loop.operation(v).opcode).alternatives;
        int t = estart;
        int chosen = -1;
        while (chosen < 0) {
            for (std::size_t alt = 0; alt < alternatives.size(); ++alt) {
                if (!reservations.conflicts(alternatives[alt].table, t)) {
                    chosen = static_cast<int>(alt);
                    break;
                }
            }
            if (chosen < 0)
                ++t;
        }
        reservations.reserve(alternatives[chosen].table, t);
        time[v] = t;
        alternative[v] = chosen;
        placed[v] = true;
    }

    ListScheduleResult result;
    result.times.assign(time.begin(), time.begin() + graph.numOps());
    result.alternatives.assign(alternative.begin(),
                               alternative.begin() + graph.numOps());
    result.scheduleLength = time[graph.stop()];
    return result;
}

} // namespace ims::sched
