#include "sched/feedback_probe.hpp"

#include <algorithm>
#include <cassert>

#include "sched/exact_scheduler.hpp"

namespace ims::sched {

namespace {

/** Does this table use one resource twice, a multiple of `ii` apart? */
bool
selfCollidesAt(const machine::ReservationTable& table, int ii)
{
    const auto& uses = table.uses();
    for (std::size_t i = 0; i < uses.size(); ++i) {
        for (std::size_t j = i + 1; j < uses.size(); ++j) {
            if (uses[i].resource != uses[j].resource)
                continue;
            if ((uses[j].time - uses[i].time) % ii == 0)
                return true;
        }
    }
    return false;
}

} // namespace

std::vector<graph::VertexId>
collectUnplaceableOps(const ir::Loop& loop,
                      const machine::MachineModel& machine, int ii)
{
    std::vector<graph::VertexId> unplaceable;
    for (const ir::Operation& op : loop.operations()) {
        const auto& alternatives = machine.info(op.opcode).alternatives;
        if (alternatives.empty())
            continue;
        bool all_collide = true;
        for (const auto& alternative : alternatives) {
            if (!selfCollidesAt(alternative.table, ii)) {
                all_collide = false;
                break;
            }
        }
        if (all_collide)
            unplaceable.push_back(op.id);
    }
    return unplaceable;
}

/**
 * The materialised induced subproblem. The members own the loop, graph
 * and SCCs the ExactScheduler references, and the whole bundle lives
 * behind a unique_ptr so those references stay stable for the
 * scheduler's lifetime (it reuses buffers across candidate IIs).
 */
struct FeedbackProbe::Subproblem
{
    ir::Loop loop;
    graph::DepGraph graph;
    graph::SccResult sccs;
    ExactScheduler scheduler;

    Subproblem(ir::Loop sub_loop, graph::DepGraph sub_graph,
               const machine::MachineModel& machine)
        : loop(std::move(sub_loop)),
          graph(std::move(sub_graph)),
          sccs(graph::findSccs(graph)),
          scheduler(loop, machine, graph, sccs)
    {
    }
};

FeedbackProbe::FeedbackProbe(const ir::Loop& loop,
                             const machine::MachineModel& machine,
                             const graph::DepGraph& graph,
                             const graph::SccResult& sccs, int subgraph_cap,
                             std::int64_t node_budget)
    : loop_(loop),
      machine_(machine),
      graph_(graph),
      sccs_(sccs),
      cap_(subgraph_cap),
      nodeBudget_(node_budget),
      inSet_(static_cast<std::size_t>(graph.numVertices()), 0)
{
    assert(cap_ > 0 && nodeBudget_ > 0);
}

FeedbackProbe::~FeedbackProbe() = default;

bool
FeedbackProbe::merge(const AttemptFeedback& feedback)
{
    bool changed = false;
    const auto add_single = [&](graph::VertexId v) {
        inSet_[static_cast<std::size_t>(v)] = 1;
        members_.push_back(v);
        changed = true;
    };
    for (graph::VertexId v : feedback.bottleneck(cap_)) {
        if (v < 0 || graph_.isPseudo(v) ||
            inSet_[static_cast<std::size_t>(v)]) {
            continue;
        }
        if (static_cast<int>(members_.size()) >= cap_)
            break;
        // SCC closure when the whole component fits: a recurrence
        // member alone carries none of the cycle's RecMII constraint,
        // so pull in the full cycle whenever the cap allows. Falling
        // back to the lone vertex is still sound (any induced subgraph
        // is), just a weaker certificate.
        const auto& component =
            sccs_.components()[static_cast<std::size_t>(
                sccs_.componentOf(v))];
        int missing = 0;
        for (graph::VertexId m : component) {
            if (!graph_.isPseudo(m) && !inSet_[static_cast<std::size_t>(m)])
                ++missing;
        }
        if (static_cast<int>(members_.size()) + missing <= cap_) {
            for (graph::VertexId m : component) {
                if (!graph_.isPseudo(m) &&
                    !inSet_[static_cast<std::size_t>(m)]) {
                    add_single(m);
                }
            }
        } else {
            add_single(v);
        }
    }
    if (changed)
        std::sort(members_.begin(), members_.end());
    return changed;
}

std::unique_ptr<FeedbackProbe::Subproblem>
FeedbackProbe::buildSubproblem() const
{
    // The sub-loop's job is to map each vertex to its reservation
    // alternatives (and lend names to error messages); registers and
    // operands stay behind — dependences are copied from the real graph
    // below, not rederived.
    ir::Loop sub_loop("bottleneck(" + loop_.name() + ")");
    for (graph::VertexId v : members_) {
        const ir::Operation& original = loop_.operation(v);
        ir::Operation op;
        op.opcode = original.opcode;
        op.comment = "op " + std::to_string(v) + " of " + loop_.name();
        sub_loop.addOperation(op);
    }

    std::vector<int> local(static_cast<std::size_t>(graph_.numVertices()),
                           -1);
    for (std::size_t i = 0; i < members_.size(); ++i)
        local[static_cast<std::size_t>(members_[i])] = static_cast<int>(i);

    graph::DepGraph sub_graph(static_cast<int>(members_.size()));
    for (const graph::DepEdge& edge : graph_.edges()) {
        if (edge.kind == graph::DepKind::kPseudo)
            continue;
        const int from = local[static_cast<std::size_t>(edge.from)];
        const int to = local[static_cast<std::size_t>(edge.to)];
        if (from < 0 || to < 0)
            continue;
        graph::DepEdge copy = edge;
        copy.from = from;
        copy.to = to;
        sub_graph.addEdge(copy);
    }
    // START/STOP bookkeeping edges, mirroring graph::buildDepGraph.
    for (std::size_t i = 0; i < members_.size(); ++i) {
        graph::DepEdge start_edge;
        start_edge.from = sub_graph.start();
        start_edge.to = static_cast<int>(i);
        start_edge.kind = graph::DepKind::kPseudo;
        sub_graph.addEdge(start_edge);

        graph::DepEdge stop_edge;
        stop_edge.from = static_cast<int>(i);
        stop_edge.to = sub_graph.stop();
        stop_edge.kind = graph::DepKind::kPseudo;
        stop_edge.delay =
            machine_.latency(loop_.operation(members_[i]).opcode);
        sub_graph.addEdge(stop_edge);
    }

    return std::make_unique<Subproblem>(std::move(sub_loop),
                                        std::move(sub_graph), machine_);
}

bool
FeedbackProbe::operator()(int ii, const AttemptFeedback& feedback)
{
    if (merge(feedback))
        sub_ = members_.empty() ? nullptr : buildSubproblem();
    if (sub_ == nullptr)
        return false;
    ++probesRun_;
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    (void)sub_->scheduler.trySchedule(ii, nodeBudget_, nullptr, &status);
    if (status != AttemptStatus::kInfeasible)
        return false; // feasible or budget-exhausted: inconclusive
    ++probesProven_;
    return true;
}

} // namespace ims::sched
