#ifndef IMS_SCHED_HEIGHT_R_HPP
#define IMS_SCHED_HEIGHT_R_HPP

#include <cstdint>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * The height-based priority of Figure 5(a), extended for inter-iteration
 * dependences:
 *
 *   HeightR(P) = 0 if P is STOP, else
 *                max over successors Q of
 *                    HeightR(Q) + Delay(P,Q) - II * Distance(P,Q).
 *
 * Computed numerically for a given II (the paper argues symbolic
 * evaluation does not pay off, §4.3) by sweeping the SCC condensation in
 * reverse topological order and relaxing to a fixed point within each
 * component — valid because II >= RecMII guarantees no positive-weight
 * cycle. Returns one value per graph vertex (START and STOP included).
 *
 * @throws support::Error if a positive-weight cycle is detected (II below
 *         the RecMII).
 */
std::vector<std::int64_t> computeHeightR(const graph::DepGraph& graph,
                                         const graph::SccResult& sccs,
                                         int ii,
                                         support::Counters* counters =
                                             nullptr);

/**
 * Buffer-reusing variant: writes the heights into `height` (resized and
 * reinitialised as needed), so callers retrying successive candidate IIs
 * do not reallocate per attempt.
 */
void computeHeightRInto(const graph::DepGraph& graph,
                        const graph::SccResult& sccs, int ii,
                        support::Counters* counters,
                        std::vector<std::int64_t>& height);

/**
 * Acyclic height used by the baseline list scheduler: the same recurrence
 * restricted to intra-iteration (distance 0) edges, which always form a
 * DAG.
 */
std::vector<std::int64_t>
computeAcyclicHeight(const graph::DepGraph& graph,
                     support::Counters* counters = nullptr);

} // namespace ims::sched

#endif // IMS_SCHED_HEIGHT_R_HPP
