#include "sched/iterative_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "sched/attempt_state.hpp"
#include "sched/partial_schedule.hpp"
#include "sched/ready_queue.hpp"

namespace ims::sched {

namespace {

/**
 * Working state of one attempt; separated from IterativeScheduler so the
 * scheduler object itself stays reusable across IIs.
 *
 * The attempt keeps its instrumentation in an AttemptCounters instead of
 * bumping a support::Counters* on every inner-loop iteration; the
 * scheduler flushes one batched delta per attempt into the unified
 * telemetry counters (see IterativeScheduler::trySchedule).
 *
 * Estart is maintained incrementally by an EstartTracker (delta updates
 * on place/displace instead of a per-step in-edge rescan); the values it
 * returns are bit-identical to the rescan, so schedules and traces are
 * unchanged.
 */
class Attempt
{
  public:
    Attempt(const ir::Loop& loop, const machine::MachineModel& machine,
            const graph::DepGraph& graph,
            const std::vector<std::int64_t>& priority,
            const IterativeScheduleOptions& options, int ii,
            machine::CompiledTableCache* cache,
            const support::CancellationToken* cancel)
        : graph_(graph),
          priority_(priority),
          options_(options),
          ii_(ii),
          cancel_(cancel),
          schedule_(graph, loop, machine, ii, cache),
          estart_(graph, schedule_, stats_),
          ready_(priority)
    {
        if (options.feedback != nullptr) {
            displaceCount_.assign(
                static_cast<std::size_t>(graph.numVertices()), 0);
            resourceEvictions_.assign(
                static_cast<std::size_t>(machine.numResources()), 0);
        }
    }

    /** Runs Figure 3's main loop. Returns true if fully scheduled. */
    bool
    run(std::int64_t budget)
    {
        if (!schedule_.allVerticesPlaceable()) {
            status_ = AttemptStatus::kInfeasible;
            return false;
        }

        // Schedule START at time 0.
        schedule_.place(graph_.start(), 0, 0);
        estart_.onPlace(graph_.start(), 0);
        ready_.erase(graph_.start());
        --budget;
        ++stats_.scheduleSteps;

        while (!ready_.empty() && budget > 0) {
            // Cooperative cancellation: when a racing search has already
            // accepted a lower II, this attempt's remaining work cannot
            // affect the (deterministic) result — stop within one
            // budget-loop check. One relaxed load per scheduling step.
            if (cancel_ != nullptr && cancel_->cancelled(ii_)) {
                status_ = AttemptStatus::kCancelled;
                return false;
            }
            const graph::VertexId op = ready_.top();
            const int estart = estart_.estart(op);
            const int min_time = estart;
            const int max_time = min_time + ii_ - 1;
            const auto [slot, alternative] =
                findTimeSlot(op, min_time, max_time);

            TraceEvent event;
            if (options_.trace != nullptr) {
                event.step = static_cast<int>(stats_.scheduleSteps);
                event.op = op;
                event.priority = priority_[op];
                event.estart = estart;
                event.minTime = min_time;
                event.maxTime = max_time;
                event.slot = slot;
                event.forced = alternative < 0;
                displacedThisStep_.clear();
                resourceDisplacedThisStep_.clear();
            }

            scheduleAt(op, slot, alternative);
            --budget;
            ++stats_.scheduleSteps;

            if (options_.trace != nullptr) {
                event.alternative = schedule_.alternativeOf(op);
                event.displaced = displacedThisStep_;
                event.resourceDisplaced = resourceDisplacedThisStep_;
                options_.trace->push_back(std::move(event));
            }
        }
        if (ready_.empty()) {
            status_ = AttemptStatus::kScheduled;
            return true;
        }
        status_ = AttemptStatus::kBudgetExhausted;
        return false;
    }

    /**
     * Write the attempt's bottleneck report into options.feedback (when
     * set): the unplaceable operations, the displacement storm sorted by
     * count descending (then id, so the report is a pure function of the
     * attempt), and the resource classes whose occupancy forced
     * evictions. Successful and cancelled attempts leave the sink
     * cleared — a cancelled attempt is abandoned speculation and must
     * not steer the search.
     */
    void
    flushFeedback()
    {
        if (options_.feedback == nullptr)
            return;
        finalizeAttemptFeedback(*options_.feedback, ii_, status_, schedule_,
                                graph_, displaceCount_, resourceEvictions_);
    }

    AttemptStatus status() const { return status_; }
    std::int64_t
    stepsUsed() const
    {
        return static_cast<std::int64_t>(stats_.scheduleSteps);
    }
    std::int64_t
    unschedules() const
    {
        return static_cast<std::int64_t>(stats_.unscheduleSteps);
    }
    const AttemptCounters& stats() const { return stats_; }
    const PartialSchedule& schedule() const { return schedule_; }

  private:
    /**
     * Figure 4. Returns (slot, alternative); alternative is -1 when no
     * conflict-free slot exists (forced placement).
     *
     * One word-parallel slot scan per (non-self-conflicting) alternative
     * replaces the former slot-by-slot probe loop: each scan tests all
     * II candidate times of the window at once against the MRT's
     * per-resource bitsets. The chosen (slot, alternative) is the
     * lexicographic minimum — earliest slot, then lowest alternative
     * index — exactly what the slot-by-slot, alternative-by-alternative
     * loop produced, so schedules are bit-identical.
     */
    std::pair<int, int>
    findTimeSlot(graph::VertexId op, int min_time, int max_time)
    {
        assert(max_time - min_time + 1 == ii_);
        const auto& compiled = schedule_.compiledAlternativesOf(op);
        int best_slot = -1;
        int best_alternative = -1;
        for (std::size_t alt = 0; alt < compiled.size(); ++alt) {
            if (compiled[alt].selfConflicts())
                continue;
            const int slot =
                schedule_.mrt().firstFreeSlot(compiled[alt], min_time);
            if (slot < 0)
                continue;
            if (best_slot < 0 || slot < best_slot) {
                best_slot = slot;
                best_alternative = static_cast<int>(alt);
            }
            if (best_slot == min_time)
                break; // no alternative can beat the window's start
        }
        if (best_slot >= 0) {
            // Keep the Table-4 probe metric comparable: the slot-by-slot
            // loop this scan replaced examined every slot up to the hit.
            stats_.slotProbes +=
                static_cast<std::uint64_t>(best_slot - min_time + 1);
            return {best_slot, best_alternative};
        }
        stats_.slotProbes +=
            static_cast<std::uint64_t>(max_time - min_time + 1);
        // No conflict-free slot: pick per the forward-progress rule.
        int slot;
        if (!options_.forwardProgressRule) {
            slot = min_time;
        } else if (schedule_.neverScheduled(op) ||
                   min_time > schedule_.prevScheduleTime(op)) {
            slot = min_time;
        } else {
            slot = schedule_.prevScheduleTime(op) + 1;
        }
        return {slot, -1};
    }

    /** §3.4's Schedule(): place `op`, displacing whatever conflicts. */
    void
    scheduleAt(graph::VertexId op, int slot, int alternative)
    {
        if (alternative < 0) {
            // Forced placement (Figure 4): choose the first alternative
            // usable at this II and displace only the operations holding
            // *its* resources — evicting victims of the alternatives not
            // chosen would inflate the unschedule count for nothing.
            const auto& compiled = schedule_.compiledAlternativesOf(op);
            for (std::size_t alt = 0; alt < compiled.size(); ++alt) {
                if (compiled[alt].selfConflicts())
                    continue;
                alternative = static_cast<int>(alt);
                break;
            }
            assert(alternative >= 0 &&
                   "allVerticesPlaceable guarantees a usable alternative");
            schedule_.mrt().conflictingOps(
                schedule_.alternativesOf(op)[alternative].table, slot,
                conflictScratch_);
            if (options_.trace != nullptr)
                resourceDisplacedThisStep_ = conflictScratch_;
            if (options_.feedback != nullptr && !conflictScratch_.empty()) {
                // Charge the forced evictions to the chosen alternative's
                // resource classes, once per distinct resource.
                const auto& uses =
                    schedule_.alternativesOf(op)[alternative].table.uses();
                for (std::size_t i = 0; i < uses.size(); ++i) {
                    bool seen = false;
                    for (std::size_t j = 0; j < i && !seen; ++j)
                        seen = uses[j].resource == uses[i].resource;
                    if (!seen) {
                        resourceEvictions_[uses[i].resource] +=
                            static_cast<std::int64_t>(
                                conflictScratch_.size());
                    }
                }
            }
            for (int victim : conflictScratch_)
                displace(victim);
            assert(schedule_.fittingAlternative(op, slot) == alternative &&
                   "displacing the chosen alternative's victims frees it");
        }
        schedule_.place(op, slot, alternative);
        estart_.onPlace(op, slot);
        ready_.erase(op);

        // Displace successors whose dependence constraints are violated.
        // (Predecessor constraints hold by construction: slot >= Estart.)
        ejectViolatedSuccessors(graph_, schedule_, op, slot, ii_,
                                [this](graph::VertexId victim) {
                                    displace(victim);
                                });
    }

    void
    displace(graph::VertexId victim)
    {
        assert(victim != graph_.start() && "START is never displaced");
        if (!schedule_.isScheduled(victim))
            return;
        schedule_.remove(victim);
        estart_.onRemove(victim);
        ready_.push(victim);
        ++stats_.unscheduleSteps;
        if (options_.feedback != nullptr)
            ++displaceCount_[victim];
        if (options_.trace != nullptr)
            displacedThisStep_.push_back(victim);
    }

    const graph::DepGraph& graph_;
    const std::vector<std::int64_t>& priority_;
    const IterativeScheduleOptions& options_;
    int ii_;
    const support::CancellationToken* cancel_;
    AttemptStatus status_ = AttemptStatus::kBudgetExhausted;
    AttemptCounters stats_;
    PartialSchedule schedule_;
    EstartTracker estart_;
    ReadyQueue ready_;
    /** Scratch for forced-placement conflict queries (no per-call alloc). */
    std::vector<int> conflictScratch_;
    /** Feedback-only (empty when options.feedback is null): displacement
     *  count per vertex and forced evictions charged per resource. */
    std::vector<std::int32_t> displaceCount_;
    std::vector<std::int64_t> resourceEvictions_;
    std::vector<graph::VertexId> displacedThisStep_;
    std::vector<graph::VertexId> resourceDisplacedThisStep_;
};

} // namespace

IterativeScheduler::IterativeScheduler(const ir::Loop& loop,
                                       const machine::MachineModel& machine,
                                       const graph::DepGraph& graph,
                                       const graph::SccResult& sccs,
                                       IterativeScheduleOptions options,
                                       support::Counters* counters)
    : loop_(loop),
      machine_(machine),
      graph_(graph),
      sccs_(sccs),
      options_(options),
      counters_(counters)
{
    assert(loop.size() == graph.numOps());
}

std::optional<ScheduleResult>
IterativeScheduler::trySchedule(int ii, std::int64_t budget,
                                const support::CancellationToken* cancel,
                                AttemptStatus* status)
{
    computePrioritiesInto(graph_, sccs_, ii, options_.priority,
                          options_.randomSeed, counters_,
                          priorityWorkspace_);

    Attempt attempt(loop_, machine_, graph_, priorityWorkspace_.priorities,
                    options_, ii, &compiledCache_, cancel);
    const bool success = attempt.run(budget);
    if (status != nullptr)
        *status = attempt.status();
    attempt.flushFeedback();

    // One batched delta per attempt feeds the unified telemetry counters
    // (and, through the pipeliner's end-of-run onCounters, every
    // TelemetrySink) — the hot loop itself never touches the shared
    // struct.
    if (counters_ != nullptr)
        attempt.stats().flushInto(*counters_, attempt.schedule().mrt());

    if (!success)
        return std::nullopt;

    return extractScheduleResult(attempt.schedule(), graph_, ii,
                                 attempt.stepsUsed(),
                                 attempt.unschedules());
}

} // namespace ims::sched
