#include "sched/iterative_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "sched/partial_schedule.hpp"
#include "sched/ready_queue.hpp"

namespace ims::sched {

namespace {

/**
 * Working state of one attempt; separated from IterativeScheduler so the
 * scheduler object itself stays reusable across IIs.
 */
class Attempt
{
  public:
    Attempt(const ir::Loop& loop, const machine::MachineModel& machine,
            const graph::DepGraph& graph,
            const std::vector<std::int64_t>& priority,
            const IterativeScheduleOptions& options, int ii,
            support::Counters* counters)
        : graph_(graph),
          priority_(priority),
          options_(options),
          ii_(ii),
          counters_(counters),
          schedule_(graph, loop, machine, ii),
          ready_(priority)
    {
    }

    /** Runs Figure 3's main loop. Returns true if fully scheduled. */
    bool
    run(std::int64_t budget)
    {
        if (!schedule_.allVerticesPlaceable())
            return false;

        // Schedule START at time 0.
        schedule_.place(graph_.start(), 0, 0);
        ready_.erase(graph_.start());
        --budget;
        ++stepsUsed_;
        support::bump(counters_, &support::Counters::scheduleSteps);

        while (!ready_.empty() && budget > 0) {
            const graph::VertexId op = ready_.top();
            const int estart = calculateEarlyStart(op);
            const int min_time = estart;
            const int max_time = min_time + ii_ - 1;
            const auto [slot, alternative] =
                findTimeSlot(op, min_time, max_time);

            TraceEvent event;
            if (options_.trace != nullptr) {
                event.step = static_cast<int>(stepsUsed_);
                event.op = op;
                event.priority = priority_[op];
                event.estart = estart;
                event.minTime = min_time;
                event.maxTime = max_time;
                event.slot = slot;
                event.forced = alternative < 0;
                displacedThisStep_.clear();
                resourceDisplacedThisStep_.clear();
            }

            scheduleAt(op, slot, alternative);
            --budget;
            ++stepsUsed_;
            support::bump(counters_, &support::Counters::scheduleSteps);

            if (options_.trace != nullptr) {
                event.alternative = schedule_.alternativeOf(op);
                event.displaced = displacedThisStep_;
                event.resourceDisplaced = resourceDisplacedThisStep_;
                options_.trace->push_back(std::move(event));
            }
        }
        return ready_.empty();
    }

    std::int64_t stepsUsed() const { return stepsUsed_; }
    std::int64_t unschedules() const { return unschedules_; }
    const PartialSchedule& schedule() const { return schedule_; }

  private:
    /** Figure 5(b): only currently scheduled predecessors constrain. */
    int
    calculateEarlyStart(graph::VertexId op) const
    {
        std::int64_t estart = 0;
        for (graph::EdgeId eid : graph_.inEdges(op)) {
            support::bump(counters_,
                          &support::Counters::estartPredecessorVisits);
            const graph::DepEdge& edge = graph_.edge(eid);
            if (edge.from == op || !schedule_.isScheduled(edge.from))
                continue;
            const std::int64_t bound =
                schedule_.timeOf(edge.from) + edge.delay -
                static_cast<std::int64_t>(ii_) * edge.distance;
            estart = std::max(estart, std::max<std::int64_t>(0, bound));
        }
        return static_cast<int>(estart);
    }

    /**
     * Figure 4. Returns (slot, alternative); alternative is -1 when no
     * conflict-free slot exists (forced placement).
     */
    std::pair<int, int>
    findTimeSlot(graph::VertexId op, int min_time, int max_time)
    {
        for (int t = min_time; t <= max_time; ++t) {
            support::bump(counters_,
                          &support::Counters::findTimeSlotProbes);
            const int alternative = schedule_.fittingAlternative(op, t);
            if (alternative >= 0)
                return {t, alternative};
        }
        // No conflict-free slot: pick per the forward-progress rule.
        int slot;
        if (!options_.forwardProgressRule) {
            slot = min_time;
        } else if (schedule_.neverScheduled(op) ||
                   min_time > schedule_.prevScheduleTime(op)) {
            slot = min_time;
        } else {
            slot = schedule_.prevScheduleTime(op) + 1;
        }
        return {slot, -1};
    }

    /** §3.4's Schedule(): place `op`, displacing whatever conflicts. */
    void
    scheduleAt(graph::VertexId op, int slot, int alternative)
    {
        if (alternative < 0) {
            // Forced placement (Figure 4): choose the first alternative
            // usable at this II and displace only the operations holding
            // *its* resources — evicting victims of the alternatives not
            // chosen would inflate the unschedule count for nothing.
            const auto& alternatives = schedule_.alternativesOf(op);
            for (std::size_t alt = 0; alt < alternatives.size(); ++alt) {
                if (ModuloReservationTable::selfConflicts(
                        alternatives[alt].table, ii_))
                    continue;
                alternative = static_cast<int>(alt);
                break;
            }
            assert(alternative >= 0 &&
                   "allVerticesPlaceable guarantees a usable alternative");
            schedule_.mrt().conflictingOps(
                alternatives[alternative].table, slot, conflictScratch_);
            if (options_.trace != nullptr)
                resourceDisplacedThisStep_ = conflictScratch_;
            for (int victim : conflictScratch_)
                displace(victim);
            assert(schedule_.fittingAlternative(op, slot) == alternative &&
                   "displacing the chosen alternative's victims frees it");
        }
        schedule_.place(op, slot, alternative);
        ready_.erase(op);

        // Displace successors whose dependence constraints are violated.
        // (Predecessor constraints hold by construction: slot >= Estart.)
        for (graph::EdgeId eid : graph_.outEdges(op)) {
            const graph::DepEdge& edge = graph_.edge(eid);
            if (edge.to == op || !schedule_.isScheduled(edge.to))
                continue;
            const std::int64_t earliest =
                static_cast<std::int64_t>(slot) + edge.delay -
                static_cast<std::int64_t>(ii_) * edge.distance;
            if (schedule_.timeOf(edge.to) < earliest)
                displace(edge.to);
        }
    }

    void
    displace(graph::VertexId victim)
    {
        assert(victim != graph_.start() && "START is never displaced");
        if (!schedule_.isScheduled(victim))
            return;
        schedule_.remove(victim);
        ready_.push(victim);
        ++unschedules_;
        if (options_.trace != nullptr)
            displacedThisStep_.push_back(victim);
        support::bump(counters_, &support::Counters::unscheduleSteps);
    }

    const graph::DepGraph& graph_;
    const std::vector<std::int64_t>& priority_;
    const IterativeScheduleOptions& options_;
    int ii_;
    support::Counters* counters_;
    PartialSchedule schedule_;
    ReadyQueue ready_;
    /** Scratch for forced-placement conflict queries (no per-call alloc). */
    std::vector<int> conflictScratch_;
    std::vector<graph::VertexId> displacedThisStep_;
    std::vector<graph::VertexId> resourceDisplacedThisStep_;
    std::int64_t stepsUsed_ = 0;
    std::int64_t unschedules_ = 0;
};

} // namespace

IterativeScheduler::IterativeScheduler(const ir::Loop& loop,
                                       const machine::MachineModel& machine,
                                       const graph::DepGraph& graph,
                                       const graph::SccResult& sccs,
                                       IterativeScheduleOptions options,
                                       support::Counters* counters)
    : loop_(loop),
      machine_(machine),
      graph_(graph),
      sccs_(sccs),
      options_(options),
      counters_(counters)
{
    assert(loop.size() == graph.numOps());
}

std::optional<ScheduleResult>
IterativeScheduler::trySchedule(int ii, std::int64_t budget)
{
    support::PhaseTimer timer(options_.telemetry,
                              support::Phase::kIiAttempt, ii);
    timer.setSucceeded(false);

    computePrioritiesInto(graph_, sccs_, ii, options_.priority,
                          options_.randomSeed, counters_,
                          priorityWorkspace_);

    Attempt attempt(loop_, machine_, graph_, priorityWorkspace_.priorities,
                    options_, ii, counters_);
    const bool success = attempt.run(budget);
    if (!success)
        return std::nullopt;

    ScheduleResult result;
    result.ii = ii;
    result.times.resize(graph_.numOps());
    result.alternatives.resize(graph_.numOps());
    for (graph::VertexId v = 0; v < graph_.numOps(); ++v) {
        result.times[v] = attempt.schedule().timeOf(v);
        result.alternatives[v] = attempt.schedule().alternativeOf(v);
    }
    result.scheduleLength = attempt.schedule().timeOf(graph_.stop());
    result.stepsUsed = attempt.stepsUsed();
    result.unschedules = attempt.unschedules();
    timer.setSucceeded(true);
    return result;
}

} // namespace ims::sched
