#include "sched/priority.hpp"

#include <algorithm>
#include <numeric>

#include "mii/min_dist.hpp"
#include "sched/height_r.hpp"
#include "support/rng.hpp"

namespace ims::sched {

namespace {

/**
 * Per-attempt RNG derivation for PriorityScheme::kRandom: a SplitMix64
 * finalizer over (seed, ii), so the permutation is a pure function of
 * the user seed and the candidate II. Every candidate II draws an
 * independent permutation, and — crucially for the racing II search —
 * the draw depends on no shared scheduler state, so concurrent attempts
 * at different IIs reproduce the sequential search bit-for-bit.
 */
std::uint64_t
mixSeedWithIi(std::uint64_t seed, int ii)
{
    std::uint64_t z =
        seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ii) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::string
prioritySchemeName(PriorityScheme scheme)
{
    switch (scheme) {
      case PriorityScheme::kHeightR:
        return "heightr";
      case PriorityScheme::kSlack:
        return "slack";
      case PriorityScheme::kSourceOrder:
        return "source-order";
      case PriorityScheme::kRandom:
        return "random";
    }
    return "?";
}

std::optional<PriorityScheme>
prioritySchemeByName(std::string_view name)
{
    for (const auto scheme :
         {PriorityScheme::kHeightR, PriorityScheme::kSlack,
          PriorityScheme::kSourceOrder, PriorityScheme::kRandom}) {
        if (name == prioritySchemeName(scheme))
            return scheme;
    }
    return std::nullopt;
}

std::vector<std::int64_t>
computePriorities(const graph::DepGraph& graph, const graph::SccResult& sccs,
                  int ii, PriorityScheme scheme, std::uint64_t seed,
                  support::Counters* counters)
{
    PriorityWorkspace workspace;
    computePrioritiesInto(graph, sccs, ii, scheme, seed, counters,
                          workspace);
    return std::move(workspace.priorities);
}

void
computePrioritiesInto(const graph::DepGraph& graph,
                      const graph::SccResult& sccs, int ii,
                      PriorityScheme scheme, std::uint64_t seed,
                      support::Counters* counters,
                      PriorityWorkspace& workspace)
{
    const int n = graph.numVertices();
    auto& priorities = workspace.priorities;
    switch (scheme) {
      case PriorityScheme::kHeightR:
        computeHeightRInto(graph, sccs, ii, counters, priorities);
        return;

      case PriorityScheme::kSlack: {
        // slack(v) = LatestStart(v) - EarliestStart(v) where
        // EarliestStart(v) = MinDist[START, v] and
        // LatestStart(v) = MinDist[START, STOP] - MinDist[v, STOP].
        if (!workspace.slackDist)
            workspace.slackDist.emplace(graph, ii, counters);
        else if (workspace.slackDist->ii() != ii)
            workspace.slackDist->recompute(ii, counters);
        const mii::MinDistMatrix& dist = *workspace.slackDist;
        const std::int64_t makespan =
            dist.atVertex(graph.start(), graph.stop());
        priorities.assign(n, 0);
        for (graph::VertexId v = 0; v < n; ++v) {
            const std::int64_t early = dist.atVertex(graph.start(), v);
            const std::int64_t to_stop = dist.atVertex(v, graph.stop());
            const std::int64_t late = makespan - to_stop;
            priorities[v] = -(late - early); // least slack = highest
        }
        return;
      }

      case PriorityScheme::kSourceOrder: {
        priorities.assign(n, 0);
        for (graph::VertexId v = 0; v < n; ++v)
            priorities[v] = -v;
        // START must still come first; STOP last.
        priorities[graph.start()] = INT64_MAX / 2;
        priorities[graph.stop()] = INT64_MIN / 2;
        return;
      }

      case PriorityScheme::kRandom: {
        priorities.assign(n, 0);
        auto& permutation = workspace.permutation;
        permutation.resize(n);
        std::iota(permutation.begin(), permutation.end(), 0);
        support::Rng rng(mixSeedWithIi(seed, ii));
        for (int i = n - 1; i > 0; --i)
            std::swap(permutation[i], permutation[rng.uniformInt(0, i)]);
        for (graph::VertexId v = 0; v < n; ++v)
            priorities[v] = permutation[v];
        priorities[graph.start()] = INT64_MAX / 2;
        priorities[graph.stop()] = INT64_MIN / 2;
        return;
      }
    }
    priorities.assign(n, 0);
}

} // namespace ims::sched
