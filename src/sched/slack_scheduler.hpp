#ifndef IMS_SCHED_SLACK_SCHEDULER_HPP
#define IMS_SCHED_SLACK_SCHEDULER_HPP

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/modulo_scheduler.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * A lifetime-sensitive, bidirectional slack modulo scheduler in the
 * style of Huff [18] — the alternative algorithm the paper credits for
 * the minimal cost-to-time-ratio (MinDist) formulation and contrasts
 * with its height-based operation scheduling.
 *
 * Per candidate II:
 *  - the full-graph MinDist matrix pins dynamic earliest (etime) and
 *    latest (ltime) start times against the currently placed operations,
 *    with START pre-placed at 0 and STOP pre-placed at the critical-path
 *    deadline MinDist[START, STOP];
 *  - operations are placed mindist-slack-first (ltime - etime); an
 *    operation with more unplaced successors than predecessors is placed
 *    as early as possible, otherwise as late as possible — the
 *    bidirectional rule that shortens value lifetimes;
 *  - when no conflict-free slot exists in the (II-wide) window, the
 *    operation is force-placed and conflicting neighbours are ejected,
 *    with the same forward-progress rule as iterative modulo scheduling;
 *  - the step budget is BudgetRatio * (N + 2), as in Figure 2/3.
 *
 * Returns the same outcome type as the iterative backend so the two
 * algorithms can be compared head to head (bench_abl_huff_slack). Reached
 * through sched::schedule() with SchedulerStrategy::kSlack; the scheduler
 * itself lives in detail::runSlackSchedule (sched/schedule.hpp).
 */

} // namespace ims::sched

#endif // IMS_SCHED_SLACK_SCHEDULER_HPP
