#ifndef IMS_SCHED_PRIORITY_HPP
#define IMS_SCHED_PRIORITY_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "mii/min_dist.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * Priority functions for HighestPriorityOperation. The paper selects the
 * height-based HeightR (§3.2) after investigating a number of schemes;
 * the alternatives here support the priority-function ablation bench.
 */
enum class PriorityScheme
{
    /** HeightR of Figure 5(a) — the paper's choice. */
    kHeightR,
    /** Least slack first, via the full-graph MinDist matrix. */
    kSlack,
    /** Program order (earlier operations first). */
    kSourceOrder,
    /** A random permutation drawn per candidate II from (seed, ii) —
     *  deterministic with no shared RNG state, so the racing II search
     *  reproduces it exactly (worst-case baseline). */
    kRandom,
};

/** Name for a scheme ("heightr", "slack", ...). */
std::string prioritySchemeName(PriorityScheme scheme);

/** Inverse of prioritySchemeName; nullopt for unknown names. */
std::optional<PriorityScheme> prioritySchemeByName(std::string_view name);

/**
 * Reusable buffers for per-II priority computation. One workspace lives
 * for the duration of a ModuloSchedule invocation (all candidate IIs of
 * one loop): a failed II attempt re-fills `priorities` in place, the
 * slack scheme's full-graph MinDist matrix is recomputed rather than
 * rebuilt, and the random scheme's permutation buffer is recycled. The
 * workspace must not be shared between loops of different graphs.
 */
struct PriorityWorkspace
{
    std::vector<std::int64_t> priorities;
    /** Lazily built full-graph MinDist for PriorityScheme::kSlack. */
    std::optional<mii::MinDistMatrix> slackDist;
    /** Scratch permutation for PriorityScheme::kRandom. */
    std::vector<int> permutation;
};

/**
 * Compute per-vertex priorities (larger = scheduled earlier) for the given
 * candidate II. Ties are broken by vertex id in the scheduler.
 */
std::vector<std::int64_t>
computePriorities(const graph::DepGraph& graph, const graph::SccResult& sccs,
                  int ii, PriorityScheme scheme, std::uint64_t seed = 1,
                  support::Counters* counters = nullptr);

/**
 * Buffer-reusing variant: fills `workspace.priorities` for the candidate
 * II without reallocating anything the workspace already holds.
 */
void computePrioritiesInto(const graph::DepGraph& graph,
                           const graph::SccResult& sccs, int ii,
                           PriorityScheme scheme, std::uint64_t seed,
                           support::Counters* counters,
                           PriorityWorkspace& workspace);

} // namespace ims::sched

#endif // IMS_SCHED_PRIORITY_HPP
