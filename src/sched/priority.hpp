#ifndef IMS_SCHED_PRIORITY_HPP
#define IMS_SCHED_PRIORITY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * Priority functions for HighestPriorityOperation. The paper selects the
 * height-based HeightR (§3.2) after investigating a number of schemes;
 * the alternatives here support the priority-function ablation bench.
 */
enum class PriorityScheme
{
    /** HeightR of Figure 5(a) — the paper's choice. */
    kHeightR,
    /** Least slack first, via the full-graph MinDist matrix. */
    kSlack,
    /** Program order (earlier operations first). */
    kSourceOrder,
    /** A fixed random permutation (seeded; worst-case baseline). */
    kRandom,
};

/** Name for a scheme ("heightr", "slack", ...). */
std::string prioritySchemeName(PriorityScheme scheme);

/**
 * Compute per-vertex priorities (larger = scheduled earlier) for the given
 * candidate II. Ties are broken by vertex id in the scheduler.
 */
std::vector<std::int64_t>
computePriorities(const graph::DepGraph& graph, const graph::SccResult& sccs,
                  int ii, PriorityScheme scheme, std::uint64_t seed = 1,
                  support::Counters* counters = nullptr);

} // namespace ims::sched

#endif // IMS_SCHED_PRIORITY_HPP
