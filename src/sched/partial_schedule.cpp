#include "sched/partial_schedule.hpp"

#include <cassert>

namespace ims::sched {

namespace {

/** Shared empty alternative list for pseudo vertices. */
const std::vector<machine::Alternative>&
pseudoAlternatives()
{
    static const std::vector<machine::Alternative> alternatives = {
        machine::Alternative{"pseudo", machine::ReservationTable{}}};
    return alternatives;
}

} // namespace

PartialSchedule::PartialSchedule(const graph::DepGraph& graph,
                                 const ir::Loop& loop,
                                 const machine::MachineModel& machine,
                                 int ii,
                                 machine::CompiledTableCache* cache)
    : graph_(graph),
      ii_(ii),
      mrt_(ii, machine.numResources(), graph.numVertices()),
      alternatives_(graph.numVertices()),
      compiled_(graph.numVertices()),
      arena_(static_cast<std::size_t>(graph.numVertices()) * 4, 0)
{
    assert(loop.size() == graph.numOps());
    const std::size_t vertices =
        static_cast<std::size_t>(graph.numVertices());
    time_ = arena_.data();
    prevTime_ = arena_.data() + vertices;
    alternative_ = arena_.data() + 2 * vertices;
    flags_ = arena_.data() + 3 * vertices;
    if (cache == nullptr) {
        ownedCache_ = std::make_unique<machine::CompiledTableCache>();
        cache = ownedCache_.get();
    }
    for (graph::VertexId v = 0; v < graph.numVertices(); ++v) {
        if (graph.isPseudo(v)) {
            alternatives_[v] = &pseudoAlternatives();
        } else {
            alternatives_[v] =
                &machine.info(loop.operation(v).opcode).alternatives;
        }
        compiled_[v] =
            &cache->get(*alternatives_[v], ii, machine.numResources());
    }
}

bool
PartialSchedule::resourceConflict(graph::VertexId v, int time) const
{
    return fittingAlternative(v, time) < 0;
}

int
PartialSchedule::fittingAlternative(graph::VertexId v, int time) const
{
    const auto& compiled = *compiled_[v];
    for (std::size_t alt = 0; alt < compiled.size(); ++alt) {
        if (compiled[alt].selfConflicts())
            continue;
        if (!mrt_.conflicts(compiled[alt], time))
            return static_cast<int>(alt);
    }
    return -1;
}

void
PartialSchedule::place(graph::VertexId v, int time, int alternative)
{
    assert(!isScheduled(v));
    const auto& table = (*alternatives_[v])[alternative].table;
    mrt_.reserve(v, table, time);
    flags_[v] = kScheduled | kEverScheduled;
    time_[v] = time;
    prevTime_[v] = time;
    alternative_[v] = alternative;
    ++numScheduled_;
}

void
PartialSchedule::remove(graph::VertexId v)
{
    assert(isScheduled(v));
    mrt_.release(v);
    flags_[v] &= ~kScheduled;
    --numScheduled_;
}

bool
PartialSchedule::allVerticesPlaceable() const
{
    for (graph::VertexId v = 0; v < graph_.numVertices(); ++v) {
        bool placeable = false;
        for (const auto& alt : *compiled_[v])
            placeable = placeable || !alt.selfConflicts();
        if (!placeable)
            return false;
    }
    return true;
}

} // namespace ims::sched
