#ifndef IMS_SCHED_PARTIAL_SCHEDULE_HPP
#define IMS_SCHED_PARTIAL_SCHEDULE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dep_graph.hpp"
#include "ir/loop.hpp"
#include "machine/compiled_reservations.hpp"
#include "machine/machine_model.hpp"
#include "sched/mrt.hpp"

namespace ims::sched {

/**
 * Mutable scheduling state for one iterative-scheduling attempt at a fixed
 * II: per-vertex schedule times, chosen alternatives, the never-scheduled
 * and previous-schedule-time bookkeeping of Figures 3/4, and the modulo
 * reservation table.
 *
 * Vertices are the dependence graph's (loop operations plus START/STOP);
 * pseudo vertices occupy no resources.
 *
 * The per-vertex state lives in one arena allocation laid out as four
 * struct-of-arrays planes (time, prevTime, alternative, flags), so a
 * scheduling step touches a handful of adjacent cache lines instead of
 * five separately allocated vectors (two of them bit-packed
 * vector<bool>s). The alternative/compiled lookup tables are separate
 * pointer arrays because they alias machine-model data.
 *
 * Construction lowers every vertex's reservation tables into
 * bitmask-compiled form (machine::CompiledReservationTable) via a
 * CompiledTableCache, so conflict probes and slot scans run on masks
 * instead of walking use lists. Pass a caller-owned cache to share the
 * compiled tables across attempts and IIs (the IterativeScheduler does);
 * with none, the schedule owns a private cache.
 */
class PartialSchedule
{
  public:
    PartialSchedule(const graph::DepGraph& graph, const ir::Loop& loop,
                    const machine::MachineModel& machine, int ii,
                    machine::CompiledTableCache* cache = nullptr);

    int ii() const { return ii_; }

    bool
    isScheduled(graph::VertexId v) const
    {
        return (flags_[v] & kScheduled) != 0;
    }

    /** Schedule time; only meaningful while isScheduled(v). */
    int timeOf(graph::VertexId v) const { return time_[v]; }

    /** Chosen alternative index; only meaningful while isScheduled(v). */
    int alternativeOf(graph::VertexId v) const { return alternative_[v]; }

    bool
    neverScheduled(graph::VertexId v) const
    {
        return (flags_[v] & kEverScheduled) == 0;
    }

    /** Time at which v was last scheduled (valid once !neverScheduled). */
    int prevScheduleTime(graph::VertexId v) const { return prevTime_[v]; }

    /** Number of currently scheduled vertices. */
    int numScheduled() const { return numScheduled_; }

    /** Alternatives available to vertex `v` on this machine. */
    const std::vector<machine::Alternative>&
    alternativesOf(graph::VertexId v) const
    {
        return *alternatives_[v];
    }

    /** Bitmask-compiled form of `v`'s alternatives at this II. */
    const std::vector<machine::CompiledReservationTable>&
    compiledAlternativesOf(graph::VertexId v) const
    {
        return *compiled_[v];
    }

    const ModuloReservationTable& mrt() const { return mrt_; }

    /**
     * True if scheduling `v` at `time` has a resource conflict for every
     * alternative (the ResourceConflict predicate of Figure 4).
     */
    bool resourceConflict(graph::VertexId v, int time) const;

    /**
     * First alternative of `v` that fits conflict-free at `time`, or -1.
     */
    int fittingAlternative(graph::VertexId v, int time) const;

    /**
     * Place `v` at `time` using `alternative` (must fit conflict-free);
     * updates never/prev bookkeeping.
     */
    void place(graph::VertexId v, int time, int alternative);

    /** Displace `v` from the schedule, freeing its reservations. */
    void remove(graph::VertexId v);

    /**
     * True if some alternative of every vertex is usable at this II (no
     * modulo self-collision); when false, no schedule exists at this II
     * regardless of placement.
     */
    bool allVerticesPlaceable() const;

  private:
    static constexpr std::int32_t kScheduled = 1;
    static constexpr std::int32_t kEverScheduled = 2;

    const graph::DepGraph& graph_;
    int ii_;
    ModuloReservationTable mrt_;
    /** Fallback cache when the caller did not supply one. */
    std::unique_ptr<machine::CompiledTableCache> ownedCache_;
    std::vector<const std::vector<machine::Alternative>*> alternatives_;
    std::vector<const std::vector<machine::CompiledReservationTable>*>
        compiled_;
    /** The arena: four numVertices()-sized int32 planes, one allocation. */
    std::vector<std::int32_t> arena_;
    std::int32_t* time_ = nullptr;
    std::int32_t* prevTime_ = nullptr;
    std::int32_t* alternative_ = nullptr;
    std::int32_t* flags_ = nullptr;
    int numScheduled_ = 0;
};

} // namespace ims::sched

#endif // IMS_SCHED_PARTIAL_SCHEDULE_HPP
