#include "sched/verifier.hpp"

#include <sstream>

#include "sched/mrt.hpp"

namespace ims::sched {

std::vector<std::string>
verifySchedule(const ir::Loop& loop, const machine::MachineModel& machine,
               const graph::DepGraph& graph, const ScheduleResult& schedule)
{
    std::vector<std::string> violations;
    auto complain = [&violations](const std::string& message) {
        violations.push_back(message);
    };

    if (schedule.ii < 1) {
        complain("II must be at least 1");
        return violations;
    }
    if (static_cast<int>(schedule.times.size()) != loop.size() ||
        static_cast<int>(schedule.alternatives.size()) != loop.size()) {
        complain("schedule arrays do not match the loop size");
        return violations;
    }

    // Times of all graph vertices: real ops from the schedule; START at 0,
    // STOP at scheduleLength.
    auto time_of = [&](graph::VertexId v) {
        if (v == graph.start())
            return 0;
        if (v == graph.stop())
            return schedule.scheduleLength;
        return schedule.times[v];
    };

    for (int op = 0; op < loop.size(); ++op) {
        if (schedule.times[op] < 0)
            complain("operation " + std::to_string(op) +
                     " scheduled at negative time");
        const auto& info = machine.info(loop.operation(op).opcode);
        if (schedule.alternatives[op] < 0 ||
            schedule.alternatives[op] >=
                static_cast<int>(info.alternatives.size())) {
            complain("operation " + std::to_string(op) +
                     " has an invalid alternative index");
            return violations;
        }
    }

    // Dependence constraints.
    for (const auto& edge : graph.edges()) {
        const std::int64_t earliest =
            static_cast<std::int64_t>(time_of(edge.from)) + edge.delay -
            static_cast<std::int64_t>(schedule.ii) * edge.distance;
        if (time_of(edge.to) < earliest) {
            std::ostringstream out;
            out << "dependence violated: " << edge.from << " -> " << edge.to
                << " (" << graph::depKindName(edge.kind) << ", delay "
                << edge.delay << ", distance " << edge.distance << "): t("
                << edge.to << ")=" << time_of(edge.to) << " < " << earliest;
            complain(out.str());
        }
    }

    // Resource constraints: rebuild the MRT; reserve() asserts internally,
    // so check conflicts first and report instead of crashing.
    ModuloReservationTable mrt(schedule.ii, machine.numResources(),
                               loop.size());
    for (int op = 0; op < loop.size(); ++op) {
        const auto& table = machine.info(loop.operation(op).opcode)
                                .alternatives[schedule.alternatives[op]]
                                .table;
        if (ModuloReservationTable::selfConflicts(table, schedule.ii)) {
            complain("operation " + std::to_string(op) +
                     " uses an alternative that self-conflicts at II " +
                     std::to_string(schedule.ii));
            continue;
        }
        if (mrt.conflicts(table, schedule.times[op])) {
            for (int other :
                 mrt.conflictingOps(table, schedule.times[op])) {
                complain("resource conflict between operations " +
                         std::to_string(op) + " and " +
                         std::to_string(other));
            }
            continue;
        }
        mrt.reserve(op, table, schedule.times[op]);
    }

    return violations;
}

} // namespace ims::sched
