#include "sched/verifier.hpp"

#include <sstream>

#include "sched/mrt.hpp"

namespace ims::sched {

std::string
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::kBadIi:
        return "bad_ii";
      case ViolationKind::kShapeMismatch:
        return "shape_mismatch";
      case ViolationKind::kNegativeTime:
        return "negative_time";
      case ViolationKind::kInvalidAlternative:
        return "invalid_alternative";
      case ViolationKind::kDependence:
        return "dependence";
      case ViolationKind::kSelfConflict:
        return "self_conflict";
      case ViolationKind::kResourceConflict:
        return "resource_conflict";
    }
    return "unknown";
}

std::string
Violation::toString() const
{
    std::ostringstream out;
    switch (kind) {
      case ViolationKind::kBadIi:
        out << "II must be at least 1";
        break;
      case ViolationKind::kShapeMismatch:
        out << "schedule arrays do not match the loop size";
        break;
      case ViolationKind::kNegativeTime:
        out << "operation " << op << " scheduled at negative time " << time;
        break;
      case ViolationKind::kInvalidAlternative:
        out << "operation " << op << " has an invalid alternative index";
        break;
      case ViolationKind::kDependence:
        out << "dependence violated: " << other << " -> " << op
            << " (edge " << edge << "): t(" << op << ")=" << time << " < "
            << required;
        break;
      case ViolationKind::kSelfConflict:
        out << "operation " << op
            << " uses an alternative that self-conflicts at this II";
        break;
      case ViolationKind::kResourceConflict:
        out << "resource conflict between operations " << op << " and "
            << other;
        break;
    }
    return out.str();
}

std::vector<Violation>
verifySchedule(const ir::Loop& loop, const machine::MachineModel& machine,
               const graph::DepGraph& graph, const ScheduleResult& schedule)
{
    std::vector<Violation> violations;

    if (schedule.ii < 1) {
        violations.push_back({ViolationKind::kBadIi});
        return violations;
    }
    if (static_cast<int>(schedule.times.size()) != loop.size() ||
        static_cast<int>(schedule.alternatives.size()) != loop.size()) {
        violations.push_back({ViolationKind::kShapeMismatch});
        return violations;
    }

    // Times of all graph vertices: real ops from the schedule; START at 0,
    // STOP at scheduleLength.
    auto time_of = [&](graph::VertexId v) {
        if (v == graph.start())
            return 0;
        if (v == graph.stop())
            return schedule.scheduleLength;
        return schedule.times[v];
    };

    for (int op = 0; op < loop.size(); ++op) {
        if (schedule.times[op] < 0) {
            violations.push_back({ViolationKind::kNegativeTime, op, -1, -1,
                                  schedule.times[op]});
        }
        const auto& info = machine.info(loop.operation(op).opcode);
        if (schedule.alternatives[op] < 0 ||
            schedule.alternatives[op] >=
                static_cast<int>(info.alternatives.size())) {
            violations.push_back(
                {ViolationKind::kInvalidAlternative, op, -1, -1,
                 schedule.times[op]});
            return violations;
        }
    }

    // Dependence constraints.
    for (graph::EdgeId id = 0; id < graph.numEdges(); ++id) {
        const auto& edge = graph.edge(id);
        const std::int64_t earliest =
            static_cast<std::int64_t>(time_of(edge.from)) + edge.delay -
            static_cast<std::int64_t>(schedule.ii) * edge.distance;
        if (time_of(edge.to) < earliest) {
            violations.push_back({ViolationKind::kDependence, edge.to,
                                  edge.from, id, time_of(edge.to),
                                  earliest});
        }
    }

    // Resource constraints: rebuild the MRT; reserve() asserts internally,
    // so check conflicts first and report instead of crashing.
    ModuloReservationTable mrt(schedule.ii, machine.numResources(),
                               loop.size());
    for (int op = 0; op < loop.size(); ++op) {
        const auto& table = machine.info(loop.operation(op).opcode)
                                .alternatives[schedule.alternatives[op]]
                                .table;
        if (ModuloReservationTable::selfConflicts(table, schedule.ii)) {
            violations.push_back({ViolationKind::kSelfConflict, op, -1, -1,
                                  schedule.times[op]});
            continue;
        }
        if (mrt.conflicts(table, schedule.times[op])) {
            for (int other :
                 mrt.conflictingOps(table, schedule.times[op])) {
                violations.push_back({ViolationKind::kResourceConflict, op,
                                      other, -1, schedule.times[op]});
            }
            continue;
        }
        mrt.reserve(op, table, schedule.times[op]);
    }

    return violations;
}

} // namespace ims::sched
