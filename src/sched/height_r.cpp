#include "sched/height_r.hpp"

#include <algorithm>
#include <cassert>

#include "support/error.hpp"

namespace ims::sched {

namespace {

constexpr std::int64_t kMinusInf = INT64_MIN / 4;

} // namespace

std::vector<std::int64_t>
computeHeightR(const graph::DepGraph& graph, const graph::SccResult& sccs,
               int ii, support::Counters* counters)
{
    std::vector<std::int64_t> height;
    computeHeightRInto(graph, sccs, ii, counters, height);
    return height;
}

void
computeHeightRInto(const graph::DepGraph& graph,
                   const graph::SccResult& sccs, int ii,
                   support::Counters* counters,
                   std::vector<std::int64_t>& height)
{
    height.assign(graph.numVertices(), kMinusInf);
    height[graph.stop()] = 0;

    // Tarjan emits components in reverse topological order (all successors
    // of a component are emitted before it), so one pass over components
    // sees every cross-component successor already finalised.
    for (const auto& component : sccs.components()) {
        const int comp_id = sccs.componentOf(component.front());

        auto relax_vertex = [&](graph::VertexId v, bool internal_only) {
            bool changed = false;
            for (graph::EdgeId eid : graph.outEdges(v)) {
                const graph::DepEdge& edge = graph.edge(eid);
                const bool internal =
                    sccs.componentOf(edge.to) == comp_id;
                if (internal_only && !internal)
                    continue;
                if (!internal_only && internal)
                    continue;
                support::bump(counters,
                              &support::Counters::heightRInnerSteps);
                if (height[edge.to] == kMinusInf)
                    continue;
                const std::int64_t candidate =
                    height[edge.to] + edge.delay -
                    static_cast<std::int64_t>(ii) * edge.distance;
                if (candidate > height[v]) {
                    height[v] = candidate;
                    changed = true;
                }
            }
            return changed;
        };

        // Base values from cross-component successors.
        for (graph::VertexId v : component)
            relax_vertex(v, false);

        // Fixed point over internal edges; at most |C| sweeps suffice when
        // no internal cycle has positive weight.
        const int max_sweeps = static_cast<int>(component.size()) + 1;
        bool changed = true;
        int sweeps = 0;
        while (changed) {
            changed = false;
            for (graph::VertexId v : component)
                changed = relax_vertex(v, true) || changed;
            ++sweeps;
            support::check(sweeps <= max_sweeps,
                           "HeightR diverged: positive-weight dependence "
                           "cycle (II below RecMII?)");
        }
    }
}

std::vector<std::int64_t>
computeAcyclicHeight(const graph::DepGraph& graph,
                     support::Counters* counters)
{
    // Distance-0 edges form a DAG; process vertices in reverse topological
    // order obtained by a DFS post-order.
    const int n = graph.numVertices();
    std::vector<std::int64_t> height(n, kMinusInf);
    std::vector<int> state(n, 0); // 0 unvisited, 1 in progress, 2 done

    // Iterative DFS computing heights bottom-up.
    for (graph::VertexId root = 0; root < n; ++root) {
        if (state[root] != 0)
            continue;
        std::vector<std::pair<graph::VertexId, std::size_t>> stack;
        stack.emplace_back(root, 0);
        state[root] = 1;
        while (!stack.empty()) {
            auto& [v, pos] = stack.back();
            const auto& out = graph.outEdges(v);
            bool descended = false;
            while (pos < out.size()) {
                const graph::DepEdge& edge = graph.edge(out[pos]);
                ++pos;
                if (edge.distance != 0)
                    continue;
                support::check(state[edge.to] != 1,
                               "zero-distance dependence cycle");
                if (state[edge.to] == 0) {
                    state[edge.to] = 1;
                    stack.emplace_back(edge.to, 0);
                    descended = true;
                    break;
                }
            }
            if (descended)
                continue;
            // All children done: finalise v.
            std::int64_t h = v == graph.stop() ? 0 : kMinusInf;
            for (graph::EdgeId eid : graph.outEdges(v)) {
                const graph::DepEdge& edge = graph.edge(eid);
                if (edge.distance != 0)
                    continue;
                support::bump(counters,
                              &support::Counters::heightRInnerSteps);
                if (height[edge.to] == kMinusInf)
                    continue;
                h = std::max(h, height[edge.to] + edge.delay);
            }
            // Vertices that cannot reach STOP over distance-0 edges (none
            // in practice, since every op has a pseudo edge to STOP) keep
            // height 0 as a safe floor.
            height[v] = std::max<std::int64_t>(h, 0);
            state[v] = 2;
            stack.pop_back();
        }
    }
    return height;
}

} // namespace ims::sched
