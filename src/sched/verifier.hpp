#ifndef IMS_SCHED_VERIFIER_HPP
#define IMS_SCHED_VERIFIER_HPP

#include <string>
#include <vector>

#include "graph/dep_graph.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/iterative_scheduler.hpp"

namespace ims::sched {

/** Machine-readable classification of a schedule-legality violation. */
enum class ViolationKind
{
    /** II < 1. */
    kBadIi,
    /** times/alternatives arrays do not match the loop size. */
    kShapeMismatch,
    /** An operation is scheduled at a negative time. */
    kNegativeTime,
    /** An operation's alternative index is out of range. */
    kInvalidAlternative,
    /** A dependence edge constraint is not met. */
    kDependence,
    /** A chosen alternative's table collides with itself at this II. */
    kSelfConflict,
    /** Two operations double-book a resource at some modulo slot. */
    kResourceConflict,
};

/** Stable lowercase identifier, e.g. "dependence" (used in diagnostics). */
std::string violationKindName(ViolationKind kind);

/**
 * One structured legality violation. The ids give the failure a
 * machine-readable identity — the fuzz minimizer relies on `kind` to
 * confirm a shrunken case still exhibits the same bug — and the
 * human-readable message is derived from the fields by toString().
 */
struct Violation
{
    ViolationKind kind = ViolationKind::kBadIi;
    /** Offending operation (the dependence successor for kDependence),
     *  or -1 when not operation-specific. */
    ir::OpId op = -1;
    /** Second operation involved (dependence predecessor / conflicting
     *  occupant), or -1. */
    ir::OpId other = -1;
    /** Violated edge for kDependence, else -1. */
    graph::EdgeId edge = -1;
    /** Scheduled time of `op` (-1 when not applicable). */
    int time = -1;
    /** Earliest legal time for kDependence (0 otherwise). */
    long long required = 0;

    /** Human-readable description derived from the structured fields. */
    std::string toString() const;
};

/**
 * Independent legality checker for modulo schedules. A schedule is legal
 * (§1: "no intra- or inter-iteration dependence is violated, and no
 * resource usage conflict arises between operations of either the same or
 * distinct iterations") iff:
 *
 *  - every dependence edge e: P -> Q satisfies
 *      t(Q) >= t(P) + Delay(e) - II * Distance(e);
 *  - rebuilding the modulo reservation table from the chosen alternatives
 *    produces no double booking;
 *  - every time is >= 0 and every alternative index is valid.
 *
 * Returns the structured violations; empty means legal. Every schedule
 * produced in the test and benchmark suites is passed through this
 * checker, and the fuzz subsystem uses it as its structural oracle.
 */
std::vector<Violation> verifySchedule(const ir::Loop& loop,
                                      const machine::MachineModel& machine,
                                      const graph::DepGraph& graph,
                                      const ScheduleResult& schedule);

} // namespace ims::sched

#endif // IMS_SCHED_VERIFIER_HPP
