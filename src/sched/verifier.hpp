#ifndef IMS_SCHED_VERIFIER_HPP
#define IMS_SCHED_VERIFIER_HPP

#include <string>
#include <vector>

#include "graph/dep_graph.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/iterative_scheduler.hpp"

namespace ims::sched {

/**
 * Independent legality checker for modulo schedules. A schedule is legal
 * (§1: "no intra- or inter-iteration dependence is violated, and no
 * resource usage conflict arises between operations of either the same or
 * distinct iterations") iff:
 *
 *  - every dependence edge e: P -> Q satisfies
 *      t(Q) >= t(P) + Delay(e) - II * Distance(e);
 *  - rebuilding the modulo reservation table from the chosen alternatives
 *    produces no double booking;
 *  - every time is >= 0 and every alternative index is valid.
 *
 * Returns a list of human-readable violations; empty means legal. Every
 * schedule produced in the test and benchmark suites is passed through
 * this checker.
 */
std::vector<std::string> verifySchedule(const ir::Loop& loop,
                                        const machine::MachineModel& machine,
                                        const graph::DepGraph& graph,
                                        const ScheduleResult& schedule);

} // namespace ims::sched

#endif // IMS_SCHED_VERIFIER_HPP
