#ifndef IMS_SCHED_MRT_HPP
#define IMS_SCHED_MRT_HPP

#include <cstdint>
#include <vector>

#include "machine/compiled_reservations.hpp"
#include "machine/reservation_table.hpp"

namespace ims::sched {

/**
 * The modulo reservation table (MRT) of §3.1: a schedule reservation
 * table of exactly II rows. Scheduling an operation at time T that uses
 * resource R at relative time t records the reservation at row
 * (T + t) mod II, so "a conflict at time T implies conflicts at all
 * times T + k*II".
 *
 * Each cell remembers which operation owns it, so the scheduler can both
 * test for conflicts and determine the set of operations to displace
 * (§3.4). The owner grid stays authoritative for displacement; alongside
 * it the table maintains two redundant bitmask views that make conflict
 * queries word-parallel (see docs/ALGORITHM.md, "Compiled reservation
 * tables"):
 *
 *  - a per-row occupancy mask over resources, ANDed against a
 *    CompiledReservationTable's row masks for single-time conflict
 *    tests, and
 *  - a per-resource bitset over rows, whose rotations drive
 *    `firstFreeSlot`: one pass over an alternative's compiled uses
 *    yields the conflict set of *all* II candidate issue times at once,
 *    64 candidates per machine word.
 *
 * In debug builds every reserve/release asserts that the masks agree
 * with the owner cells it touched; `masksConsistent()` checks the whole
 * grid (the randomized property test calls it after every mutation, and
 * IMS_EXPENSIVE_CHECKS builds assert it on each one).
 */
class ModuloReservationTable
{
  public:
    /** Sentinel owner for a free cell. */
    static constexpr int kFree = -1;

    ModuloReservationTable(int ii, int num_resources, int num_ops);

    int ii() const { return ii_; }

    /**
     * True if placing `table` at issue time `time` collides with any
     * existing reservation. (Reference implementation over the owner
     * cells; the scheduler hot path uses the compiled overload.)
     */
    bool conflicts(const machine::ReservationTable& table, int time) const;

    /**
     * Mask-based conflict test: a handful of ANDs between `table`'s
     * per-row resource masks and this table's row occupancy masks.
     */
    bool conflicts(const machine::CompiledReservationTable& table,
                   int time) const;

    /**
     * Word-parallel slot scan (the Figure 4 FindTimeSlot window): the
     * earliest conflict-free issue time for `table` in
     * [min_time, min_time + II - 1], or -1 when every candidate
     * conflicts. `table` must have been compiled for this II and must
     * not self-conflict. One pass over the compiled uses rotates each
     * used resource's row bitset into a conflict mask over all II issue
     * residues, then scans that mask for the first free slot.
     */
    int firstFreeSlot(const machine::CompiledReservationTable& table,
                      int min_time) const;

    /**
     * Owners of all cells that placing `table` at `time` would collide
     * with (each owner listed once, ascending).
     */
    std::vector<int> conflictingOps(const machine::ReservationTable& table,
                                    int time) const;

    /**
     * Allocation-free variant for the scheduler's hot path: fills `out`
     * (cleared first, then sorted ascending and deduplicated) with the
     * conflicting owners, reusing the caller's buffer capacity.
     */
    void conflictingOps(const machine::ReservationTable& table, int time,
                        std::vector<int>& out) const;

    /**
     * Record that `op` issued at `time` occupies `table`'s cells. All
     * cells must currently be free (checked).
     */
    void reserve(int op, const machine::ReservationTable& table, int time);

    /** Release every cell held by `op` (no-op if it holds none). */
    void release(int op);

    /** Owner of (row, resource), or kFree. */
    int
    owner(int row, machine::ResourceId resource) const
    {
        return cells_[static_cast<std::size_t>(row) * numResources_ +
                      resource];
    }

    /** Count of currently reserved cells (for tests). */
    int reservedCellCount() const;

    /**
     * True if both bitmask views agree with the owner-cell grid on every
     * (row, resource). The grid is authoritative; this audits the
     * redundant masks.
     */
    bool masksConsistent() const;

    /** Mask conflict tests performed (telemetry: mrt_mask_probes). */
    std::uint64_t maskProbes() const { return maskProbes_; }

    /** Word-parallel slot scans performed (telemetry: mrt_slot_scans). */
    std::uint64_t slotScans() const { return slotScans_; }

    /**
     * True if `table` collides with itself under modulo `ii` wrap-around
     * (two uses of one resource in congruent rows): such an alternative
     * can never be scheduled at this II, at any time slot. The scheduler
     * hot path reads the flag cached on CompiledReservationTable instead
     * of re-deriving it here.
     */
    static bool selfConflicts(const machine::ReservationTable& table,
                              int ii);

  private:
    int
    rowOf(int time) const
    {
        // Schedule times are never negative (Estart >= 0), but keep the
        // modulo well-defined anyway.
        const int m = time % ii_;
        return m < 0 ? m + ii_ : m;
    }

    const std::uint64_t*
    rowMask(int row) const
    {
        return rowMasks_.data() +
               static_cast<std::size_t>(row) * wordsPerRow_;
    }

    const std::uint64_t*
    resourceRows(machine::ResourceId resource) const
    {
        return resourceRows_.data() +
               static_cast<std::size_t>(resource) * wordsPerColumn_;
    }

    void setCellBits(int row, machine::ResourceId resource);
    void clearCellBits(int row, machine::ResourceId resource);

    /**
     * OR `src` (an II-bit row bitset) rotated down by `rotation` into
     * `dst`: bit p of the rotated value is bit (p + rotation) mod II of
     * `src`. This is the modulo wrap-around identity that lets one
     * rotation test all II issue residues of one resource use at once.
     */
    void orRotatedInto(const std::uint64_t* src, int rotation,
                       std::uint64_t* dst) const;

    /** Widen the per-op held-cell slices to at least `needed` entries. */
    void growHeldStride(int needed);

    int ii_;
    int numResources_;
    /** Words per row occupancy mask: ceil(numResources / 64). */
    int wordsPerRow_;
    /** Words per resource row bitset: ceil(ii / 64). */
    int wordsPerColumn_;
    /** Valid-bit mask for the last word of a row bitset. */
    std::uint64_t lastColumnWordMask_;
    std::vector<int> cells_;
    /**
     * Held-cell bookkeeping as one flat arena instead of a vector per
     * op: op `i` holds heldCount_[i] linear cell indices at
     * heldCells_[i * heldStride_ ...]. The stride starts small and the
     * whole arena is repacked on the rare reservation wider than it —
     * reserve/release never allocate on the steady-state hot path.
     */
    int numOps_;
    int heldStride_;
    std::vector<std::int32_t> heldCells_;
    std::vector<std::int32_t> heldCount_;
    /** Row-major occupancy: ii_ rows of wordsPerRow_ resource words. */
    std::vector<std::uint64_t> rowMasks_;
    /** Column-major occupancy: per resource, wordsPerColumn_ row words. */
    std::vector<std::uint64_t> resourceRows_;
    /** Scratch conflict mask for firstFreeSlot (no per-call alloc). */
    mutable std::vector<std::uint64_t> scanScratch_;
    mutable std::uint64_t maskProbes_ = 0;
    mutable std::uint64_t slotScans_ = 0;
};

} // namespace ims::sched

#endif // IMS_SCHED_MRT_HPP
