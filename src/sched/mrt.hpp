#ifndef IMS_SCHED_MRT_HPP
#define IMS_SCHED_MRT_HPP

#include <vector>

#include "machine/reservation_table.hpp"

namespace ims::sched {

/**
 * The modulo reservation table (MRT) of §3.1: a schedule reservation table
 * of exactly II rows. Scheduling an operation at time T that uses resource
 * R at relative time t records the reservation at row (T + t) mod II, so
 * "a conflict at time T implies conflicts at all times T + k*II".
 *
 * Each cell remembers which operation owns it, so the scheduler can both
 * test for conflicts and determine the set of operations to displace
 * (§3.4).
 */
class ModuloReservationTable
{
  public:
    /** Sentinel owner for a free cell. */
    static constexpr int kFree = -1;

    ModuloReservationTable(int ii, int num_resources, int num_ops);

    int ii() const { return ii_; }

    /**
     * True if placing `table` at issue time `time` collides with any
     * existing reservation.
     */
    bool conflicts(const machine::ReservationTable& table, int time) const;

    /**
     * Owners of all cells that placing `table` at `time` would collide
     * with (each owner listed once, ascending).
     */
    std::vector<int> conflictingOps(const machine::ReservationTable& table,
                                    int time) const;

    /**
     * Allocation-free variant for the scheduler's hot path: fills `out`
     * (cleared first, then sorted ascending and deduplicated) with the
     * conflicting owners, reusing the caller's buffer capacity.
     */
    void conflictingOps(const machine::ReservationTable& table, int time,
                        std::vector<int>& out) const;

    /**
     * Record that `op` issued at `time` occupies `table`'s cells. All
     * cells must currently be free (checked).
     */
    void reserve(int op, const machine::ReservationTable& table, int time);

    /** Release every cell held by `op` (no-op if it holds none). */
    void release(int op);

    /** Owner of (row, resource), or kFree. */
    int
    owner(int row, machine::ResourceId resource) const
    {
        return cells_[static_cast<std::size_t>(row) * numResources_ +
                      resource];
    }

    /** Count of currently reserved cells (for tests). */
    int reservedCellCount() const;

    /**
     * True if `table` collides with itself under modulo `ii` wrap-around
     * (two uses of one resource in congruent rows): such an alternative
     * can never be scheduled at this II, at any time slot.
     */
    static bool selfConflicts(const machine::ReservationTable& table,
                              int ii);

  private:
    int
    rowOf(int time) const
    {
        // Schedule times are never negative (Estart >= 0), but keep the
        // modulo well-defined anyway.
        const int m = time % ii_;
        return m < 0 ? m + ii_ : m;
    }

    int ii_;
    int numResources_;
    std::vector<int> cells_;
    /** Per op: linear cell indices it holds. */
    std::vector<std::vector<int>> held_;
};

} // namespace ims::sched

#endif // IMS_SCHED_MRT_HPP
