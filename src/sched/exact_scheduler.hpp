#ifndef IMS_SCHED_EXACT_SCHEDULER_HPP
#define IMS_SCHED_EXACT_SCHEDULER_HPP

#include <cstdint>
#include <optional>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/compiled_reservations.hpp"
#include "machine/machine_model.hpp"
#include "mii/min_dist.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/priority.hpp"
#include "support/cancellation.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * Default node budget for one exact attempt at one candidate II. Sized so
 * every kernel-corpus loop of up to ~20 operations is decided (feasible
 * schedule found, or infeasibility proven) well within the budget on the
 * default machines; see bench_opt_gap.
 */
inline constexpr std::int64_t kDefaultExactNodeBudget = 4'000'000;

/**
 * An exact (complete) modulo scheduler: for a fixed candidate II it
 * *decides* feasibility by exhaustive branch-and-bound, where the
 * iterative and slack schedulers only ever give a one-sided "found a
 * schedule" answer. Its AttemptStatus::kInfeasible is therefore a proof:
 * no modulo schedule exists at this II on this machine.
 *
 * Encoding (see docs/ALGORITHM.md, "Exact backend & optimality gaps").
 * Every schedule time decomposes as t_v = k_v * II + r_v with residue
 * r_v in [0, II). Resource legality depends only on the residues (the
 * MRT has exactly II rows), and once the residues are fixed the
 * dependence constraints
 *     t_to >= t_from + delay - II * distance
 * become difference constraints on the integers k_v:
 *     k_to - k_from >= ceil((delay - II*distance - (r_to - r_from)) / II),
 * solvable exactly by a longest-path computation. The search therefore
 * branches only over (residue, alternative) pairs per operation and runs
 * a Bellman-Ford leaf check; it never enumerates absolute time slots, so
 * completeness does not depend on any time horizon.
 *
 * Pruning, all deterministic:
 *  - candidate IIs whose MinDist matrix has a positive diagonal are
 *    rejected before any search (the §2.2 recurrence test);
 *  - a partial residue assignment is pruned when some placed pair
 *    (u, v) admits no dependence distance d == (r_v - r_u) (mod II)
 *    inside the window [MinDist[u][v], -MinDist[v][u]];
 *  - alternatives whose compiled reservation tables are bit-identical
 *    at this II are collapsed to the lowest-index representative
 *    (dominance/symmetry pruning), and modulo self-colliding
 *    alternatives are dropped entirely;
 *  - the first branched operation is pinned to residue 0: rotating a
 *    schedule by a constant preserves legality, so every feasible
 *    residue class contains such a representative.
 *
 * The node budget counts units of bounded work — each residue candidate
 * scanned, each (residue, alternative) pair probed against the MRT, and
 * each Bellman-Ford pass of a leaf solve — so it bounds wall time on any
 * machine shape, not just the candidate count. The count is a pure
 * function of the inputs, so exhaustion is bit-identical across thread
 * counts and runs. A budget-exhausted attempt reports
 * AttemptStatus::kBudgetExhausted — *not* infeasibility.
 *
 * Like IterativeScheduler, an instance reuses buffers (MinDist matrix,
 * compiled-table cache) across candidate IIs and is not safe for
 * concurrent trySchedule calls; the racing II search gives each worker
 * its own instance.
 */
class ExactScheduler
{
  public:
    ExactScheduler(const ir::Loop& loop, const machine::MachineModel& machine,
                   const graph::DepGraph& graph, const graph::SccResult& sccs,
                   support::Counters* counters = nullptr);

    /**
     * Decide candidate `ii` within `node_budget` examined candidates.
     *
     * Returns the schedule when one exists and the search completed; a
     * nullopt return distinguishes its cause via `status`:
     * kInfeasible (proven — the full space was searched), kBudgetExhausted
     * (undecided), or kCancelled (the token's ceiling dropped below `ii`).
     */
    std::optional<ScheduleResult>
    trySchedule(int ii, std::int64_t node_budget,
                const support::CancellationToken* cancel = nullptr,
                AttemptStatus* status = nullptr);

  private:
    const ir::Loop& loop_;
    const machine::MachineModel& machine_;
    const graph::DepGraph& graph_;
    const graph::SccResult& sccs_;
    support::Counters* counters_;
    /** HeightR buffers reused across candidate IIs (branch order). */
    PriorityWorkspace priorityWorkspace_;
    /** Compiled reservation tables shared across attempts and IIs. */
    machine::CompiledTableCache compiledCache_;
    /** Whole-graph MinDist, recomputed (not rebuilt) per candidate II. */
    std::optional<mii::MinDistMatrix> dist_;
};

} // namespace ims::sched

#endif // IMS_SCHED_EXACT_SCHEDULER_HPP
