#ifndef IMS_SCHED_SCHEDULE_HPP
#define IMS_SCHED_SCHEDULE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/exact_scheduler.hpp"
#include "sched/modulo_scheduler.hpp"
#include "support/counters.hpp"

namespace ims::sched {

/**
 * Which scheduling backend decides feasibility at each candidate II.
 * All three run under the same Figure-2 outer loop (runIiSearch): the
 * same II-search strategies (linear/racing), cancellation tokens,
 * deterministic-prefix accounting and ii_* telemetry.
 */
enum class SchedulerStrategy
{
    /** The paper's iterative modulo scheduler (Figure 3) — the default. */
    kIterative,
    /** The Huff-style bidirectional slack scheduler (ablation baseline). */
    kSlack,
    /**
     * The exact branch-and-bound backend (sched/exact_scheduler.hpp):
     * proves feasibility or infeasibility per candidate II, so the first
     * feasible II it reports is the provably optimal one. Exponential in
     * the worst case; governed by ScheduleOptions::exactNodeBudget, and
     * throws support::CodedError("exact.budget_exhausted") when an
     * attempt is cut off undecided (optimality can no longer be proven).
     */
    kExact,
};

/** Stable lowercase name ("iterative", "slack", "exact"). */
std::string schedulerStrategyName(SchedulerStrategy strategy);

/** Inverse of schedulerStrategyName; nullopt for unknown names. */
std::optional<SchedulerStrategy>
schedulerStrategyByName(std::string_view name);

/**
 * The shared options for sched::schedule() — one flat struct covering
 * every backend. The priority/seed/trace knobs apply to the iterative
 * backend; `exactNodeBudget` to the exact backend; `search` and
 * `telemetry` to all three.
 */
struct ScheduleOptions
{
    SchedulerStrategy strategy = SchedulerStrategy::kIterative;
    /** The outer II loop's policy and budget knobs (shared verbatim by
     *  every backend, so the Figure-2 knobs exist exactly once). */
    IiSearchOptions search;
    /** Priority scheme for the iterative backend (§3.2). */
    PriorityScheme priority = PriorityScheme::kHeightR;
    /** The §3.4 forward-progress rule (iterative backend). */
    bool forwardProgressRule = true;
    /** Seed for PriorityScheme::kRandom. */
    std::uint64_t randomSeed = 1;
    /** Per-candidate-II node budget for the exact backend. */
    std::int64_t exactNodeBudget = kDefaultExactNodeBudget;
    /** When non-null, every iterative scheduling step is appended here
     *  (linear search + iterative backend only). */
    std::vector<TraceEvent>* trace = nullptr;
    /** Sink receiving the MII-bound and replayed ii_attempt phases. */
    support::TelemetrySink* telemetry = nullptr;

    ScheduleOptions&
    withStrategy(SchedulerStrategy s)
    {
        strategy = s;
        return *this;
    }

    ScheduleOptions&
    withSearch(IiSearchOptions s)
    {
        search = s;
        return *this;
    }

    ScheduleOptions&
    withPriority(PriorityScheme scheme)
    {
        priority = scheme;
        return *this;
    }

    ScheduleOptions&
    withForwardProgressRule(bool enabled)
    {
        forwardProgressRule = enabled;
        return *this;
    }

    ScheduleOptions&
    withRandomSeed(std::uint64_t seed)
    {
        randomSeed = seed;
        return *this;
    }

    ScheduleOptions&
    withExactNodeBudget(std::int64_t budget)
    {
        exactNodeBudget = budget;
        return *this;
    }

    ScheduleOptions&
    withTrace(std::vector<TraceEvent>* sink)
    {
        trace = sink;
        return *this;
    }

    ScheduleOptions&
    withTelemetry(support::TelemetrySink* sink)
    {
        telemetry = sink;
        return *this;
    }

    /** Lower to the iterative backend's per-attempt options. */
    IterativeScheduleOptions
    inner() const
    {
        IterativeScheduleOptions options;
        options.priority = priority;
        options.forwardProgressRule = forwardProgressRule;
        options.randomSeed = randomSeed;
        options.trace = trace;
        options.telemetry = telemetry;
        return options;
    }
};

namespace detail {

/** Backend drivers behind sched::schedule(); not part of the API. */
ModuloScheduleOutcome
runIterativeSchedule(const ir::Loop& loop,
                     const machine::MachineModel& machine,
                     const graph::DepGraph& graph,
                     const graph::SccResult& sccs,
                     const ScheduleOptions& options,
                     support::Counters* counters);

ModuloScheduleOutcome
runSlackSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
                 const graph::DepGraph& graph, const graph::SccResult& sccs,
                 const ScheduleOptions& options,
                 support::Counters* counters);

ModuloScheduleOutcome
runExactSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
                 const graph::DepGraph& graph, const graph::SccResult& sccs,
                 const ScheduleOptions& options,
                 support::Counters* counters);

} // namespace detail

/**
 * The single scheduling entry point: compute the MII, then run the
 * backend selected by options.strategy over candidate IIs under the
 * configured II-search strategy (the paper's Figure 2). (The pre-PR-6
 * per-backend free functions were deprecated for one release and have
 * been removed; see docs/api.md for the migration table.)
 *
 * @throws support::CodedError "sched.ii_exhausted" when every candidate
 *         II fails, and "exact.budget_exhausted" when the exact backend
 *         runs out of nodes at a candidate the linear search would have
 *         reached (so results stay bit-identical across strategies and
 *         thread counts).
 */
ModuloScheduleOutcome schedule(const ir::Loop& loop,
                               const machine::MachineModel& machine,
                               const graph::DepGraph& graph,
                               const graph::SccResult& sccs,
                               const ScheduleOptions& options = {},
                               support::Counters* counters = nullptr);

/** Convenience overload: builds the dependence graph and SCCs itself. */
ModuloScheduleOutcome schedule(const ir::Loop& loop,
                               const machine::MachineModel& machine,
                               const ScheduleOptions& options = {},
                               support::Counters* counters = nullptr);

} // namespace ims::sched

#endif // IMS_SCHED_SCHEDULE_HPP
