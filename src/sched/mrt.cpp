#include "sched/mrt.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ims::sched {

ModuloReservationTable::ModuloReservationTable(int ii, int num_resources,
                                               int num_ops)
    : ii_(ii),
      numResources_(num_resources),
      wordsPerRow_((num_resources + 63) / 64),
      wordsPerColumn_((ii + 63) / 64),
      lastColumnWordMask_(ii % 64 == 0
                              ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (ii % 64)) - 1),
      cells_(static_cast<std::size_t>(ii) * num_resources, kFree),
      numOps_(num_ops),
      heldStride_(4),
      heldCells_(static_cast<std::size_t>(num_ops) * 4, 0),
      heldCount_(num_ops, 0),
      rowMasks_(static_cast<std::size_t>(ii) * wordsPerRow_, 0),
      resourceRows_(static_cast<std::size_t>(num_resources) *
                        wordsPerColumn_,
                    0),
      scanScratch_(wordsPerColumn_, 0)
{
    assert(ii >= 1);
}

void
ModuloReservationTable::setCellBits(int row, machine::ResourceId resource)
{
    std::uint64_t& row_word =
        rowMasks_[static_cast<std::size_t>(row) * wordsPerRow_ +
                  (resource >> 6)];
    const std::uint64_t row_bit = std::uint64_t{1} << (resource & 63);
    assert((row_word & row_bit) == 0 && "mask disagrees with owner cells");
    row_word |= row_bit;

    std::uint64_t& col_word =
        resourceRows_[static_cast<std::size_t>(resource) *
                          wordsPerColumn_ +
                      (row >> 6)];
    const std::uint64_t col_bit = std::uint64_t{1} << (row & 63);
    assert((col_word & col_bit) == 0 && "mask disagrees with owner cells");
    col_word |= col_bit;
}

void
ModuloReservationTable::clearCellBits(int row, machine::ResourceId resource)
{
    std::uint64_t& row_word =
        rowMasks_[static_cast<std::size_t>(row) * wordsPerRow_ +
                  (resource >> 6)];
    const std::uint64_t row_bit = std::uint64_t{1} << (resource & 63);
    assert((row_word & row_bit) != 0 && "mask disagrees with owner cells");
    row_word &= ~row_bit;

    std::uint64_t& col_word =
        resourceRows_[static_cast<std::size_t>(resource) *
                          wordsPerColumn_ +
                      (row >> 6)];
    const std::uint64_t col_bit = std::uint64_t{1} << (row & 63);
    assert((col_word & col_bit) != 0 && "mask disagrees with owner cells");
    col_word &= ~col_bit;
}

bool
ModuloReservationTable::conflicts(const machine::ReservationTable& table,
                                  int time) const
{
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        if (owner(row, use.resource) != kFree)
            return true;
    }
    return false;
}

bool
ModuloReservationTable::conflicts(
    const machine::CompiledReservationTable& table, int time) const
{
    assert(table.ii() == ii_ && table.wordsPerRow() == wordsPerRow_);
    ++maskProbes_;
    const int tm = rowOf(time);
    const int num_rows = table.numRows();
    for (int k = 0; k < num_rows; ++k) {
        int row = table.rowIndex(k) + tm;
        if (row >= ii_)
            row -= ii_;
        const std::uint64_t* use_words = table.rowWords(k);
        const std::uint64_t* occupancy = rowMask(row);
        for (int w = 0; w < wordsPerRow_; ++w) {
            if ((use_words[w] & occupancy[w]) != 0)
                return true;
        }
    }
    return false;
}

void
ModuloReservationTable::orRotatedInto(const std::uint64_t* src,
                                      int rotation,
                                      std::uint64_t* dst) const
{
    const int W = wordsPerColumn_;
    if (rotation == 0) {
        for (int i = 0; i < W; ++i)
            dst[i] |= src[i];
        return;
    }
    // rotr over the ii-bit field: (src >> rotation) | (src << (ii - s)),
    // with the unused high bits of the last word masked back off.
    const int ws = rotation >> 6;
    const int bs = rotation & 63;
    const int left = ii_ - rotation;
    const int wl = left >> 6;
    const int bl = left & 63;
    for (int i = 0; i < W; ++i) {
        std::uint64_t value = 0;
        const int j = i + ws;
        if (j < W)
            value = src[j] >> bs;
        if (bs != 0 && j + 1 < W)
            value |= src[j + 1] << (64 - bs);
        const int k = i - wl;
        if (k >= 0)
            value |= src[k] << bl;
        if (bl != 0 && k - 1 >= 0)
            value |= src[k - 1] >> (64 - bl);
        if (i == W - 1)
            value &= lastColumnWordMask_;
        dst[i] |= value;
    }
}

int
ModuloReservationTable::firstFreeSlot(
    const machine::CompiledReservationTable& table, int min_time) const
{
    assert(table.ii() == ii_ && table.wordsPerRow() == wordsPerRow_);
    assert(!table.selfConflicts() &&
           "self-conflicting alternatives are pre-filtered");
    ++slotScans_;
    if (table.empty())
        return min_time;

    // Conflict mask over issue residues: bit p is set iff issuing the
    // table at any time ≡ p (mod II) collides. A use of resource R at
    // rotation u collides at residue p iff row (p + u) mod II of R is
    // occupied — i.e. R's row bitset rotated down by u.
    const int W = wordsPerColumn_;
    std::uint64_t* conflict = scanScratch_.data();
    std::fill(conflict, conflict + W, 0);
    const int num_uses = table.numUses();
    for (int i = 0; i < num_uses; ++i) {
        const auto use = table.use(i);
        orRotatedInto(resourceRows(use.resource), use.rotation, conflict);
    }

    // First zero bit at or cyclically after residue p0 = min_time mod II.
    const int p0 = rowOf(min_time);
    const auto scan = [&](int from, int limit) -> int {
        for (int w = from >> 6; w <= (limit - 1) >> 6; ++w) {
            std::uint64_t free = ~conflict[w];
            if (w == from >> 6)
                free &= ~std::uint64_t{0} << (from & 63);
            if (w == (limit - 1) >> 6 && (limit & 63) != 0)
                free &= (std::uint64_t{1} << (limit & 63)) - 1;
            if (free != 0) {
                const int p = (w << 6) + std::countr_zero(free);
                if (p < limit)
                    return p;
            }
        }
        return -1;
    };
    int p = scan(p0, ii_);
    if (p < 0 && p0 > 0)
        p = scan(0, p0);
    if (p < 0)
        return -1;
    const int delta = p >= p0 ? p - p0 : p - p0 + ii_;
    return min_time + delta;
}

std::vector<int>
ModuloReservationTable::conflictingOps(const machine::ReservationTable& table,
                                       int time) const
{
    std::vector<int> ops;
    conflictingOps(table, time, ops);
    return ops;
}

void
ModuloReservationTable::conflictingOps(const machine::ReservationTable& table,
                                       int time, std::vector<int>& out) const
{
    out.clear();
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        const int holder = owner(row, use.resource);
        if (holder != kFree)
            out.push_back(holder);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

void
ModuloReservationTable::growHeldStride(int needed)
{
    const int new_stride = std::max(heldStride_ * 2, needed);
    std::vector<std::int32_t> grown(
        static_cast<std::size_t>(numOps_) * new_stride, 0);
    for (int op = 0; op < numOps_; ++op) {
        std::copy_n(heldCells_.data() +
                        static_cast<std::size_t>(op) * heldStride_,
                    heldCount_[op],
                    grown.data() +
                        static_cast<std::size_t>(op) * new_stride);
    }
    heldCells_.swap(grown);
    heldStride_ = new_stride;
}

void
ModuloReservationTable::reserve(int op,
                                const machine::ReservationTable& table,
                                int time)
{
    assert(op >= 0 && op < numOps_);
    assert(heldCount_[op] == 0 && "operation already holds reservations");
    const int num_uses = static_cast<int>(table.uses().size());
    if (num_uses > heldStride_)
        growHeldStride(num_uses);
    std::int32_t* held =
        heldCells_.data() + static_cast<std::size_t>(op) * heldStride_;
    int count = 0;
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        const std::size_t cell =
            static_cast<std::size_t>(row) * numResources_ + use.resource;
        assert(cells_[cell] == kFree && "double booking in MRT");
        cells_[cell] = op;
        setCellBits(row, use.resource);
        held[count++] = static_cast<std::int32_t>(cell);
    }
    heldCount_[op] = count;
#ifdef IMS_EXPENSIVE_CHECKS
    assert(masksConsistent());
#endif
}

void
ModuloReservationTable::release(int op)
{
    assert(op >= 0 && op < numOps_);
    const std::int32_t* held =
        heldCells_.data() + static_cast<std::size_t>(op) * heldStride_;
    const int count = heldCount_[op];
    for (int i = 0; i < count; ++i) {
        const std::int32_t cell = held[i];
        assert(cells_[cell] == op);
        cells_[cell] = kFree;
        clearCellBits(cell / numResources_, cell % numResources_);
    }
    heldCount_[op] = 0;
#ifdef IMS_EXPENSIVE_CHECKS
    assert(masksConsistent());
#endif
}

bool
ModuloReservationTable::selfConflicts(const machine::ReservationTable& table,
                                      int ii)
{
    const auto& uses = table.uses();
    for (std::size_t i = 0; i < uses.size(); ++i) {
        for (std::size_t j = i + 1; j < uses.size(); ++j) {
            if (uses[i].resource == uses[j].resource &&
                (uses[j].time - uses[i].time) % ii == 0) {
                return true;
            }
        }
    }
    return false;
}

int
ModuloReservationTable::reservedCellCount() const
{
    return static_cast<int>(
        std::count_if(cells_.begin(), cells_.end(),
                      [](int owner) { return owner != kFree; }));
}

bool
ModuloReservationTable::masksConsistent() const
{
    for (int row = 0; row < ii_; ++row) {
        for (int resource = 0; resource < numResources_; ++resource) {
            const bool occupied = owner(row, resource) != kFree;
            const bool row_bit =
                (rowMask(row)[resource >> 6] >>
                     (resource & 63) & 1) != 0;
            const bool col_bit =
                (resourceRows(resource)[row >> 6] >> (row & 63) & 1) !=
                0;
            if (row_bit != occupied || col_bit != occupied)
                return false;
        }
    }
    return true;
}

} // namespace ims::sched
