#include "sched/mrt.hpp"

#include <algorithm>
#include <cassert>

namespace ims::sched {

ModuloReservationTable::ModuloReservationTable(int ii, int num_resources,
                                               int num_ops)
    : ii_(ii),
      numResources_(num_resources),
      cells_(static_cast<std::size_t>(ii) * num_resources, kFree),
      held_(num_ops)
{
    assert(ii >= 1);
}

bool
ModuloReservationTable::conflicts(const machine::ReservationTable& table,
                                  int time) const
{
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        if (owner(row, use.resource) != kFree)
            return true;
    }
    return false;
}

std::vector<int>
ModuloReservationTable::conflictingOps(const machine::ReservationTable& table,
                                       int time) const
{
    std::vector<int> ops;
    conflictingOps(table, time, ops);
    return ops;
}

void
ModuloReservationTable::conflictingOps(const machine::ReservationTable& table,
                                       int time, std::vector<int>& out) const
{
    out.clear();
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        const int holder = owner(row, use.resource);
        if (holder != kFree)
            out.push_back(holder);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

void
ModuloReservationTable::reserve(int op,
                                const machine::ReservationTable& table,
                                int time)
{
    assert(op >= 0 && op < static_cast<int>(held_.size()));
    assert(held_[op].empty() && "operation already holds reservations");
    for (const auto& use : table.uses()) {
        const int row = rowOf(time + use.time);
        const std::size_t cell =
            static_cast<std::size_t>(row) * numResources_ + use.resource;
        assert(cells_[cell] == kFree && "double booking in MRT");
        cells_[cell] = op;
        held_[op].push_back(static_cast<int>(cell));
    }
}

void
ModuloReservationTable::release(int op)
{
    assert(op >= 0 && op < static_cast<int>(held_.size()));
    for (int cell : held_[op]) {
        assert(cells_[cell] == op);
        cells_[cell] = kFree;
    }
    held_[op].clear();
}

bool
ModuloReservationTable::selfConflicts(const machine::ReservationTable& table,
                                      int ii)
{
    const auto& uses = table.uses();
    for (std::size_t i = 0; i < uses.size(); ++i) {
        for (std::size_t j = i + 1; j < uses.size(); ++j) {
            if (uses[i].resource == uses[j].resource &&
                (uses[j].time - uses[i].time) % ii == 0) {
                return true;
            }
        }
    }
    return false;
}

int
ModuloReservationTable::reservedCellCount() const
{
    return static_cast<int>(
        std::count_if(cells_.begin(), cells_.end(),
                      [](int owner) { return owner != kFree; }));
}

} // namespace ims::sched
