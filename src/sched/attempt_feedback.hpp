#ifndef IMS_SCHED_ATTEMPT_FEEDBACK_HPP
#define IMS_SCHED_ATTEMPT_FEEDBACK_HPP

#include <cstdint>
#include <vector>

#include "graph/dep_graph.hpp"

namespace ims::support {
struct Counters;
} // namespace ims::support

namespace ims::sched {

class ModuloReservationTable;

/**
 * The strategy-neutral attempt vocabulary shared by every scheduling
 * backend (iterative, slack, exact) and every II-search strategy: why an
 * attempt ended, the per-step trace events, the batched hot-path
 * counters, and the AttemptFeedback report the feedback-guided II search
 * mines after a failed attempt. These types used to live in
 * iterative_scheduler.hpp / attempt_state.hpp; the old spellings remain
 * as one-release [[deprecated]] aliases below.
 */

/** Why one schedule attempt ended the way it did. */
enum class AttemptStatus
{
    /** A complete legal modulo schedule was produced. */
    kScheduled,
    /** The step budget ran out with operations still unscheduled. */
    kBudgetExhausted,
    /** Some operation has no usable alternative at this II. */
    kInfeasible,
    /** The cancellation token's ceiling dropped below this II mid-run. */
    kCancelled,
};

/**
 * One operation-scheduling step, for tracing/visualising the algorithm
 * (the moving parts of Figures 2-5: the chosen operation and its
 * priority, the Estart computation, the FindTimeSlot range and outcome,
 * and any displacements).
 */
struct TraceEvent
{
    int step = 0;
    graph::VertexId op = -1;
    std::int64_t priority = 0;
    int estart = 0;
    int minTime = 0;
    int maxTime = 0;
    /** Chosen slot. */
    int slot = 0;
    /** Chosen alternative. */
    int alternative = 0;
    /** True when no conflict-free slot existed (forced placement). */
    bool forced = false;
    /** Operations displaced by this placement (resource or dependence). */
    std::vector<graph::VertexId> displaced;
    /**
     * The subset of `displaced` evicted to free the *chosen* alternative's
     * resources (forced placements only; §3.4/Figure 4). The remainder of
     * `displaced` are successors displaced for dependence violations.
     */
    std::vector<graph::VertexId> resourceDisplaced;
};

/**
 * Per-attempt instrumentation shared by the iterative and slack
 * schedulers: plain members bumped on the hot path, flushed once per
 * attempt into the unified support::Counters (the hot loop never touches
 * the shared struct). Both schedulers used to carry a private copy of
 * these fields; this is the single owner.
 */
struct AttemptCounters
{
    /** Predecessor/vertex examinations while computing Estart windows. */
    std::uint64_t estartVisits = 0;
    /** Estart queries answered from the incremental cache, no rescan. */
    std::uint64_t estartIncrementalHits = 0;
    /** Time slots examined by FindTimeSlot. */
    std::uint64_t slotProbes = 0;
    /** Operation scheduling steps performed. */
    std::uint64_t scheduleSteps = 0;
    /** Operations displaced from the schedule. */
    std::uint64_t unscheduleSteps = 0;

    /** One batched delta per attempt into the unified counters. */
    void flushInto(support::Counters& counters,
                   const ModuloReservationTable& mrt) const;
};

/**
 * What a failed attempt learned, reported by every backend through
 * IiAttemptOutcome so an II-search strategy can consume it (see
 * docs/ALGORITHM.md, "Feedback-guided search"). Population is gated on a
 * caller-provided sink — when nobody asks, the hot path does not pay for
 * collection.
 *
 * The report names the attempt's *bottleneck*: the operations that could
 * not be placed at all (no usable alternative at this II), the
 * displacement storm (operations evicted most often while the budget
 * burned down), and the resource classes whose occupancy forced those
 * evictions. The feedback II search closes the storm vertices under
 * their dependence SCCs and hands the induced subgraph to the exact
 * backend to prove candidate IIs infeasible without attempting them.
 */
struct AttemptFeedback
{
    /** One storm entry: an operation and how often it was displaced. */
    struct Displacement
    {
        graph::VertexId op = -1;
        std::int32_t count = 0;
    };

    /** One contended resource class and the evictions it forced. */
    struct ResourceContention
    {
        int resource = -1;
        std::int64_t evictions = 0;
    };

    /** Candidate II of the attempt this report describes. */
    int ii = 0;
    /** Why the attempt ended. */
    AttemptStatus status = AttemptStatus::kBudgetExhausted;
    /** Operations with no usable alternative at `ii` (ascending id).
     *  Non-empty exactly when `status` is kInfeasible for the heuristic
     *  backends — their only infeasibility proof. */
    std::vector<graph::VertexId> unplaceable;
    /** Displacement storm, sorted by count descending then id ascending
     *  (deterministic: pure function of the attempt). */
    std::vector<Displacement> displacements;
    /** Resource classes whose occupancy forced evictions, sorted by
     *  eviction count descending then resource id ascending. */
    std::vector<ResourceContention> contendedResources;

    /** True when the report carries a usable bottleneck signal. */
    bool
    conclusive() const
    {
        return !unplaceable.empty() || !displacements.empty();
    }

    /**
     * The bottleneck vertices, at most `cap` of them: unplaceable
     * operations first (they alone prove infeasibility), then storm
     * vertices in storm order, deduplicated.
     */
    std::vector<graph::VertexId> bottleneck(int cap) const;

    /** Reset to the empty (inconclusive) report. */
    void clear();
};

/** Deprecated spelling of AttemptCounters (moved from
 *  sched/attempt_state.hpp); will be removed next release. */
using AttemptStats [[deprecated("use sched::AttemptCounters from "
                                "sched/attempt_feedback.hpp")]] =
    AttemptCounters;

} // namespace ims::sched

#endif // IMS_SCHED_ATTEMPT_FEEDBACK_HPP
