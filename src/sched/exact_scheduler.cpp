#include "sched/exact_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

#include "mii/mii.hpp"
#include "sched/feedback_probe.hpp"
#include "sched/partial_schedule.hpp"
#include "sched/schedule.hpp"
#include "support/error.hpp"

namespace ims::sched {

namespace {

/** One dependence edge lowered to a k-space difference constraint. */
struct KEdge
{
    graph::VertexId from;
    graph::VertexId to;
    int delay;
    int distance;
};

/** ceil(a / b) for b > 0 and any sign of a. */
std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

/**
 * True when two compiled tables reserve exactly the same (row mod II,
 * resource) cells — interchangeable for the MRT, so branching on both is
 * pure symmetry. The merged modulo-use list is canonical (sorted,
 * unique), so list equality is table equality.
 */
bool
identicalTables(const machine::CompiledReservationTable& a,
                const machine::CompiledReservationTable& b)
{
    if (a.numUses() != b.numUses())
        return false;
    for (int i = 0; i < a.numUses(); ++i) {
        const auto ua = a.use(i);
        const auto ub = b.use(i);
        if (ua.rotation != ub.rotation || ua.resource != ub.resource)
            return false;
    }
    return true;
}

/**
 * The branch-and-bound over (residue, alternative) assignments for one
 * candidate II. Scratch state lives for one trySchedule call.
 */
class Search
{
  public:
    Search(const graph::DepGraph& graph, const mii::MinDistMatrix& dist,
           PartialSchedule& schedule,
           const std::vector<graph::VertexId>& order,
           const std::vector<std::vector<int>>& alternatives,
           const std::vector<KEdge>& k_edges, int ii, std::int64_t budget,
           const support::CancellationToken* cancel)
        : graph_(graph), dist_(dist), schedule_(schedule), order_(order),
          alternatives_(alternatives), kEdges_(k_edges), ii_(ii),
          budget_(budget), cancel_(cancel),
          residue_(static_cast<std::size_t>(graph.numVertices()), 0),
          k_(static_cast<std::size_t>(graph.numVertices()), 0)
    {
        // START is every operation's predecessor and is pinned at time 0,
        // hence residue 0. It reserves no resources, so it participates
        // only in the residue-window and k-system checks.
        placedList_.reserve(order.size() + 1);
        placedList_.push_back(graph.start());
    }

    bool run() { return assign(0); }

    bool budgetExhausted() const { return budgetExhausted_; }
    bool cancelled() const { return cancelled_; }
    std::int64_t nodes() const { return nodes_; }
    std::int64_t backtracks() const { return backtracks_; }

    /** Schedule time of `v` under the solved (k, residue) assignment. */
    std::int64_t
    timeOf(graph::VertexId v) const
    {
        return k_[static_cast<std::size_t>(v)] * ii_ +
               residue_[static_cast<std::size_t>(v)];
    }

  private:
    /** Debit one node from the budget; false (and sets the exhausted
     *  flag) once it runs dry. */
    bool
    charge()
    {
        if (++nodes_ > budget_) {
            budgetExhausted_ = true;
            return false;
        }
        return true;
    }

    bool
    assign(std::size_t idx)
    {
        if (idx == order_.size())
            return solveLeaf();
        const graph::VertexId v = order_[idx];
        const auto& compiled = schedule_.compiledAlternativesOf(v);
        // Rotating every time by a constant preserves dependence and
        // resource legality, so any feasible assignment has a rotation
        // placing the first branched operation at residue 0: pinning it
        // there loses no schedules and divides the search space by II.
        const int residue_limit = idx == 0 ? 1 : ii_;
        for (int r = 0; r < residue_limit; ++r) {
            // Every O(V)-bounded unit of work charges the budget — residue
            // candidates here, alternative probes below, Bellman-Ford
            // passes in solveLeaf — so the budget bounds wall time on any
            // machine shape, not just the candidate count.
            if (!charge())
                return false;
            if (!residueCompatible(v, r))
                continue;
            for (const int alternative : alternatives_[v]) {
                if (!charge())
                    return false;
                if (cancel_ != nullptr && cancel_->cancelled(ii_)) {
                    cancelled_ = true;
                    return false;
                }
                if (schedule_.mrt().conflicts(compiled[alternative], r))
                    continue;
                schedule_.place(v, r, alternative);
                residue_[static_cast<std::size_t>(v)] = r;
                placedList_.push_back(v);
                if (assign(idx + 1))
                    return true;
                schedule_.remove(v);
                placedList_.pop_back();
                if (budgetExhausted_ || cancelled_)
                    return false;
                ++backtracks_;
            }
        }
        return false;
    }

    /**
     * Pairwise MinDist residue pruning: for every already placed u, the
     * signed distance d = t_v - t_u must lie in [MinDist[u][v],
     * -MinDist[v][u]] and be congruent to r - r_u (mod II). When the
     * window is finite on both sides and narrower than II, at most one
     * residue class fits — reject the rest without descending.
     */
    bool
    residueCompatible(graph::VertexId v, int r) const
    {
        for (const graph::VertexId u : placedList_) {
            const std::int64_t lo = dist_.atVertex(u, v);
            const std::int64_t neg_hi = dist_.atVertex(v, u);
            if (lo == mii::MinDistMatrix::kMinusInf ||
                neg_hi == mii::MinDistMatrix::kMinusInf) {
                // A one-sided (or absent) window admits every residue:
                // some congruent d beyond the finite bound always exists.
                continue;
            }
            const std::int64_t span = -neg_hi - lo;
            if (span < 0)
                return false; // positive cycle through (u, v)
            if (span >= ii_ - 1)
                continue; // window covers every residue class
            const std::int64_t offset =
                r - residue_[static_cast<std::size_t>(u)] - lo;
            const std::int64_t m = offset % ii_;
            if ((m < 0 ? m + ii_ : m) > span)
                return false;
        }
        return true;
    }

    /**
     * All residues fixed: solve the k-space difference constraints by
     * longest path from START (Bellman-Ford over the lowered edges).
     * Feasible iff there is no positive cycle; the minimal solution also
     * yields the earliest schedule times, hence the shortest schedule.
     */
    bool
    solveLeaf()
    {
        constexpr std::int64_t kUnreached = mii::MinDistMatrix::kMinusInf;
        std::fill(k_.begin(), k_.end(), kUnreached);
        k_[static_cast<std::size_t>(graph_.start())] = 0;
        const int max_passes = graph_.numVertices() + 1;
        for (int pass = 0; pass < max_passes; ++pass) {
            if (!charge())
                return false;
            bool changed = false;
            for (const KEdge& e : kEdges_) {
                const std::int64_t from_k =
                    k_[static_cast<std::size_t>(e.from)];
                if (from_k == kUnreached)
                    continue;
                const std::int64_t w = ceilDiv(
                    e.delay -
                        static_cast<std::int64_t>(ii_) * e.distance -
                        (residue_[static_cast<std::size_t>(e.to)] -
                         residue_[static_cast<std::size_t>(e.from)]),
                    ii_);
                auto& to_k = k_[static_cast<std::size_t>(e.to)];
                if (from_k + w > to_k) {
                    to_k = from_k + w;
                    changed = true;
                }
            }
            if (!changed)
                return true;
        }
        // Still relaxing after |V| passes: a positive cycle — this
        // residue assignment admits no k solution.
        return false;
    }

    const graph::DepGraph& graph_;
    const mii::MinDistMatrix& dist_;
    PartialSchedule& schedule_;
    const std::vector<graph::VertexId>& order_;
    const std::vector<std::vector<int>>& alternatives_;
    const std::vector<KEdge>& kEdges_;
    int ii_;
    std::int64_t budget_;
    const support::CancellationToken* cancel_;

    std::vector<int> residue_;
    std::vector<std::int64_t> k_;
    std::vector<graph::VertexId> placedList_;
    std::int64_t nodes_ = 0;
    std::int64_t backtracks_ = 0;
    bool budgetExhausted_ = false;
    bool cancelled_ = false;
};

} // namespace

ExactScheduler::ExactScheduler(const ir::Loop& loop,
                               const machine::MachineModel& machine,
                               const graph::DepGraph& graph,
                               const graph::SccResult& sccs,
                               support::Counters* counters)
    : loop_(loop), machine_(machine), graph_(graph), sccs_(sccs),
      counters_(counters)
{
}

std::optional<ScheduleResult>
ExactScheduler::trySchedule(int ii, std::int64_t node_budget,
                            const support::CancellationToken* cancel,
                            AttemptStatus* status)
{
    support::check(ii >= 1, "candidate II must be >= 1");
    support::check(node_budget > 0, "exact node budget must be positive");
    const auto report = [&](AttemptStatus s) {
        if (status != nullptr)
            *status = s;
    };

    if (!dist_.has_value())
        dist_.emplace(graph_, ii, counters_);
    else
        dist_->recompute(ii, counters_);
    if (!dist_->feasible()) {
        report(AttemptStatus::kInfeasible);
        return std::nullopt;
    }

    PartialSchedule schedule(graph_, loop_, machine_, ii, &compiledCache_);
    if (!schedule.allVerticesPlaceable()) {
        report(AttemptStatus::kInfeasible);
        return std::nullopt;
    }

    // Branch order: HeightR descending (critical operations first), ties
    // by vertex id — the same deterministic order at every thread count.
    computePrioritiesInto(graph_, sccs_, ii, PriorityScheme::kHeightR,
                          /*seed=*/1, counters_, priorityWorkspace_);
    const auto& priorities = priorityWorkspace_.priorities;
    std::vector<graph::VertexId> order(
        static_cast<std::size_t>(graph_.numOps()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::VertexId a, graph::VertexId b) {
                         const auto pa =
                             priorities[static_cast<std::size_t>(a)];
                         const auto pb =
                             priorities[static_cast<std::size_t>(b)];
                         return pa != pb ? pa > pb : a < b;
                     });

    // Dominance/symmetry pruning: drop modulo self-colliding alternatives
    // (unschedulable at this II) and collapse alternatives whose compiled
    // tables are identical to an earlier one.
    std::vector<std::vector<int>> alternatives(
        static_cast<std::size_t>(graph_.numVertices()));
    for (const graph::VertexId v : order) {
        const auto& compiled = schedule.compiledAlternativesOf(v);
        auto& distinct = alternatives[static_cast<std::size_t>(v)];
        for (int i = 0; i < static_cast<int>(compiled.size()); ++i) {
            if (compiled[static_cast<std::size_t>(i)].selfConflicts())
                continue;
            bool duplicate = false;
            for (const int j : distinct) {
                if (identicalTables(compiled[static_cast<std::size_t>(i)],
                                    compiled[static_cast<std::size_t>(j)])) {
                    duplicate = true;
                    break;
                }
            }
            if (!duplicate)
                distinct.push_back(i);
        }
        if (distinct.empty()) {
            // allVerticesPlaceable already rules this out; keep the proof
            // airtight if a machine model ever offers no alternatives.
            report(AttemptStatus::kInfeasible);
            return std::nullopt;
        }
    }

    // Lower the dependence edges once: STOP only bounds the schedule
    // length (it has no outgoing edges), so it is excluded from the
    // branch-and-bound and reattached after a solution is found.
    // Self-edges reduce to delay - II*distance <= 0, which the MinDist
    // diagonal check already certified.
    std::vector<KEdge> k_edges;
    k_edges.reserve(static_cast<std::size_t>(graph_.numEdges()));
    for (const graph::DepEdge& e : graph_.edges()) {
        if (e.from == e.to || e.from == graph_.stop() ||
            e.to == graph_.stop()) {
            continue;
        }
        k_edges.push_back({e.from, e.to, e.delay, e.distance});
    }

    Search search(graph_, *dist_, schedule, order, alternatives, k_edges,
                  ii, node_budget, cancel);
    const bool found = search.run();

    if (counters_ != nullptr) {
        counters_->scheduleSteps += static_cast<std::uint64_t>(search.nodes());
        counters_->unscheduleSteps +=
            static_cast<std::uint64_t>(search.backtracks());
        counters_->mrtMaskProbes += schedule.mrt().maskProbes();
        counters_->mrtSlotScans += schedule.mrt().slotScans();
    }

    if (!found) {
        if (search.cancelled())
            report(AttemptStatus::kCancelled);
        else if (search.budgetExhausted())
            report(AttemptStatus::kBudgetExhausted);
        else
            report(AttemptStatus::kInfeasible); // space exhausted: a proof
        return std::nullopt;
    }

    ScheduleResult result;
    result.ii = ii;
    result.times.resize(static_cast<std::size_t>(graph_.numOps()));
    result.alternatives.resize(static_cast<std::size_t>(graph_.numOps()));
    for (graph::VertexId v = 0; v < graph_.numOps(); ++v) {
        result.times[static_cast<std::size_t>(v)] =
            static_cast<int>(search.timeOf(v));
        result.alternatives[static_cast<std::size_t>(v)] =
            schedule.alternativeOf(v);
    }
    // STOP is the successor of every operation; its earliest legal time
    // is the schedule length SL.
    std::int64_t stop_time = 0;
    for (const graph::EdgeId eid : graph_.inEdges(graph_.stop())) {
        const graph::DepEdge& e = graph_.edge(eid);
        const std::int64_t from_time =
            e.from == graph_.start() ? 0 : search.timeOf(e.from);
        stop_time = std::max(stop_time,
                             from_time + e.delay -
                                 static_cast<std::int64_t>(ii) * e.distance);
    }
    result.scheduleLength = static_cast<int>(stop_time);
    result.stepsUsed = search.nodes();
    result.unschedules = search.backtracks();
    report(AttemptStatus::kScheduled);
    return result;
}

namespace detail {

ModuloScheduleOutcome
runExactSchedule(const ir::Loop& loop, const machine::MachineModel& machine,
                 const graph::DepGraph& graph, const graph::SccResult& sccs,
                 const ScheduleOptions& options, support::Counters* counters)
{
    support::check(options.exactNodeBudget > 0,
                   "exactNodeBudget must be positive");
    const mii::MiiResult mii = mii::computeMii(loop, machine, graph, sccs,
                                               counters, options.telemetry);
    const std::int64_t budget = options.exactNodeBudget;

    // Per-worker scheduler instances, exactly as for the iterative
    // backend: trySchedule reuses the MinDist matrix and compiled-table
    // cache across candidate IIs, so concurrent attempts must not share
    // an ExactScheduler.
    const auto strategy = makeIiSearchStrategy(options.search);
    const int workers =
        strategy->plannedWorkers(options.search.maxIiIncrease + 1);

    // Feedback strategy plumbing. The exact backend tracks no
    // displacement storm — its failures are exhaustive-search proofs —
    // so its reports carry only the operations with no usable
    // reservation alternative at the failed II; when an infeasible II
    // has none of those (a pure recurrence/resource interaction), the
    // report is inconclusive and the walk proceeds exactly like linear.
    const bool wants_feedback =
        options.search.kind == IiSearchKind::kFeedback;
    std::optional<FeedbackProbe> prober;
    IiInfeasibilityProbe probe;
    if (wants_feedback && options.search.feedbackSkipInfeasible) {
        prober.emplace(loop, machine, graph, sccs,
                       options.search.feedbackSubgraphCap,
                       options.search.feedbackProbeBudget);
        probe = [&prober](int ii, const AttemptFeedback& feedback) {
            return (*prober)(ii, feedback);
        };
    }

    struct WorkerState
    {
        support::Counters counters;
        std::optional<ExactScheduler> scheduler;
    };
    std::vector<WorkerState> states(static_cast<std::size_t>(workers));

    const IiAttemptFn attempt =
        [&](int ii, int worker, const support::CancellationToken& cancel) {
            WorkerState& state = states[static_cast<std::size_t>(worker)];
            state.counters = {};
            if (!state.scheduler.has_value()) {
                state.scheduler.emplace(loop, machine, graph, sccs,
                                        &state.counters);
            }
            IiAttemptOutcome out;
            AttemptStatus status = AttemptStatus::kBudgetExhausted;
            out.schedule =
                state.scheduler->trySchedule(ii, budget, &cancel, &status);
            out.status = status;
            out.counters = state.counters;
            if (wants_feedback) {
                out.feedback.ii = ii;
                out.feedback.status = status;
                if (status == AttemptStatus::kInfeasible) {
                    out.feedback.unplaceable =
                        collectUnplaceableOps(loop, machine, ii);
                }
            }
            if (status == AttemptStatus::kBudgetExhausted) {
                // An undecided candidate breaks the optimality chain: the
                // first feasible II is provably optimal only while every
                // II below it is *proven* infeasible. The race engine
                // parks this and rethrows it iff the linear search would
                // have reached this II, keeping the failure deterministic.
                throw support::CodedError(
                    "exact.budget_exhausted",
                    "exact scheduler exhausted its node budget (" +
                        std::to_string(budget) + ") at II " +
                        std::to_string(ii) + " for loop '" + loop.name() +
                        "' — optimality cannot be proven; raise "
                        "exactNodeBudget or use the iterative backend");
            }
            return out;
        };

    ModuloScheduleOutcome outcome = runIiSearch(
        options.search, mii.resMii, mii.mii, budget, attempt, probe,
        counters, options.telemetry, [&] {
            return "exact scheduler proved no schedule exists for loop '" +
                   loop.name() + "' within " +
                   std::to_string(options.search.maxIiIncrease) +
                   " IIs above the MII";
        });
    outcome.scheduler = schedulerStrategyName(SchedulerStrategy::kExact);
    return outcome;
}

} // namespace detail

} // namespace ims::sched
