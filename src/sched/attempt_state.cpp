#include "sched/attempt_state.hpp"

#include <algorithm>

namespace ims::sched {

void
finalizeAttemptFeedback(AttemptFeedback& feedback, int ii,
                        AttemptStatus status,
                        const PartialSchedule& schedule,
                        const graph::DepGraph& graph,
                        const std::vector<std::int32_t>& displace_count,
                        const std::vector<std::int64_t>& resource_evictions)
{
    feedback.clear();
    feedback.ii = ii;
    feedback.status = status;
    // Successful attempts carry no bottleneck; cancelled attempts are
    // abandoned speculation and must not steer a feedback-guided search.
    if (status == AttemptStatus::kScheduled ||
        status == AttemptStatus::kCancelled) {
        return;
    }
    for (graph::VertexId v = 0; v < graph.numVertices(); ++v) {
        bool placeable = false;
        for (const auto& alt : schedule.compiledAlternativesOf(v))
            placeable = placeable || !alt.selfConflicts();
        if (!placeable)
            feedback.unplaceable.push_back(v);
    }
    for (graph::VertexId v = 0;
         v < static_cast<graph::VertexId>(displace_count.size()); ++v) {
        if (displace_count[v] > 0)
            feedback.displacements.push_back({v, displace_count[v]});
    }
    std::sort(feedback.displacements.begin(), feedback.displacements.end(),
              [](const AttemptFeedback::Displacement& a,
                 const AttemptFeedback::Displacement& b) {
                  return a.count != b.count ? a.count > b.count : a.op < b.op;
              });
    for (int r = 0; r < static_cast<int>(resource_evictions.size()); ++r) {
        if (resource_evictions[r] > 0)
            feedback.contendedResources.push_back({r, resource_evictions[r]});
    }
    std::sort(feedback.contendedResources.begin(),
              feedback.contendedResources.end(),
              [](const AttemptFeedback::ResourceContention& a,
                 const AttemptFeedback::ResourceContention& b) {
                  return a.evictions != b.evictions
                             ? a.evictions > b.evictions
                             : a.resource < b.resource;
              });
}

ScheduleResult
extractScheduleResult(const PartialSchedule& schedule,
                      const graph::DepGraph& graph, int ii,
                      std::int64_t steps_used, std::int64_t unschedules)
{
    ScheduleResult result;
    result.ii = ii;
    result.times.resize(graph.numOps());
    result.alternatives.resize(graph.numOps());
    for (graph::VertexId v = 0; v < graph.numOps(); ++v) {
        result.times[v] = schedule.timeOf(v);
        result.alternatives[v] = schedule.alternativeOf(v);
    }
    result.scheduleLength = schedule.timeOf(graph.stop());
    result.stepsUsed = steps_used;
    result.unschedules = unschedules;
    return result;
}

} // namespace ims::sched
