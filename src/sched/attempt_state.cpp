#include "sched/attempt_state.hpp"

namespace ims::sched {

ScheduleResult
extractScheduleResult(const PartialSchedule& schedule,
                      const graph::DepGraph& graph, int ii,
                      std::int64_t steps_used, std::int64_t unschedules)
{
    ScheduleResult result;
    result.ii = ii;
    result.times.resize(graph.numOps());
    result.alternatives.resize(graph.numOps());
    for (graph::VertexId v = 0; v < graph.numOps(); ++v) {
        result.times[v] = schedule.timeOf(v);
        result.alternatives[v] = schedule.alternativeOf(v);
    }
    result.scheduleLength = schedule.timeOf(graph.stop());
    result.stepsUsed = steps_used;
    result.unschedules = unschedules;
    return result;
}

} // namespace ims::sched
