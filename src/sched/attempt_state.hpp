#ifndef IMS_SCHED_ATTEMPT_STATE_HPP
#define IMS_SCHED_ATTEMPT_STATE_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/dep_graph.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/partial_schedule.hpp"
#include "support/counters.hpp"

namespace ims::sched {

// The per-attempt instrumentation struct (formerly AttemptStats) moved
// to sched/attempt_feedback.hpp as AttemptCounters, next to the rest of
// the strategy-neutral attempt vocabulary.

/**
 * Incremental Estart maintenance for Figure 5(b): per-op cached Estart
 * values updated by delta instead of re-walking every in-edge on each
 * scheduling step.
 *
 * Invariant: whenever `dirty` is clear for an op, the cached value equals
 *   max(0, max over scheduled predecessors p of
 *          time(p) + delay - II * distance)
 * — exactly what the from-scratch rescan computes. The delta rules keep
 * it that way:
 *
 *  - placing a predecessor only *adds* a bound, and max is monotone in
 *    its operands, so a clean successor is relaxed in place
 *    (onPlace: estart = max(estart, new bound));
 *  - removing a predecessor can *lower* the max, which a delta cannot
 *    express, so onRemove marks the successors dirty and the next query
 *    recomputes them from scratch (lazily — a displaced op's successors
 *    are often displaced themselves before anyone asks).
 *
 * An op's own placement or removal never changes its own Estart, so a
 * cached value survives the op being displaced and re-queried. Values are
 * bit-identical to the rescan by construction, which is what keeps
 * schedules and traces unchanged (tests/estart_test.cpp replays traces
 * against a from-scratch oracle to pin this).
 *
 * Instrumentation: a from-scratch (re)computation charges one
 * estartVisits per in-edge, exactly like the old rescan; a query served
 * from the cache charges one estartIncrementalHits instead.
 */
class EstartTracker
{
  public:
    EstartTracker(const graph::DepGraph& graph,
                  const PartialSchedule& schedule, AttemptCounters& stats)
        : graph_(graph),
          schedule_(schedule),
          stats_(stats),
          ii_(schedule.ii()),
          estart_(graph.numVertices(), 0),
          dirty_(graph.numVertices(), 1)
    {
    }

    /** Figure 5(b): only currently scheduled predecessors constrain. */
    int
    estart(graph::VertexId op)
    {
        if (!dirty_[op]) {
            ++stats_.estartIncrementalHits;
            return estart_[op];
        }
        const auto deps = graph_.inDeps(op);
        stats_.estartVisits += deps.size();
        std::int64_t estart = 0;
        for (const graph::Dep& dep : deps) {
            if (dep.other == op || !schedule_.isScheduled(dep.other))
                continue;
            const std::int64_t bound =
                schedule_.timeOf(dep.other) + dep.delay -
                static_cast<std::int64_t>(ii_) * dep.distance;
            estart = std::max(estart, bound);
        }
        estart_[op] = static_cast<std::int32_t>(estart);
        dirty_[op] = 0;
        return estart_[op];
    }

    /** `op` was just placed at `time`: relax its clean successors. */
    void
    onPlace(graph::VertexId op, int time)
    {
        for (const graph::Dep& dep : graph_.outDeps(op)) {
            if (dep.other == op || dirty_[dep.other])
                continue;
            const std::int64_t bound =
                static_cast<std::int64_t>(time) + dep.delay -
                static_cast<std::int64_t>(ii_) * dep.distance;
            if (bound > estart_[dep.other])
                estart_[dep.other] = static_cast<std::int32_t>(bound);
        }
    }

    /** `op` was just displaced: its successors must recompute lazily. */
    void
    onRemove(graph::VertexId op)
    {
        for (const graph::Dep& dep : graph_.outDeps(op)) {
            if (dep.other != op)
                dirty_[dep.other] = 1;
        }
    }

  private:
    const graph::DepGraph& graph_;
    const PartialSchedule& schedule_;
    AttemptCounters& stats_;
    int ii_;
    std::vector<std::int32_t> estart_;
    std::vector<std::uint8_t> dirty_;
};

/**
 * Displace every scheduled successor of `op` whose dependence constraint
 * SchedTime(succ) >= slot + delay - II * distance is violated by placing
 * `op` at `slot` (§3.4's Schedule(); predecessor constraints hold by
 * construction when placement respects Estart). `eject(victim)` must
 * remove the victim from the schedule.
 */
template <typename EjectFn>
void
ejectViolatedSuccessors(const graph::DepGraph& graph,
                        const PartialSchedule& schedule,
                        graph::VertexId op, int slot, int ii,
                        EjectFn&& eject)
{
    for (const graph::Dep& dep : graph.outDeps(op)) {
        if (dep.other == op || !schedule.isScheduled(dep.other))
            continue;
        const std::int64_t earliest =
            static_cast<std::int64_t>(slot) + dep.delay -
            static_cast<std::int64_t>(ii) * dep.distance;
        if (schedule.timeOf(dep.other) < earliest)
            eject(dep.other);
    }
}

/**
 * The mirror direction for bidirectional (slack) placement: displace
 * every scheduled predecessor scheduled later than placing `op` at
 * `slot` allows. START is never ejected.
 */
template <typename EjectFn>
void
ejectViolatedPredecessors(const graph::DepGraph& graph,
                          const PartialSchedule& schedule,
                          graph::VertexId op, int slot, int ii,
                          EjectFn&& eject)
{
    for (const graph::Dep& dep : graph.inDeps(op)) {
        if (dep.other == op || !schedule.isScheduled(dep.other) ||
            dep.other == graph.start()) {
            continue;
        }
        const std::int64_t latest =
            static_cast<std::int64_t>(slot) - dep.delay +
            static_cast<std::int64_t>(ii) * dep.distance;
        if (schedule.timeOf(dep.other) > latest)
            eject(dep.other);
    }
}

/**
 * Copy a completed attempt's placement out of the partial schedule into
 * the caller-facing ScheduleResult (shared verbatim by both schedulers).
 */
ScheduleResult extractScheduleResult(const PartialSchedule& schedule,
                                     const graph::DepGraph& graph, int ii,
                                     std::int64_t steps_used,
                                     std::int64_t unschedules);

/**
 * Build a failed attempt's AttemptFeedback report (shared by the
 * iterative and slack backends): the unplaceable operations at this II,
 * the displacement storm sorted by count descending then id ascending,
 * and the contended resource classes sorted by forced-eviction count —
 * all pure functions of the attempt, so the report is deterministic.
 * Successful and cancelled attempts leave the report cleared.
 */
void finalizeAttemptFeedback(
    AttemptFeedback& feedback, int ii, AttemptStatus status,
    const PartialSchedule& schedule, const graph::DepGraph& graph,
    const std::vector<std::int32_t>& displace_count,
    const std::vector<std::int64_t>& resource_evictions);

} // namespace ims::sched

#endif // IMS_SCHED_ATTEMPT_STATE_HPP
