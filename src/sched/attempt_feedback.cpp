#include "sched/attempt_feedback.hpp"

#include <algorithm>

#include "sched/mrt.hpp"
#include "support/counters.hpp"

namespace ims::sched {

void
AttemptCounters::flushInto(support::Counters& counters,
                           const ModuloReservationTable& mrt) const
{
    counters.estartPredecessorVisits += estartVisits;
    counters.estartIncrementalHits += estartIncrementalHits;
    counters.findTimeSlotProbes += slotProbes;
    counters.scheduleSteps += scheduleSteps;
    counters.unscheduleSteps += unscheduleSteps;
    counters.mrtMaskProbes += mrt.maskProbes();
    counters.mrtSlotScans += mrt.slotScans();
}

std::vector<graph::VertexId>
AttemptFeedback::bottleneck(int cap) const
{
    std::vector<graph::VertexId> picked;
    if (cap <= 0)
        return picked;
    picked.reserve(static_cast<std::size_t>(cap));
    const auto push = [&](graph::VertexId v) {
        if (static_cast<int>(picked.size()) >= cap)
            return;
        if (std::find(picked.begin(), picked.end(), v) == picked.end())
            picked.push_back(v);
    };
    for (graph::VertexId v : unplaceable)
        push(v);
    for (const Displacement& d : displacements)
        push(d.op);
    return picked;
}

void
AttemptFeedback::clear()
{
    ii = 0;
    status = AttemptStatus::kBudgetExhausted;
    unplaceable.clear();
    displacements.clear();
    contendedResources.clear();
}

} // namespace ims::sched
