#include "core/pipeliner.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "mii/min_dist.hpp"
#include "sched/verifier.hpp"
#include "support/error.hpp"

namespace ims::core {

SoftwarePipeliner::SoftwarePipeliner(machine::MachineModel machine,
                                     PipelinerOptions options)
    : machine_(std::move(machine)), options_(std::move(options))
{
}

PipelineArtifacts
SoftwarePipeliner::pipeline(const ir::Loop& loop,
                            support::Counters* counters) const
{
    graph::DepGraph dep_graph =
        graph::buildDepGraph(loop, machine_, options_.graph);
    const graph::SccResult sccs = graph::findSccs(dep_graph);

    sched::ModuloScheduleOutcome outcome =
        sched::moduloSchedule(loop, machine_, dep_graph, sccs,
                              options_.schedule, counters);

    if (options_.verify) {
        const auto violations =
            sched::verifySchedule(loop, machine_, dep_graph,
                                  outcome.schedule);
        if (!violations.empty()) {
            throw support::Error("schedule verification failed for '" +
                                 loop.name() + "': " + violations.front());
        }
    }

    sched::ListScheduleResult list_schedule =
        sched::listSchedule(loop, machine_, dep_graph, counters);

    const mii::MinDistMatrix dist(dep_graph, outcome.schedule.ii, counters);
    const int critical_path = static_cast<int>(
        dist.atVertex(dep_graph.start(), dep_graph.stop()));

    PipelineArtifacts artifacts{
        std::move(dep_graph),
        std::move(outcome),
        std::move(list_schedule),
        0,
        {},
        {},
        {},
    };
    artifacts.minScheduleLength =
        std::max(critical_path, artifacts.listSchedule.scheduleLength);
    artifacts.code =
        codegen::generateCode(loop, machine_, artifacts.outcome.schedule);
    artifacts.lifetimes =
        codegen::analyzeLifetimes(loop, machine_,
                                  artifacts.outcome.schedule);
    artifacts.registers = codegen::allocateRegisters(
        loop, artifacts.lifetimes, artifacts.code.mve);
    return artifacts;
}

} // namespace ims::core
