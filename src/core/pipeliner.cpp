#include "core/pipeliner.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "codegen/kernel_only.hpp"
#include "graph/scc.hpp"
#include "mii/min_dist.hpp"
#include "sched/verifier.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/section_executor.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace ims::core {

namespace {

/**
 * Thrown after the diagnostics explaining a failure have already been
 * pushed onto the result; the catch handler unwinds without adding the
 * generic "error.<phase>" diagnostic a raw exception would get.
 */
struct ReportedFailure : std::exception
{
    const char*
    what() const noexcept override
    {
        return "failure already reported via diagnostics";
    }
};

} // namespace

std::string
PipelineResult::firstError() const
{
    for (const auto& diagnostic : diagnostics) {
        if (diagnostic.severity == Diagnostic::Severity::kError)
            return diagnostic.message;
    }
    return "";
}

const PipelineArtifacts&
PipelineResult::artifactsOrThrow() const&
{
    if (!artifacts.has_value()) {
        const std::string message = firstError();
        throw support::Error(message.empty() ? "pipelining failed"
                                             : message);
    }
    return *artifacts;
}

PipelineArtifacts
PipelineResult::artifactsOrThrow() &&
{
    artifactsOrThrow(); // throw on failure
    return std::move(*artifacts);
}

std::vector<Diagnostic>
simEquivalenceDiagnostics(const ir::Loop& loop,
                          const PipelineArtifacts& artifacts,
                          const std::vector<int>& trips,
                          std::uint64_t seed)
{
    std::vector<Diagnostic> out;
    bool has_exit = false;
    for (const auto& op : loop.operations())
        has_exit = has_exit || op.opcode == ir::Opcode::kExitIf;

    for (const int trip : trips) {
        if (trip < 0)
            continue;
        const sim::SimSpec spec = workloads::makeSimSpec(loop, trip, seed);

        std::optional<sim::SimResult> reference;
        try {
            reference = sim::runSequential(loop, spec);
        } catch (const std::exception& error) {
            out.push_back({Diagnostic::Severity::kError, "verify",
                           "sequential reference failed at trip " +
                               std::to_string(trip) + ": " + error.what(),
                           "sim.error"});
            continue;
        }

        const auto compare = [&](const char* engine, auto&& run) {
            try {
                const sim::SimResult got = run();
                const std::string diff =
                    sim::describeDifference(*reference, got);
                if (!diff.empty()) {
                    out.push_back(
                        {Diagnostic::Severity::kError, "verify",
                         std::string(engine) +
                             " diverges from sequential at trip " +
                             std::to_string(trip) + ": " + diff,
                         "sim.mismatch"});
                }
            } catch (const std::exception& error) {
                out.push_back({Diagnostic::Severity::kError, "verify",
                               std::string(engine) + " failed at trip " +
                                   std::to_string(trip) + ": " +
                                   error.what(),
                               "sim.error"});
            }
        };

        compare("pipelined", [&] {
            return sim::runPipelined(loop, artifacts.outcome.schedule, spec)
                .state;
        });
        if (!has_exit && trip >= artifacts.code.kernel.stageCount) {
            compare("generated_code", [&] {
                return sim::runGeneratedCode(loop, artifacts.code, spec);
            });
        }
        if (!has_exit) {
            // No trip floor: the stage predicates make the kernel-only
            // schema valid at every trip count, including 0.
            compare("kernel_only", [&] {
                const codegen::KernelOnlyCode kernel_only =
                    codegen::generateKernelOnly(loop,
                                                artifacts.outcome.schedule);
                return sim::runKernelOnly(loop, kernel_only, spec);
            });
        }
    }
    return out;
}

SoftwarePipeliner::SoftwarePipeliner(machine::MachineModel machine,
                                     PipelinerOptions options)
    : machine_(std::move(machine)), options_(std::move(options))
{
}

PipelineResult
SoftwarePipeliner::pipeline(const PipelineRequest& request) const
{
    const ir::Loop& loop = *request.loop;
    // Per-call overrides: the request's options (when set) replace the
    // pipeliner-level ones wholesale; its sink wins over the options'.
    PipelinerOptions options =
        request.options.has_value() ? *request.options : options_;
    support::TelemetrySink* external = request.telemetry != nullptr
                                           ? request.telemetry
                                           : options.telemetry;

    PipelineResult result;
    support::TelemetryRecorder recorder;
    support::TeeSink sink(&recorder, external);
    support::Counters counters;
    options.schedule.telemetry = &sink;

    result.telemetry.loop = loop.name();
    result.telemetry.ops = loop.size();

    const auto start = std::chrono::steady_clock::now();
    std::string phase = support::phaseName(support::Phase::kGraphBuild);
    try {
        graph::DepGraph dep_graph =
            graph::buildDepGraph(loop, machine_, options.graph, &sink);
        const graph::SccResult sccs = graph::findSccs(dep_graph, &counters);

        phase = support::phaseName(support::Phase::kMiiBounds);
        sched::ModuloScheduleOutcome outcome =
            sched::schedule(loop, machine_, dep_graph, sccs,
                            options.schedule, &counters);

        result.telemetry.resMii = outcome.resMii;
        result.telemetry.mii = outcome.mii;
        result.telemetry.ii = outcome.schedule.ii;
        result.telemetry.attempts = outcome.attempts;
        result.telemetry.scheduleLength = outcome.schedule.scheduleLength;
        result.telemetry.budget = outcome.budget;
        result.telemetry.stepsTotal = outcome.totalSteps;
        result.telemetry.backtracks = outcome.totalUnschedules;
        result.telemetry.scheduler = outcome.scheduler;
        result.telemetry.iiStrategy = outcome.search.strategy;
        result.telemetry.iiWorkers = outcome.search.workers;
        result.telemetry.iiAttemptsStarted = outcome.search.attemptsStarted;
        result.telemetry.iiAttemptsCancelled =
            outcome.search.attemptsCancelled;
        result.telemetry.iiAttemptsWasted = outcome.search.attemptsWasted;
        result.telemetry.iiAttemptsProvenInfeasible =
            outcome.search.attemptsProvenInfeasible;
        result.telemetry.iiSkipped = outcome.search.skippedIis;
        result.telemetry.iiSearchWallSeconds = outcome.search.wallSeconds;
        result.telemetry.iiSearchCpuSeconds = outcome.search.cpuSeconds;

        phase = support::phaseName(support::Phase::kVerify);
        if (options.verify) {
            support::PhaseTimer timer(&sink, support::Phase::kVerify);
            const auto violations =
                sched::verifySchedule(loop, machine_, dep_graph,
                                      outcome.schedule);
            if (!violations.empty()) {
                for (const auto& violation : violations) {
                    result.diagnostics.push_back(
                        {Diagnostic::Severity::kError, phase,
                         "schedule verification failed for '" +
                             loop.name() + "': " + violation.toString(),
                         "verify." +
                             sched::violationKindName(violation.kind)});
                }
                throw ReportedFailure();
            }
        }

        phase = support::phaseName(support::Phase::kListSchedule);
        sched::ListScheduleResult list_schedule =
            sched::listSchedule(loop, machine_, dep_graph, &counters,
                                &sink);

        const mii::MinDistMatrix dist(dep_graph, outcome.schedule.ii,
                                      &counters);
        const int critical_path = static_cast<int>(
            dist.atVertex(dep_graph.start(), dep_graph.stop()));

        PipelineArtifacts artifacts{
            std::move(dep_graph),
            std::move(outcome),
            std::move(list_schedule),
            0,
            {},
            {},
            {},
        };
        artifacts.minScheduleLength =
            std::max(critical_path, artifacts.listSchedule.scheduleLength);

        phase = support::phaseName(support::Phase::kCodegen);
        artifacts.code = codegen::generateCode(
            loop, machine_, artifacts.outcome.schedule, &sink);
        artifacts.lifetimes = codegen::analyzeLifetimes(
            loop, machine_, artifacts.outcome.schedule, &sink);
        artifacts.registers = codegen::allocateRegisters(
            loop, artifacts.lifetimes, artifacts.code.mve, &sink);

        if (options.verifySim) {
            phase = support::phaseName(support::Phase::kVerify);
            support::PhaseTimer timer(&sink, support::Phase::kVerify);
            auto sim_diagnostics = simEquivalenceDiagnostics(
                loop, artifacts, options.verifySimTrips,
                options.verifySimSeed);
            if (!sim_diagnostics.empty()) {
                for (auto& diagnostic : sim_diagnostics)
                    result.diagnostics.push_back(std::move(diagnostic));
                throw ReportedFailure();
            }
        }

        result.artifacts = std::move(artifacts);
        result.telemetry.succeeded = true;
    } catch (const ReportedFailure&) {
        // Diagnostics for this failure are already on the result.
    } catch (const support::CodedError& error) {
        // Structured throwers (e.g. the II-search driver's
        // "sched.ii_exhausted") carry their own stable code; preserve it
        // instead of synthesizing a generic "error.<phase>".
        if (!recorder.record().phases.empty())
            phase = support::phaseName(recorder.record().phases.back().phase);
        result.diagnostics.push_back({Diagnostic::Severity::kError, phase,
                                      error.what(), error.code()});
    } catch (const std::exception& error) {
        // The RAII phase timers record their samples during unwinding, so
        // the last sample the recorder saw pinpoints the failing phase
        // more precisely than the coarse stage label (e.g. a budget
        // exhaustion inside moduloSchedule is an ii_attempt, not
        // mii_bounds).
        if (!recorder.record().phases.empty())
            phase = support::phaseName(recorder.record().phases.back().phase);
        result.diagnostics.push_back({Diagnostic::Severity::kError, phase,
                                      error.what(), "error." + phase});
    }

    sink.onCounters(counters);
    result.telemetry.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // The recorder has seen every phase sample and the counters; fold its
    // accumulation into the summary record.
    result.telemetry.phases = std::move(recorder.record().phases);
    result.telemetry.counters = recorder.record().counters;
    return result;
}

} // namespace ims::core
