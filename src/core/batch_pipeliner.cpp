#include "core/batch_pipeliner.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ims::core {

std::size_t
BatchResult::successes() const
{
    std::size_t count = 0;
    for (const auto& item : items) {
        if (item.result.ok())
            ++count;
    }
    return count;
}

std::size_t
BatchResult::failures() const
{
    return items.size() - successes();
}

std::string
BatchResult::summaryTable() const
{
    std::vector<double> dilation;
    std::vector<double> attempts;
    std::vector<double> lengthRatio;
    std::vector<double> wallMs;
    for (const auto& item : items) {
        if (!item.result.ok())
            continue;
        const auto& telemetry = item.result.telemetry;
        const auto& artifacts = *item.result.artifacts;
        dilation.push_back(static_cast<double>(telemetry.ii) /
                           std::max(1, telemetry.mii));
        attempts.push_back(static_cast<double>(telemetry.attempts));
        lengthRatio.push_back(
            static_cast<double>(telemetry.scheduleLength) /
            std::max(1, artifacts.minScheduleLength));
        wallMs.push_back(telemetry.wallSeconds * 1e3);
    }

    std::ostringstream out;
    out << "batch: " << successes() << "/" << items.size()
        << " loops pipelined";
    if (failures() > 0)
        out << " (" << failures() << " failed)";
    out << " in " << support::formatDouble(wallSeconds, 3) << " s on "
        << threadsUsed << (threadsUsed == 1 ? " thread" : " threads")
        << "\n";
    if (dilation.empty())
        return out.str();

    support::TextTable table("batch distribution (successful loops)");
    table.addHeader({"measurement", "min possible", "freq at min",
                     "median", "mean", "max"});
    const auto row = [&table](const std::string& label,
                              const std::vector<double>& samples,
                              double min_possible) {
        const auto stats = support::summarize(samples, min_possible);
        table.addRow({label, support::formatDouble(stats.minPossible, 2),
                      support::formatDouble(stats.freqOfMinPossible, 3),
                      support::formatDouble(stats.median, 2),
                      support::formatDouble(stats.mean, 3),
                      support::formatDouble(stats.maximum, 2)});
    };
    row("II / MII", dilation, 1.0);
    row("candidate IIs attempted", attempts, 1.0);
    row("SL / lower bound", lengthRatio, 1.0);
    row("wall ms per loop", wallMs, 0.0);
    table.print(out);
    return out.str();
}

std::string
BatchResult::telemetryJson() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ',';
        out += items[i].result.telemetry.toJson();
    }
    out += ']';
    return out;
}

BatchPipeliner::BatchPipeliner(machine::MachineModel machine,
                               BatchOptions options)
    : pipeliner_(std::move(machine), options.pipeline), options_(options)
{
}

BatchResult
BatchPipeliner::run(const std::vector<ir::Loop>& loops) const
{
    std::vector<PipelineRequest> requests;
    requests.reserve(loops.size());
    for (const auto& loop : loops)
        requests.emplace_back(loop);
    return run(requests);
}

BatchResult
BatchPipeliner::run(const std::vector<PipelineRequest>& requests) const
{
    BatchResult batch;
    batch.items.resize(requests.size());

    const int threads =
        support::resolveThreads(options_.threads, requests.size());
    batch.threadsUsed = threads;

    const auto start = std::chrono::steady_clock::now();

    // Deterministic by construction: each request's computation reads only
    // the request, the immutable machine model and the (copied) options,
    // and writes only its own pre-sized slot — which worker runs a slot
    // (and hence the steal count) is the only racy part (see
    // support::workStealingFor).
    support::WorkStealingStats steal_stats;
    support::workStealingFor(
        requests.size(), threads,
        [this, &requests, &batch](std::size_t index) {
            const PipelineRequest& request = requests[index];
            BatchItem& item = batch.items[index];
            item.name = request.loop->name();
            try {
                item.result = pipeliner_.pipeline(request);
            } catch (const std::exception& error) {
                // pipeline() reports input problems via diagnostics;
                // anything escaping it is unexpected but must not sink
                // the batch.
                item.result.diagnostics.push_back(
                    {Diagnostic::Severity::kError, "", error.what(), ""});
            }
        },
        &steal_stats);
    batch.workSteals = steal_stats.steals;

    batch.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return batch;
}

} // namespace ims::core
