#ifndef IMS_CORE_PIPELINER_HPP
#define IMS_CORE_PIPELINER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "codegen/code_generator.hpp"
#include "codegen/register_allocator.hpp"
#include "graph/graph_builder.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/counters.hpp"
#include "support/telemetry.hpp"

namespace ims::core {

/**
 * Options for the end-to-end pipeline.
 *
 * Defaults (the single source of truth; see docs/api.md):
 *  - delay model: exact (Table 1), DSA/EVR form assumed;
 *  - scheduler backend: iterative (withScheduler selects the slack or
 *    the exact backend; see sched/schedule.hpp);
 *  - priority: HeightR, forward-progress rule on;
 *  - BudgetRatio 2.0 (the paper's recommendation), maxIiIncrease 4096;
 *  - II search: linear (withIiSearch selects the deterministic racing
 *    or the feedback-guided strategy; see sched/ii_search.hpp);
 *  - independent schedule verification on;
 *  - no telemetry sink.
 *
 * The `with*` setters mutate-and-return so batch and single-loop callers
 * configure identically:
 * @code
 *   auto options = core::PipelinerOptions{}
 *                      .withBudgetRatio(6.0)
 *                      .withVerification(false)
 *                      .withTelemetry(&my_sink);
 * @endcode
 */
struct PipelinerOptions
{
    graph::GraphOptions graph;
    sched::ScheduleOptions schedule;
    /** Verify every schedule with the independent checker (cheap). */
    bool verify = true;
    /**
     * Additionally verify end-to-end semantics: simulate the loop with the
     * sequential reference interpreter and with every applicable pipelined
     * engine (flat schedule, prologue/kernel/epilogue, kernel-only) at each
     * trip count in `verifySimTrips` and require identical final state.
     * Much more expensive than the structural check; off by default.
     */
    bool verifySim = false;
    /**
     * Trip counts for the sim-equivalence oracle. The defaults cover the
     * degenerate cases (0, 1), trips usually below the stage count (the
     * generated-code schema is skipped there; kernel-only still runs), and
     * a trip long enough to reach steady state.
     */
    std::vector<int> verifySimTrips = {0, 1, 2, 5, 17};
    /** Seed for the simulated input data (live-ins, seeds, arrays). */
    std::uint64_t verifySimSeed = 2026;
    /**
     * Default sink observing every run made with these options (a
     * per-request sink, when set, takes precedence). Must outlive the
     * pipeliner; must be thread-safe if the options are shared by a batch.
     */
    support::TelemetrySink* telemetry = nullptr;

    PipelinerOptions&
    withBudgetRatio(double ratio)
    {
        schedule.search.budgetRatio = ratio;
        return *this;
    }

    PipelinerOptions&
    withMaxIiIncrease(int increase)
    {
        schedule.search.maxIiIncrease = increase;
        return *this;
    }

    /**
     * Replace the II-search policy wholesale (strategy kind, BudgetRatio,
     * maxIiIncrease, racing worker count).
     */
    PipelinerOptions&
    withIiSearch(sched::IiSearchOptions search)
    {
        schedule.search = search;
        return *this;
    }

    /**
     * Select the II-search strategy, keeping the budget knobs: e.g.
     * `withIiSearch(sched::IiSearchKind::kRacing, 8)`. `threads` <= 0
     * means hardware concurrency (racing only). Both the racing and the
     * feedback-guided strategy are deterministic: the winning II and
     * schedule are bit-identical to the linear search at any thread
     * count (see docs/ALGORITHM.md, "II search strategies" and
     * "Feedback-guided search").
     */
    PipelinerOptions&
    withIiSearch(sched::IiSearchKind kind, int threads = 0)
    {
        schedule.search.kind = kind;
        schedule.search.threads = threads;
        return *this;
    }

    /**
     * Tune the feedback-guided II search (kind kFeedback): the
     * bottleneck-subgraph size cap handed to the infeasibility probe,
     * whether proven-infeasible candidate IIs are skipped at all, and
     * the exact backend's node budget per probe call. See
     * sched::IiSearchOptions for the semantics and defaults.
     */
    PipelinerOptions&
    withFeedback(int subgraph_cap, bool skip_infeasible = true,
                 std::int64_t probe_budget = 200'000)
    {
        schedule.search.feedbackSubgraphCap = subgraph_cap;
        schedule.search.feedbackSkipInfeasible = skip_infeasible;
        schedule.search.feedbackProbeBudget = probe_budget;
        return *this;
    }

    /**
     * Select the scheduling backend (iterative — the default —, slack,
     * or the exact branch-and-bound prover; see sched/schedule.hpp).
     */
    PipelinerOptions&
    withScheduler(sched::SchedulerStrategy strategy)
    {
        schedule.strategy = strategy;
        return *this;
    }

    /** Per-candidate-II node budget for the exact backend. */
    PipelinerOptions&
    withExactNodeBudget(std::int64_t budget)
    {
        schedule.exactNodeBudget = budget;
        return *this;
    }

    PipelinerOptions&
    withPriority(sched::PriorityScheme priority)
    {
        schedule.priority = priority;
        return *this;
    }

    PipelinerOptions&
    withRandomSeed(std::uint64_t seed)
    {
        schedule.randomSeed = seed;
        return *this;
    }

    PipelinerOptions&
    withForwardProgressRule(bool enabled)
    {
        schedule.forwardProgressRule = enabled;
        return *this;
    }

    PipelinerOptions&
    withDelayMode(graph::DelayMode mode)
    {
        graph.delayMode = mode;
        return *this;
    }

    PipelinerOptions&
    withDsaForm(bool enabled)
    {
        graph.dsaForm = enabled;
        return *this;
    }

    PipelinerOptions&
    withVerification(bool enabled)
    {
        verify = enabled;
        return *this;
    }

    PipelinerOptions&
    withSimVerification(bool enabled)
    {
        verifySim = enabled;
        return *this;
    }

    PipelinerOptions&
    withSimVerification(std::vector<int> trips, std::uint64_t seed)
    {
        verifySim = true;
        verifySimTrips = std::move(trips);
        verifySimSeed = seed;
        return *this;
    }

    PipelinerOptions&
    withTelemetry(support::TelemetrySink* sink)
    {
        telemetry = sink;
        return *this;
    }
};

/** Everything produced by pipelining one loop. */
struct PipelineArtifacts
{
    /** The dependence graph the schedule was built against. */
    graph::DepGraph depGraph;
    /** Scheduling outcome: the schedule plus MII/attempt statistics. */
    sched::ModuloScheduleOutcome outcome;
    /** Baseline acyclic list schedule of one iteration. */
    sched::ListScheduleResult listSchedule;
    /** Lower bound on the modulo schedule length at the achieved II
     *  (max of MinDist[START,STOP] and the list schedule length). */
    int minScheduleLength = 0;
    /** Kernel/prologue/epilogue structure with the MVE plan. */
    codegen::GeneratedCode code;
    /** Value lifetimes under the schedule. */
    codegen::LifetimeAnalysis lifetimes;
    /** Rotating/static register assignment. */
    codegen::RegisterAllocation registers;
};

/**
 * One pipelining request: the loop plus per-call overrides. The loop (and
 * any referenced sink/options) must outlive the call.
 */
struct PipelineRequest
{
    explicit PipelineRequest(const ir::Loop& l) : loop(&l) {}

    /** The loop to pipeline (non-owning; never null). */
    const ir::Loop* loop;
    /** When set, replaces the pipeliner-level options for this call. */
    std::optional<PipelinerOptions> options;
    /**
     * Per-request sink; takes precedence over the effective options'
     * `telemetry`. The result's own PipelineTelemetry record is always
     * produced regardless.
     */
    support::TelemetrySink* telemetry = nullptr;

    PipelineRequest&
    withOptions(PipelinerOptions o)
    {
        options = std::move(o);
        return *this;
    }

    PipelineRequest&
    withTelemetry(support::TelemetrySink* sink)
    {
        telemetry = sink;
        return *this;
    }
};

/** One structured problem report from a pipelining run. */
struct Diagnostic
{
    enum class Severity
    {
        kWarning,
        kError,
    };

    Severity severity = Severity::kError;
    /** Phase the diagnostic arose in ("graph_build", "verify", ...). */
    std::string phase;
    std::string message;
    /**
     * Machine-readable failure identity, stable across runs and input
     * mutations: "verify.<violation kind>" for structural violations
     * (e.g. "verify.dependence"), "sim.mismatch" / "sim.error" from the
     * sim-equivalence oracle, "error.<phase>" for everything that throws.
     * The fuzzing minimizer shrinks inputs while preserving this code, so
     * a reduced reproducer still fails for the original reason.
     */
    std::string code;
};

/**
 * Result of one pipelining run. Input problems surface as kError
 * diagnostics (with `artifacts` empty), not as exceptions — a malformed
 * loop in a batch yields a diagnosed entry, never a crashed batch.
 */
struct PipelineResult
{
    /** Present iff the run succeeded. */
    std::optional<PipelineArtifacts> artifacts;
    /** Per-phase timings, achieved II vs MII, budget, counters. */
    support::PipelineTelemetry telemetry;
    std::vector<Diagnostic> diagnostics;

    bool ok() const { return artifacts.has_value(); }

    /** First kError message, or "" when the run succeeded. */
    std::string firstError() const;

    /**
     * The artifacts; @throws support::Error carrying `firstError()` when
     * the run failed. Convenience for callers that want the old throwing
     * behaviour. The rvalue overload moves the artifacts out, so
     * `pipeliner.pipeline(request).artifactsOrThrow()` never dangles.
     */
    const PipelineArtifacts& artifactsOrThrow() const&;
    PipelineArtifacts artifactsOrThrow() &&;
};

/**
 * The sim-equivalence oracle: run the loop through the sequential
 * reference interpreter and through every applicable pipelined engine at
 * each trip count, and report one kError diagnostic (code "sim.mismatch"
 * or "sim.error") per divergence. Input data is derived from `seed` via
 * workloads::makeSimSpec, so results are deterministic.
 *
 * Engine applicability: the flat-schedule simulator runs at every trip
 * (including 0); the prologue/kernel/epilogue executor needs
 * trip >= stageCount and a DO-loop (no early exits); kernel-only needs a
 * DO-loop and trip >= 1. An empty return means all engines agreed.
 */
std::vector<Diagnostic>
simEquivalenceDiagnostics(const ir::Loop& loop,
                          const PipelineArtifacts& artifacts,
                          const std::vector<int>& trips,
                          std::uint64_t seed);

/**
 * One-call public API: modulo-schedule a loop for a machine and derive all
 * downstream artifacts (kernel structure, MVE, register allocation,
 * baseline comparison). This is the facade the examples, tools and benches
 * use; BatchPipeliner drives it concurrently over many loops.
 *
 * @code
 *   auto machine = ims::machine::cydra5();
 *   ims::core::SoftwarePipeliner pipeliner(machine);
 *   auto result = pipeliner.pipeline(ims::core::PipelineRequest(loop));
 *   if (result.ok())
 *       std::cout << ims::core::report(loop, machine, *result.artifacts);
 *   std::cout << result.telemetry.toJson() << "\n";
 * @endcode
 *
 * Pipelining is const and touches no shared mutable state, so one
 * SoftwarePipeliner may serve concurrent pipeline() calls (the machine
 * model is immutable; see tests under -fsanitize=thread).
 */
class SoftwarePipeliner
{
  public:
    explicit SoftwarePipeliner(machine::MachineModel machine,
                               PipelinerOptions options = {});

    const machine::MachineModel& machine() const { return machine_; }
    const PipelinerOptions& options() const { return options_; }

    /**
     * Pipeline the request's loop. Never throws for bad input: problems
     * (invalid IR, unsupported opcodes, verification failures) come back
     * as diagnostics on the result, alongside whatever telemetry the run
     * produced before failing.
     */
    PipelineResult pipeline(const PipelineRequest& request) const;

  private:
    machine::MachineModel machine_;
    PipelinerOptions options_;
};

} // namespace ims::core

#endif // IMS_CORE_PIPELINER_HPP
