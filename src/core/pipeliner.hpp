#ifndef IMS_CORE_PIPELINER_HPP
#define IMS_CORE_PIPELINER_HPP

#include <memory>
#include <string>

#include "codegen/code_generator.hpp"
#include "codegen/register_allocator.hpp"
#include "graph/graph_builder.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/modulo_scheduler.hpp"
#include "support/counters.hpp"

namespace ims::core {

/** Options for the end-to-end pipeline. */
struct PipelinerOptions
{
    graph::GraphOptions graph;
    sched::ModuloScheduleOptions schedule;
    /** Verify every schedule with the independent checker (cheap). */
    bool verify = true;
};

/** Everything produced by pipelining one loop. */
struct PipelineArtifacts
{
    /** The dependence graph the schedule was built against. */
    graph::DepGraph depGraph;
    /** Scheduling outcome: the schedule plus MII/attempt statistics. */
    sched::ModuloScheduleOutcome outcome;
    /** Baseline acyclic list schedule of one iteration. */
    sched::ListScheduleResult listSchedule;
    /** Lower bound on the modulo schedule length at the achieved II
     *  (max of MinDist[START,STOP] and the list schedule length). */
    int minScheduleLength = 0;
    /** Kernel/prologue/epilogue structure with the MVE plan. */
    codegen::GeneratedCode code;
    /** Value lifetimes under the schedule. */
    codegen::LifetimeAnalysis lifetimes;
    /** Rotating/static register assignment. */
    codegen::RegisterAllocation registers;
};

/**
 * One-call public API: modulo-schedule a loop for a machine and derive all
 * downstream artifacts (kernel structure, MVE, register allocation,
 * baseline comparison). This is the facade the examples and benches use.
 *
 * @code
 *   auto machine = ims::machine::cydra5();
 *   ims::core::SoftwarePipeliner pipeliner(machine);
 *   auto artifacts = pipeliner.pipeline(loop);
 *   std::cout << ims::core::report(loop, machine, artifacts);
 * @endcode
 */
class SoftwarePipeliner
{
  public:
    explicit SoftwarePipeliner(machine::MachineModel machine,
                               PipelinerOptions options = {});

    const machine::MachineModel& machine() const { return machine_; }
    const PipelinerOptions& options() const { return options_; }

    /**
     * Pipeline `loop`. @throws support::Error on invalid input or (with
     * options.verify) if the produced schedule fails verification — the
     * latter would be a library bug, surfaced loudly.
     */
    PipelineArtifacts pipeline(const ir::Loop& loop,
                               support::Counters* counters = nullptr) const;

  private:
    machine::MachineModel machine_;
    PipelinerOptions options_;
};

} // namespace ims::core

#endif // IMS_CORE_PIPELINER_HPP
