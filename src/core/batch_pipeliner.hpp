#ifndef IMS_CORE_BATCH_PIPELINER_HPP
#define IMS_CORE_BATCH_PIPELINER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"

namespace ims::core {

/** Options for the batch driver. */
struct BatchOptions
{
    /** Options applied to every loop (per-request overrides still win). */
    PipelinerOptions pipeline;
    /**
     * Worker threads; 0 means std::thread::hardware_concurrency(). The
     * results are bitwise identical for any thread count — workers only
     * share the immutable MachineModel and write disjoint result slots.
     */
    int threads = 0;

    BatchOptions&
    withThreads(int count)
    {
        threads = count;
        return *this;
    }

    BatchOptions&
    withPipelineOptions(PipelinerOptions options)
    {
        pipeline = std::move(options);
        return *this;
    }
};

/** Outcome for one loop of a batch, in input order. */
struct BatchItem
{
    /** Loop name (available even when the run failed). */
    std::string name;
    PipelineResult result;
};

/** Everything a batch run produces. */
struct BatchResult
{
    /** One entry per input loop, in input order. */
    std::vector<BatchItem> items;
    /** Wall time of the whole batch. */
    double wallSeconds = 0.0;
    /** Worker threads actually used. */
    int threadsUsed = 1;
    /**
     * Work-stealing migrations between workers (timing-dependent, zero on
     * single-threaded runs; see support::workStealingFor). Observability
     * only — never part of the deterministic result.
     */
    std::uint64_t workSteals = 0;

    std::size_t successes() const;
    std::size_t failures() const;

    /**
     * Aggregate distribution report over the successful loops in the
     * shape of the paper's Table 3 (II/MII dilation, attempts, schedule
     * length vs lower bound, per-loop wall time), rendered as text.
     */
    std::string summaryTable() const;

    /** JSON array of the per-loop telemetry records. */
    std::string telemetryJson() const;
};

/**
 * Thread-pooled driver pipelining N independent loops concurrently over
 * one shared immutable MachineModel. Loops never interact, so the batch
 * is embarrassingly parallel; per-loop failures are isolated as
 * diagnostics on the corresponding item (one malformed loop cannot take
 * down the batch), and result ordering is deterministic regardless of
 * thread count or completion order. Work is distributed by
 * support::workStealingFor: each worker owns a contiguous slice of the
 * request range and idle workers steal half of a busy worker's
 * remainder, so one pathologically slow loop cannot serialise the tail
 * of the batch the way static slot assignment did.
 */
class BatchPipeliner
{
  public:
    explicit BatchPipeliner(machine::MachineModel machine,
                            BatchOptions options = {});

    const machine::MachineModel& machine() const
    {
        return pipeliner_.machine();
    }
    const BatchOptions& options() const { return options_; }

    /** Pipeline every loop; results in input order. */
    BatchResult run(const std::vector<ir::Loop>& loops) const;

    /**
     * Pipeline every request (per-request option/sink overrides honoured).
     * A request-level TelemetrySink shared between requests is invoked
     * from worker threads and must be thread-safe.
     */
    BatchResult run(const std::vector<PipelineRequest>& requests) const;

  private:
    SoftwarePipeliner pipeliner_;
    BatchOptions options_;
};

} // namespace ims::core

#endif // IMS_CORE_BATCH_PIPELINER_HPP
