#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "codegen/emit.hpp"

namespace ims::core {

std::string
report(const ir::Loop& loop, const machine::MachineModel& machine,
       const PipelineArtifacts& artifacts)
{
    std::ostringstream out;
    const auto& schedule = artifacts.outcome.schedule;

    out << loop.toString() << "\n";
    out << "machine: " << machine.name() << "\n";
    out << "ResMII = " << artifacts.outcome.resMii
        << ", MII = " << artifacts.outcome.mii << ", achieved II = "
        << schedule.ii << " (DeltaII = "
        << schedule.ii - artifacts.outcome.mii << ", " <<
        artifacts.outcome.attempts << " candidate II"
        << (artifacts.outcome.attempts == 1 ? "" : "s") << " tried)\n";
    out << "schedule length = " << schedule.scheduleLength
        << " (lower bound " << artifacts.minScheduleLength
        << "), acyclic list SL = "
        << artifacts.listSchedule.scheduleLength << "\n";
    out << "scheduling steps = " << schedule.stepsUsed << " for "
        << loop.size() << " ops (+2 pseudo), unschedules = "
        << schedule.unschedules << "\n";
    out << "stages = " << artifacts.code.kernel.stageCount
        << ", MVE unroll = " << artifacts.code.mve.unroll
        << ", rotating regs = " << artifacts.registers.rotatingRegisters
        << ", static regs = " << artifacts.registers.staticRegisters
        << ", MaxLive = " << artifacts.lifetimes.maxLive << "\n";
    out << "code expansion (prologue+kernel+epilogue vs one iteration) = "
        << std::fixed << std::setprecision(2)
        << artifacts.code.codeExpansionRatio(schedule.scheduleLength)
        << "x\n\n";
    out << codegen::emitKernel(loop, artifacts.code);

    // Speedup model at large trip counts: list SL per iteration vs II.
    const double speedup =
        static_cast<double>(artifacts.listSchedule.scheduleLength) /
        schedule.ii;
    out << "\nasymptotic speedup over non-pipelined execution: "
        << std::fixed << std::setprecision(2) << speedup << "x\n";
    return out.str();
}

std::string
summaryLine(const ir::Loop& loop, const PipelineArtifacts& artifacts)
{
    const auto& schedule = artifacts.outcome.schedule;
    std::ostringstream out;
    out << std::left << std::setw(20) << loop.name() << " ops="
        << std::setw(4) << loop.size() << " MII=" << std::setw(4)
        << artifacts.outcome.mii << " II=" << std::setw(4) << schedule.ii
        << " SL=" << std::setw(4) << schedule.scheduleLength << " stages="
        << std::setw(3) << artifacts.code.kernel.stageCount << " unroll="
        << std::setw(2) << artifacts.code.mve.unroll << " speedup="
        << std::fixed << std::setprecision(2)
        << static_cast<double>(artifacts.listSchedule.scheduleLength) /
               schedule.ii
        << "x";
    return out.str();
}

} // namespace ims::core
