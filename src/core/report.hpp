#ifndef IMS_CORE_REPORT_HPP
#define IMS_CORE_REPORT_HPP

#include <string>

#include "core/pipeliner.hpp"

namespace ims::core {

/**
 * Human-readable summary of a pipelining run: loop listing, MII breakdown,
 * achieved II and schedule length against their lower bounds, kernel rows,
 * MVE / register usage, and expected speedup over the non-pipelined
 * (acyclic list) schedule.
 */
std::string report(const ir::Loop& loop,
                   const machine::MachineModel& machine,
                   const PipelineArtifacts& artifacts);

/** One-line summary (for tables of many loops). */
std::string summaryLine(const ir::Loop& loop,
                        const PipelineArtifacts& artifacts);

} // namespace ims::core

#endif // IMS_CORE_REPORT_HPP
