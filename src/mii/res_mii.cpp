#include "mii/res_mii.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ims::mii {

ResMiiResult
computeResMii(const ir::Loop& loop, const machine::MachineModel& machine,
              support::Counters* counters)
{
    ResMiiResult result;
    result.usage.assign(machine.numResources(), 0);
    result.chosenAlternative.assign(loop.size(), 0);

    // Sort operations by increasing number of alternatives. The paper
    // uses a radix sort for O(N); alternative counts are tiny, so a
    // counting sort over [0, maxAlts] gives the same bound — and the
    // same stable order the previous stable_sort produced, which the
    // greedy packing's results depend on.
    std::vector<int> alt_count(loop.size());
    int max_alts = 0;
    for (ir::OpId id = 0; id < loop.size(); ++id) {
        alt_count[id] = machine.numAlternatives(loop.operation(id).opcode);
        max_alts = std::max(max_alts, alt_count[id]);
    }
    std::vector<int> offsets(static_cast<std::size_t>(max_alts) + 2, 0);
    for (ir::OpId id = 0; id < loop.size(); ++id)
        ++offsets[alt_count[id] + 1];
    for (std::size_t k = 1; k < offsets.size(); ++k)
        offsets[k] += offsets[k - 1];
    std::vector<ir::OpId> order(loop.size());
    for (ir::OpId id = 0; id < loop.size(); ++id)
        order[offsets[alt_count[id]]++] = id;

    // Greedy packing with an incrementally maintained peak: instead of
    // copying the whole usage vector per alternative and scanning it for
    // its max, track the running max of `usage` and compute each
    // alternative's would-be peak from only the resources it touches.
    // max(usage + delta) = max(max(usage), max over touched r of
    // usage[r] + delta[r]) because delta is zero elsewhere — identical
    // to the full-vector scan, so chosen alternatives and ResMII don't
    // change.
    int current_max = 0;
    std::vector<int> delta(machine.numResources(), 0);
    std::vector<machine::ResourceId> touched;
    for (ir::OpId id : order) {
        const auto& info = machine.info(loop.operation(id).opcode);
        int best_alt = 0;
        int best_peak = -1;
        for (std::size_t alt = 0; alt < info.alternatives.size(); ++alt) {
            touched.clear();
            for (const auto& use : info.alternatives[alt].table.uses()) {
                if (delta[use.resource] == 0)
                    touched.push_back(use.resource);
                ++delta[use.resource];
                support::bump(counters,
                              &support::Counters::resMiiInspections);
            }
            int peak = current_max;
            for (machine::ResourceId r : touched) {
                peak = std::max(peak, result.usage[r] + delta[r]);
                delta[r] = 0;
            }
            if (best_peak < 0 || peak < best_peak) {
                best_peak = peak;
                best_alt = static_cast<int>(alt);
            }
        }
        result.chosenAlternative[id] = best_alt;
        for (const auto& use : info.alternatives[best_alt].table.uses()) {
            const int usage = ++result.usage[use.resource];
            current_max = std::max(current_max, usage);
        }
    }

    const auto max_it =
        std::max_element(result.usage.begin(), result.usage.end());
    result.criticalResource = static_cast<machine::ResourceId>(
        std::distance(result.usage.begin(), max_it));
    result.resMii = std::max(1, max_it == result.usage.end() ? 1 : *max_it);
    return result;
}

} // namespace ims::mii
