#include "mii/res_mii.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ims::mii {

ResMiiResult
computeResMii(const ir::Loop& loop, const machine::MachineModel& machine,
              support::Counters* counters)
{
    ResMiiResult result;
    result.usage.assign(machine.numResources(), 0);
    result.chosenAlternative.assign(loop.size(), 0);

    // Sort operations by increasing number of alternatives. The paper uses
    // a radix sort for O(N); alternative counts are tiny, so a counting
    // sort over [1, maxAlts] keeps the same bound.
    std::vector<ir::OpId> order(loop.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](ir::OpId a, ir::OpId b) {
                         return machine.numAlternatives(
                                    loop.operation(a).opcode) <
                                machine.numAlternatives(
                                    loop.operation(b).opcode);
                     });

    for (ir::OpId id : order) {
        const auto& info = machine.info(loop.operation(id).opcode);
        int best_alt = 0;
        int best_peak = -1;
        for (std::size_t alt = 0; alt < info.alternatives.size(); ++alt) {
            // Peak usage if this alternative were chosen.
            std::vector<int> trial = result.usage;
            for (const auto& use : info.alternatives[alt].table.uses()) {
                ++trial[use.resource];
                support::bump(counters,
                              &support::Counters::resMiiInspections);
            }
            const int peak = *std::max_element(trial.begin(), trial.end());
            if (best_peak < 0 || peak < best_peak) {
                best_peak = peak;
                best_alt = static_cast<int>(alt);
            }
        }
        result.chosenAlternative[id] = best_alt;
        for (const auto& use : info.alternatives[best_alt].table.uses())
            ++result.usage[use.resource];
    }

    const auto max_it =
        std::max_element(result.usage.begin(), result.usage.end());
    result.criticalResource = static_cast<machine::ResourceId>(
        std::distance(result.usage.begin(), max_it));
    result.resMii = std::max(1, max_it == result.usage.end() ? 1 : *max_it);
    return result;
}

} // namespace ims::mii
