#include "mii/rec_mii.hpp"

#include <algorithm>
#include <numeric>

#include "graph/circuits.hpp"
#include "mii/min_dist.hpp"
#include "support/error.hpp"

namespace ims::mii {

namespace {

/**
 * Ceiling on any useful candidate II for the given vertex subset: once II
 * is at least the sum of positive edge delays, every circuit with a
 * positive distance satisfies Delay(c) - II * Distance(c) <= 0. If the
 * subset is still infeasible there, it contains a zero-distance cycle.
 */
std::int64_t
candidateCap(const graph::DepGraph& graph,
             const std::vector<graph::VertexId>& vertices)
{
    std::int64_t cap = 1;
    std::vector<bool> member(graph.numVertices(), false);
    for (graph::VertexId v : vertices)
        member[v] = true;
    for (const auto& edge : graph.edges()) {
        if (member[edge.from] && member[edge.to] && edge.delay > 0)
            cap += edge.delay;
    }
    return cap;
}

/**
 * Smallest II >= `start` for which the subset's MinDist diagonal is
 * non-positive, using the paper's protocol: advance by a doubling
 * increment until feasible, then binary-search between the last
 * unsuccessful and first successful candidates.
 */
int
searchFeasibleIi(const graph::DepGraph& graph,
                 const std::vector<graph::VertexId>& vertices, int start,
                 support::Counters* counters)
{
    // One matrix serves the whole doubling + binary search: every new
    // candidate II recomputes into the same buffer instead of rebuilding
    // the subset index and reallocating O(N^2) storage per probe.
    MinDistMatrix dist(graph, vertices, start, counters);
    auto feasible = [&](int ii) {
        if (dist.ii() != ii)
            dist.recompute(ii, counters);
        return dist.feasible();
    };

    const int cap = static_cast<int>(
        std::min<std::int64_t>(candidateCap(graph, vertices), INT32_MAX / 2));
    if (feasible(start))
        return start;

    int last_bad = start;
    int step = 1;
    int candidate = start;
    do {
        support::check(candidate < cap,
                       "dependence cycle with zero iteration distance: no "
                       "initiation interval is feasible");
        last_bad = candidate;
        candidate = std::min(candidate + step, cap);
        step *= 2;
    } while (!feasible(candidate));

    // Binary search in (last_bad, candidate].
    int lo = last_bad + 1;
    int hi = candidate;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

} // namespace

int
computeRecMiiPerScc(const graph::DepGraph& graph,
                    const graph::SccResult& sccs, int start_candidate,
                    support::Counters* counters)
{
    int candidate = std::max(1, start_candidate);
    for (const auto& component : sccs.components()) {
        // Pseudo vertices and singletons without a reflexive edge cannot
        // constrain the II; skip them without invoking ComputeMinDist.
        if (component.size() == 1) {
            const graph::VertexId v = component.front();
            if (graph.isPseudo(v))
                continue;
            bool has_self_edge = false;
            for (graph::EdgeId eid : graph.outEdges(v))
                has_self_edge |= graph.edge(eid).to == v;
            if (!has_self_edge)
                continue;
        }
        candidate = searchFeasibleIi(graph, component, candidate, counters);
    }
    return candidate;
}

int
computeRecMiiWholeGraph(const graph::DepGraph& graph, int start_candidate,
                        support::Counters* counters)
{
    std::vector<graph::VertexId> real_vertices(graph.numOps());
    std::iota(real_vertices.begin(), real_vertices.end(), 0);
    return searchFeasibleIi(graph, real_vertices,
                            std::max(1, start_candidate), counters);
}

int
computeRecMiiFromCircuits(const graph::DepGraph& graph,
                          support::Counters* counters)
{
    (void)counters;
    int rec_mii = 1;
    for (const auto& circuit : graph::enumerateElementaryCircuits(graph)) {
        const int delay = graph::circuitDelay(graph, circuit);
        const int distance = graph::circuitDistance(graph, circuit);
        if (distance == 0) {
            support::check(delay <= 0,
                           "dependence cycle with zero iteration distance: "
                           "no initiation interval is feasible");
            continue;
        }
        // Smallest II with Delay(c) - II * Distance(c) <= 0.
        const int bound = static_cast<int>(
            (static_cast<std::int64_t>(delay) + distance - 1) / distance);
        rec_mii = std::max(rec_mii, bound);
    }
    return rec_mii;
}

} // namespace ims::mii
