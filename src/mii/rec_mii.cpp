#include "mii/rec_mii.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "graph/circuits.hpp"
#include "mii/min_dist.hpp"
#include "support/error.hpp"

namespace ims::mii {

namespace {

/**
 * Ceiling on any useful candidate II for the given vertex subset: once II
 * is at least the sum of positive edge delays, every circuit with a
 * positive distance satisfies Delay(c) - II * Distance(c) <= 0. If the
 * subset is still infeasible there, it contains a zero-distance cycle.
 */
std::int64_t
candidateCap(const graph::DepGraph& graph,
             const std::vector<graph::VertexId>& vertices)
{
    std::int64_t cap = 1;
    std::vector<bool> member(graph.numVertices(), false);
    for (graph::VertexId v : vertices)
        member[v] = true;
    for (const auto& edge : graph.edges()) {
        if (member[edge.from] && member[edge.to] && edge.delay > 0)
            cap += edge.delay;
    }
    return cap;
}

/**
 * Feasibility oracle for one vertex subset: II is feasible iff the
 * subset has no circuit with Delay(c) - II * Distance(c) > 0, i.e. no
 * positive-weight cycle under edge weights delay - II * distance. That
 * is exactly the condition "the MinDist diagonal is non-positive" the
 * O(s^3) ComputeMinDist closure used to decide per probe; Bellman-Ford
 * positive-cycle detection answers it in O(s * e) without materialising
 * the matrix, and as a pure decision it cannot disagree with the
 * closure, so the RecMII search returns the same II.
 *
 * The probe charges the same counters as the closure it replaces —
 * min_dist_invocations per feasibility question, min_dist_inner_steps
 * per edge relaxation examined — so those fields keep meaning "RecMII
 * feasibility work", just with the cheaper inner loop.
 */
class FeasibilityProbe
{
  public:
    FeasibilityProbe(const graph::DepGraph& graph,
                     const std::vector<graph::VertexId>& vertices)
        : numVertices_(static_cast<int>(vertices.size())),
          potential_(vertices.size(), 0)
    {
        std::vector<std::int32_t> index(graph.numVertices(), -1);
        for (std::size_t i = 0; i < vertices.size(); ++i)
            index[vertices[i]] = static_cast<std::int32_t>(i);
        for (const auto& edge : graph.edges()) {
            if (index[edge.from] >= 0 && index[edge.to] >= 0) {
                edges_.push_back({index[edge.from], index[edge.to],
                                  edge.delay, edge.distance});
            }
        }
    }

    /** True when the subset has no positive-weight cycle at this II. */
    bool
    feasible(int ii, support::Counters* counters)
    {
        support::bump(counters, &support::Counters::minDistInvocations);
        // From an all-zero start, after k relaxation passes
        // potential_[v] is the maximum weight of any walk of at most k
        // edges ending at v. Without a positive cycle that maximum is
        // attained by a simple path (<= s-1 edges), so some pass among
        // the first s changes nothing and the relaxation has converged;
        // with one, every pass keeps improving. Hence: a quiescent pass
        // proves feasibility, s consecutive changing passes prove a
        // positive cycle.
        std::fill(potential_.begin(), potential_.end(), 0);
        std::uint64_t relaxations = 0;
        bool changed = true;
        for (int pass = 0; pass < numVertices_ && changed; ++pass) {
            changed = false;
            for (const Edge& edge : edges_) {
                ++relaxations;
                const std::int64_t weight =
                    edge.delay -
                    static_cast<std::int64_t>(ii) * edge.distance;
                const std::int64_t bound = potential_[edge.from] + weight;
                if (bound > potential_[edge.to]) {
                    potential_[edge.to] = bound;
                    changed = true;
                }
            }
        }
        support::bump(counters, &support::Counters::minDistInnerSteps,
                      relaxations);
        return !changed;
    }

  private:
    struct Edge
    {
        std::int32_t from;
        std::int32_t to;
        std::int32_t delay;
        std::int32_t distance;
    };

    int numVertices_;
    std::vector<Edge> edges_;
    std::vector<std::int64_t> potential_;
};

/**
 * Smallest II >= `start` for which the subset becomes feasible, using
 * the paper's protocol: advance by a doubling increment until feasible,
 * then binary-search between the last unsuccessful and first successful
 * candidates.
 */
int
searchFeasibleIi(const graph::DepGraph& graph,
                 const std::vector<graph::VertexId>& vertices, int start,
                 support::Counters* counters)
{
    FeasibilityProbe probe(graph, vertices);
    auto feasible = [&](int ii) { return probe.feasible(ii, counters); };

    const int cap = static_cast<int>(
        std::min<std::int64_t>(candidateCap(graph, vertices), INT32_MAX / 2));
    if (feasible(start))
        return start;

    int last_bad = start;
    int step = 1;
    int candidate = start;
    do {
        support::check(candidate < cap,
                       "dependence cycle with zero iteration distance: no "
                       "initiation interval is feasible");
        last_bad = candidate;
        candidate = std::min(candidate + step, cap);
        step *= 2;
    } while (!feasible(candidate));

    // Binary search in (last_bad, candidate].
    int lo = last_bad + 1;
    int hi = candidate;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (feasible(mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

} // namespace

int
computeRecMiiPerScc(const graph::DepGraph& graph,
                    const graph::SccResult& sccs, int start_candidate,
                    support::Counters* counters)
{
    int candidate = std::max(1, start_candidate);
    for (const auto& component : sccs.components()) {
        // Pseudo vertices and singletons without a reflexive edge cannot
        // constrain the II; skip them without invoking the probe.
        if (component.size() == 1) {
            const graph::VertexId v = component.front();
            if (graph.isPseudo(v))
                continue;
            bool has_self_edge = false;
            for (const graph::Dep& dep : graph.outDeps(v))
                has_self_edge |= dep.other == v;
            if (!has_self_edge)
                continue;
        }
        candidate = searchFeasibleIi(graph, component, candidate, counters);
    }
    return candidate;
}

int
computeRecMiiWholeGraph(const graph::DepGraph& graph, int start_candidate,
                        support::Counters* counters)
{
    std::vector<graph::VertexId> real_vertices(graph.numOps());
    std::iota(real_vertices.begin(), real_vertices.end(), 0);
    return searchFeasibleIi(graph, real_vertices,
                            std::max(1, start_candidate), counters);
}

int
computeRecMiiFromCircuits(const graph::DepGraph& graph,
                          support::Counters* counters)
{
    (void)counters;
    int rec_mii = 1;
    for (const auto& circuit : graph::enumerateElementaryCircuits(graph)) {
        const int delay = graph::circuitDelay(graph, circuit);
        const int distance = graph::circuitDistance(graph, circuit);
        if (distance == 0) {
            support::check(delay <= 0,
                           "dependence cycle with zero iteration distance: "
                           "no initiation interval is feasible");
            continue;
        }
        // Smallest II with Delay(c) - II * Distance(c) <= 0.
        const int bound = static_cast<int>(
            (static_cast<std::int64_t>(delay) + distance - 1) / distance);
        rec_mii = std::max(rec_mii, bound);
    }
    return rec_mii;
}

} // namespace ims::mii
