#include "mii/mii.hpp"

#include "mii/rec_mii.hpp"

namespace ims::mii {

MiiResult
computeMii(const ir::Loop& loop, const machine::MachineModel& machine,
           const graph::DepGraph& graph, const graph::SccResult& sccs,
           support::Counters* counters, support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kMiiBounds);
    MiiResult result;
    result.resMii = computeResMii(loop, machine, counters).resMii;
    result.mii =
        computeRecMiiPerScc(graph, sccs, result.resMii, counters);
    return result;
}

int
computeTrueRecMii(const graph::DepGraph& graph,
                  const graph::SccResult& sccs,
                  support::Counters* counters)
{
    return computeRecMiiPerScc(graph, sccs, 1, counters);
}

} // namespace ims::mii
