#include "mii/min_dist.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ims::mii {

MinDistMatrix::MinDistMatrix(const graph::DepGraph& graph,
                             std::vector<graph::VertexId> vertices, int ii,
                             support::Counters* counters)
    : vertices_(std::move(vertices)), ii_(ii)
{
    assert(ii >= 1);
    indexOf_.assign(graph.numVertices(), -1);
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        assert(indexOf_[vertices_[i]] == -1 && "duplicate vertex in subset");
        indexOf_[vertices_[i]] = static_cast<int>(i);
    }

    // Cache the subset-internal edges once; recompute() never needs the
    // graph again.
    for (std::size_t i = 0; i < vertices_.size(); ++i) {
        for (graph::EdgeId eid : graph.outEdges(vertices_[i])) {
            const graph::DepEdge& edge = graph.edge(eid);
            const int j = indexOf_[edge.to];
            if (j < 0)
                continue;
            edgeInits_.push_back({static_cast<int>(i), j, edge.delay,
                                  edge.distance});
        }
    }

    recompute(ii, counters);
}

MinDistMatrix::MinDistMatrix(const graph::DepGraph& graph, int ii,
                             support::Counters* counters)
    : MinDistMatrix(graph,
                    [&graph] {
                        std::vector<graph::VertexId> all(
                            graph.numVertices());
                        std::iota(all.begin(), all.end(), 0);
                        return all;
                    }(),
                    ii, counters)
{
}

void
MinDistMatrix::recompute(int ii, support::Counters* counters)
{
    assert(ii >= 1);
    ii_ = ii;
    support::bump(counters, &support::Counters::minDistInvocations);
    const std::size_t n = vertices_.size();
    matrix_.assign(n * n, kMinusInf); // capacity reused across candidates

    // Initialise from the cached subset-internal edges.
    for (const EdgeInit& edge : edgeInits_) {
        const std::int64_t bound =
            static_cast<std::int64_t>(edge.delay) -
            static_cast<std::int64_t>(ii_) * edge.distance;
        auto& cell = matrix_[static_cast<std::size_t>(edge.i) * n + edge.j];
        cell = std::max(cell, bound);
    }

    // All-pairs longest path closure. The inner-step counter counts only
    // productive (i, k, j) combinations — both path halves finite — per
    // Table 4's "inner loop executions" (see docs/api.md).
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t ik = matrix_[i * n + k];
            if (ik == kMinusInf)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                const std::int64_t kj = matrix_[k * n + j];
                if (kj == kMinusInf)
                    continue;
                support::bump(counters,
                              &support::Counters::minDistInnerSteps);
                auto& cell = matrix_[i * n + j];
                cell = std::max(cell, ik + kj);
            }
        }
    }
}

std::int64_t
MinDistMatrix::atVertex(graph::VertexId u, graph::VertexId v) const
{
    const int i = indexOf_[u];
    const int j = indexOf_[v];
    assert(i >= 0 && j >= 0 && "vertex not part of this MinDist subset");
    return at(i, j);
}

std::int64_t
MinDistMatrix::maxDiagonal() const
{
    std::int64_t best = kMinusInf;
    for (int i = 0; i < size(); ++i)
        best = std::max(best, at(i, i));
    return best;
}

} // namespace ims::mii
