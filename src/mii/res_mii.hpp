#ifndef IMS_MII_RES_MII_HPP
#define IMS_MII_RES_MII_HPP

#include <vector>

#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "support/counters.hpp"

namespace ims::mii {

/** Outcome of the resource-constrained MII computation (§2.1). */
struct ResMiiResult
{
    /** The resource-constrained lower bound on II (>= 1). */
    int resMii = 1;
    /** Final usage count per machine resource. */
    std::vector<int> usage;
    /** Alternative chosen for each operation during the bin-packing. */
    std::vector<int> chosenAlternative;
    /** Index of the most heavily used (critical) resource. */
    machine::ResourceId criticalResource = 0;
};

/**
 * Approximate ResMII per §2.1: exact computation is a bin-packing problem
 * (exponential), so operations are sorted by increasing number of
 * alternatives ("degrees of freedom") and greedily assigned, each to the
 * alternative that yields the lowest partial ResMII; the final usage count
 * of the most heavily used resource is the ResMII.
 */
ResMiiResult computeResMii(const ir::Loop& loop,
                           const machine::MachineModel& machine,
                           support::Counters* counters = nullptr);

} // namespace ims::mii

#endif // IMS_MII_RES_MII_HPP
