#ifndef IMS_MII_MII_HPP
#define IMS_MII_MII_HPP

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "mii/res_mii.hpp"
#include "support/counters.hpp"
#include "support/telemetry.hpp"

namespace ims::mii {

/** Combined lower-bound computation: MII = max(ResMII, RecMII) (§2). */
struct MiiResult
{
    int resMii = 1;
    /**
     * The MII: smallest candidate >= ResMII feasible for every recurrence
     * (computed with the paper's production protocol, which never looks
     * below ResMII).
     */
    int mii = 1;
};

/**
 * Production-compiler MII (§2.2): compute ResMII, then run the per-SCC
 * feasibility search starting at ResMII ("since one is interested not in
 * the RecMII but only in the MII, the initial trial value of II should be
 * the ResMII").
 *
 * When `sink` is non-null the computation is reported as one
 * Phase::kMiiBounds sample.
 */
MiiResult computeMii(const ir::Loop& loop,
                     const machine::MachineModel& machine,
                     const graph::DepGraph& graph,
                     const graph::SccResult& sccs,
                     support::Counters* counters = nullptr,
                     support::TelemetrySink* sink = nullptr);

/**
 * The true RecMII for statistics (Table 3's max(0, RecMII - ResMII) row):
 * the same per-SCC search started from 1 instead of ResMII.
 */
int computeTrueRecMii(const graph::DepGraph& graph,
                      const graph::SccResult& sccs,
                      support::Counters* counters = nullptr);

} // namespace ims::mii

#endif // IMS_MII_MII_HPP
