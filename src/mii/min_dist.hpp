#ifndef IMS_MII_MIN_DIST_HPP
#define IMS_MII_MIN_DIST_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/dep_graph.hpp"
#include "support/counters.hpp"

namespace ims::mii {

/**
 * The MinDist matrix of §2.2: entry [i][j] is the minimum permissible
 * interval between the schedule time of operation i and operation j of the
 * same iteration, for a given candidate II; -infinity when no dependence
 * path connects them.
 *
 * Initialisation: for every edge e: i -> j,
 *   MinDist[i][j] >= Delay(e) - II * Distance(e),
 * then closure with the O(N^3) all-pairs longest-path (Floyd-Warshall)
 * step. A positive diagonal entry means an operation would have to be
 * scheduled after itself: the candidate II is infeasible.
 *
 * The matrix is *reusable across candidate IIs*: construction caches the
 * vertex-subset index and the per-edge (i, j, delay, distance) tuples, and
 * `recompute(ii)` re-runs initialisation + closure in the existing buffer
 * without touching the graph or allocating. The RecMII doubling/binary
 * search and the per-II slack-priority computation call `recompute` once
 * per candidate instead of building a fresh matrix each time.
 */
class MinDistMatrix
{
  public:
    /** Sentinel for "no path". */
    static constexpr std::int64_t kMinusInf =
        std::numeric_limits<std::int64_t>::min() / 4;

    /**
     * Compute over the subgraph induced by `vertices` (edges with both
     * endpoints inside), for candidate initiation interval `ii` (>= 1).
     */
    MinDistMatrix(const graph::DepGraph& graph,
                  std::vector<graph::VertexId> vertices, int ii,
                  support::Counters* counters = nullptr);

    /** Compute over the whole graph including START/STOP. */
    MinDistMatrix(const graph::DepGraph& graph, int ii,
                  support::Counters* counters = nullptr);

    /**
     * Recompute the matrix for a new candidate II, reusing the buffer and
     * the cached edge initialisation (each call counts as one
     * `minDistInvocations`, exactly like constructing afresh would).
     */
    void recompute(int ii, support::Counters* counters = nullptr);

    int size() const { return static_cast<int>(vertices_.size()); }
    int ii() const { return ii_; }

    /** Entry by subset index. */
    std::int64_t
    at(int i, int j) const
    {
        return matrix_[static_cast<std::size_t>(i) * vertices_.size() + j];
    }

    /** Entry by graph vertex id (must be members of the subset). */
    std::int64_t atVertex(graph::VertexId u, graph::VertexId v) const;

    /** Largest diagonal entry (kMinusInf when none is connected). */
    std::int64_t maxDiagonal() const;

    /** True when no diagonal entry is positive (the II is feasible). */
    bool feasible() const { return maxDiagonal() <= 0; }

    /** The vertex subset, in matrix order. */
    const std::vector<graph::VertexId>& vertices() const { return vertices_; }

  private:
    /** One subset-internal edge, pre-resolved to matrix indices. */
    struct EdgeInit
    {
        int i;
        int j;
        int delay;
        int distance;
    };

    std::vector<graph::VertexId> vertices_;
    std::vector<int> indexOf_; // graph vertex -> subset index or -1
    int ii_;
    std::vector<std::int64_t> matrix_;
    std::vector<EdgeInit> edgeInits_; // cached across recomputes
};

} // namespace ims::mii

#endif // IMS_MII_MIN_DIST_HPP
