#ifndef IMS_MII_REC_MII_HPP
#define IMS_MII_REC_MII_HPP

#include "graph/dep_graph.hpp"
#include "graph/scc.hpp"
#include "support/counters.hpp"

namespace ims::mii {

/**
 * Recurrence-constrained MII via the per-SCC MinDist search of §2.2 (the
 * approach used in the paper, after Huff): for each strongly connected
 * component in turn, find the smallest II for which the component's
 * MinDist matrix has no positive diagonal entry, seeding each search with
 * the MII resulting from the previous components ("each time
 * ComputeMinDist is invoked with a new SCC, the initial starting value of
 * the candidate MII is the resulting MII as computed with the previous
 * SCC").
 *
 * @param start_candidate initial candidate (the ResMII in a production
 *        compiler; pass 1 to obtain the true RecMII for statistics).
 * @returns the smallest II >= start_candidate feasible for every SCC.
 * @throws support::Error on a zero-distance dependence cycle (no II can
 *         ever be feasible).
 */
int computeRecMiiPerScc(const graph::DepGraph& graph,
                        const graph::SccResult& sccs, int start_candidate,
                        support::Counters* counters = nullptr);

/**
 * Same search over the entire dependence graph with a single MinDist per
 * candidate II (no SCC decomposition). Produces identical results at
 * higher cost; kept for the RecMII ablation bench.
 */
int computeRecMiiWholeGraph(const graph::DepGraph& graph,
                            int start_candidate,
                            support::Counters* counters = nullptr);

/**
 * The Cydra 5 compiler's approach (§2.2): enumerate all elementary
 * circuits c and take the worst-case ceil(Delay(c) / Distance(c)).
 * Exponential in the worst case; used as a cross-check in tests and in
 * the ablation bench. The result is clamped below at 1.
 */
int computeRecMiiFromCircuits(const graph::DepGraph& graph,
                              support::Counters* counters = nullptr);

} // namespace ims::mii

#endif // IMS_MII_REC_MII_HPP
