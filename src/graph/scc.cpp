#include "graph/scc.hpp"

#include <algorithm>
#include <cassert>

namespace ims::graph {

SccResult::SccResult(std::vector<std::vector<VertexId>> components,
                     std::vector<int> component_of)
    : components_(std::move(components)), componentOf_(std::move(component_of))
{
}

bool
SccResult::isNonTrivial(int component) const
{
    assert(component >= 0 && component < numComponents());
    return components_[component].size() > 1;
}

int
SccResult::numNonTrivial() const
{
    int count = 0;
    for (const auto& component : components_) {
        if (component.size() > 1)
            ++count;
    }
    return count;
}

std::vector<int>
SccResult::componentSizes() const
{
    std::vector<int> sizes;
    sizes.reserve(components_.size());
    for (const auto& component : components_)
        sizes.push_back(static_cast<int>(component.size()));
    std::sort(sizes.rbegin(), sizes.rend());
    return sizes;
}

SccResult
findSccs(const DepGraph& graph, support::Counters* counters)
{
    const int n = graph.numVertices();
    std::vector<int> index(n, -1);
    std::vector<int> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<VertexId> stack;
    std::vector<std::vector<VertexId>> components;
    std::vector<int> component_of(n, -1);
    int next_index = 0;

    // Iterative Tarjan: each frame tracks the vertex and the position in
    // its out-edge list.
    struct Frame
    {
        VertexId vertex;
        std::size_t edge_pos;
    };
    std::vector<Frame> call_stack;

    for (VertexId root = 0; root < n; ++root) {
        if (index[root] != -1)
            continue;
        call_stack.push_back(Frame{root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!call_stack.empty()) {
            Frame& frame = call_stack.back();
            const VertexId v = frame.vertex;
            const auto& out = graph.outEdges(v);
            if (frame.edge_pos < out.size()) {
                const VertexId w = graph.edge(out[frame.edge_pos]).to;
                ++frame.edge_pos;
                support::bump(counters, &support::Counters::sccEdgeVisits);
                if (index[w] == -1) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    call_stack.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            } else {
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    const VertexId parent = call_stack.back().vertex;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
                }
                if (lowlink[v] == index[v]) {
                    std::vector<VertexId> component;
                    VertexId w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        component_of[w] =
                            static_cast<int>(components.size());
                        component.push_back(w);
                    } while (w != v);
                    components.push_back(std::move(component));
                }
            }
        }
    }

    return SccResult(std::move(components), std::move(component_of));
}

} // namespace ims::graph
