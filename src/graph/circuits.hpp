#ifndef IMS_GRAPH_CIRCUITS_HPP
#define IMS_GRAPH_CIRCUITS_HPP

#include <cstddef>
#include <vector>

#include "graph/dep_graph.hpp"

namespace ims::graph {

/**
 * Enumerate all elementary circuits of the dependence graph (paths that
 * start and end at the same vertex and visit no vertex twice), as edge-id
 * sequences. Parallel edges produce distinct circuits; a reflexive edge is
 * a length-1 circuit. Pseudo vertices are skipped (they cannot lie on a
 * cycle).
 *
 * This is the Cydra 5 compiler's approach to RecMII (§2.2, citing Tiernan
 * and Mateti/Deo); the implementation follows Johnson's blocked-search
 * formulation. Enumeration is worst-case exponential, so it aborts with
 * support::Error once `max_circuits` circuits have been found — callers
 * (tests, the RecMII ablation bench) only use it on modest graphs.
 */
std::vector<std::vector<EdgeId>>
enumerateElementaryCircuits(const DepGraph& graph,
                            std::size_t max_circuits = 1u << 20);

/** Sum of edge delays along a circuit. */
int circuitDelay(const DepGraph& graph, const std::vector<EdgeId>& circuit);

/** Sum of edge distances along a circuit. */
int circuitDistance(const DepGraph& graph,
                    const std::vector<EdgeId>& circuit);

} // namespace ims::graph

#endif // IMS_GRAPH_CIRCUITS_HPP
