#ifndef IMS_GRAPH_SCC_HPP
#define IMS_GRAPH_SCC_HPP

#include <vector>

#include "graph/dep_graph.hpp"
#include "support/counters.hpp"

namespace ims::graph {

/**
 * Strongly connected components of a dependence graph.
 *
 * Components are reported in reverse topological order of the condensation
 * (components with no successors first), which is the order both the
 * HeightR computation and the per-SCC RecMII search want to consume them
 * in. Following §2.2/§4.2 of the paper, a component is "non-trivial" only
 * if it contains more than one operation — a single operation with a
 * reflexive edge still counts as trivial.
 */
class SccResult
{
  public:
    SccResult(std::vector<std::vector<VertexId>> components,
              std::vector<int> component_of);

    /** Components, each a list of member vertices. */
    const std::vector<std::vector<VertexId>>&
    components() const
    {
        return components_;
    }

    int numComponents() const { return static_cast<int>(components_.size()); }

    /** Component index containing vertex `v`. */
    int componentOf(VertexId v) const { return componentOf_[v]; }

    /** True when the component has more than one member. */
    bool isNonTrivial(int component) const;

    /** Count of non-trivial components (excludes pseudo vertices). */
    int numNonTrivial() const;

    /** Sizes of all components, largest first (for the Table 3 stats). */
    std::vector<int> componentSizes() const;

  private:
    std::vector<std::vector<VertexId>> components_;
    std::vector<int> componentOf_;
};

/**
 * Tarjan's algorithm (iterative), O(N + E) per §4.4/Table 4. Pseudo
 * vertices participate but can never join a cycle, so they always form
 * trivial components. `counters` (optional) accumulates the edge visits
 * for the complexity study.
 */
SccResult findSccs(const DepGraph& graph,
                   support::Counters* counters = nullptr);

} // namespace ims::graph

#endif // IMS_GRAPH_SCC_HPP
