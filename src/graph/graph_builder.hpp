#ifndef IMS_GRAPH_GRAPH_BUILDER_HPP
#define IMS_GRAPH_GRAPH_BUILDER_HPP

#include "graph/delay_model.hpp"
#include "graph/dep_graph.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"
#include "support/telemetry.hpp"

namespace ims::graph {

/** Options controlling dependence-graph construction. */
struct GraphOptions
{
    /** Table 1 column to use for dependence delays. */
    DelayMode delayMode = DelayMode::kExact;
    /**
     * When true (default) the body is treated as being in dynamic single
     * assignment / EVR form (§2.2): register anti- and output dependences
     * have been eliminated and only flow dependences are generated.
     *
     * When false each virtual register is treated as a single physical
     * register: every definition gains a distance-1 output self-dependence
     * and every reader an anti-dependence on the next definition. Loops
     * whose operand distances exceed 1 cannot be represented this way and
     * are rejected. This mode exists for the Table 1 / ablation studies.
     */
    bool dsaForm = true;
};

/**
 * Build the dependence graph for `loop` on `machine`:
 *
 *  - register flow dependences from each definition to each reader, with
 *    the reader's operand distance and the Table 1 flow delay;
 *  - control dependences from predicate definitions to guarded operations;
 *  - memory dependences between accesses to the same array derived from
 *    their `MemRef` offsets (store->load flow, load->store anti,
 *    store->store output);
 *  - START/STOP pseudo edges: START precedes every operation (delay 0) and
 *    STOP succeeds every operation with delay equal to the operation's
 *    latency, making SchedTime(STOP) the schedule length.
 *
 * @throws support::Error if the machine lacks an opcode used by the loop,
 *         or if dsaForm == false and the loop has operand distances > 1.
 *
 * When `sink` is non-null the construction is reported as one
 * Phase::kGraphBuild sample.
 */
DepGraph buildDepGraph(const ir::Loop& loop,
                       const machine::MachineModel& machine,
                       const GraphOptions& options = {},
                       support::TelemetrySink* sink = nullptr);

} // namespace ims::graph

#endif // IMS_GRAPH_GRAPH_BUILDER_HPP
