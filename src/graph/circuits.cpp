#include "graph/circuits.hpp"

#include <algorithm>
#include <set>

#include "support/error.hpp"

namespace ims::graph {

namespace {

/**
 * Johnson-style blocked circuit search rooted at `start`, restricted to
 * vertices >= start (so each circuit is found exactly once, at its
 * smallest member).
 */
class CircuitSearch
{
  public:
    CircuitSearch(const DepGraph& graph, std::size_t max_circuits,
                  std::vector<std::vector<EdgeId>>& out)
        : graph_(graph),
          maxCircuits_(max_circuits),
          out_(out),
          blocked_(graph.numVertices(), false),
          blockList_(graph.numVertices())
    {
    }

    void
    run(VertexId start)
    {
        start_ = start;
        for (int v = 0; v < graph_.numVertices(); ++v) {
            blocked_[v] = false;
            blockList_[v].clear();
        }
        circuit(start);
    }

  private:
    bool
    circuit(VertexId v)
    {
        bool found = false;
        blocked_[v] = true;
        for (EdgeId eid : graph_.outEdges(v)) {
            const DepEdge& edge = graph_.edge(eid);
            const VertexId w = edge.to;
            if (w < start_ || graph_.isPseudo(w))
                continue;
            if (w == start_) {
                path_.push_back(eid);
                support::check(out_.size() < maxCircuits_,
                               "elementary-circuit enumeration exceeded "
                               "its circuit budget");
                out_.push_back(path_);
                path_.pop_back();
                found = true;
            } else if (!blocked_[w]) {
                path_.push_back(eid);
                if (circuit(w))
                    found = true;
                path_.pop_back();
            }
        }
        if (found) {
            unblock(v);
        } else {
            for (EdgeId eid : graph_.outEdges(v)) {
                const VertexId w = graph_.edge(eid).to;
                if (w < start_ || graph_.isPseudo(w) || w == start_)
                    continue;
                auto& list = blockList_[w];
                if (std::find(list.begin(), list.end(), v) == list.end())
                    list.push_back(v);
            }
        }
        return found;
    }

    void
    unblock(VertexId v)
    {
        blocked_[v] = false;
        auto pending = std::move(blockList_[v]);
        blockList_[v].clear();
        for (VertexId w : pending) {
            if (blocked_[w])
                unblock(w);
        }
    }

    const DepGraph& graph_;
    std::size_t maxCircuits_;
    std::vector<std::vector<EdgeId>>& out_;
    std::vector<bool> blocked_;
    std::vector<std::vector<VertexId>> blockList_;
    std::vector<EdgeId> path_;
    VertexId start_ = 0;
};

} // namespace

std::vector<std::vector<EdgeId>>
enumerateElementaryCircuits(const DepGraph& graph, std::size_t max_circuits)
{
    std::vector<std::vector<EdgeId>> circuits;
    CircuitSearch search(graph, max_circuits, circuits);
    for (VertexId start = 0; start < graph.numOps(); ++start)
        search.run(start);
    return circuits;
}

int
circuitDelay(const DepGraph& graph, const std::vector<EdgeId>& circuit)
{
    int total = 0;
    for (EdgeId eid : circuit)
        total += graph.edge(eid).delay;
    return total;
}

int
circuitDistance(const DepGraph& graph, const std::vector<EdgeId>& circuit)
{
    int total = 0;
    for (EdgeId eid : circuit)
        total += graph.edge(eid).distance;
    return total;
}

} // namespace ims::graph
