#ifndef IMS_GRAPH_DELAY_MODEL_HPP
#define IMS_GRAPH_DELAY_MODEL_HPP

#include <optional>
#include <string>
#include <string_view>

#include "graph/dep_graph.hpp"

namespace ims::graph {

/**
 * Which column of the paper's Table 1 to use when computing dependence
 * delays.
 *
 * kExact suits a classical VLIW with architecturally visible non-unit
 * latencies: anti- and output-dependence delays may be negative because
 * "it is only necessary that the predecessor start at the same time as or
 * finish before, respectively, the successor finishes".
 *
 * kConservative assumes only that the successor's latency is at least 1,
 * which is "more appropriate for superscalar processors".
 */
enum class DelayMode { kExact, kConservative };

/** Stable lowercase name ("exact", "conservative"). */
std::string delayModeName(DelayMode mode);

/** Inverse of delayModeName; nullopt for unknown names. */
std::optional<DelayMode> delayModeByName(std::string_view name);

/**
 * Dependence delay per Table 1.
 *
 *   kind     exact                     conservative
 *   flow     Latency(pred)             Latency(pred)
 *   anti     1 - Latency(succ)         0
 *   output   1 + Latency(pred)         Latency(pred)
 *              - Latency(succ)
 *
 * Control dependences (predicate flow) use the flow rule. Pseudo edges are
 * not computed here (START edges carry delay 0; op->STOP edges carry the
 * op's latency so that STOP's schedule time equals the schedule length).
 */
int dependenceDelay(DepKind kind, int pred_latency, int succ_latency,
                    DelayMode mode);

/**
 * TEST HOOK — deliberately broken delay formula for fuzz-oracle
 * self-checks. When enabled, flow dependences carried through memory are
 * given delay 0 instead of the predecessor's latency, so a store and a
 * dependent load may be packed into the same cycle and the load samples
 * stale memory: a realistic miscompilation that structural legality
 * checks cannot see but the end-to-end sim-equivalence oracle must catch.
 * Never enable outside tests / `ims-fuzz --inject-delay-fault`.
 */
void setDelayFaultForTesting(bool enabled);

/** Current state of the test hook (read by the graph builder). */
bool delayFaultForTesting();

} // namespace ims::graph

#endif // IMS_GRAPH_DELAY_MODEL_HPP
