#include "graph/delay_model.hpp"

#include <cassert>

namespace ims::graph {

int
dependenceDelay(DepKind kind, int pred_latency, int succ_latency,
                DelayMode mode)
{
    switch (kind) {
      case DepKind::kFlow:
      case DepKind::kControl:
        return pred_latency;
      case DepKind::kAnti:
        return mode == DelayMode::kExact ? 1 - succ_latency : 0;
      case DepKind::kOutput:
        return mode == DelayMode::kExact
                   ? 1 + pred_latency - succ_latency
                   : pred_latency;
      case DepKind::kPseudo:
        assert(false && "pseudo edges carry explicit delays");
        return 0;
    }
    return 0;
}

} // namespace ims::graph
