#include "graph/delay_model.hpp"

#include <atomic>
#include <cassert>

namespace ims::graph {

namespace {

std::atomic<bool> g_delay_fault{false};

} // namespace

std::string
delayModeName(DelayMode mode)
{
    return mode == DelayMode::kExact ? "exact" : "conservative";
}

std::optional<DelayMode>
delayModeByName(std::string_view name)
{
    if (name == "exact")
        return DelayMode::kExact;
    if (name == "conservative")
        return DelayMode::kConservative;
    return std::nullopt;
}

void
setDelayFaultForTesting(bool enabled)
{
    g_delay_fault.store(enabled, std::memory_order_relaxed);
}

bool
delayFaultForTesting()
{
    return g_delay_fault.load(std::memory_order_relaxed);
}

int
dependenceDelay(DepKind kind, int pred_latency, int succ_latency,
                DelayMode mode)
{
    switch (kind) {
      case DepKind::kFlow:
      case DepKind::kControl:
        return pred_latency;
      case DepKind::kAnti:
        return mode == DelayMode::kExact ? 1 - succ_latency : 0;
      case DepKind::kOutput:
        return mode == DelayMode::kExact
                   ? 1 + pred_latency - succ_latency
                   : pred_latency;
      case DepKind::kPseudo:
        assert(false && "pseudo edges carry explicit delays");
        return 0;
    }
    return 0;
}

} // namespace ims::graph
