#include "graph/graph_builder.hpp"

#include <vector>

#include "support/error.hpp"

namespace ims::graph {

namespace {

/** All register-read operands of `op`, guard included. */
std::vector<ir::Operand>
registerReads(const ir::Operation& op)
{
    std::vector<ir::Operand> reads;
    for (const auto& src : op.sources) {
        if (src.isRegister())
            reads.push_back(src);
    }
    if (op.guard)
        reads.push_back(*op.guard);
    return reads;
}

} // namespace

DepGraph
buildDepGraph(const ir::Loop& loop, const machine::MachineModel& machine,
              const GraphOptions& options, support::TelemetrySink* sink)
{
    support::PhaseTimer timer(sink, support::Phase::kGraphBuild);
    loop.validate();
    DepGraph graph(loop.size());

    auto latency = [&](ir::OpId id) {
        return machine.latency(loop.operation(id).opcode);
    };
    auto add_dep = [&](ir::OpId from, ir::OpId to, DepKind kind, int distance,
                       bool through_memory) {
        DepEdge edge;
        edge.from = from;
        edge.to = to;
        edge.kind = kind;
        edge.distance = distance;
        edge.delay = dependenceDelay(kind, latency(from), latency(to),
                                     options.delayMode);
        if (delayFaultForTesting() && kind == DepKind::kFlow &&
            through_memory)
            edge.delay = 0; // injected bug (see setDelayFaultForTesting)
        edge.throughMemory = through_memory;
        graph.addEdge(edge);
    };

    // Collect readers of each register for the non-DSA anti-dependences.
    for (const auto& op : loop.operations()) {
        support::check(machine.supports(op.opcode),
                       "machine '" + machine.name() +
                           "' does not implement opcode " +
                           ir::opcodeName(op.opcode));
        for (const auto& read : registerReads(op)) {
            const ir::OpId def = loop.definingOp(read.reg);
            if (def < 0)
                continue; // pure live-in: no producing operation
            const bool is_control = op.guard && read.reg == op.guard->reg &&
                                    read.distance == op.guard->distance &&
                                    loop.reg(read.reg).isPredicate;
            add_dep(def, op.id,
                    is_control ? DepKind::kControl : DepKind::kFlow,
                    read.distance, false);
        }
    }

    if (!options.dsaForm) {
        support::check(loop.maxDistance() <= 1,
                       "single-register form cannot represent operand "
                       "distances greater than 1");
        for (const auto& op : loop.operations()) {
            if (!op.hasDest())
                continue;
            // Output self-dependence: this iteration's write vs the next's.
            add_dep(op.id, op.id, DepKind::kOutput, 1, false);
        }
        for (const auto& op : loop.operations()) {
            for (const auto& read : registerReads(op)) {
                const ir::OpId def = loop.definingOp(read.reg);
                if (def < 0)
                    continue;
                // The read (of the value written `distance` back) must
                // precede the overwriting definition, which occurs
                // 1 - distance iterations later.
                const int anti_distance = 1 - read.distance;
                if (anti_distance >= 0)
                    add_dep(op.id, def, DepKind::kAnti, anti_distance, false);
            }
        }
    }

    // Memory dependences between accesses to the same array. Access A in
    // iteration i touches array[sA*i + oA]; access B in iteration j touches
    // array[sB*j + oB]. With equal strides s they conflict exactly when
    // s*(j - i) == oA - oB, i.e. at a single iteration distance (or never,
    // when s does not divide the offset difference). Mixed strides are
    // handled conservatively with distance-0 and distance-1 edges.
    for (const auto& a : loop.operations()) {
        if (!a.memRef)
            continue;
        for (const auto& b : loop.operations()) {
            if (!b.memRef || b.memRef->array != a.memRef->array)
                continue;
            if (!a.isStore() && !b.isStore())
                continue; // load-load pairs never conflict
            const bool same_op = a.id == b.id;

            DepKind kind;
            if (a.isStore() && !b.isStore())
                kind = DepKind::kFlow;
            else if (!a.isStore() && b.isStore())
                kind = DepKind::kAnti;
            else
                kind = DepKind::kOutput;

            if (a.memRef->stride == b.memRef->stride) {
                const int diff = a.memRef->offset - b.memRef->offset;
                const int stride = a.memRef->stride;
                if (diff % stride != 0)
                    continue; // access sequences never meet
                const int distance = diff / stride;
                const bool valid =
                    distance > 0 ||
                    (distance == 0 && !same_op && a.id < b.id);
                if (valid)
                    add_dep(a.id, b.id, kind, distance, true);
            } else {
                // Conservative: serialise within the iteration (program
                // order) and across consecutive iterations.
                if (!same_op && a.id < b.id)
                    add_dep(a.id, b.id, kind, 0, true);
                add_dep(a.id, b.id, kind, 1, true);
            }
        }
    }

    // Early exits (WHILE-loops / loops with early exits, §5): stores must
    // never commit for iterations the loop did not reach, so every store
    // is control-dependent on its own iteration's earlier exits
    // (distance 0) and on later-listed exits of the previous iteration
    // (distance 1). Speculative non-store operations are unconstrained
    // ("control dependences may be selectively ignored").
    for (const auto& exit_op : loop.operations()) {
        if (exit_op.opcode != ir::Opcode::kExitIf)
            continue;
        for (const auto& store : loop.operations()) {
            if (!store.isStore())
                continue;
            const int distance = store.id > exit_op.id ? 0 : 1;
            add_dep(exit_op.id, store.id, DepKind::kControl, distance,
                    false);
        }
    }

    // START/STOP pseudo edges (§3.1).
    for (const auto& op : loop.operations()) {
        DepEdge start_edge;
        start_edge.from = graph.start();
        start_edge.to = op.id;
        start_edge.kind = DepKind::kPseudo;
        start_edge.distance = 0;
        start_edge.delay = 0;
        graph.addEdge(start_edge);

        DepEdge stop_edge;
        stop_edge.from = op.id;
        stop_edge.to = graph.stop();
        stop_edge.kind = DepKind::kPseudo;
        stop_edge.distance = 0;
        stop_edge.delay = latency(op.id);
        graph.addEdge(stop_edge);
    }

    return graph;
}

} // namespace ims::graph
