#include "graph/dep_graph.hpp"

#include <cassert>
#include <sstream>

namespace ims::graph {

std::string
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::kFlow:
        return "flow";
      case DepKind::kAnti:
        return "anti";
      case DepKind::kOutput:
        return "output";
      case DepKind::kControl:
        return "control";
      case DepKind::kPseudo:
        return "pseudo";
    }
    return "?";
}

DepGraph::DepGraph(int num_ops)
    : numOps_(num_ops), out_(num_ops + 2), in_(num_ops + 2)
{
    assert(num_ops >= 0);
}

EdgeId
DepGraph::addEdge(DepEdge edge)
{
    assert(edge.from >= 0 && edge.from < numVertices());
    assert(edge.to >= 0 && edge.to < numVertices());
    assert(edge.distance >= 0);
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    out_[edge.from].push_back(id);
    in_[edge.to].push_back(id);
    edges_.push_back(edge);
    return id;
}

int
DepGraph::numRealEdges() const
{
    int count = 0;
    for (const auto& edge : edges_) {
        if (edge.kind != DepKind::kPseudo)
            ++count;
    }
    return count;
}

std::string
DepGraph::toString() const
{
    std::ostringstream out;
    out << "dep graph: " << numOps_ << " ops, " << numEdges() << " edges ("
        << numRealEdges() << " real)\n";
    auto vertex_name = [this](VertexId v) {
        if (v == start())
            return std::string("START");
        if (v == stop())
            return std::string("STOP");
        return std::to_string(v);
    };
    for (const auto& edge : edges_) {
        out << "  " << vertex_name(edge.from) << " -> "
            << vertex_name(edge.to) << "  [" << depKindName(edge.kind)
            << (edge.throughMemory ? "/mem" : "") << " delay "
            << edge.delay << " dist " << edge.distance << "]\n";
    }
    return out.str();
}

} // namespace ims::graph
