#include "graph/dep_graph.hpp"

#include <cassert>
#include <sstream>

namespace ims::graph {

std::string
depKindName(DepKind kind)
{
    switch (kind) {
      case DepKind::kFlow:
        return "flow";
      case DepKind::kAnti:
        return "anti";
      case DepKind::kOutput:
        return "output";
      case DepKind::kControl:
        return "control";
      case DepKind::kPseudo:
        return "pseudo";
    }
    return "?";
}

DepGraph::DepGraph(int num_ops)
    : numOps_(num_ops), adj_(std::make_unique<Adjacency>())
{
    assert(num_ops >= 0);
}

DepGraph::DepGraph(const DepGraph& other)
    : numOps_(other.numOps_),
      edges_(other.edges_),
      adj_(std::make_unique<Adjacency>())
{
}

DepGraph&
DepGraph::operator=(const DepGraph& other)
{
    if (this != &other) {
        numOps_ = other.numOps_;
        edges_ = other.edges_;
        adj_ = std::make_unique<Adjacency>();
    }
    return *this;
}

EdgeId
DepGraph::addEdge(DepEdge edge)
{
    assert(edge.from >= 0 && edge.from < numVertices());
    assert(edge.to >= 0 && edge.to < numVertices());
    assert(edge.distance >= 0);
    const EdgeId id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(edge);
    // Construction is single-threaded (see addEdge's contract), so a
    // plain store is enough to force a CSR rebuild on the next query.
    adj_->built.store(false, std::memory_order_relaxed);
    return id;
}

void
DepGraph::buildAdjacency() const
{
    Adjacency& adj = *adj_;
    std::lock_guard<std::mutex> lock(adj.buildMutex);
    if (adj.built.load(std::memory_order_relaxed))
        return;

    const int vertices = numVertices();
    const std::size_t num_edges = edges_.size();
    adj.outOffsets.assign(static_cast<std::size_t>(vertices) + 1, 0);
    adj.inOffsets.assign(static_cast<std::size_t>(vertices) + 1, 0);
    for (const DepEdge& edge : edges_) {
        ++adj.outOffsets[edge.from + 1];
        ++adj.inOffsets[edge.to + 1];
    }
    for (int v = 0; v < vertices; ++v) {
        adj.outOffsets[v + 1] += adj.outOffsets[v];
        adj.inOffsets[v + 1] += adj.inOffsets[v];
    }

    adj.outIds.resize(num_edges);
    adj.inIds.resize(num_edges);
    adj.outDeps.resize(num_edges);
    adj.inDeps.resize(num_edges);
    // Filling in edge-id order keeps each vertex's slice in insertion
    // order — the same order the per-vertex push_back lists used to have,
    // which the schedulers' tie-breaks depend on.
    std::vector<std::int32_t> out_cursor(adj.outOffsets.begin(),
                                         adj.outOffsets.end() - 1);
    std::vector<std::int32_t> in_cursor(adj.inOffsets.begin(),
                                        adj.inOffsets.end() - 1);
    for (std::size_t id = 0; id < num_edges; ++id) {
        const DepEdge& edge = edges_[id];
        const std::int32_t out_at = out_cursor[edge.from]++;
        const std::int32_t in_at = in_cursor[edge.to]++;
        adj.outIds[out_at] = static_cast<EdgeId>(id);
        adj.inIds[in_at] = static_cast<EdgeId>(id);
        adj.outDeps[out_at] = Dep{edge.to, edge.delay, edge.distance};
        adj.inDeps[in_at] = Dep{edge.from, edge.delay, edge.distance};
    }
    adj.built.store(true, std::memory_order_release);
}

int
DepGraph::numRealEdges() const
{
    int count = 0;
    for (const auto& edge : edges_) {
        if (edge.kind != DepKind::kPseudo)
            ++count;
    }
    return count;
}

std::string
DepGraph::toString() const
{
    std::ostringstream out;
    out << "dep graph: " << numOps_ << " ops, " << numEdges() << " edges ("
        << numRealEdges() << " real)\n";
    auto vertex_name = [this](VertexId v) {
        if (v == start())
            return std::string("START");
        if (v == stop())
            return std::string("STOP");
        return std::to_string(v);
    };
    for (const auto& edge : edges_) {
        out << "  " << vertex_name(edge.from) << " -> "
            << vertex_name(edge.to) << "  [" << depKindName(edge.kind)
            << (edge.throughMemory ? "/mem" : "") << " delay "
            << edge.delay << " dist " << edge.distance << "]\n";
    }
    return out.str();
}

} // namespace ims::graph
