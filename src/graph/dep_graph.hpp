#ifndef IMS_GRAPH_DEP_GRAPH_HPP
#define IMS_GRAPH_DEP_GRAPH_HPP

#include <string>
#include <vector>

namespace ims::graph {

/** Vertex index inside a DepGraph (real ops first, then START, STOP). */
using VertexId = int;
/** Edge index inside a DepGraph. */
using EdgeId = int;

/**
 * Dependence classification per §2.2 / Table 1 of the paper. Memory
 * dependences reuse the same three data-dependence kinds; `kControl` covers
 * predicate-based control dependence after IF-conversion, and `kPseudo`
 * marks the START/STOP bookkeeping edges.
 */
enum class DepKind
{
    kFlow,
    kAnti,
    kOutput,
    kControl,
    kPseudo,
};

/** Name of a DepKind ("flow", "anti", ...). */
std::string depKindName(DepKind kind);

/**
 * A dependence edge: the successor may not start earlier than
 * `delay` cycles after the predecessor starts, where the two operations
 * are `distance` iterations apart (§2.2: "the distance of a dependence is
 * the number of iterations separating the two operations involved").
 *
 * Under an initiation interval II the scheduling constraint is
 *   SchedTime(to) >= SchedTime(from) + delay - II * distance.
 */
struct DepEdge
{
    VertexId from = 0;
    VertexId to = 0;
    DepKind kind = DepKind::kFlow;
    int distance = 0;
    int delay = 0;
    /** True when the dependence is carried through memory. */
    bool throughMemory = false;
};

/**
 * The dependence graph for a loop body, including the START and STOP
 * pseudo-operations that §3.1 adds ("START and STOP are made to be the
 * predecessor and successor, respectively, of all the other operations").
 *
 * Vertices 0..numOps-1 correspond to loop operations by id; vertex
 * `start()` is START and `stop()` is STOP.
 */
class DepGraph
{
  public:
    /** Create a graph over `num_ops` real operations (plus START/STOP). */
    explicit DepGraph(int num_ops);

    int numOps() const { return numOps_; }
    int numVertices() const { return numOps_ + 2; }
    VertexId start() const { return numOps_; }
    VertexId stop() const { return numOps_ + 1; }

    bool
    isPseudo(VertexId v) const
    {
        return v >= numOps_;
    }

    /** Append an edge; returns its id. */
    EdgeId addEdge(DepEdge edge);

    const std::vector<DepEdge>& edges() const { return edges_; }
    const DepEdge& edge(EdgeId id) const { return edges_[id]; }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Ids of edges leaving `v`. */
    const std::vector<EdgeId>& outEdges(VertexId v) const { return out_[v]; }

    /** Ids of edges entering `v`. */
    const std::vector<EdgeId>& inEdges(VertexId v) const { return in_[v]; }

    /**
     * Number of non-pseudo edges (the paper's E in the complexity study,
     * which is measured on the loop's dependence graph proper).
     */
    int numRealEdges() const;

    /** Multi-line dump for debugging. */
    std::string toString() const;

  private:
    int numOps_;
    std::vector<DepEdge> edges_;
    std::vector<std::vector<EdgeId>> out_;
    std::vector<std::vector<EdgeId>> in_;
};

} // namespace ims::graph

#endif // IMS_GRAPH_DEP_GRAPH_HPP
