#ifndef IMS_GRAPH_DEP_GRAPH_HPP
#define IMS_GRAPH_DEP_GRAPH_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace ims::graph {

/** Vertex index inside a DepGraph (real ops first, then START, STOP). */
using VertexId = int;
/** Edge index inside a DepGraph. */
using EdgeId = int;

/**
 * Dependence classification per §2.2 / Table 1 of the paper. Memory
 * dependences reuse the same three data-dependence kinds; `kControl` covers
 * predicate-based control dependence after IF-conversion, and `kPseudo`
 * marks the START/STOP bookkeeping edges.
 */
enum class DepKind
{
    kFlow,
    kAnti,
    kOutput,
    kControl,
    kPseudo,
};

/** Name of a DepKind ("flow", "anti", ...). */
std::string depKindName(DepKind kind);

/**
 * A dependence edge: the successor may not start earlier than
 * `delay` cycles after the predecessor starts, where the two operations
 * are `distance` iterations apart (§2.2: "the distance of a dependence is
 * the number of iterations separating the two operations involved").
 *
 * Under an initiation interval II the scheduling constraint is
 *   SchedTime(to) >= SchedTime(from) + delay - II * distance.
 */
struct DepEdge
{
    VertexId from = 0;
    VertexId to = 0;
    DepKind kind = DepKind::kFlow;
    int distance = 0;
    int delay = 0;
    /** True when the dependence is carried through memory. */
    bool throughMemory = false;
};

/**
 * Compact adjacency record for the scheduler hot paths: the neighbor
 * plus the two edge fields the scheduling constraint needs, packed into
 * 12 bytes so one cache line holds five deps. For an out-dep `other` is
 * the edge's head, for an in-dep its tail.
 */
struct Dep
{
    VertexId other = 0;
    std::int32_t delay = 0;
    std::int32_t distance = 0;
};

/**
 * The dependence graph for a loop body, including the START and STOP
 * pseudo-operations that §3.1 adds ("START and STOP are made to be the
 * predecessor and successor, respectively, of all the other operations").
 *
 * Vertices 0..numOps-1 correspond to loop operations by id; vertex
 * `start()` is START and `stop()` is STOP.
 *
 * Adjacency is stored in CSR (compressed sparse row) form: one flat
 * edge-id array per direction plus per-vertex offsets, and a parallel
 * flat array of `Dep` records so the schedulers' inner loops walk
 * contiguous 12-byte entries instead of chasing per-vertex vectors into
 * the edge table. The CSR buffers are built lazily on first query and
 * invalidated by addEdge; the build is guarded by double-checked locking
 * so concurrent readers (the racing II search) are safe, while graph
 * *construction* remains single-threaded as before.
 */
class DepGraph
{
  public:
    /** Create a graph over `num_ops` real operations (plus START/STOP). */
    explicit DepGraph(int num_ops);

    DepGraph(DepGraph&&) noexcept = default;
    DepGraph& operator=(DepGraph&&) noexcept = default;
    /** Copies duplicate the edge list only; the CSR view is a cache and
        the copy rebuilds its own on first query. */
    DepGraph(const DepGraph& other);
    DepGraph& operator=(const DepGraph& other);

    int numOps() const { return numOps_; }
    int numVertices() const { return numOps_ + 2; }
    VertexId start() const { return numOps_; }
    VertexId stop() const { return numOps_ + 1; }

    bool
    isPseudo(VertexId v) const
    {
        return v >= numOps_;
    }

    /** Append an edge; returns its id. Not safe against concurrent
        queries — build the graph before sharing it across workers. */
    EdgeId addEdge(DepEdge edge);

    const std::vector<DepEdge>& edges() const { return edges_; }
    const DepEdge& edge(EdgeId id) const { return edges_[id]; }
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /** Ids of edges leaving `v`, in insertion order. */
    std::span<const EdgeId>
    outEdges(VertexId v) const
    {
        const Adjacency& adj = adjacency();
        return {adj.outIds.data() + adj.outOffsets[v],
                adj.outIds.data() + adj.outOffsets[v + 1]};
    }

    /** Ids of edges entering `v`, in insertion order. */
    std::span<const EdgeId>
    inEdges(VertexId v) const
    {
        const Adjacency& adj = adjacency();
        return {adj.inIds.data() + adj.inOffsets[v],
                adj.inIds.data() + adj.inOffsets[v + 1]};
    }

    /** Compact records of the edges leaving `v`, aligned with outEdges:
        outDeps(v)[i].other == edge(outEdges(v)[i]).to. */
    std::span<const Dep>
    outDeps(VertexId v) const
    {
        const Adjacency& adj = adjacency();
        return {adj.outDeps.data() + adj.outOffsets[v],
                adj.outDeps.data() + adj.outOffsets[v + 1]};
    }

    /** Compact records of the edges entering `v`, aligned with inEdges:
        inDeps(v)[i].other == edge(inEdges(v)[i]).from. */
    std::span<const Dep>
    inDeps(VertexId v) const
    {
        const Adjacency& adj = adjacency();
        return {adj.inDeps.data() + adj.inOffsets[v],
                adj.inDeps.data() + adj.inOffsets[v + 1]};
    }

    /**
     * Number of non-pseudo edges (the paper's E in the complexity study,
     * which is measured on the loop's dependence graph proper).
     */
    int numRealEdges() const;

    /** Multi-line dump for debugging. */
    std::string toString() const;

  private:
    /**
     * The lazily-built CSR view. Offsets have numVertices()+1 entries;
     * vertex v's slice of the flat arrays is [offsets[v], offsets[v+1]).
     * Held behind a unique_ptr so the graph stays movable (the struct
     * carries a mutex) and so a build never reallocates buffers another
     * thread may be reading: buffers are only written under the mutex
     * *before* `built` is published with release ordering.
     */
    struct Adjacency
    {
        std::atomic<bool> built{false};
        std::mutex buildMutex;
        std::vector<std::int32_t> outOffsets;
        std::vector<std::int32_t> inOffsets;
        std::vector<EdgeId> outIds;
        std::vector<EdgeId> inIds;
        std::vector<Dep> outDeps;
        std::vector<Dep> inDeps;
    };

    const Adjacency&
    adjacency() const
    {
        if (!adj_->built.load(std::memory_order_acquire))
            buildAdjacency();
        return *adj_;
    }

    void buildAdjacency() const;

    int numOps_;
    std::vector<DepEdge> edges_;
    mutable std::unique_ptr<Adjacency> adj_;
};

} // namespace ims::graph

#endif // IMS_GRAPH_DEP_GRAPH_HPP
