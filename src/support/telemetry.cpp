#include "support/telemetry.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <functional>
#include <limits>

#include "support/error.hpp"
#include "support/table.hpp"

namespace ims::support {

namespace {

constexpr std::array<const char*, kNumPhases> kPhaseNames = {
    "graph_build", "mii_bounds", "ii_attempt", "list_schedule",
    "codegen",     "lifetimes",  "regalloc",   "verify",
};

/** Name <-> member map keeping the JSON schema and Counters in lockstep. */
struct CounterField
{
    const char* name;
    std::uint64_t Counters::* field;
};

constexpr std::array<CounterField, 12> kCounterFields = {{
    {"scc_edge_visits", &Counters::sccEdgeVisits},
    {"res_mii_inspections", &Counters::resMiiInspections},
    {"min_dist_inner_steps", &Counters::minDistInnerSteps},
    {"min_dist_invocations", &Counters::minDistInvocations},
    {"height_r_inner_steps", &Counters::heightRInnerSteps},
    {"estart_predecessor_visits", &Counters::estartPredecessorVisits},
    {"estart_incremental_hits", &Counters::estartIncrementalHits},
    {"find_time_slot_probes", &Counters::findTimeSlotProbes},
    {"schedule_steps", &Counters::scheduleSteps},
    {"unschedule_steps", &Counters::unscheduleSteps},
    {"mrt_mask_probes", &Counters::mrtMaskProbes},
    {"mrt_slot_scans", &Counters::mrtSlotScans},
}};

/**
 * Round-trippable double for JSON. JSON has no NaN/Infinity literals, so
 * non-finite values must never reach the printf path (%.17g would emit
 * bare "nan"/"inf" and corrupt the document): NaN becomes null (an absent
 * measurement) and infinities clamp to +/-DBL_MAX. parseNumber() maps
 * null back to a quiet NaN, so emit/parse/emit is stable.
 */
std::string
formatJsonDouble(double value)
{
    if (std::isnan(value))
        return "null";
    if (std::isinf(value))
        value = std::copysign(std::numeric_limits<double>::max(), value);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

void
appendJsonString(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Minimal recursive-descent parser for the subset of JSON the telemetry
 * schema uses (objects, arrays, strings, numbers, booleans). Kept local to
 * this file; the library has no general JSON dependency.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    /** Parse one value and require end of input. */
    void
    parseDocument(const std::function<void(JsonParser&)>& object_body)
    {
        skipSpace();
        parseObject(object_body);
        skipSpace();
        check(pos_ == text_.size(), "trailing characters");
    }

    /** At an object: calls `body` once per key (cursor on the value). */
    void
    parseObject(const std::function<void(JsonParser&)>& body)
    {
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        while (true) {
            skipSpace();
            key_ = parseString();
            skipSpace();
            expect(':');
            skipSpace();
            body(*this);
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    /** At an array: calls `element` once per element. */
    void
    parseArray(const std::function<void(JsonParser&)>& element)
    {
        expect('[');
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        while (true) {
            skipSpace();
            element(*this);
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    /** Key of the object entry currently being parsed. */
    const std::string& key() const { return key_; }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            check(pos_ < text_.size(), "unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                check(pos_ < text_.size(), "unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    check(pos_ + 4 <= text_.size(), "bad \\u escape");
                    const int code =
                        std::stoi(text_.substr(pos_, 4), nullptr, 16);
                    pos_ += 4;
                    check(code < 0x80, "non-ASCII \\u escape unsupported");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        // formatJsonDouble emits null for NaN; read it back as one.
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return std::numeric_limits<double>::quiet_NaN();
        }
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        check(pos_ > start, "expected number");
        // strtod, not std::stod: stod throws out_of_range on denormal
        // values instead of returning the rounded result.
        const std::string literal = text_.substr(start, pos_ - start);
        char* end = nullptr;
        const double value = std::strtod(literal.c_str(), &end);
        check(end == literal.c_str() + literal.size(), "expected number");
        return value;
    }

    bool
    parseBool()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return false;
        }
        fail("expected boolean");
    }

    /** Skip any single value (unknown keys stay forward-compatible). */
    void
    skipValue()
    {
        skipSpace();
        const char c = peek();
        if (c == '{')
            parseObject([](JsonParser& p) { p.skipValue(); });
        else if (c == '[')
            parseArray([](JsonParser& p) { p.skipValue(); });
        else if (c == '"')
            parseString();
        else if (c == 't' || c == 'f')
            parseBool();
        else
            parseNumber();
    }

  private:
    char
    peek() const
    {
        check(pos_ < text_.size(), "unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        check(pos_ < text_.size() && text_[pos_] == c,
              std::string("expected '") + c + "'");
        ++pos_;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    static void
    check(bool condition, const std::string& message)
    {
        if (!condition)
            fail(message);
    }

    [[noreturn]] static void
    fail(const std::string& message)
    {
        throw Error("telemetry JSON: " + message);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string key_;
};

} // namespace

const char*
phaseName(Phase phase)
{
    return kPhaseNames[static_cast<int>(phase)];
}

std::optional<Phase>
phaseByName(std::string_view name)
{
    for (int i = 0; i < kNumPhases; ++i) {
        if (name == kPhaseNames[i])
            return static_cast<Phase>(i);
    }
    return std::nullopt;
}

PhaseTimer::PhaseTimer(TelemetrySink* sink, Phase phase, int detail)
    : sink_(sink)
{
    sample_.phase = phase;
    sample_.detail = detail;
    if (sink_ != nullptr)
        start_ = std::chrono::steady_clock::now();
}

PhaseTimer::~PhaseTimer()
{
    if (sink_ == nullptr)
        return;
    sample_.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    sink_->onPhase(sample_);
}

double
PipelineTelemetry::phaseSeconds(Phase phase) const
{
    double total = 0.0;
    for (const auto& sample : phases) {
        if (sample.phase == phase)
            total += sample.seconds;
    }
    return total;
}

int
PipelineTelemetry::phaseCalls(Phase phase) const
{
    int calls = 0;
    for (const auto& sample : phases) {
        if (sample.phase == phase)
            ++calls;
    }
    return calls;
}

std::string
PipelineTelemetry::toJson() const
{
    std::string out = "{";
    out += "\"schema\":\"ims.telemetry.v1\",";
    out += "\"loop\":";
    appendJsonString(out, loop);
    out += ",\"ops\":" + std::to_string(ops);
    out += ",\"succeeded\":" + std::string(succeeded ? "true" : "false");
    out += ",\"res_mii\":" + std::to_string(resMii);
    out += ",\"mii\":" + std::to_string(mii);
    out += ",\"ii\":" + std::to_string(ii);
    out += ",\"attempts\":" + std::to_string(attempts);
    out += ",\"schedule_length\":" + std::to_string(scheduleLength);
    out += ",\"budget\":" + std::to_string(budget);
    out += ",\"steps_total\":" + std::to_string(stepsTotal);
    out += ",\"backtracks\":" + std::to_string(backtracks);
    out += ",\"scheduler\":";
    appendJsonString(out, scheduler);
    out += ",\"ii_strategy\":";
    appendJsonString(out, iiStrategy);
    out += ",\"ii_workers\":" + std::to_string(iiWorkers);
    out += ",\"ii_attempts_started\":" + std::to_string(iiAttemptsStarted);
    out += ",\"ii_attempts_cancelled\":" +
           std::to_string(iiAttemptsCancelled);
    out += ",\"ii_attempts_wasted\":" + std::to_string(iiAttemptsWasted);
    out += ",\"ii_attempts_proven_infeasible\":" +
           std::to_string(iiAttemptsProvenInfeasible);
    out += ",\"ii_skipped\":" + std::to_string(iiSkipped);
    out += ",\"ii_search_wall_seconds\":" +
           formatJsonDouble(iiSearchWallSeconds);
    out += ",\"ii_search_cpu_seconds\":" +
           formatJsonDouble(iiSearchCpuSeconds);
    out += ",\"wall_seconds\":" + formatJsonDouble(wallSeconds);
    out += ",\"phases\":[";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const auto& sample = phases[i];
        if (i > 0)
            out += ',';
        out += "{\"name\":\"";
        out += phaseName(sample.phase);
        out += "\",\"detail\":" + std::to_string(sample.detail);
        out += ",\"seconds\":" + formatJsonDouble(sample.seconds);
        out += ",\"ok\":" + std::string(sample.succeeded ? "true" : "false");
        out += '}';
    }
    out += "],\"counters\":{";
    for (std::size_t i = 0; i < kCounterFields.size(); ++i) {
        if (i > 0)
            out += ',';
        out += '"';
        out += kCounterFields[i].name;
        out += "\":" + std::to_string(counters.*kCounterFields[i].field);
    }
    out += "}}";
    return out;
}

PipelineTelemetry
parseTelemetryJson(const std::string& json)
{
    PipelineTelemetry t;
    JsonParser parser(json);
    parser.parseDocument([&t](JsonParser& p) {
        const std::string& key = p.key();
        if (key == "schema") {
            const std::string schema = p.parseString();
            if (schema != "ims.telemetry.v1")
                throw Error("telemetry JSON: unknown schema '" + schema +
                            "'");
        } else if (key == "loop") {
            t.loop = p.parseString();
        } else if (key == "ops") {
            t.ops = static_cast<int>(p.parseNumber());
        } else if (key == "succeeded") {
            t.succeeded = p.parseBool();
        } else if (key == "res_mii") {
            t.resMii = static_cast<int>(p.parseNumber());
        } else if (key == "mii") {
            t.mii = static_cast<int>(p.parseNumber());
        } else if (key == "ii") {
            t.ii = static_cast<int>(p.parseNumber());
        } else if (key == "attempts") {
            t.attempts = static_cast<int>(p.parseNumber());
        } else if (key == "schedule_length") {
            t.scheduleLength = static_cast<int>(p.parseNumber());
        } else if (key == "budget") {
            t.budget = static_cast<std::int64_t>(p.parseNumber());
        } else if (key == "steps_total") {
            t.stepsTotal = static_cast<std::int64_t>(p.parseNumber());
        } else if (key == "backtracks") {
            t.backtracks = static_cast<std::int64_t>(p.parseNumber());
        } else if (key == "scheduler") {
            t.scheduler = p.parseString();
        } else if (key == "ii_strategy") {
            t.iiStrategy = p.parseString();
        } else if (key == "ii_workers") {
            t.iiWorkers = static_cast<int>(p.parseNumber());
        } else if (key == "ii_attempts_started") {
            t.iiAttemptsStarted = static_cast<int>(p.parseNumber());
        } else if (key == "ii_attempts_cancelled") {
            t.iiAttemptsCancelled = static_cast<int>(p.parseNumber());
        } else if (key == "ii_attempts_wasted") {
            t.iiAttemptsWasted = static_cast<int>(p.parseNumber());
        } else if (key == "ii_attempts_proven_infeasible") {
            t.iiAttemptsProvenInfeasible = static_cast<int>(p.parseNumber());
        } else if (key == "ii_skipped") {
            t.iiSkipped = static_cast<int>(p.parseNumber());
        } else if (key == "ii_search_wall_seconds") {
            t.iiSearchWallSeconds = p.parseNumber();
        } else if (key == "ii_search_cpu_seconds") {
            t.iiSearchCpuSeconds = p.parseNumber();
        } else if (key == "wall_seconds") {
            t.wallSeconds = p.parseNumber();
        } else if (key == "phases") {
            p.parseArray([&t](JsonParser& q) {
                PhaseSample sample;
                q.parseObject([&sample](JsonParser& r) {
                    const std::string& field = r.key();
                    if (field == "name") {
                        const std::string name = r.parseString();
                        const auto phase = phaseByName(name);
                        if (!phase)
                            throw Error("telemetry JSON: unknown phase '" +
                                        name + "'");
                        sample.phase = *phase;
                    } else if (field == "detail") {
                        sample.detail = static_cast<int>(r.parseNumber());
                    } else if (field == "seconds") {
                        sample.seconds = r.parseNumber();
                    } else if (field == "ok") {
                        sample.succeeded = r.parseBool();
                    } else {
                        r.skipValue();
                    }
                });
                t.phases.push_back(sample);
            });
        } else if (key == "counters") {
            p.parseObject([&t](JsonParser& q) {
                for (const auto& field : kCounterFields) {
                    if (q.key() == field.name) {
                        t.counters.*field.field =
                            static_cast<std::uint64_t>(q.parseNumber());
                        return;
                    }
                }
                q.skipValue();
            });
        } else {
            p.skipValue();
        }
    });
    return t;
}

TextTable
telemetryTable(const std::vector<PipelineTelemetry>& records)
{
    TextTable table("pipeline telemetry");
    table.addHeader({"loop", "ops", "MII", "II", "att", "steps", "backtr",
                     "graph ms", "mii ms", "sched ms", "codegen ms",
                     "regalloc ms", "total ms"});
    const auto ms = [](double seconds) {
        return formatDouble(seconds * 1e3, 3);
    };
    for (const auto& t : records) {
        table.addRow({t.loop, std::to_string(t.ops), std::to_string(t.mii),
                      std::to_string(t.ii), std::to_string(t.attempts),
                      std::to_string(t.stepsTotal),
                      std::to_string(t.backtracks),
                      ms(t.phaseSeconds(Phase::kGraphBuild)),
                      ms(t.phaseSeconds(Phase::kMiiBounds)),
                      ms(t.phaseSeconds(Phase::kIiAttempt) +
                         t.phaseSeconds(Phase::kListSchedule)),
                      ms(t.phaseSeconds(Phase::kCodegen) +
                         t.phaseSeconds(Phase::kLifetimes)),
                      ms(t.phaseSeconds(Phase::kRegAlloc)),
                      ms(t.wallSeconds)});
    }
    return table;
}

void
TelemetryRecorder::onPhase(const PhaseSample& sample)
{
    record_.phases.push_back(sample);
}

void
TelemetryRecorder::onCounters(const Counters& delta)
{
    record_.counters += delta;
}

} // namespace ims::support
