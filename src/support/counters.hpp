#ifndef IMS_SUPPORT_COUNTERS_HPP
#define IMS_SUPPORT_COUNTERS_HPP

#include <cstdint>

namespace ims::support {

/**
 * Instrumentation counters for the paper's computational-complexity study
 * (§4.4, Table 4). Each field counts executions of the innermost loop of
 * one sub-activity; the Table 4 bench fits these against the loop size N.
 *
 * All algorithms accept an optional Counters*; passing nullptr disables
 * instrumentation at negligible cost.
 */
struct Counters
{
    /** Inner steps of SCC identification (edge visits). */
    std::uint64_t sccEdgeVisits = 0;
    /** Resource-usage inspections during the ResMII bin-packing. */
    std::uint64_t resMiiInspections = 0;
    /** Innermost (k,i,j) iterations of ComputeMinDist. */
    std::uint64_t minDistInnerSteps = 0;
    /** Number of times ComputeMinDist was invoked. */
    std::uint64_t minDistInvocations = 0;
    /** Innermost relaxation steps of the HeightR computation. */
    std::uint64_t heightRInnerSteps = 0;
    /** Predecessor examinations while computing Estart from scratch. */
    std::uint64_t estartPredecessorVisits = 0;
    /** Estart queries answered from the incremental per-op cache without
        rescanning any in-edge (see sched::EstartTracker). */
    std::uint64_t estartIncrementalHits = 0;
    /** Time slots examined by FindTimeSlot. */
    std::uint64_t findTimeSlotProbes = 0;
    /** Operation scheduling steps performed (the paper's budget unit). */
    std::uint64_t scheduleSteps = 0;
    /** Operations displaced from the schedule. */
    std::uint64_t unscheduleSteps = 0;
    /** Single-time bitmask conflict tests against the MRT. */
    std::uint64_t mrtMaskProbes = 0;
    /** Word-parallel whole-window slot scans over the MRT. */
    std::uint64_t mrtSlotScans = 0;

    Counters&
    operator+=(const Counters& other)
    {
        sccEdgeVisits += other.sccEdgeVisits;
        resMiiInspections += other.resMiiInspections;
        minDistInnerSteps += other.minDistInnerSteps;
        minDistInvocations += other.minDistInvocations;
        heightRInnerSteps += other.heightRInnerSteps;
        estartPredecessorVisits += other.estartPredecessorVisits;
        estartIncrementalHits += other.estartIncrementalHits;
        findTimeSlotProbes += other.findTimeSlotProbes;
        scheduleSteps += other.scheduleSteps;
        unscheduleSteps += other.unscheduleSteps;
        mrtMaskProbes += other.mrtMaskProbes;
        mrtSlotScans += other.mrtSlotScans;
        return *this;
    }
};

/** Increment helper tolerating a null counters pointer. */
inline void
bump(Counters* counters, std::uint64_t Counters::* field,
     std::uint64_t amount = 1)
{
    if (counters != nullptr)
        counters->*field += amount;
}

} // namespace ims::support

#endif // IMS_SUPPORT_COUNTERS_HPP
