#include "support/error.hpp"

namespace ims::support {

void
check(bool condition, const std::string& message)
{
    if (!condition)
        throw Error(message);
}

} // namespace ims::support
