#ifndef IMS_SUPPORT_TABLE_HPP
#define IMS_SUPPORT_TABLE_HPP

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ims::support {

/**
 * Minimal fixed-column text table used by the benchmark harnesses to print
 * paper-style tables (Table 3, Table 4, Figure 6 series) to stdout.
 *
 * Columns are sized to their widest cell; the first row added with
 * `addHeader` is separated from the body by a rule.
 */
class TextTable
{
  public:
    /** Create a table titled `title` (printed above the table). */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void addHeader(std::vector<std::string> cells);

    /** Append a body row. */
    void addRow(std::vector<std::string> cells);

    /** Render to `out` with column alignment and rules. */
    void print(std::ostream& out) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format `value` with `precision` digits after the decimal point. */
std::string formatDouble(double value, int precision = 2);

} // namespace ims::support

#endif // IMS_SUPPORT_TABLE_HPP
