#ifndef IMS_SUPPORT_HASH_HPP
#define IMS_SUPPORT_HASH_HPP

#include <cstdint>
#include <string_view>

namespace ims::support {

/** FNV-1a 64-bit offset basis / prime (the classic constants). */
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/**
 * Incremental FNV-1a 64-bit hasher. Deterministic across platforms and
 * runs (no pointer or seed salting), which is what content-addressed
 * keys require: the same canonical text must map to the same key in
 * every process, including across a cache save/restart/load cycle.
 */
class Fnv1a
{
  public:
    Fnv1a&
    update(std::string_view text)
    {
        for (const char c : text) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= kFnvPrime;
        }
        return *this;
    }

    Fnv1a&
    update(std::uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte) {
            hash_ ^= (value >> (8 * byte)) & 0xffU;
            hash_ *= kFnvPrime;
        }
        return *this;
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = kFnvOffsetBasis;
};

/** One-shot FNV-1a of a string. */
inline std::uint64_t
fnv1a(std::string_view text)
{
    return Fnv1a().update(text).digest();
}

} // namespace ims::support

#endif // IMS_SUPPORT_HASH_HPP
