#ifndef IMS_SUPPORT_STATS_HPP
#define IMS_SUPPORT_STATS_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace ims::support {

/**
 * Distribution summary in the shape of the paper's Table 3: the minimum
 * possible value of a measurement, how often that minimum was attained, and
 * the median / mean / maximum of the observed sample.
 */
struct DistributionStats
{
    /** The theoretical minimum of the measurement (supplied by the caller). */
    double minPossible = 0.0;
    /** Fraction of samples exactly at `minPossible` (within `kEps`). */
    double freqOfMinPossible = 0.0;
    /** Sample median (midpoint average for even-sized samples). */
    double median = 0.0;
    /** Sample mean. */
    double mean = 0.0;
    /** Largest observed value. */
    double maximum = 0.0;
    /** Smallest observed value (not in the paper's table; kept for tests). */
    double minimumObserved = 0.0;
    /** Number of samples summarised. */
    std::size_t count = 0;
};

/** Tolerance used when counting samples equal to the minimum possible. */
inline constexpr double kEps = 1e-9;

/**
 * Summarise `samples` against the theoretical minimum `min_possible`.
 *
 * @param samples      observed values; must be non-empty.
 * @param min_possible the smallest value the measurement can take.
 */
DistributionStats summarize(const std::vector<double>& samples,
                            double min_possible);

/** Sample mean of a non-empty vector. */
double mean(const std::vector<double>& samples);

/** Sample median of a non-empty vector (input left unmodified). */
double median(std::vector<double> samples);

/**
 * Fraction of samples for which `samples[i] <= threshold + kEps`.
 * Used for the paper's in-text cumulative statements ("90% is <= 20").
 */
double fractionAtMost(const std::vector<double>& samples, double threshold);

} // namespace ims::support

#endif // IMS_SUPPORT_STATS_HPP
