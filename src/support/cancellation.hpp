#ifndef IMS_SUPPORT_CANCELLATION_HPP
#define IMS_SUPPORT_CANCELLATION_HPP

#include <atomic>
#include <cstdint>

namespace ims::support {

/**
 * Cooperative cancellation for a race between keyed speculative tasks.
 *
 * The token holds a monotonically decreasing *ceiling*; a task whose key
 * lies strictly above the ceiling is cancelled. The intended protocol
 * (used by the racing II search, sched/ii_search.hpp) is:
 *
 *  - every concurrent task has an integer key (its candidate II);
 *  - when the task with key `k` completes successfully, it calls
 *    `lowerCeiling(k)` — tasks with keys above `k` are now pointless,
 *    tasks at or below `k` keep running (one of them may still beat `k`);
 *  - long-running tasks poll `cancelled(my_key)` at their natural
 *    iteration boundary and abandon work when it turns true.
 *
 * Because the ceiling only ever decreases, `cancelled(k)` is monotonic in
 * time for a fixed `k`: once cancelled, always cancelled. All operations
 * are lock-free; `cancelled` is a single relaxed atomic load, cheap
 * enough for a per-iteration check in a scheduler's budget loop.
 */
class CancellationToken
{
  public:
    /** Lower the ceiling to `key` (no-op if already at or below it). */
    void
    lowerCeiling(std::int64_t key) noexcept
    {
        std::int64_t current = ceiling_.load(std::memory_order_relaxed);
        while (key < current &&
               !ceiling_.compare_exchange_weak(current, key,
                                               std::memory_order_relaxed)) {
        }
    }

    /** Cancel every task regardless of key. */
    void
    cancelAll() noexcept
    {
        lowerCeiling(INT64_MIN);
    }

    /** True when the task with `key` should abandon its work. */
    bool
    cancelled(std::int64_t key) const noexcept
    {
        return key > ceiling_.load(std::memory_order_relaxed);
    }

    /** Current ceiling (INT64_MAX until the first lowerCeiling). */
    std::int64_t
    ceiling() const noexcept
    {
        return ceiling_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> ceiling_{INT64_MAX};
};

} // namespace ims::support

#endif // IMS_SUPPORT_CANCELLATION_HPP
