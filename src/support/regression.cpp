#include "support/regression.hpp"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ims::support {

namespace {

/** Solve the linear system `a`·x = `b` in place; returns x. */
std::vector<double>
solveDense(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        assert(std::abs(a[col][col]) > 1e-30 && "singular normal equations");
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row][col] / a[col][col];
            for (std::size_t k = col; k < n; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double sum = b[row];
        for (std::size_t k = row + 1; k < n; ++k)
            sum -= a[row][k] * x[k];
        x[row] = sum / a[row][row];
    }
    return x;
}

double
residualStdDev(const std::vector<double>& x, const std::vector<double>& y,
               const PolynomialFit& fit)
{
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = y[i] - fit.evaluate(x[i]);
        sum_sq += r * r;
    }
    return std::sqrt(sum_sq / static_cast<double>(x.size()));
}

} // namespace

double
PolynomialFit::evaluate(double x) const
{
    double result = 0.0;
    double power = 1.0;
    for (double c : coefficients) {
        result += c * power;
        power *= x;
    }
    return result;
}

std::string
PolynomialFit::toString(const std::string& variable) const
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(4);
    bool first = true;
    for (std::size_t k = coefficients.size(); k-- > 0;) {
        const double c = coefficients[k];
        if (!first)
            out << (c < 0 ? " - " : " + ");
        else if (c < 0)
            out << "-";
        out << std::abs(c);
        if (k == 1)
            out << variable;
        else if (k > 1)
            out << variable << "^" << k;
        first = false;
    }
    if (first)
        out << "0";
    return out.str();
}

PolynomialFit
fitPolynomial(const std::vector<double>& x, const std::vector<double>& y,
              std::size_t degree)
{
    assert(x.size() == y.size());
    assert(x.size() > degree);
    const std::size_t n = degree + 1;
    std::vector<std::vector<double>> normal(n, std::vector<double>(n, 0.0));
    std::vector<double> rhs(n, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        std::vector<double> powers(2 * n - 1, 1.0);
        for (std::size_t k = 1; k < powers.size(); ++k)
            powers[k] = powers[k - 1] * x[i];
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c)
                normal[r][c] += powers[r + c];
            rhs[r] += powers[r] * y[i];
        }
    }
    PolynomialFit fit;
    fit.coefficients = solveDense(std::move(normal), std::move(rhs));
    fit.residualStdDev = residualStdDev(x, y, fit);
    return fit;
}

PolynomialFit
fitLinear(const std::vector<double>& x, const std::vector<double>& y)
{
    return fitPolynomial(x, y, 1);
}

PolynomialFit
fitProportional(const std::vector<double>& x, const std::vector<double>& y)
{
    assert(x.size() == y.size());
    assert(!x.empty());
    double xy = 0.0;
    double xx = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        xy += x[i] * y[i];
        xx += x[i] * x[i];
    }
    assert(xx > 0.0);
    PolynomialFit fit;
    fit.coefficients = {0.0, xy / xx};
    fit.residualStdDev = residualStdDev(x, y, fit);
    return fit;
}

} // namespace ims::support
