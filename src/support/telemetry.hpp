#ifndef IMS_SUPPORT_TELEMETRY_HPP
#define IMS_SUPPORT_TELEMETRY_HPP

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/counters.hpp"

namespace ims::support {

class TextTable;

/**
 * The phases of one end-to-end pipelining run. Every phase is reported as
 * a timed PhaseSample by the layer that executes it (graph/, mii/, sched/,
 * codegen/, and the core pipeliner for verification), so a TelemetrySink
 * sees the whole run without the caller stitching timers together.
 */
enum class Phase
{
    kGraphBuild,
    kMiiBounds,
    kIiAttempt,
    kListSchedule,
    kCodegen,
    kLifetimes,
    kRegAlloc,
    kVerify,
};

inline constexpr int kNumPhases = 8;

/** Stable lowercase identifier, e.g. "graph_build" (used in JSON). */
const char* phaseName(Phase phase);

/** Inverse of phaseName; nullopt for unknown names. */
std::optional<Phase> phaseByName(std::string_view name);

/** One timed phase execution. */
struct PhaseSample
{
    Phase phase = Phase::kGraphBuild;
    /** Phase-specific detail: the candidate II for kIiAttempt, else -1. */
    int detail = -1;
    /** Wall time of the phase. */
    double seconds = 0.0;
    /** False for failed II attempts (budget exhausted / infeasible). */
    bool succeeded = true;
};

/**
 * Receiver for pipelining telemetry. The library reports through this
 * interface only; what happens to the events (accumulation, streaming,
 * export) is the sink's business.
 *
 * Sinks passed to the batch driver are used from worker threads; a sink
 * shared between requests must therefore be thread-safe. The per-loop
 * recorders the library creates internally are never shared.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    /** A phase finished (reported by PhaseTimer on scope exit). */
    virtual void onPhase(const PhaseSample& sample) = 0;

    /**
     * Monotonic counter increments, unified with support::Counters: the
     * same struct the low-level algorithms fill via their Counters*
     * out-params is delivered here as a delta at the end of a run.
     */
    virtual void onCounters(const Counters& delta) = 0;
};

/**
 * RAII phase timer: starts a steady clock on construction and reports a
 * PhaseSample to the sink on destruction. A null sink makes it a no-op, so
 * instrumented code needs no branching.
 */
class PhaseTimer
{
  public:
    PhaseTimer(TelemetrySink* sink, Phase phase, int detail = -1);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

    /** Mark the phase as failed (e.g. an II attempt that ran dry). */
    void setSucceeded(bool succeeded) { sample_.succeeded = succeeded; }

  private:
    TelemetrySink* sink_;
    PhaseSample sample_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Structured record of one pipelining run: the paper-level outcome
 * (achieved II vs its MII lower bound, attempts, budget consumption,
 * displacement counts) plus wall time per phase and the unified
 * instrumentation counters. Exportable as JSON (`toJson`) and re-parsable
 * (`parseTelemetryJson`) for downstream consumers; `telemetryTable`
 * renders a fleet of records as a support::TextTable.
 */
struct PipelineTelemetry
{
    /** Loop name. */
    std::string loop;
    /** Real operations in the loop body. */
    int ops = 0;
    /** True when a verified schedule (and artifacts) was produced. */
    bool succeeded = false;
    /** Resource-constrained lower bound. */
    int resMii = 0;
    /** MII = max(ResMII, RecMII). */
    int mii = 0;
    /** Achieved initiation interval (0 when the run failed early). */
    int ii = 0;
    /** Candidate IIs attempted. */
    int attempts = 0;
    /** Schedule length of one iteration. */
    int scheduleLength = 0;
    /** Per-attempt operation-scheduling-step budget (Figure 2). */
    std::int64_t budget = 0;
    /** Scheduling steps over all attempts, failed ones included. */
    std::int64_t stepsTotal = 0;
    /** Operations displaced (backtracking; Figure 5's unschedules). */
    std::int64_t backtracks = 0;
    /** Scheduling backend the run used ("iterative", "slack", "exact";
     *  "" when the run failed before scheduling). */
    std::string scheduler;
    /** II-search strategy the run used ("linear", "racing"; "" when the
     *  run failed before scheduling). */
    std::string iiStrategy;
    /** Workers the II search ran with (1 for linear). */
    int iiWorkers = 0;
    /**
     * Race observability: attempts actually launched / aborted via the
     * cancellation token / launched above the winning II. Unlike
     * `attempts` (the deterministic prefix), these depend on thread
     * timing and are NOT stable across runs.
     */
    int iiAttemptsStarted = 0;
    int iiAttemptsCancelled = 0;
    int iiAttemptsWasted = 0;
    /** Attempts in the deterministic prefix that PROVED no schedule
     *  exists at their II (exact backend; 0 for heuristic backends,
     *  whose failures are budget exhaustions, not proofs). Stable
     *  across runs and thread counts. */
    int iiAttemptsProvenInfeasible = 0;
    /** Candidate IIs the feedback search skipped after its probe proved
     *  them infeasible (no attempt ran, no budget billed). Stable across
     *  runs; 0 for the linear and racing strategies. */
    int iiSkipped = 0;
    /** Wall-clock vs summed per-attempt time of the II search — their
     *  ratio is the overlap the racing strategy achieved. */
    double iiSearchWallSeconds = 0.0;
    double iiSearchCpuSeconds = 0.0;
    /** End-to-end wall time of the run. */
    double wallSeconds = 0.0;
    /** Every reported phase, in execution order. */
    std::vector<PhaseSample> phases;
    /** Unified instrumentation counters (support::Counters). */
    Counters counters;

    /** Total wall time of all samples of `phase`. */
    double phaseSeconds(Phase phase) const;
    /** Number of samples of `phase`. */
    int phaseCalls(Phase phase) const;

    /** Export as a single JSON object (schema: docs/api.md). */
    std::string toJson() const;
};

/**
 * Parse a JSON object produced by PipelineTelemetry::toJson.
 * @throws support::Error on malformed input.
 */
PipelineTelemetry parseTelemetryJson(const std::string& json);

/** Render one row per record (II vs MII, attempts, phase times). */
TextTable telemetryTable(const std::vector<PipelineTelemetry>& records);

/**
 * The standard sink: accumulates phase samples and counter deltas into a
 * PipelineTelemetry record. Not thread-safe; use one per concurrent run.
 */
class TelemetryRecorder final : public TelemetrySink
{
  public:
    void onPhase(const PhaseSample& sample) override;
    void onCounters(const Counters& delta) override;

    PipelineTelemetry& record() { return record_; }
    const PipelineTelemetry& record() const { return record_; }

  private:
    PipelineTelemetry record_;
};

/**
 * Fan-out sink: forwards every event to up to two downstream sinks (either
 * may be null). Lets the pipeliner keep its internal recorder while the
 * caller observes the same stream.
 */
class TeeSink final : public TelemetrySink
{
  public:
    TeeSink(TelemetrySink* first, TelemetrySink* second)
        : first_(first), second_(second)
    {
    }

    void
    onPhase(const PhaseSample& sample) override
    {
        if (first_ != nullptr)
            first_->onPhase(sample);
        if (second_ != nullptr)
            second_->onPhase(sample);
    }

    void
    onCounters(const Counters& delta) override
    {
        if (first_ != nullptr)
            first_->onCounters(delta);
        if (second_ != nullptr)
            second_->onCounters(delta);
    }

  private:
    TelemetrySink* first_;
    TelemetrySink* second_;
};

} // namespace ims::support

#endif // IMS_SUPPORT_TELEMETRY_HPP
