#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace ims::support {

double
mean(const std::vector<double>& samples)
{
    assert(!samples.empty());
    const double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
    return sum / static_cast<double>(samples.size());
}

double
median(std::vector<double> samples)
{
    assert(!samples.empty());
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    if (n % 2 == 1)
        return samples[n / 2];
    return 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

double
fractionAtMost(const std::vector<double>& samples, double threshold)
{
    assert(!samples.empty());
    const auto below = std::count_if(
        samples.begin(), samples.end(),
        [threshold](double v) { return v <= threshold + kEps; });
    return static_cast<double>(below) / static_cast<double>(samples.size());
}

DistributionStats
summarize(const std::vector<double>& samples, double min_possible)
{
    assert(!samples.empty());
    DistributionStats stats;
    stats.minPossible = min_possible;
    stats.count = samples.size();
    stats.mean = mean(samples);
    stats.median = median(samples);
    stats.maximum = *std::max_element(samples.begin(), samples.end());
    stats.minimumObserved = *std::min_element(samples.begin(), samples.end());
    const auto at_min = std::count_if(
        samples.begin(), samples.end(),
        [min_possible](double v) { return std::abs(v - min_possible) <= kEps; });
    stats.freqOfMinPossible =
        static_cast<double>(at_min) / static_cast<double>(samples.size());
    return stats;
}

} // namespace ims::support
