#ifndef IMS_SUPPORT_RNG_HPP
#define IMS_SUPPORT_RNG_HPP

#include <cassert>
#include <cstdint>
#include <vector>

namespace ims::support {

/**
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Used by the workload generator so that the synthetic corpus is identical
 * across runs and platforms; std::mt19937 + distributions are avoided
 * because libstdc++ distribution implementations are not pinned.
 */
class Rng
{
  public:
    /** Seed the generator; distinct seeds give independent streams. */
    explicit Rng(std::uint64_t seed)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        assert(lo <= hi);
        const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<int>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniformReal()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with success probability `p`. */
    bool
    bernoulli(double p)
    {
        return uniformReal() < p;
    }

    /**
     * Pick an index in [0, weights.size()) with probability proportional to
     * weights[i]. Weights must be non-negative with a positive sum.
     */
    std::size_t
    weightedIndex(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights)
            total += w;
        assert(total > 0.0);
        double draw = uniformReal() * total;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            draw -= weights[i];
            if (draw < 0.0)
                return i;
        }
        return weights.size() - 1;
    }

  private:
    std::uint64_t state_[4];
};

} // namespace ims::support

#endif // IMS_SUPPORT_RNG_HPP
