#ifndef IMS_SUPPORT_ERROR_HPP
#define IMS_SUPPORT_ERROR_HPP

#include <stdexcept>
#include <string>
#include <utility>

namespace ims::support {

/**
 * Error raised for invalid user input (malformed IR text, inconsistent
 * machine descriptions, impossible scheduling requests).
 *
 * API-misuse conditions (violated preconditions inside the library) use
 * assertions / std::logic_error instead; Error is reserved for conditions a
 * correct program can hit with bad input, mirroring gem5's fatal()/panic()
 * distinction.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/**
 * An Error carrying a stable machine-readable failure code alongside the
 * human-readable message — the same code vocabulary the pipeliner's
 * Diagnostic.code and the fuzzing subsystem use ("sched.ii_exhausted",
 * "verify.<kind>", ...; see docs/FUZZING.md). Catch sites that surface
 * errors as structured diagnostics preserve the thrower's code instead of
 * synthesizing a generic "error.<phase>".
 */
class CodedError : public Error
{
  public:
    CodedError(std::string code, const std::string& message)
        : Error(message), code_(std::move(code))
    {
    }

    const std::string& code() const { return code_; }

  private:
    std::string code_;
};

/** Throw ims::support::Error with the given message if `condition` fails. */
void check(bool condition, const std::string& message);

} // namespace ims::support

#endif // IMS_SUPPORT_ERROR_HPP
