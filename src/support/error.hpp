#ifndef IMS_SUPPORT_ERROR_HPP
#define IMS_SUPPORT_ERROR_HPP

#include <stdexcept>
#include <string>

namespace ims::support {

/**
 * Error raised for invalid user input (malformed IR text, inconsistent
 * machine descriptions, impossible scheduling requests).
 *
 * API-misuse conditions (violated preconditions inside the library) use
 * assertions / std::logic_error instead; Error is reserved for conditions a
 * correct program can hit with bad input, mirroring gem5's fatal()/panic()
 * distinction.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/** Throw ims::support::Error with the given message if `condition` fails. */
void check(bool condition, const std::string& message);

} // namespace ims::support

#endif // IMS_SUPPORT_ERROR_HPP
