#ifndef IMS_SUPPORT_REGRESSION_HPP
#define IMS_SUPPORT_REGRESSION_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace ims::support {

/**
 * Result of a least-mean-squares polynomial fit y = sum_k coeff[k] * x^k.
 *
 * The paper (Table 4 and §4.4) characterises the empirical complexity of
 * each sub-activity by an LMS fit of an operation counter against the loop
 * size N (e.g. "3.0036N", "0.0587N^2 + 0.2001N + 0.5000"); this type carries
 * such fits plus the residual standard deviation the paper quotes for the
 * MinDist counter.
 */
struct PolynomialFit
{
    /** coeff[k] multiplies x^k; size is degree + 1. */
    std::vector<double> coefficients;
    /** Standard deviation of the residual error of the fit. */
    double residualStdDev = 0.0;

    /** Evaluate the fitted polynomial at `x`. */
    double evaluate(double x) const;

    /** Render as e.g. "0.0587N^2 + 0.2001N + 0.5000". */
    std::string toString(const std::string& variable = "N") const;
};

/**
 * Least-squares fit of a degree-`degree` polynomial through (x[i], y[i])
 * using normal equations with Gaussian elimination.
 *
 * @pre x.size() == y.size() and x.size() > degree.
 */
PolynomialFit fitPolynomial(const std::vector<double>& x,
                            const std::vector<double>& y,
                            std::size_t degree);

/** Convenience: linear fit y = a*x + b; returns fit with coefficients {b,a}. */
PolynomialFit fitLinear(const std::vector<double>& x,
                        const std::vector<double>& y);

/**
 * Fit y = a*x (no intercept), matching the paper's single-coefficient fits
 * such as "E = 3.0036N".
 */
PolynomialFit fitProportional(const std::vector<double>& x,
                              const std::vector<double>& y);

} // namespace ims::support

#endif // IMS_SUPPORT_REGRESSION_HPP
