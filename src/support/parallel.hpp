#ifndef IMS_SUPPORT_PARALLEL_HPP
#define IMS_SUPPORT_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ims::support {

/**
 * Resolve a worker-pool size with no per-batch bound: <= 0 means "use the
 * hardware concurrency", and the result is always >= 1 —
 * std::thread::hardware_concurrency() is allowed to return 0 ("not
 * computable") and a zero-thread pool would never make progress. This is
 * the single clamp shared by BatchPipeliner, the racing II search and the
 * schedule service's persistent worker queue.
 */
inline int
resolveWorkerThreads(int requested)
{
    if (requested > 0)
        return requested;
    return std::max(1,
                    static_cast<int>(std::thread::hardware_concurrency()));
}

/**
 * Resolve a thread-count request for a fixed batch: resolveWorkerThreads
 * further clamped to [1, work_items] so small workloads never spawn idle
 * threads.
 */
inline int
resolveThreads(int requested, std::size_t work_items)
{
    const int max_useful = std::max(1, static_cast<int>(work_items));
    return std::min(resolveWorkerThreads(requested), max_useful);
}

/**
 * Run `body(index)` for every index in [0, count) on up to `threads`
 * workers (already resolved via resolveThreads). Indices are handed out
 * by an atomic claim counter, so *which* worker runs an index is racy,
 * but results are deterministic whenever each body invocation reads only
 * shared immutable state and writes only its own pre-sized slot — the
 * contract both the batch pipeliner and the fuzz campaign driver follow
 * (verified under -fsanitize=thread, scripts/check_tsan.sh).
 *
 * `body` must not throw: workers run with no exception barrier, so an
 * escaping exception terminates the process. Catch inside the body and
 * record the failure in the slot instead.
 */
template <typename Body>
void
parallelFor(std::size_t count, int threads, const Body& body)
{
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&body, &next, count] {
            while (true) {
                const std::size_t index =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (index >= count)
                    return;
                body(index);
            }
        });
    }
    for (auto& worker : workers)
        worker.join();
}

/** Observability for workStealingFor (how often work migrated). */
struct WorkStealingStats
{
    /** Number of successful steal operations (range migrations). */
    std::uint64_t steals = 0;
};

/**
 * Run `body(index)` for every index in [0, count) on up to `threads`
 * workers (already resolved via resolveThreads), with work stealing:
 * each worker starts with a contiguous slice of the index range and,
 * when its own slice drains, steals the upper half of the largest-
 * remaining victim's slice. Compared to parallelFor's single shared
 * claim counter this keeps each worker walking consecutive indices
 * (cache- and NUMA-friendlier result writes) while still rebalancing
 * when per-item costs are skewed — the BatchPipeliner's situation,
 * where one 800-op loop can cost 50x a small one.
 *
 * Slices are guarded by one mutex per worker; a steal holds only the
 * victim's lock while detaching the range and only the thief's lock
 * while attaching it, so no two locks are ever held at once (no
 * lock-order deadlock) and every index runs exactly once. The mutex per
 * pop is deliberate: batch items cost milliseconds, so the lock is
 * noise, and the simple protocol is trivially ThreadSanitizer-clean
 * (scripts/check_tsan.sh runs the batch tests under TSan).
 *
 * Determinism contract is parallelFor's: body(i) must read only shared
 * immutable state and write only slot i; then results are bitwise
 * identical for every thread count. A worker that finds every slice
 * momentarily empty may exit while a just-detached range is still being
 * attached by its thief — work is never lost, the thief runs it.
 *
 * `body` must not throw. `stats`, when non-null, receives the number of
 * successful steals (not deterministic — it depends on timing).
 */
template <typename Body>
void
workStealingFor(std::size_t count, int threads, const Body& body,
                WorkStealingStats* stats = nullptr)
{
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    struct alignas(64) Slice
    {
        std::mutex mutex;
        std::size_t next = 0;
        std::size_t end = 0;
    };
    const int workers = std::min<std::size_t>(threads, count);
    std::unique_ptr<Slice[]> slices(new Slice[workers]);
    const std::size_t base = count / workers;
    const std::size_t extra = count % workers;
    std::size_t cursor = 0;
    for (int w = 0; w < workers; ++w) {
        slices[w].next = cursor;
        cursor += base + (static_cast<std::size_t>(w) < extra ? 1 : 0);
        slices[w].end = cursor;
    }

    std::atomic<std::uint64_t> steals{0};
    const auto worker_body = [&](int w) {
        constexpr std::size_t kNone = static_cast<std::size_t>(-1);
        Slice& own = slices[w];
        while (true) {
            // Pop the next index of the worker's own slice; run the body
            // outside the lock so thieves can carve the slice meanwhile.
            std::size_t index = kNone;
            {
                std::lock_guard<std::mutex> lock(own.mutex);
                if (own.next < own.end)
                    index = own.next++;
            }
            if (index != kNone) {
                body(index);
                continue;
            }
            // Own slice drained: steal the upper half of a victim's
            // remainder. Scanning from w+1 spreads thieves across
            // victims instead of mobbing worker 0.
            std::size_t stolen_begin = 0;
            std::size_t stolen_end = 0;
            for (int offset = 1; offset < workers; ++offset) {
                Slice& victim = slices[(w + offset) % workers];
                std::lock_guard<std::mutex> lock(victim.mutex);
                const std::size_t remaining = victim.end - victim.next;
                if (remaining == 0)
                    continue;
                const std::size_t take = (remaining + 1) / 2;
                stolen_begin = victim.end - take;
                stolen_end = victim.end;
                victim.end = stolen_begin;
                break;
            }
            if (stolen_begin == stolen_end)
                return; // every slice empty: done
            steals.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(own.mutex);
            own.next = stolen_begin;
            own.end = stolen_end;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(worker_body, w);
    for (auto& thread : pool)
        thread.join();
    if (stats != nullptr)
        stats->steals = steals.load(std::memory_order_relaxed);
}

} // namespace ims::support

#endif // IMS_SUPPORT_PARALLEL_HPP
