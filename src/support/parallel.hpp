#ifndef IMS_SUPPORT_PARALLEL_HPP
#define IMS_SUPPORT_PARALLEL_HPP

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace ims::support {

/**
 * Resolve a worker-pool size with no per-batch bound: <= 0 means "use the
 * hardware concurrency", and the result is always >= 1 —
 * std::thread::hardware_concurrency() is allowed to return 0 ("not
 * computable") and a zero-thread pool would never make progress. This is
 * the single clamp shared by BatchPipeliner, the racing II search and the
 * schedule service's persistent worker queue.
 */
inline int
resolveWorkerThreads(int requested)
{
    if (requested > 0)
        return requested;
    return std::max(1,
                    static_cast<int>(std::thread::hardware_concurrency()));
}

/**
 * Resolve a thread-count request for a fixed batch: resolveWorkerThreads
 * further clamped to [1, work_items] so small workloads never spawn idle
 * threads.
 */
inline int
resolveThreads(int requested, std::size_t work_items)
{
    const int max_useful = std::max(1, static_cast<int>(work_items));
    return std::min(resolveWorkerThreads(requested), max_useful);
}

/**
 * Run `body(index)` for every index in [0, count) on up to `threads`
 * workers (already resolved via resolveThreads). Indices are handed out
 * by an atomic claim counter, so *which* worker runs an index is racy,
 * but results are deterministic whenever each body invocation reads only
 * shared immutable state and writes only its own pre-sized slot — the
 * contract both the batch pipeliner and the fuzz campaign driver follow
 * (verified under -fsanitize=thread, scripts/check_tsan.sh).
 *
 * `body` must not throw: workers run with no exception barrier, so an
 * escaping exception terminates the process. Catch inside the body and
 * record the failure in the slot instead.
 */
template <typename Body>
void
parallelFor(std::size_t count, int threads, const Body& body)
{
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&body, &next, count] {
            while (true) {
                const std::size_t index =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (index >= count)
                    return;
                body(index);
            }
        });
    }
    for (auto& worker : workers)
        worker.join();
}

} // namespace ims::support

#endif // IMS_SUPPORT_PARALLEL_HPP
