#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ims::support {

void
TextTable::addHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& out) const
{
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto& row : rows_)
        widen(row);

    auto print_row = [&](const std::vector<std::string>& cells) {
        out << "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : "";
            out << " " << std::left << std::setw(static_cast<int>(widths[i]))
                << cell << " |";
        }
        out << "\n";
    };
    auto print_rule = [&]() {
        out << "+";
        for (std::size_t w : widths)
            out << std::string(w + 2, '-') << "+";
        out << "\n";
    };

    if (!title_.empty())
        out << "\n== " << title_ << " ==\n";
    print_rule();
    if (!header_.empty()) {
        print_row(header_);
        print_rule();
    }
    for (const auto& row : rows_)
        print_row(row);
    print_rule();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

} // namespace ims::support
