#include "sim/pipeline_simulator.hpp"

#include <algorithm>
#include <vector>

#include "sim/register_file.hpp"
#include "support/error.hpp"

namespace ims::sim {

namespace {

/** One dynamic operation instance awaiting execution. */
struct Instance
{
    long long issueTime = 0;
    int iteration = 0;
    ir::OpId op = -1;
    bool isStore = false;
};

} // namespace

PipelineResult
runPipelined(const ir::Loop& loop, const sched::ScheduleResult& schedule,
             const SimSpec& spec)
{
    loop.validate();
    support::check(spec.tripCount >= 0, "trip count must be non-negative");
    support::check(static_cast<int>(schedule.times.size()) == loop.size(),
                   "schedule does not match the loop");

    Memory memory(loop, spec.tripCount, spec.margin);
    for (const auto& [name, init] : spec.arrays) {
        for (ir::ArrayId array = 0; array < loop.numArrays(); ++array) {
            if (loop.arrays()[array].name == name)
                memory.init(array, init.first, init.second);
        }
    }
    if (spec.tripCount == 0)
        return PipelineResult{SimResult{std::move(memory), {}, 0}, 0};
    RegisterFile registers(loop, spec, spec.tripCount);

    // Enumerate all dynamic instances and order them by issue cycle.
    // Within a cycle, loads execute before stores (stores commit at the
    // end of their issue cycle); other operations are order-independent
    // because flow latencies are >= 1.
    std::vector<Instance> instances;
    instances.reserve(static_cast<std::size_t>(spec.tripCount) *
                      loop.size());
    for (int iter = 0; iter < spec.tripCount; ++iter) {
        for (const auto& op : loop.operations()) {
            Instance instance;
            instance.issueTime =
                static_cast<long long>(iter) * schedule.ii +
                schedule.times[op.id];
            instance.iteration = iter;
            instance.op = op.id;
            instance.isStore = op.isStore();
            instances.push_back(instance);
        }
    }
    std::sort(instances.begin(), instances.end(),
              [](const Instance& a, const Instance& b) {
                  if (a.issueTime != b.issueTime)
                      return a.issueTime < b.issueTime;
                  if (a.isStore != b.isStore)
                      return !a.isStore; // loads (and ALU ops) first
                  if (a.iteration != b.iteration)
                      return a.iteration < b.iteration;
                  return a.op < b.op;
              });

    bool has_exit = false;
    for (const auto& op : loop.operations())
        has_exit = has_exit || op.opcode == ir::Opcode::kExitIf;

    // First exit that fired, as (iteration, op id); everything at or
    // beyond it (in original program order) is squashed. The exit->store
    // control dependences guarantee every store issues after the exits
    // that could squash it have resolved, so a single time-ordered pass
    // is exact.
    long long exit_iter = -1;
    int exit_op = -1;
    auto squashed = [&](int iter, int op_id) {
        if (exit_iter < 0)
            return false;
        return iter > exit_iter ||
               (iter == exit_iter && op_id > exit_op);
    };

    for (const Instance& instance : instances) {
        const ir::Operation& op = loop.operation(instance.op);
        const int iter = instance.iteration;
        const bool active =
            !op.guard || isTrue(registers.readOperand(*op.guard, iter));

        if (op.opcode == ir::Opcode::kBranch)
            continue;

        if (op.opcode == ir::Opcode::kExitIf) {
            if (active && !squashed(iter, op.id) &&
                registers.readOperand(op.sources[0], iter) > 0.0) {
                if (exit_iter < 0 || iter < exit_iter ||
                    (iter == exit_iter && op.id < exit_op)) {
                    exit_iter = iter;
                    exit_op = op.id;
                }
            }
            continue;
        }

        if (op.isStore()) {
            if (!active || squashed(iter, op.id))
                continue;
            memory.write(op.memRef->array, op.memRef->stride * iter + op.memRef->offset,
                         registers.readOperand(op.sources[1], iter));
            continue;
        }
        if (!op.hasDest())
            continue;

        Value result = 0.0;
        if (active) {
            if (op.isLoad()) {
                result = memory.read(op.memRef->array,
                                     op.memRef->stride * iter + op.memRef->offset);
            } else {
                std::vector<Value> sources;
                sources.reserve(op.sources.size());
                for (const auto& src : op.sources)
                    sources.push_back(registers.readOperand(src, iter));
                result = evaluate(op.opcode, sources);
            }
        }
        registers.write(op.dest, iter, result);
    }

    const int executed = exit_iter >= 0
                             ? static_cast<int>(exit_iter) + 1
                             : spec.tripCount;
    PipelineResult result{SimResult{std::move(memory), {}, executed}, 0};
    if (!has_exit) {
        for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
            if (loop.definingOp(reg) >= 0) {
                result.state.finalRegisters[loop.reg(reg).name] =
                    registers.read(reg, spec.tripCount - 1);
            }
        }
    }
    result.cycles = static_cast<long long>(executed - 1) * schedule.ii +
                    schedule.scheduleLength;
    return result;
}

} // namespace ims::sim
