#include "sim/value.hpp"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace ims::sim {

Value
evaluate(ir::Opcode opcode, const std::vector<Value>& sources)
{
    assert(static_cast<int>(sources.size()) == ir::sourceCount(opcode));
    using ir::Opcode;
    switch (opcode) {
      case Opcode::kAdd:
      case Opcode::kAddrAdd:
        return sources[0] + sources[1];
      case Opcode::kSub:
      case Opcode::kAddrSub:
        return sources[0] - sources[1];
      case Opcode::kMul:
        return sources[0] * sources[1];
      case Opcode::kDiv:
        return sources[1] != 0.0 ? sources[0] / sources[1] : 0.0;
      case Opcode::kSqrt:
        return std::sqrt(std::abs(sources[0]));
      case Opcode::kMin:
        return std::min(sources[0], sources[1]);
      case Opcode::kMax:
        return std::max(sources[0], sources[1]);
      case Opcode::kAbs:
        return std::abs(sources[0]);
      case Opcode::kCmpGt:
      case Opcode::kPredSet:
        return sources[0] > sources[1] ? 1.0 : 0.0;
      case Opcode::kPredClear:
        return 0.0;
      case Opcode::kSelect:
        return isTrue(sources[0]) ? sources[1] : sources[2];
      case Opcode::kCopy:
        return sources[0];
      default:
        assert(false && "opcode is not evaluable");
        return 0.0;
    }
}

bool
sameValue(Value a, Value b)
{
    if (a == b)
        return true;
    std::uint64_t ua = 0, ub = 0;
    std::memcpy(&ua, &a, sizeof(a));
    std::memcpy(&ub, &b, sizeof(b));
    return ua == ub;
}

} // namespace ims::sim
