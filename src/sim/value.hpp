#ifndef IMS_SIM_VALUE_HPP
#define IMS_SIM_VALUE_HPP

#include <vector>

#include "ir/opcode.hpp"

namespace ims::sim {

/**
 * All simulated values are doubles; predicates use 0.0 / 1.0. The two
 * execution engines (sequential interpreter and pipeline simulator) share
 * these semantics so that result comparison is meaningful.
 */
using Value = double;

/**
 * Evaluate a non-memory, non-branch opcode over its source values:
 *   add/sub/mul/div/aadd/asub  -- arithmetic
 *   min/max/abs                -- as named
 *   sqrt                       -- square root of |x| (total function)
 *   cmpgt / predset            -- (a > b) ? 1 : 0
 *   predclear                  -- 0
 *   select                     -- c != 0 ? a : b (sources are c, a, b)
 *   copy                       -- identity
 *
 * @pre sources.size() == sourceCount(opcode); opcode is evaluable.
 */
Value evaluate(ir::Opcode opcode, const std::vector<Value>& sources);

/** Truthiness of a predicate value. */
inline bool
isTrue(Value value)
{
    return value != 0.0;
}

/**
 * Value equality for state comparison: numerically equal, or identical
 * bit patterns (so NaNs produced identically by both execution engines
 * compare equal — overflowing recurrences are legal inputs).
 */
bool sameValue(Value a, Value b);

} // namespace ims::sim

#endif // IMS_SIM_VALUE_HPP
