#ifndef IMS_SIM_REGISTER_FILE_HPP
#define IMS_SIM_REGISTER_FILE_HPP

#include <cassert>
#include <map>
#include <vector>

#include "ir/loop.hpp"
#include "sim/sequential_interpreter.hpp"
#include "sim/value.hpp"
#include "support/error.hpp"

namespace ims::sim {

/**
 * EVR-style register file shared by both execution engines: every
 * (register, iteration) pair has its own slot, pure live-ins read their
 * invariant value at any iteration, and negative iterations read the
 * SimSpec seeds (falling back to the live-in value, then 0).
 */
class RegisterFile
{
  public:
    RegisterFile(const ir::Loop& loop, const SimSpec& spec, int trip_count)
        : loop_(loop), tripCount_(trip_count)
    {
        values_.assign(loop.numRegisters(),
                       std::vector<Value>(trip_count, 0.0));
        written_.assign(loop.numRegisters(),
                        std::vector<bool>(trip_count, false));
        liveIn_.assign(loop.numRegisters(), 0.0);
        for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
            const auto& name = loop.reg(reg).name;
            if (auto it = spec.liveIn.find(name); it != spec.liveIn.end())
                liveIn_[reg] = it->second;
            if (auto it = spec.seeds.find(name); it != spec.seeds.end())
                seeds_.emplace(reg, it->second);
        }
    }

    /** Value of `reg` at (possibly negative) iteration `iter`. */
    Value
    read(ir::RegId reg, int iter) const
    {
        if (loop_.definingOp(reg) < 0)
            return liveIn_[reg];
        if (iter < 0) {
            const auto it = seeds_.find(reg);
            const int k = -1 - iter;
            if (it != seeds_.end() &&
                k < static_cast<int>(it->second.size())) {
                return it->second[k];
            }
            return liveIn_[reg];
        }
        support::check(written_[reg][iter],
                       "read of register '" + loop_.reg(reg).name +
                           "' at iteration " + std::to_string(iter) +
                           " before its definition executed (body not in "
                           "topological order, or schedule bug)");
        return values_[reg][iter];
    }

    /** Operand read helper at base iteration `iter`. */
    Value
    readOperand(const ir::Operand& operand, int iter) const
    {
        if (!operand.isRegister())
            return operand.immediate;
        return read(operand.reg, iter - operand.distance);
    }

    /** True once `reg`'s instance for iteration `iter` was computed. */
    bool
    isWritten(ir::RegId reg, int iter) const
    {
        return iter >= 0 && iter < tripCount_ && written_[reg][iter];
    }

    void
    write(ir::RegId reg, int iter, Value value)
    {
        assert(iter >= 0 && iter < tripCount_);
        values_[reg][iter] = value;
        written_[reg][iter] = true;
    }

  private:
    const ir::Loop& loop_;
    int tripCount_;
    std::vector<std::vector<Value>> values_;
    std::vector<std::vector<bool>> written_;
    std::vector<Value> liveIn_;
    std::map<ir::RegId, std::vector<Value>> seeds_;
};

} // namespace ims::sim

#endif // IMS_SIM_REGISTER_FILE_HPP
