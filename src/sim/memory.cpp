#include "sim/memory.hpp"

#include <algorithm>
#include <cassert>

#include "support/error.hpp"

namespace ims::sim {

Memory::Memory(const ir::Loop& loop, int trip_count, int margin)
    : tripCount_(trip_count), margin_(margin)
{
    assert(trip_count >= 0 && margin >= 0);
    int max_stride = 1;
    for (const auto& op : loop.operations()) {
        if (op.memRef)
            max_stride = std::max(max_stride, op.memRef->stride);
    }
    arrays_.assign(
        loop.numArrays(),
        std::vector<Value>(static_cast<std::size_t>(trip_count) *
                                   max_stride +
                               2 * margin,
                           0.0));
}

std::size_t
Memory::cellIndex(ir::ArrayId array, int index) const
{
    assert(array >= 0 && array < static_cast<int>(arrays_.size()));
    const long long cell = static_cast<long long>(index) + margin_;
    support::check(cell >= 0 &&
                       cell < static_cast<long long>(arrays_[array].size()),
                   "array access out of simulated bounds (index " +
                       std::to_string(index) + "); increase the margin");
    return static_cast<std::size_t>(cell);
}

void
Memory::init(ir::ArrayId array, int first, const std::vector<Value>& contents)
{
    for (std::size_t k = 0; k < contents.size(); ++k)
        write(array, first + static_cast<int>(k), contents[k]);
}

Value
Memory::read(ir::ArrayId array, int index) const
{
    return arrays_[array][cellIndex(array, index)];
}

void
Memory::write(ir::ArrayId array, int index, Value value)
{
    arrays_[array][cellIndex(array, index)] = value;
}

std::vector<Value>
Memory::snapshot(ir::ArrayId array, int from, int count) const
{
    std::vector<Value> result;
    result.reserve(count);
    for (int k = 0; k < count; ++k)
        result.push_back(read(array, from + k));
    return result;
}

bool
Memory::operator==(const Memory& other) const
{
    if (tripCount_ != other.tripCount_ || margin_ != other.margin_ ||
        arrays_.size() != other.arrays_.size()) {
        return false;
    }
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        if (arrays_[a].size() != other.arrays_[a].size())
            return false;
        for (std::size_t k = 0; k < arrays_[a].size(); ++k) {
            if (!sameValue(arrays_[a][k], other.arrays_[a][k]))
                return false;
        }
    }
    return true;
}

std::string
Memory::firstDifference(const Memory& other) const
{
    if (tripCount_ != other.tripCount_ || margin_ != other.margin_ ||
        arrays_.size() != other.arrays_.size()) {
        return "memory shapes differ";
    }
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        if (arrays_[a].size() != other.arrays_[a].size())
            return "array " + std::to_string(a) + " sizes differ";
        for (std::size_t k = 0; k < arrays_[a].size(); ++k) {
            if (!sameValue(arrays_[a][k], other.arrays_[a][k])) {
                const long long logical =
                    static_cast<long long>(k) - margin_;
                return "array " + std::to_string(a) + " logical index " +
                       std::to_string(logical) + ": " +
                       std::to_string(arrays_[a][k]) + " vs " +
                       std::to_string(other.arrays_[a][k]);
            }
        }
    }
    return "";
}

} // namespace ims::sim
