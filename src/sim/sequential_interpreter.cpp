#include "sim/sequential_interpreter.hpp"

#include "sim/register_file.hpp"
#include "support/error.hpp"

namespace ims::sim {

bool
equivalent(const SimResult& a, const SimResult& b)
{
    if (a.executedIterations != b.executedIterations)
        return false;
    if (!(a.memory == b.memory))
        return false;
    if (a.finalRegisters.size() != b.finalRegisters.size())
        return false;
    for (const auto& [name, value] : a.finalRegisters) {
        const auto it = b.finalRegisters.find(name);
        if (it == b.finalRegisters.end() || !sameValue(value, it->second))
            return false;
    }
    return true;
}

std::string
describeDifference(const SimResult& a, const SimResult& b)
{
    if (a.executedIterations != b.executedIterations) {
        return "executed iterations " +
               std::to_string(a.executedIterations) + " vs " +
               std::to_string(b.executedIterations);
    }
    const std::string memory = a.memory.firstDifference(b.memory);
    if (!memory.empty())
        return memory;
    if (a.finalRegisters.size() != b.finalRegisters.size())
        return "final register sets differ in size";
    for (const auto& [name, value] : a.finalRegisters) {
        const auto it = b.finalRegisters.find(name);
        if (it == b.finalRegisters.end())
            return "register '" + name + "' missing from second state";
        if (!sameValue(value, it->second)) {
            return "register '" + name + "': " + std::to_string(value) +
                   " vs " + std::to_string(it->second);
        }
    }
    return "";
}

SimResult
runSequential(const ir::Loop& loop, const SimSpec& spec)
{
    loop.validate();
    support::check(spec.tripCount >= 0, "trip count must be non-negative");

    Memory memory(loop, spec.tripCount, spec.margin);
    for (const auto& [name, init] : spec.arrays) {
        for (ir::ArrayId array = 0; array < loop.numArrays(); ++array) {
            if (loop.arrays()[array].name == name)
                memory.init(array, init.first, init.second);
        }
    }
    if (spec.tripCount == 0)
        return SimResult{std::move(memory), {}, 0};

    RegisterFile registers(loop, spec, spec.tripCount);

    bool has_exit = false;
    for (const auto& op : loop.operations())
        has_exit = has_exit || op.opcode == ir::Opcode::kExitIf;

    int executed = 0;
    bool exited = false;
    for (int iter = 0; iter < spec.tripCount && !exited; ++iter) {
        ++executed;
        for (const auto& op : loop.operations()) {
            const bool active =
                !op.guard || isTrue(registers.readOperand(*op.guard, iter));

            if (op.opcode == ir::Opcode::kBranch)
                continue;

            if (op.opcode == ir::Opcode::kExitIf) {
                if (active &&
                    registers.readOperand(op.sources[0], iter) > 0.0) {
                    exited = true;
                    break; // the rest of this iteration does not run
                }
                continue;
            }

            if (op.isStore()) {
                if (!active)
                    continue;
                memory.write(op.memRef->array, op.memRef->stride * iter + op.memRef->offset,
                             registers.readOperand(op.sources[1], iter));
                continue;
            }

            if (!op.hasDest())
                continue;

            Value result = 0.0;
            if (active) {
                if (op.isLoad()) {
                    result = memory.read(op.memRef->array,
                                         op.memRef->stride * iter + op.memRef->offset);
                } else {
                    std::vector<Value> sources;
                    sources.reserve(op.sources.size());
                    for (const auto& src : op.sources)
                        sources.push_back(registers.readOperand(src, iter));
                    result = evaluate(op.opcode, sources);
                }
            }
            registers.write(op.dest, iter, result);
        }
    }

    SimResult result{std::move(memory), {}, executed};
    if (!has_exit) {
        for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
            if (loop.definingOp(reg) >= 0) {
                result.finalRegisters[loop.reg(reg).name] =
                    registers.read(reg, spec.tripCount - 1);
            }
        }
    }
    return result;
}

} // namespace ims::sim
