#include "sim/section_executor.hpp"

#include <algorithm>

#include "sim/register_file.hpp"
#include "support/error.hpp"

namespace ims::sim {

void
executeOpInstance(const ir::Loop& loop, const ir::Operation& op, int iter,
                  RegisterFile& registers, Memory& memory,
                  bool store_phase)
{
    if (op.opcode == ir::Opcode::kBranch)
        return;
    if (op.isStore() != store_phase)
        return;

    const bool active =
        !op.guard || isTrue(registers.readOperand(*op.guard, iter));

    if (op.isStore()) {
        if (!active)
            return;
        memory.write(op.memRef->array,
                     op.memRef->stride * iter + op.memRef->offset,
                     registers.readOperand(op.sources[1], iter));
        return;
    }
    if (!op.hasDest())
        return;

    Value result = 0.0;
    if (active) {
        if (op.isLoad()) {
            result = memory.read(op.memRef->array,
                                 op.memRef->stride * iter +
                                     op.memRef->offset);
        } else {
            std::vector<Value> sources;
            sources.reserve(op.sources.size());
            for (const auto& src : op.sources)
                sources.push_back(registers.readOperand(src, iter));
            result = evaluate(op.opcode, sources);
        }
    }
    registers.write(op.dest, iter, result);
}

namespace {

/** Execute a section's cycles with a per-cycle iteration base mapping. */
void
executeSection(const ir::Loop& loop, const codegen::CodeSection& section,
               int iteration_base, int trip, RegisterFile& registers,
               Memory& memory)
{
    for (const auto& cycle : section.cycles) {
        // Loads and ALU ops first, then stores (same-cycle ordering).
        for (const bool store_phase : {false, true}) {
            for (const auto& instance : cycle) {
                const int iter = iteration_base + instance.iterationOffset;
                if (iter < 0 || iter >= trip)
                    continue;
                executeOpInstance(loop, loop.operation(instance.op), iter,
                                registers, memory, store_phase);
            }
        }
    }
}

} // namespace

SimResult
runGeneratedCode(const ir::Loop& loop, const codegen::GeneratedCode& code,
                 const SimSpec& spec)
{
    loop.validate();
    for (const auto& op : loop.operations()) {
        support::check(op.opcode != ir::Opcode::kExitIf,
                       "the prologue/kernel/epilogue schema supports "
                       "DO-loops only; early-exit loops need the "
                       "kernel-only (ESC) schema");
    }
    const int trip = spec.tripCount;
    support::check(trip >= code.kernel.stageCount,
                   "trip count below the stage count: the pipelined loop "
                   "would be bypassed (preconditioning)");

    Memory memory(loop, trip, spec.margin);
    for (const auto& [name, init] : spec.arrays) {
        for (ir::ArrayId array = 0; array < loop.numArrays(); ++array) {
            if (loop.arrays()[array].name == name)
                memory.init(array, init.first, init.second);
        }
    }
    RegisterFile registers(loop, spec, trip);

    // Prologue: instances carry absolute iteration indices.
    executeSection(loop, code.prologue, 0, trip, registers, memory);

    // Kernel repetitions: repetition r's "current" iteration is
    // stageCount - 1 + r; instances are tagged -stage.
    const int reps = trip - code.kernel.stageCount + 1;
    for (int r = 0; r < reps; ++r) {
        executeSection(loop, code.kernelSection,
                       code.kernel.stageCount - 1 + r, trip, registers,
                       memory);
    }

    // Epilogue: instances are tagged from the end (-1 = last iteration).
    executeSection(loop, code.epilogue, trip, trip, registers, memory);

    SimResult result{std::move(memory), {}, trip};
    for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
        if (loop.definingOp(reg) >= 0) {
            result.finalRegisters[loop.reg(reg).name] =
                registers.read(reg, trip - 1);
        }
    }
    return result;
}

SimResult
runKernelOnly(const ir::Loop& loop, const codegen::KernelOnlyCode& code,
              const SimSpec& spec)
{
    loop.validate();
    for (const auto& op : loop.operations()) {
        support::check(op.opcode != ir::Opcode::kExitIf,
                       "early-exit kernel-only execution (ESC counting) "
                       "is not implemented");
    }
    const int trip = spec.tripCount;

    Memory memory(loop, trip, spec.margin);
    for (const auto& [name, init] : spec.arrays) {
        for (ir::ArrayId array = 0; array < loop.numArrays(); ++array) {
            if (loop.arrays()[array].name == name)
                memory.init(array, init.first, init.second);
        }
    }
    RegisterFile registers(loop, spec, trip);

    for (int rep = 0; rep < code.repetitions(trip); ++rep) {
        for (const auto& cycle : code.cycles) {
            for (const bool store_phase : {false, true}) {
                for (const auto& placement : cycle) {
                    // Stage predicate: this stage's iteration is live.
                    const int iter = rep - placement.stage;
                    if (iter < 0 || iter >= trip)
                        continue;
                    executeOpInstance(loop, loop.operation(placement.op),
                                    iter, registers, memory, store_phase);
                }
            }
        }
    }

    SimResult result{std::move(memory), {}, trip};
    // A zero-trip loop executed nothing: the sequential reference leaves
    // finalRegisters empty, and reading iteration -1 here would surface
    // seed values instead.
    if (trip >= 1) {
        for (ir::RegId reg = 0; reg < loop.numRegisters(); ++reg) {
            if (loop.definingOp(reg) >= 0) {
                result.finalRegisters[loop.reg(reg).name] =
                    registers.read(reg, trip - 1);
            }
        }
    }
    return result;
}

} // namespace ims::sim
