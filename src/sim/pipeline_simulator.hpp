#ifndef IMS_SIM_PIPELINE_SIMULATOR_HPP
#define IMS_SIM_PIPELINE_SIMULATOR_HPP

#include "ir/loop.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sim/sequential_interpreter.hpp"

namespace ims::sim {

/** Result of executing a modulo schedule. */
struct PipelineResult
{
    SimResult state;
    /**
     * Total execution cycles: the last iteration starts at
     * (trip - 1) * II and completes SL cycles later — the paper's
     * execution-time model with EntryFreq = 1.
     */
    long long cycles = 0;
};

/**
 * Execute a software-pipelined loop cycle-accurately: iteration i issues
 * operation P at absolute cycle i * II + SchedTime(P); overlapped
 * iterations interleave exactly as the kernel would execute on the VLIW.
 * Same-cycle memory ordering follows the dependence model: loads sample
 * memory in their issue cycle, stores become visible the following cycle.
 *
 * Because the engine executes the *schedule* rather than the program
 * order, comparing its final state against runSequential() end-to-end
 * validates that the schedule preserves the loop's semantics (all
 * dependences, including inter-iteration and memory dependences, at the
 * machine latencies).
 */
PipelineResult runPipelined(const ir::Loop& loop,
                            const sched::ScheduleResult& schedule,
                            const SimSpec& spec);

} // namespace ims::sim

#endif // IMS_SIM_PIPELINE_SIMULATOR_HPP
