#ifndef IMS_SIM_SECTION_EXECUTOR_HPP
#define IMS_SIM_SECTION_EXECUTOR_HPP

#include "codegen/code_generator.hpp"
#include "codegen/kernel_only.hpp"
#include "sim/register_file.hpp"
#include "sim/sequential_interpreter.hpp"

namespace ims::sim {

/**
 * Execute one operation instance for a concrete iteration against the
 * shared register file and memory — the primitive every section-level
 * executor (and the program-level executor) is built on. Call once per
 * cycle with store_phase false (loads and ALU ops) and once with true
 * (stores), preserving the dependence model's same-cycle ordering.
 * Guarded instances whose predicate is false store nothing and write 0.0
 * to their destination, like both reference engines.
 */
void executeOpInstance(const ir::Loop& loop, const ir::Operation& op,
                       int iter, RegisterFile& registers, Memory& memory,
                       bool store_phase);

/**
 * Execute the *generated code structure* — prologue once, the kernel
 * section trip - stageCount + 1 times, epilogue once — rather than the
 * flat schedule. Each OpInstance's iterationOffset is resolved exactly the
 * way the emitted code's register copies would resolve it:
 *
 *  - prologue instances run for iteration `offset` (counted from 0);
 *  - kernel repetition r (r = 0, 1, ...) runs its instances for iteration
 *    (stageCount - 1 + r) + offset (offset is -stage);
 *  - epilogue instances run for iteration trip + offset (offset < 0).
 *
 * Within a cycle, loads execute before stores, matching the dependence
 * model. Comparing the result against runSequential() validates that the
 * prologue/kernel/epilogue decomposition (including its instance
 * bookkeeping) is semantically faithful — not just the flat schedule.
 *
 * @pre spec.tripCount >= code.kernel.stageCount (shorter trips bypass the
 *      pipelined loop; checked).
 */
SimResult runGeneratedCode(const ir::Loop& loop,
                           const codegen::GeneratedCode& code,
                           const SimSpec& spec);

/**
 * Execute kernel-only code ([36]): the kernel runs trip + stageCount - 1
 * times; in repetition r, the instance of an operation at stage s is
 * enabled exactly when its stage predicate would be on, i.e. when
 * 0 <= r - s < trip. Validates the zero-code-expansion schema's
 * semantics against runSequential(). No precondition on the trip count —
 * the stage predicates handle short trips naturally.
 */
SimResult runKernelOnly(const ir::Loop& loop,
                        const codegen::KernelOnlyCode& code,
                        const SimSpec& spec);

} // namespace ims::sim

#endif // IMS_SIM_SECTION_EXECUTOR_HPP
