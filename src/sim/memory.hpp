#ifndef IMS_SIM_MEMORY_HPP
#define IMS_SIM_MEMORY_HPP

#include <map>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "sim/value.hpp"

namespace ims::sim {

/**
 * Array storage for loop simulation. Accesses are to logical indices
 * i + offset where i is the iteration number; negative indices (reads of
 * elements "before" the loop, e.g. a[i-1] at i = 0) land in a margin
 * region initialised along with the array.
 */
class Memory
{
  public:
    /**
     * @param loop       declares the array symbols.
     * @param trip_count number of iterations to be simulated.
     * @param margin     extra elements on both sides of [0, trip_count).
     */
    Memory(const ir::Loop& loop, int trip_count, int margin);

    /**
     * Initialise array contents: `contents[k]` becomes logical index
     * `first + k`. Unset elements default to 0.
     */
    void init(ir::ArrayId array, int first,
              const std::vector<Value>& contents);

    Value read(ir::ArrayId array, int index) const;
    void write(ir::ArrayId array, int index, Value value);

    /** Logical elements [from, from + count). */
    std::vector<Value> snapshot(ir::ArrayId array, int from,
                                int count) const;

    int margin() const { return margin_; }

    /** Exact content equality with another Memory of identical shape. */
    bool operator==(const Memory& other) const;

    /**
     * Description of the first differing cell ("array 2 logical index -1:
     * 0.5 vs 1.5"), or "" when equal. Shape mismatches are reported as
     * such. NaN-tolerant like operator== (bit-identical NaNs are equal).
     */
    std::string firstDifference(const Memory& other) const;

  private:
    std::size_t cellIndex(ir::ArrayId array, int index) const;

    int tripCount_;
    int margin_;
    std::vector<std::vector<Value>> arrays_;
};

} // namespace ims::sim

#endif // IMS_SIM_MEMORY_HPP
