#ifndef IMS_SIM_SEQUENTIAL_INTERPRETER_HPP
#define IMS_SIM_SEQUENTIAL_INTERPRETER_HPP

#include <map>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "sim/memory.hpp"
#include "sim/value.hpp"

namespace ims::sim {

/** Input state for simulating a loop. */
struct SimSpec
{
    /**
     * Number of iterations to execute (>= 0). A zero trip count executes
     * nothing: the result is the initial memory image with no final
     * registers (both engines agree on this, so 0-trip equivalence checks
     * exercise the "loop body never entered" paths).
     */
    int tripCount = 16;
    /** Memory margin on both sides of [0, tripCount) (see Memory). */
    int margin = 8;
    /**
     * Values of live-in registers (loop invariants); also the fallback
     * seed for recurrence registers without explicit seeds.
     */
    std::map<std::string, Value> liveIn;
    /**
     * Pre-loop values of recurrence registers: seeds[name][k] is the value
     * the register "had" at iteration -1-k (so seeds[name][0] is the value
     * one iteration before the first).
     */
    std::map<std::string, std::vector<Value>> seeds;
    /** Initial array contents: name -> (first logical index, values). */
    std::map<std::string, std::pair<int, std::vector<Value>>> arrays;
};

/** Final architectural state after simulating a loop. */
struct SimResult
{
    Memory memory;
    /**
     * Final (last executed iteration) value of every register defined
     * in-loop. Left empty for loops containing early exits (kExitIf):
     * post-exit registers are speculative and engine-dependent, so
     * equivalence for such loops is judged on memory and the exit point.
     */
    std::map<std::string, Value> finalRegisters;
    /**
     * Iterations entered: the trip count for DO-loops, or E + 1 when an
     * early exit fired in iteration E.
     */
    int executedIterations = 0;
};

/**
 * NaN-tolerant equivalence between two final states (same arrays, same
 * register names, every value equal by sim::sameValue). The canonical
 * check that a pipelined execution preserved the loop's semantics.
 */
bool equivalent(const SimResult& a, const SimResult& b);

/**
 * Human-readable description of the first difference between two final
 * states ("" when equivalent): executed-iteration counts, memory contents,
 * then register values. Used by the sim-equivalence oracle to produce
 * actionable diagnostics.
 */
std::string describeDifference(const SimResult& a, const SimResult& b);

/**
 * Reference semantics: execute the loop iteration by iteration, operations
 * in program order. Guarded operations whose predicate is false perform no
 * store and write 0.0 to their destination (both engines share this rule,
 * making cross-engine comparison exact).
 *
 * @throws support::Error if an operation reads a same-iteration value
 *         whose definition appears later in program order (bodies must be
 *         listed in intra-iteration topological order).
 */
SimResult runSequential(const ir::Loop& loop, const SimSpec& spec);

} // namespace ims::sim

#endif // IMS_SIM_SEQUENTIAL_INTERPRETER_HPP
