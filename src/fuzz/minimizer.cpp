#include "fuzz/minimizer.hpp"

#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace ims::fuzz {

namespace {

/**
 * Rebuild a loop from a subset/mutation of the original operations (still
 * referencing the original register and array ids). Registers that are
 * read but no longer defined are promoted to live-ins. Returns nullopt
 * when the candidate does not validate.
 */
std::optional<ir::Loop>
rebuildLoop(const ir::Loop& original, const std::vector<ir::Operation>& ops)
{
    if (ops.empty())
        return std::nullopt;

    std::vector<bool> referenced(original.numRegisters(), false);
    std::vector<bool> defined(original.numRegisters(), false);
    std::vector<bool> array_used(original.numArrays(), false);
    for (const auto& op : ops) {
        if (op.hasDest()) {
            referenced[op.dest] = true;
            defined[op.dest] = true;
        }
        for (const auto& src : op.sources) {
            if (src.isRegister())
                referenced[src.reg] = true;
        }
        if (op.guard)
            referenced[op.guard->reg] = true;
        if (op.memRef)
            array_used[op.memRef->array] = true;
    }

    ir::Loop loop(original.name());
    std::vector<ir::RegId> reg_map(original.numRegisters(), ir::kNoReg);
    for (ir::RegId reg = 0; reg < original.numRegisters(); ++reg) {
        if (!referenced[reg])
            continue;
        ir::RegisterInfo info = original.reg(reg);
        if (!defined[reg])
            info.isLiveIn = true;
        reg_map[reg] = loop.addRegister(info);
    }
    std::vector<ir::ArrayId> array_map(original.numArrays(), -1);
    for (ir::ArrayId array = 0; array < original.numArrays(); ++array) {
        if (array_used[array])
            array_map[array] = loop.addArray(original.arrays()[array]);
    }

    for (ir::Operation op : ops) {
        op.id = -1;
        if (op.hasDest())
            op.dest = reg_map[op.dest];
        for (auto& src : op.sources) {
            if (src.isRegister())
                src.reg = reg_map[src.reg];
        }
        if (op.guard)
            op.guard->reg = reg_map[op.guard->reg];
        if (op.memRef)
            op.memRef->array = array_map[op.memRef->array];
        loop.addOperation(std::move(op));
    }

    try {
        loop.validate();
    } catch (const std::exception&) {
        return std::nullopt;
    }
    return loop;
}

/** Rebuild a machine from explicit parts (resource ids unremapped). */
machine::MachineModel
rebuildMachine(const machine::MachineModel& original,
               const std::map<ir::Opcode, machine::OpcodeInfo>& opcodes)
{
    std::vector<std::string> resources;
    resources.reserve(original.numResources());
    for (int r = 0; r < original.numResources(); ++r)
        resources.push_back(original.resourceName(r));
    return machine::MachineModel(original.name(), std::move(resources),
                                 opcodes);
}

/** The opcode->info map of the real opcodes a machine implements. */
std::map<ir::Opcode, machine::OpcodeInfo>
opcodeMap(const machine::MachineModel& machine)
{
    std::map<ir::Opcode, machine::OpcodeInfo> map;
    for (int index = 0; index < ir::kNumRealOpcodes; ++index) {
        const auto opcode = static_cast<ir::Opcode>(index);
        if (machine.supports(opcode))
            map[opcode] = machine.info(opcode);
    }
    return map;
}

/** Drop resources no reservation table references, remapping ids. */
std::optional<machine::MachineModel>
dropUnusedResources(const machine::MachineModel& machine)
{
    std::vector<bool> used(machine.numResources(), false);
    const auto opcodes = opcodeMap(machine);
    for (const auto& [opcode, info] : opcodes) {
        for (const auto& alternative : info.alternatives) {
            for (const auto& use : alternative.table.uses())
                used[use.resource] = true;
        }
    }

    std::vector<machine::ResourceId> remap(machine.numResources(), -1);
    std::vector<std::string> resources;
    for (int r = 0; r < machine.numResources(); ++r) {
        if (used[r]) {
            remap[r] = static_cast<machine::ResourceId>(resources.size());
            resources.push_back(machine.resourceName(r));
        }
    }
    if (resources.empty() ||
        static_cast<int>(resources.size()) == machine.numResources())
        return std::nullopt; // nothing to drop (or nothing would remain)

    std::map<ir::Opcode, machine::OpcodeInfo> remapped;
    for (const auto& [opcode, info] : opcodes) {
        machine::OpcodeInfo new_info;
        new_info.latency = info.latency;
        for (const auto& alternative : info.alternatives) {
            std::vector<machine::ResourceUse> uses;
            for (auto use : alternative.table.uses()) {
                use.resource = remap[use.resource];
                uses.push_back(use);
            }
            new_info.alternatives.push_back(
                {alternative.name,
                 machine::ReservationTable(std::move(uses))});
        }
        remapped[opcode] = std::move(new_info);
    }
    return machine::MachineModel(machine.name(), std::move(resources),
                                 remapped);
}

} // namespace

MinimizeResult
minimize(const ir::Loop& loop, const machine::MachineModel& machine,
         const core::PipelinerOptions& config, const OracleOptions& oracle)
{
    MinimizeResult result{loop, machine, "", "", loop.size(), loop.size(),
                          0};

    const OracleVerdict initial = runOracles(loop, machine, config, oracle);
    ++result.candidatesTried;
    if (!initial.failed())
        return result; // nothing to minimize
    result.code = initial.code;
    result.message = initial.message;

    // A candidate is accepted iff it still fails with the same code.
    const auto fails_same = [&](const ir::Loop& l,
                                const machine::MachineModel& m) {
        ++result.candidatesTried;
        const OracleVerdict verdict = runOracles(l, m, config, oracle);
        if (verdict.code != result.code)
            return false;
        result.message = verdict.message;
        return true;
    };

    bool progress = true;
    while (progress) {
        progress = false;

        // Pass 1: drop whole operations (the loop-closing branch stays,
        // so the loop always remains pipelineable).
        for (int victim = result.loop.size() - 1; victim >= 0; --victim) {
            if (result.loop.operation(victim).isBranch())
                continue;
            std::vector<ir::Operation> ops;
            for (const auto& op : result.loop.operations()) {
                if (op.id != victim)
                    ops.push_back(op);
            }
            const auto candidate = rebuildLoop(result.loop, ops);
            if (candidate && fails_same(*candidate, result.machine)) {
                result.loop = *candidate;
                progress = true;
            }
        }

        // Pass 2: simplify the surviving operations in place.
        for (int target = 0; target < result.loop.size(); ++target) {
            const auto mutate =
                [&](const auto& mutation) {
                    std::vector<ir::Operation> ops(
                        result.loop.operations().begin(),
                        result.loop.operations().end());
                    if (!mutation(ops[target]))
                        return;
                    const auto candidate = rebuildLoop(result.loop, ops);
                    if (candidate &&
                        fails_same(*candidate, result.machine)) {
                        result.loop = *candidate;
                        progress = true;
                    }
                };
            mutate([](ir::Operation& op) {
                if (!op.guard)
                    return false;
                op.guard.reset();
                return true;
            });
            mutate([](ir::Operation& op) {
                if (!op.memRef || op.memRef->offset == 0)
                    return false;
                op.memRef->offset = 0;
                return true;
            });
            for (std::size_t s = 0;
                 s < result.loop.operation(target).sources.size(); ++s) {
                mutate([s](ir::Operation& op) {
                    if (s >= op.sources.size() ||
                        !op.sources[s].isRegister())
                        return false;
                    op.sources[s] = ir::Operand::makeImm(1.0);
                    return true;
                });
            }
        }

        // Pass 3: shrink the machine. Opcodes the loop no longer uses go
        // first (their disappearance can never change the failure, but
        // re-check anyway — dropping them changes nothing except the
        // reproducer's size).
        {
            std::vector<bool> used_opcode(ir::kNumRealOpcodes, false);
            for (const auto& op : result.loop.operations())
                used_opcode[static_cast<int>(op.opcode)] = true;
            auto opcodes = opcodeMap(result.machine);
            bool dropped = false;
            for (auto it = opcodes.begin(); it != opcodes.end();) {
                if (!used_opcode[static_cast<int>(it->first)]) {
                    it = opcodes.erase(it);
                    dropped = true;
                } else {
                    ++it;
                }
            }
            if (dropped) {
                const auto candidate =
                    rebuildMachine(result.machine, opcodes);
                if (fails_same(result.loop, candidate)) {
                    result.machine = candidate;
                    progress = true;
                }
            }
        }
        for (int index = 0; index < ir::kNumRealOpcodes; ++index) {
            const auto opcode = static_cast<ir::Opcode>(index);
            if (!result.machine.supports(opcode))
                continue;
            auto opcodes = opcodeMap(result.machine);
            auto& info = opcodes[opcode];
            if (info.alternatives.size() > 1) {
                auto reduced = opcodes;
                reduced[opcode].alternatives.resize(1);
                const auto candidate =
                    rebuildMachine(result.machine, reduced);
                if (fails_same(result.loop, candidate)) {
                    result.machine = candidate;
                    progress = true;
                    continue;
                }
            }
            if (info.latency > 1) {
                auto reduced = opcodeMap(result.machine);
                reduced[opcode].latency = 1;
                const auto candidate =
                    rebuildMachine(result.machine, reduced);
                if (fails_same(result.loop, candidate)) {
                    result.machine = candidate;
                    progress = true;
                }
            }
        }
        if (const auto candidate = dropUnusedResources(result.machine)) {
            if (fails_same(result.loop, *candidate)) {
                result.machine = *candidate;
                progress = true;
            }
        }
    }

    result.minimizedOps = result.loop.size();
    return result;
}

} // namespace ims::fuzz
