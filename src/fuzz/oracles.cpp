#include "fuzz/oracles.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "mii/mii.hpp"
#include "program/program_executor.hpp"
#include "workloads/programs.hpp"

namespace ims::fuzz {

OracleVerdict
runOracles(const ir::Loop& loop, const machine::MachineModel& machine,
           const core::PipelinerOptions& config, const OracleOptions& oracle)
{
    OracleVerdict verdict;

    core::PipelinerOptions options = config;
    options.verify = true;
    options.verifySim = true;
    options.verifySimTrips = oracle.trips;
    options.verifySimSeed = oracle.simSeed;

    try {
        const core::SoftwarePipeliner pipeliner(machine, options);
        core::PipelineResult result =
            pipeliner.pipeline(core::PipelineRequest(loop));

        verdict.ii = result.telemetry.ii;
        verdict.mii = result.telemetry.mii;
        verdict.diagnostics = result.diagnostics;

        if (!result.ok()) {
            for (const auto& diagnostic : result.diagnostics) {
                if (diagnostic.severity !=
                    core::Diagnostic::Severity::kError)
                    continue;
                verdict.code = diagnostic.code.empty() ? "error.unknown"
                                                       : diagnostic.code;
                verdict.message = diagnostic.message;
                break;
            }
            if (verdict.code.empty()) {
                verdict.code = "error.unknown";
                verdict.message = "pipeline failed without diagnostics";
            }
            return verdict;
        }

        // MII sanity, independent of the production MII protocol: a
        // verified-legal schedule whose II undercuts the true lower
        // bound means a bound (or the verifier) is wrong.
        const auto& artifacts = *result.artifacts;
        const graph::SccResult sccs = graph::findSccs(artifacts.depGraph);
        const int true_rec =
            mii::computeTrueRecMii(artifacts.depGraph, sccs);
        const int bound = std::max(artifacts.outcome.resMii, true_rec);
        if (artifacts.outcome.schedule.ii < bound) {
            verdict.code = "mii.below_bound";
            verdict.message =
                "achieved II " +
                std::to_string(artifacts.outcome.schedule.ii) +
                " below max(ResMII " +
                std::to_string(artifacts.outcome.resMii) +
                ", true RecMII " + std::to_string(true_rec) + ")";
            return verdict;
        }

        // Program-level equivalence oracle: the whole-program driver
        // (EC/LC loop control, stage predicates, pipeline compression,
        // marshaling) must also reproduce the sequential semantics for
        // this loop at every trip count. Differential against the
        // per-loop sim oracle above: it catches bugs in the program
        // compiler and executor, not just in the schedule.
        // The wrapper's marshal blocks and the EC/LC lowering introduce
        // opcodes of their own; a random machine missing one of them
        // cannot run the driver at all, which is undecided, not a
        // finding.
        const bool programOracleSupported =
            machine.supports(ir::Opcode::kAdd) &&
            machine.supports(ir::Opcode::kMul) &&
            machine.supports(ir::Opcode::kSub) &&
            machine.supports(ir::Opcode::kMax) &&
            machine.supports(ir::Opcode::kMin) &&
            machine.supports(ir::Opcode::kStore);
        if (oracle.checkProgramEquivalence && programOracleSupported) {
            const program::Program wrapped = workloads::wrapLoopAsProgram(
                loop, "fuzz." + loop.name());
            program::ProgramOptions program_options;
            program_options.pipeline = config;
            const auto program_diagnostics =
                program::programEquivalenceDiagnostics(
                    wrapped, machine, program_options, oracle.trips,
                    oracle.simSeed);
            for (const auto& diagnostic : program_diagnostics) {
                verdict.diagnostics.push_back(diagnostic);
                if (verdict.code.empty() &&
                    diagnostic.severity ==
                        core::Diagnostic::Severity::kError) {
                    verdict.code = diagnostic.code.empty()
                                       ? "program.error"
                                       : diagnostic.code;
                    verdict.message = diagnostic.message;
                }
            }
            if (verdict.failed())
                return verdict;
        }

        // Optimality oracle: the exact branch-and-bound backend proves
        // the minimal feasible II; a heuristic II above it is a quality
        // finding, and an exact run that fails its own verification is a
        // correctness finding. A budget-exhausted exact search decides
        // nothing and is skipped.
        if (oracle.checkOptimality) {
            core::PipelinerOptions exact_options = options;
            exact_options
                .withScheduler(sched::SchedulerStrategy::kExact)
                .withExactNodeBudget(oracle.exactNodeBudget);
            // The heuristic II is known feasible, so the exact search
            // never needs to look above it: cap the II range there. This
            // bounds the oracle's cost at (gap + 1) attempts instead of
            // the full maxIiIncrease range.
            exact_options.schedule.search.maxIiIncrease =
                std::max(0, verdict.ii - verdict.mii);
            const core::SoftwarePipeliner exact_pipeliner(machine,
                                                          exact_options);
            core::PipelineResult exact_result =
                exact_pipeliner.pipeline(core::PipelineRequest(loop));
            if (!exact_result.ok()) {
                for (const auto& diagnostic : exact_result.diagnostics) {
                    if (diagnostic.code == "exact.budget_exhausted")
                        return verdict; // undecided, not a finding
                }
                verdict.code = "opt.exact_invalid";
                verdict.message =
                    "exact backend failed where the heuristic "
                    "succeeded: " +
                    exact_result.firstError();
                for (auto& diagnostic : exact_result.diagnostics)
                    verdict.diagnostics.push_back(std::move(diagnostic));
                return verdict;
            }
            verdict.exactIi = exact_result.telemetry.ii;
            if (verdict.exactIi > verdict.ii) {
                // The exact search "proved" the heuristic's verified II
                // infeasible — its infeasibility proof is wrong.
                verdict.code = "opt.exact_invalid";
                verdict.message =
                    "exact backend proved II " + std::to_string(verdict.ii) +
                    " infeasible but the heuristic holds a verified "
                    "schedule at that II (exact II " +
                    std::to_string(verdict.exactIi) + ")";
            } else if (verdict.exactIi < verdict.ii) {
                verdict.code = "opt.ii_gap";
                verdict.message =
                    "heuristic II " + std::to_string(verdict.ii) +
                    " exceeds proven-optimal II " +
                    std::to_string(verdict.exactIi) + " (MII " +
                    std::to_string(verdict.mii) + ")";
            }
        }
    } catch (const std::exception& error) {
        // pipeline() reports its own failures via diagnostics; anything
        // escaping it (or the MII recomputation) is itself a finding.
        verdict.code = "crash.exception";
        verdict.message = error.what();
    }
    return verdict;
}

} // namespace ims::fuzz
