#include "fuzz/oracles.hpp"

#include <algorithm>

#include "graph/scc.hpp"
#include "mii/mii.hpp"

namespace ims::fuzz {

OracleVerdict
runOracles(const ir::Loop& loop, const machine::MachineModel& machine,
           const core::PipelinerOptions& config, const OracleOptions& oracle)
{
    OracleVerdict verdict;

    core::PipelinerOptions options = config;
    options.verify = true;
    options.verifySim = true;
    options.verifySimTrips = oracle.trips;
    options.verifySimSeed = oracle.simSeed;

    try {
        const core::SoftwarePipeliner pipeliner(machine, options);
        core::PipelineResult result =
            pipeliner.pipeline(core::PipelineRequest(loop));

        verdict.ii = result.telemetry.ii;
        verdict.mii = result.telemetry.mii;
        verdict.diagnostics = result.diagnostics;

        if (!result.ok()) {
            for (const auto& diagnostic : result.diagnostics) {
                if (diagnostic.severity !=
                    core::Diagnostic::Severity::kError)
                    continue;
                verdict.code = diagnostic.code.empty() ? "error.unknown"
                                                       : diagnostic.code;
                verdict.message = diagnostic.message;
                break;
            }
            if (verdict.code.empty()) {
                verdict.code = "error.unknown";
                verdict.message = "pipeline failed without diagnostics";
            }
            return verdict;
        }

        // MII sanity, independent of the production MII protocol: a
        // verified-legal schedule whose II undercuts the true lower
        // bound means a bound (or the verifier) is wrong.
        const auto& artifacts = *result.artifacts;
        const graph::SccResult sccs = graph::findSccs(artifacts.depGraph);
        const int true_rec =
            mii::computeTrueRecMii(artifacts.depGraph, sccs);
        const int bound = std::max(artifacts.outcome.resMii, true_rec);
        if (artifacts.outcome.schedule.ii < bound) {
            verdict.code = "mii.below_bound";
            verdict.message =
                "achieved II " +
                std::to_string(artifacts.outcome.schedule.ii) +
                " below max(ResMII " +
                std::to_string(artifacts.outcome.resMii) +
                ", true RecMII " + std::to_string(true_rec) + ")";
        }
    } catch (const std::exception& error) {
        // pipeline() reports its own failures via diagnostics; anything
        // escaping it (or the MII recomputation) is itself a finding.
        verdict.code = "crash.exception";
        verdict.message = error.what();
    }
    return verdict;
}

} // namespace ims::fuzz
