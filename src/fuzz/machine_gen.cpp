#include "fuzz/machine_gen.hpp"

#include <vector>

#include "machine/machine_builder.hpp"

namespace ims::fuzz {

namespace {

/** Latency classes: short ALU-like, medium, long (memory/divide-like). */
int
drawLatency(support::Rng& rng, ir::Opcode opcode)
{
    // Branches resolve at issue in every real model; keep them short so
    // the loop-control tail never dominates the schedule.
    if (opcode == ir::Opcode::kBranch || opcode == ir::Opcode::kExitIf)
        return 1;
    const double shape = rng.uniformReal();
    const bool memory_like = opcode == ir::Opcode::kLoad ||
                             opcode == ir::Opcode::kDiv ||
                             opcode == ir::Opcode::kSqrt;
    if (memory_like && shape < 0.5)
        return rng.uniformInt(10, 24);
    if (shape < 0.70)
        return rng.uniformInt(1, 3);
    if (shape < 0.95)
        return rng.uniformInt(4, 9);
    return rng.uniformInt(10, 24);
}

machine::ReservationTable
drawTable(support::Rng& rng, int num_resources)
{
    machine::ReservationTable table;
    const double shape = rng.uniformReal();
    if (shape < 0.45) {
        // Simple: one resource for one cycle at issue.
        table.addUse(0, rng.uniformInt(0, num_resources - 1));
    } else if (shape < 0.75) {
        // Block: one resource for several consecutive cycles from issue.
        table.addBlockUse(0, rng.uniformInt(1, 4),
                          rng.uniformInt(0, num_resources - 1));
    } else {
        // Complex: several scattered uses; resources may repeat, which
        // makes the alternative self-conflict at divisor IIs.
        const int uses = rng.uniformInt(2, 4);
        for (int u = 0; u < uses; ++u)
            table.addUse(rng.uniformInt(0, 5),
                         rng.uniformInt(0, num_resources - 1));
    }
    return table;
}

} // namespace

machine::MachineModel
generateMachine(support::Rng& rng, const std::string& name)
{
    int num_resources;
    const double shape = rng.uniformReal();
    if (shape < 0.10)
        num_resources = 1;
    else if (shape < 0.88)
        num_resources = rng.uniformInt(2, 8);
    else
        num_resources = rng.uniformInt(65, 72); // > one 64-bit mask word

    machine::MachineBuilder builder(name);
    for (int r = 0; r < num_resources; ++r)
        builder.addResource("r" + std::to_string(r));

    for (int index = 0; index < ir::kNumRealOpcodes; ++index) {
        const auto opcode = static_cast<ir::Opcode>(index);
        auto config = builder.opcode(opcode, drawLatency(rng, opcode));
        const int alternatives = rng.uniformInt(1, 3);
        for (int a = 0; a < alternatives; ++a) {
            config.alternative("alt" + std::to_string(a),
                               drawTable(rng, num_resources));
        }
    }
    return builder.build();
}

} // namespace ims::fuzz
