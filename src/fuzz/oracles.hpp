#ifndef IMS_FUZZ_ORACLES_HPP
#define IMS_FUZZ_ORACLES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"

namespace ims::fuzz {

/** Configuration of the per-case oracle stack. */
struct OracleOptions
{
    /**
     * Trip counts for the sim-equivalence oracle: 0 and 1 exercise the
     * degenerate entry paths, the small values usually sit below the
     * stage count (prologue/epilogue bypass; kernel-only still runs),
     * and 17 reaches pipelined steady state.
     */
    std::vector<int> trips = {0, 1, 2, 5, 17};
    /** Seed for the simulated input data. */
    std::uint64_t simSeed = 1;
    /**
     * Also run the optimality oracle: re-pipeline the case with the exact
     * branch-and-bound backend and require the heuristic II to match the
     * proven-optimal II ("opt.ii_gap" on a gap, "opt.exact_invalid" when
     * the exact schedule itself fails verification). Cases whose exact
     * search exhausts `exactNodeBudget` are skipped — budget exhaustion
     * is not a finding. Off by default (it multiplies per-case cost).
     */
    bool checkOptimality = false;
    /** Per-candidate-II node budget for the optimality oracle. */
    std::int64_t exactNodeBudget = sched::kDefaultExactNodeBudget;
    /**
     * Also run the program-level equivalence oracle: wrap the loop as a
     * minimal full program (workloads::wrapLoopAsProgram), compile it
     * through the ProgramCompiler (EC/LC lowering, stage predicates,
     * pipeline compression) and require the compiled execution to match
     * the sequential reference at every configured trip count
     * ("program.mismatch" / "program.error", or the program compiler's
     * own diagnostic codes). Off by default.
     */
    bool checkProgramEquivalence = false;
};

/**
 * Outcome of running the full oracle stack on one (loop, machine,
 * config) triple. `code` is the machine-readable failure identity (see
 * core::Diagnostic::code, plus "mii.below_bound" from the MII-sanity
 * oracle); empty means every oracle passed.
 */
struct OracleVerdict
{
    std::string code;
    std::string message;
    /** Everything the pipeline run reported (may outnumber `code`). */
    std::vector<core::Diagnostic> diagnostics;
    /** Telemetry extracts for campaign reporting (-1 before scheduling). */
    int ii = -1;
    int mii = -1;
    /** Proven-optimal II from the optimality oracle (-1 when the oracle
     *  is off, the case failed earlier, or the exact search exhausted
     *  its node budget). */
    int exactIi = -1;

    bool failed() const { return !code.empty(); }
};

/**
 * Run every oracle on one case:
 *
 *  1. the production pipeline with structural verification on
 *     (sched::verifySchedule → "verify.*" codes) and the sim-equivalence
 *     oracle on ("sim.mismatch" / "sim.error" codes; sequential
 *     interpreter vs flat-schedule, prologue/kernel/epilogue and
 *     kernel-only engines at every configured trip count);
 *  2. crash/diagnostic capture: any phase that throws becomes an
 *     "error.<phase>" finding instead of an escaping exception;
 *  3. MII sanity: the achieved II must be >= max(ResMII, true RecMII),
 *     with the true RecMII recomputed independently of the scheduler's
 *     production MII protocol ("mii.below_bound" on violation);
 *  4. optionally (OracleOptions::checkOptimality) the optimality oracle:
 *     the exact backend re-pipelines the case and the heuristic II must
 *     equal the proven-optimal II ("opt.ii_gap" / "opt.exact_invalid";
 *     budget-exhausted exact searches are skipped, not findings).
 *
 * Deterministic in its arguments; safe to call concurrently (shared
 * state is read-only).
 */
OracleVerdict runOracles(const ir::Loop& loop,
                         const machine::MachineModel& machine,
                         const core::PipelinerOptions& config,
                         const OracleOptions& oracle);

} // namespace ims::fuzz

#endif // IMS_FUZZ_ORACLES_HPP
