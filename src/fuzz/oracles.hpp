#ifndef IMS_FUZZ_ORACLES_HPP
#define IMS_FUZZ_ORACLES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeliner.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"

namespace ims::fuzz {

/** Configuration of the per-case oracle stack. */
struct OracleOptions
{
    /**
     * Trip counts for the sim-equivalence oracle: 0 and 1 exercise the
     * degenerate entry paths, the small values usually sit below the
     * stage count (prologue/epilogue bypass; kernel-only still runs),
     * and 17 reaches pipelined steady state.
     */
    std::vector<int> trips = {0, 1, 2, 5, 17};
    /** Seed for the simulated input data. */
    std::uint64_t simSeed = 1;
};

/**
 * Outcome of running the full oracle stack on one (loop, machine,
 * config) triple. `code` is the machine-readable failure identity (see
 * core::Diagnostic::code, plus "mii.below_bound" from the MII-sanity
 * oracle); empty means every oracle passed.
 */
struct OracleVerdict
{
    std::string code;
    std::string message;
    /** Everything the pipeline run reported (may outnumber `code`). */
    std::vector<core::Diagnostic> diagnostics;
    /** Telemetry extracts for campaign reporting (-1 before scheduling). */
    int ii = -1;
    int mii = -1;

    bool failed() const { return !code.empty(); }
};

/**
 * Run every oracle on one case:
 *
 *  1. the production pipeline with structural verification on
 *     (sched::verifySchedule → "verify.*" codes) and the sim-equivalence
 *     oracle on ("sim.mismatch" / "sim.error" codes; sequential
 *     interpreter vs flat-schedule, prologue/kernel/epilogue and
 *     kernel-only engines at every configured trip count);
 *  2. crash/diagnostic capture: any phase that throws becomes an
 *     "error.<phase>" finding instead of an escaping exception;
 *  3. MII sanity: the achieved II must be >= max(ResMII, true RecMII),
 *     with the true RecMII recomputed independently of the scheduler's
 *     production MII protocol ("mii.below_bound" on violation).
 *
 * Deterministic in its arguments; safe to call concurrently (shared
 * state is read-only).
 */
OracleVerdict runOracles(const ir::Loop& loop,
                         const machine::MachineModel& machine,
                         const core::PipelinerOptions& config,
                         const OracleOptions& oracle);

} // namespace ims::fuzz

#endif // IMS_FUZZ_ORACLES_HPP
