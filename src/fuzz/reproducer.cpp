#include "fuzz/reproducer.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace ims::fuzz {

namespace {

/** Header values are single-line; fold any embedded newlines away. */
std::string
singleLine(const std::string& text)
{
    std::string out = text;
    for (char& c : out) {
        if (c == '\n' || c == '\r')
            c = ' ';
    }
    return out;
}

std::uint64_t
parseU64(const std::string& text, const std::string& key)
{
    try {
        return std::stoull(text);
    } catch (const std::exception&) {
        throw support::Error("reproducer: bad integer for '" + key +
                             "': " + text);
    }
}

} // namespace

std::string
renderReproducer(const ReproducerCase& repro)
{
    std::ostringstream out;
    out << "; ims_fuzz reproducer -- replay with: ims_fuzz --replay "
           "<this file>\n";
    out << "code: " << singleLine(repro.code) << "\n";
    out << "message: " << singleLine(repro.message) << "\n";
    out << "campaign-seed: " << repro.campaignSeed << "\n";
    out << "case-index: " << repro.caseIndex << "\n";
    out << "case-seed: " << repro.caseSeed << "\n";
    out << "sim-seed: " << repro.simSeed << "\n";
    out << "%% machine\n" << repro.machineText;
    if (!repro.machineText.empty() && repro.machineText.back() != '\n')
        out << "\n";
    out << "%% loop\n" << repro.loopText;
    if (!repro.loopText.empty() && repro.loopText.back() != '\n')
        out << "\n";
    return out.str();
}

ReproducerCase
parseReproducer(const std::string& text)
{
    ReproducerCase repro;
    std::istringstream in(text);
    std::string line;
    enum class Section { kHeader, kMachine, kLoop };
    Section section = Section::kHeader;
    bool saw_code = false;

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line == "%% machine") {
            section = Section::kMachine;
            continue;
        }
        if (line == "%% loop") {
            section = Section::kLoop;
            continue;
        }
        switch (section) {
        case Section::kHeader: {
            if (line.empty() || line[0] == ';')
                continue;
            const auto colon = line.find(": ");
            if (colon == std::string::npos)
                throw support::Error("reproducer: malformed header line '" +
                                     line + "'");
            const std::string key = line.substr(0, colon);
            const std::string value = line.substr(colon + 2);
            if (key == "code") {
                repro.code = value;
                saw_code = true;
            } else if (key == "message") {
                repro.message = value;
            } else if (key == "campaign-seed") {
                repro.campaignSeed = parseU64(value, key);
            } else if (key == "case-index") {
                repro.caseIndex = parseU64(value, key);
            } else if (key == "case-seed") {
                repro.caseSeed = parseU64(value, key);
            } else if (key == "sim-seed") {
                repro.simSeed = parseU64(value, key);
            } else {
                throw support::Error("reproducer: unknown header key '" +
                                     key + "'");
            }
            break;
        }
        case Section::kMachine:
            repro.machineText += line;
            repro.machineText += '\n';
            break;
        case Section::kLoop:
            repro.loopText += line;
            repro.loopText += '\n';
            break;
        }
    }

    if (!saw_code || repro.machineText.empty() || repro.loopText.empty()) {
        throw support::Error(
            "reproducer: missing code header, machine or loop section");
    }
    return repro;
}

std::string
reproducerFileName(std::uint64_t campaign_seed, std::uint64_t case_index)
{
    return "fuzz_s" + std::to_string(campaign_seed) + "_c" +
           std::to_string(case_index) + ".repro";
}

void
writeTextFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw support::Error("cannot open '" + path + "' for writing");
    out << contents;
    if (!out)
        throw support::Error("write to '" + path + "' failed");
}

std::string
readTextFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw support::Error("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace ims::fuzz
