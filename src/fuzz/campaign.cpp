#include "fuzz/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "fuzz/machine_gen.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/reproducer.hpp"
#include "ir/printer.hpp"
#include "machine/machine_io.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace ims::fuzz {

namespace {

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
loopNameFor(std::uint64_t index)
{
    return "fuzz_" + std::to_string(index);
}

std::string
machineNameFor(std::uint64_t index)
{
    return "fm_" + std::to_string(index);
}

} // namespace

std::uint64_t
caseSeed(std::uint64_t campaign_seed, std::uint64_t case_index)
{
    // SplitMix64 finalizer over a golden-ratio stride: statistically
    // independent per-case streams, identical on every platform.
    std::uint64_t x =
        campaign_seed + 0x9e3779b97f4a7c15ULL * (case_index + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream out;
    out << "{\"tool\":\"ims_fuzz\",\"seed\":" << seed
        << ",\"cases\":" << cases << ",\"clean\":" << clean
        << ",\"findings\":" << findings.size();
    out << ",\"codes\":{";
    for (std::size_t i = 0; i < codeCounts.size(); ++i) {
        if (i > 0)
            out << ',';
        out << '"' << jsonEscape(codeCounts[i].first)
            << "\":" << codeCounts[i].second;
    }
    out << "},\"failures\":[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const CampaignFinding& finding = findings[i];
        if (i > 0)
            out << ',';
        out << "{\"case\":" << finding.caseIndex << ",\"seed\":\""
            << finding.caseSeed << "\",\"code\":\""
            << jsonEscape(finding.code) << "\",\"message\":\""
            << jsonEscape(finding.message) << "\",\"ops\":" << finding.ops
            << ",\"minOps\":" << finding.minimizedOps << ",\"repro\":\""
            << jsonEscape(finding.reproFile) << "\"}";
    }
    out << "]}";
    return out.str();
}

CampaignReport
runCampaign(const CampaignOptions& options)
{
    CampaignReport report;
    report.seed = options.seed;
    report.cases = options.cases;

    std::optional<machine::MachineModel> fixed_machine;
    if (!options.machineText.empty())
        fixed_machine = machine::parseMachine(options.machineText);

    struct Slot
    {
        std::uint64_t caseSeed = 0;
        int ops = 0;
        std::string code;
        std::string message;
    };
    const std::size_t count =
        options.cases > 0 ? static_cast<std::size_t>(options.cases) : 0;
    std::vector<Slot> slots(count);

    const int threads = support::resolveThreads(options.threads, count);
    report.threadsUsed = threads;
    const auto start = std::chrono::steady_clock::now();

    // Phase 1 (parallel): generate and judge every case. Each worker
    // reads only immutable options and writes only its own slot, so the
    // outcome is independent of scheduling (see support::parallelFor).
    support::parallelFor(count, threads, [&](std::size_t index) {
        Slot& slot = slots[index];
        slot.caseSeed = caseSeed(options.seed, index);
        try {
            support::Rng rng(slot.caseSeed);
            const ir::Loop loop =
                workloads::generateLoop(rng, loopNameFor(index),
                                        options.profile);
            const machine::MachineModel machine =
                fixed_machine ? *fixed_machine
                              : generateMachine(rng, machineNameFor(index));
            slot.ops = loop.size();
            OracleOptions oracle = options.oracle;
            oracle.simSeed = slot.caseSeed;
            const OracleVerdict verdict =
                runOracles(loop, machine, options.pipeline, oracle);
            slot.code = verdict.code;
            slot.message = verdict.message;
        } catch (const std::exception& error) {
            // Generation itself crashing is a finding too.
            slot.code = "crash.generator";
            slot.message = error.what();
        }
    });

    // Phase 2 (sequential, case order): minimize findings and write
    // reproducers. Sequential so file output and candidate counts are
    // deterministic.
    if (!options.reproDir.empty())
        std::filesystem::create_directories(options.reproDir);
    for (std::size_t index = 0; index < slots.size(); ++index) {
        const Slot& slot = slots[index];
        if (slot.code.empty()) {
            ++report.clean;
            continue;
        }
        CampaignFinding finding;
        finding.caseIndex = index;
        finding.caseSeed = slot.caseSeed;
        finding.code = slot.code;
        finding.message = slot.message;
        finding.ops = slot.ops;
        finding.minimizedOps = slot.ops;

        if (slot.code != "crash.generator") {
            support::Rng rng(slot.caseSeed);
            ir::Loop loop = workloads::generateLoop(
                rng, loopNameFor(index), options.profile);
            machine::MachineModel machine =
                fixed_machine ? *fixed_machine
                              : generateMachine(rng, machineNameFor(index));
            OracleOptions oracle = options.oracle;
            oracle.simSeed = slot.caseSeed;

            if (options.minimize) {
                MinimizeResult minimized =
                    minimize(loop, machine, options.pipeline, oracle);
                if (minimized.code == slot.code) {
                    loop = std::move(minimized.loop);
                    machine = std::move(minimized.machine);
                    finding.minimizedOps = minimized.minimizedOps;
                    finding.message = minimized.message;
                }
            }

            if (!options.reproDir.empty()) {
                ReproducerCase repro;
                repro.code = finding.code;
                repro.message = finding.message;
                repro.campaignSeed = options.seed;
                repro.caseIndex = index;
                repro.caseSeed = slot.caseSeed;
                repro.simSeed = slot.caseSeed;
                repro.machineText = machine::printMachine(machine);
                repro.loopText = ir::printLoop(loop);
                const std::string path =
                    options.reproDir + "/" +
                    reproducerFileName(options.seed, index);
                writeTextFile(path, renderReproducer(repro));
                finding.reproFile = path;
            }
        }
        report.findings.push_back(std::move(finding));
    }

    std::map<std::string, int> by_code;
    for (const auto& finding : report.findings)
        ++by_code[finding.code];
    report.codeCounts.assign(by_code.begin(), by_code.end());

    report.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return report;
}

} // namespace ims::fuzz
