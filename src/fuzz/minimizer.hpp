#ifndef IMS_FUZZ_MINIMIZER_HPP
#define IMS_FUZZ_MINIMIZER_HPP

#include <string>

#include "core/pipeliner.hpp"
#include "fuzz/oracles.hpp"
#include "ir/loop.hpp"
#include "machine/machine_model.hpp"

namespace ims::fuzz {

/** Outcome of delta-debugging one failing case. */
struct MinimizeResult
{
    /** The smallest (loop, machine) pair still failing with `code`. */
    ir::Loop loop;
    machine::MachineModel machine;
    /** The preserved failure identity (empty if the input was clean). */
    std::string code;
    /** Failure message of the minimized case. */
    std::string message;
    int originalOps = 0;
    int minimizedOps = 0;
    /** Candidate evaluations spent (each one full oracle run). */
    int candidatesTried = 0;
};

/**
 * Shrink a failing (loop, machine, config) triple while re-running the
 * failing oracle after every mutation, keeping only mutations that
 * preserve the exact failure code (so the reduced case fails for the
 * same reason, not merely *a* reason). Greedy passes to a fixed point:
 *
 *  - drop operations (never the loop-closing branch); registers whose
 *    definition disappears but are still read become live-ins;
 *  - simplify operations: drop guards, replace register operands with
 *    immediates, zero memory offsets;
 *  - shrink the machine: drop opcodes the loop no longer uses, drop all
 *    but one alternative per opcode, collapse latencies to 1, drop
 *    resources no reservation table references.
 *
 * Deterministic in its arguments. If the input does not fail at all,
 * returns it unchanged with an empty `code`.
 */
MinimizeResult minimize(const ir::Loop& loop,
                        const machine::MachineModel& machine,
                        const core::PipelinerOptions& config,
                        const OracleOptions& oracle);

} // namespace ims::fuzz

#endif // IMS_FUZZ_MINIMIZER_HPP
