#ifndef IMS_FUZZ_CAMPAIGN_HPP
#define IMS_FUZZ_CAMPAIGN_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeliner.hpp"
#include "fuzz/oracles.hpp"
#include "workloads/random_loops.hpp"

namespace ims::fuzz {

/** Configuration of one fuzzing campaign. */
struct CampaignOptions
{
    /** Master seed; every per-case seed is derived from (seed, index). */
    std::uint64_t seed = 1;
    int cases = 500;
    /** Worker threads; <= 0 means hardware concurrency. */
    int threads = 0;
    /** Delta-debug every finding down to a minimal reproducer. */
    bool minimize = true;
    /** Directory for reproducer files; empty disables writing. */
    std::string reproDir;
    /**
     * Oracle stack configuration. `oracle.simSeed` is ignored: the
     * per-case seed is used so replaying a case needs only its seed.
     */
    OracleOptions oracle;
    /** Base scheduling configuration (verify knobs are forced on). */
    core::PipelinerOptions pipeline;
    /** Loop-shape profile for the generator. */
    workloads::GeneratorProfile profile = workloads::fuzzProfile();
    /**
     * Fixed machine description (machine::parseMachine format). Empty
     * means a fresh random machine per case — the default differential
     * setup.
     */
    std::string machineText;
};

/** One failing case, as reported in the campaign JSON. */
struct CampaignFinding
{
    std::uint64_t caseIndex = 0;
    std::uint64_t caseSeed = 0;
    std::string code;
    std::string message;
    int ops = 0;
    /** Ops after minimization (== ops when minimization is off). */
    int minimizedOps = 0;
    /** Reproducer file path ("" when writing is disabled). */
    std::string reproFile;
};

/** Campaign outcome. toJson() is byte-identical across identical runs. */
struct CampaignReport
{
    std::uint64_t seed = 0;
    int cases = 0;
    /** Cases whose every oracle passed. */
    int clean = 0;
    std::vector<CampaignFinding> findings;
    /** Findings per failure code, sorted by code. */
    std::vector<std::pair<std::string, int>> codeCounts;
    /** Wall time; deliberately NOT part of toJson() (determinism). */
    double wallSeconds = 0.0;
    int threadsUsed = 1;

    /**
     * Deterministic JSON report: seeds, case counts, per-code tallies
     * and the findings with their minimized sizes and reproducer paths.
     * Identical runs (same options) produce byte-identical reports;
     * timing and thread counts are excluded.
     */
    std::string toJson() const;
};

/**
 * Run a campaign: generate `cases` (loop, machine) pairs from the seed
 * schedule, run the full oracle stack on each (in parallel on the
 * atomic-claim worker pool; results land in pre-sized slots, so the
 * report is independent of thread interleaving), then minimize findings
 * sequentially in case order and write their reproducer files.
 */
CampaignReport runCampaign(const CampaignOptions& options);

/** The deterministic per-case seed schedule (SplitMix64-style mix). */
std::uint64_t caseSeed(std::uint64_t campaign_seed,
                       std::uint64_t case_index);

} // namespace ims::fuzz

#endif // IMS_FUZZ_CAMPAIGN_HPP
