#ifndef IMS_FUZZ_MACHINE_GEN_HPP
#define IMS_FUZZ_MACHINE_GEN_HPP

#include <string>

#include "machine/machine_model.hpp"
#include "support/rng.hpp"

namespace ims::fuzz {

/**
 * Generate a random but always-valid machine model for differential
 * fuzzing. Every real opcode is implemented (so any generated loop can be
 * scheduled), but everything else is drawn adversarially:
 *
 *  - resource counts cover the degenerate shapes: single-resource
 *    machines (everything conflicts), ordinary small machines, and
 *    machines with more than 64 resources (exercising the multi-word
 *    paths of the bitmask-compiled reservation tables);
 *  - reservation tables span all three §2.1 classes — simple, block and
 *    complex — including complex tables that reuse one resource at two
 *    offsets and therefore self-conflict at every II dividing the offset
 *    difference;
 *  - opcodes get one to three alternatives with independent tables;
 *  - latencies spread from 1 to ~24 cycles with a bias towards long
 *    memory/divide latencies, stressing RecMII-bound loops.
 *
 * Any table stops self-conflicting once the II exceeds its largest
 * same-resource offset difference, so the iterative scheduler's II
 * escalation always terminates with a legal schedule. Deterministic in
 * the rng state and name.
 */
machine::MachineModel generateMachine(support::Rng& rng,
                                      const std::string& name);

} // namespace ims::fuzz

#endif // IMS_FUZZ_MACHINE_GEN_HPP
