#ifndef IMS_FUZZ_REPRODUCER_HPP
#define IMS_FUZZ_REPRODUCER_HPP

#include <cstdint>
#include <string>

namespace ims::fuzz {

/**
 * A standalone, replayable failing case: the minimized loop and machine
 * in their textual formats plus the failure identity and the seeds that
 * found it. Everything needed to re-run the oracles lives in the file;
 * `ims_fuzz --replay <file>` does exactly that.
 */
struct ReproducerCase
{
    /** Expected failure code (core::Diagnostic::code vocabulary). */
    std::string code;
    /** Failure message at the time of capture (informational). */
    std::string message;
    std::uint64_t campaignSeed = 0;
    std::uint64_t caseIndex = 0;
    /** Per-case rng seed (loop/machine generation). */
    std::uint64_t caseSeed = 0;
    /** Seed of the simulated input data (OracleOptions::simSeed). */
    std::uint64_t simSeed = 0;
    /** machine::printMachine text. */
    std::string machineText;
    /** ir::printLoop text. */
    std::string loopText;
};

/**
 * Render/parse the reproducer file format: `key: value` header lines,
 * then the machine description after a `%% machine` separator and the
 * loop after `%% loop`. parseReproducer throws support::Error on
 * malformed input.
 */
std::string renderReproducer(const ReproducerCase& repro);
ReproducerCase parseReproducer(const std::string& text);

/** Canonical file name: "fuzz_s<campaign seed>_c<case index>.repro". */
std::string reproducerFileName(std::uint64_t campaign_seed,
                               std::uint64_t case_index);

/** Whole-file helpers (throw support::Error on I/O failure). */
void writeTextFile(const std::string& path, const std::string& contents);
std::string readTextFile(const std::string& path);

} // namespace ims::fuzz

#endif // IMS_FUZZ_REPRODUCER_HPP
