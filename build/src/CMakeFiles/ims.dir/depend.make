# Empty dependencies file for ims.
# This may be replaced when dependencies are built.
