file(REMOVE_RECURSE
  "libims.a"
)
