
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/code_generator.cpp" "src/CMakeFiles/ims.dir/codegen/code_generator.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/code_generator.cpp.o.d"
  "/root/repo/src/codegen/emit.cpp" "src/CMakeFiles/ims.dir/codegen/emit.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/emit.cpp.o.d"
  "/root/repo/src/codegen/kernel.cpp" "src/CMakeFiles/ims.dir/codegen/kernel.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/kernel.cpp.o.d"
  "/root/repo/src/codegen/kernel_only.cpp" "src/CMakeFiles/ims.dir/codegen/kernel_only.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/kernel_only.cpp.o.d"
  "/root/repo/src/codegen/lifetimes.cpp" "src/CMakeFiles/ims.dir/codegen/lifetimes.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/lifetimes.cpp.o.d"
  "/root/repo/src/codegen/mve.cpp" "src/CMakeFiles/ims.dir/codegen/mve.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/mve.cpp.o.d"
  "/root/repo/src/codegen/register_allocator.cpp" "src/CMakeFiles/ims.dir/codegen/register_allocator.cpp.o" "gcc" "src/CMakeFiles/ims.dir/codegen/register_allocator.cpp.o.d"
  "/root/repo/src/core/pipeliner.cpp" "src/CMakeFiles/ims.dir/core/pipeliner.cpp.o" "gcc" "src/CMakeFiles/ims.dir/core/pipeliner.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/ims.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/ims.dir/core/report.cpp.o.d"
  "/root/repo/src/frontend/region_builder.cpp" "src/CMakeFiles/ims.dir/frontend/region_builder.cpp.o" "gcc" "src/CMakeFiles/ims.dir/frontend/region_builder.cpp.o.d"
  "/root/repo/src/graph/circuits.cpp" "src/CMakeFiles/ims.dir/graph/circuits.cpp.o" "gcc" "src/CMakeFiles/ims.dir/graph/circuits.cpp.o.d"
  "/root/repo/src/graph/delay_model.cpp" "src/CMakeFiles/ims.dir/graph/delay_model.cpp.o" "gcc" "src/CMakeFiles/ims.dir/graph/delay_model.cpp.o.d"
  "/root/repo/src/graph/dep_graph.cpp" "src/CMakeFiles/ims.dir/graph/dep_graph.cpp.o" "gcc" "src/CMakeFiles/ims.dir/graph/dep_graph.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/CMakeFiles/ims.dir/graph/graph_builder.cpp.o" "gcc" "src/CMakeFiles/ims.dir/graph/graph_builder.cpp.o.d"
  "/root/repo/src/graph/scc.cpp" "src/CMakeFiles/ims.dir/graph/scc.cpp.o" "gcc" "src/CMakeFiles/ims.dir/graph/scc.cpp.o.d"
  "/root/repo/src/ir/loop.cpp" "src/CMakeFiles/ims.dir/ir/loop.cpp.o" "gcc" "src/CMakeFiles/ims.dir/ir/loop.cpp.o.d"
  "/root/repo/src/ir/loop_builder.cpp" "src/CMakeFiles/ims.dir/ir/loop_builder.cpp.o" "gcc" "src/CMakeFiles/ims.dir/ir/loop_builder.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/CMakeFiles/ims.dir/ir/opcode.cpp.o" "gcc" "src/CMakeFiles/ims.dir/ir/opcode.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/ims.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/ims.dir/ir/parser.cpp.o.d"
  "/root/repo/src/machine/cydra5.cpp" "src/CMakeFiles/ims.dir/machine/cydra5.cpp.o" "gcc" "src/CMakeFiles/ims.dir/machine/cydra5.cpp.o.d"
  "/root/repo/src/machine/machine_builder.cpp" "src/CMakeFiles/ims.dir/machine/machine_builder.cpp.o" "gcc" "src/CMakeFiles/ims.dir/machine/machine_builder.cpp.o.d"
  "/root/repo/src/machine/machine_model.cpp" "src/CMakeFiles/ims.dir/machine/machine_model.cpp.o" "gcc" "src/CMakeFiles/ims.dir/machine/machine_model.cpp.o.d"
  "/root/repo/src/machine/machines.cpp" "src/CMakeFiles/ims.dir/machine/machines.cpp.o" "gcc" "src/CMakeFiles/ims.dir/machine/machines.cpp.o.d"
  "/root/repo/src/machine/reservation_table.cpp" "src/CMakeFiles/ims.dir/machine/reservation_table.cpp.o" "gcc" "src/CMakeFiles/ims.dir/machine/reservation_table.cpp.o.d"
  "/root/repo/src/mii/mii.cpp" "src/CMakeFiles/ims.dir/mii/mii.cpp.o" "gcc" "src/CMakeFiles/ims.dir/mii/mii.cpp.o.d"
  "/root/repo/src/mii/min_dist.cpp" "src/CMakeFiles/ims.dir/mii/min_dist.cpp.o" "gcc" "src/CMakeFiles/ims.dir/mii/min_dist.cpp.o.d"
  "/root/repo/src/mii/rec_mii.cpp" "src/CMakeFiles/ims.dir/mii/rec_mii.cpp.o" "gcc" "src/CMakeFiles/ims.dir/mii/rec_mii.cpp.o.d"
  "/root/repo/src/mii/res_mii.cpp" "src/CMakeFiles/ims.dir/mii/res_mii.cpp.o" "gcc" "src/CMakeFiles/ims.dir/mii/res_mii.cpp.o.d"
  "/root/repo/src/sched/height_r.cpp" "src/CMakeFiles/ims.dir/sched/height_r.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/height_r.cpp.o.d"
  "/root/repo/src/sched/iterative_scheduler.cpp" "src/CMakeFiles/ims.dir/sched/iterative_scheduler.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/iterative_scheduler.cpp.o.d"
  "/root/repo/src/sched/list_scheduler.cpp" "src/CMakeFiles/ims.dir/sched/list_scheduler.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/modulo_scheduler.cpp" "src/CMakeFiles/ims.dir/sched/modulo_scheduler.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/modulo_scheduler.cpp.o.d"
  "/root/repo/src/sched/mrt.cpp" "src/CMakeFiles/ims.dir/sched/mrt.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/mrt.cpp.o.d"
  "/root/repo/src/sched/partial_schedule.cpp" "src/CMakeFiles/ims.dir/sched/partial_schedule.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/partial_schedule.cpp.o.d"
  "/root/repo/src/sched/priority.cpp" "src/CMakeFiles/ims.dir/sched/priority.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/priority.cpp.o.d"
  "/root/repo/src/sched/slack_scheduler.cpp" "src/CMakeFiles/ims.dir/sched/slack_scheduler.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/slack_scheduler.cpp.o.d"
  "/root/repo/src/sched/verifier.cpp" "src/CMakeFiles/ims.dir/sched/verifier.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sched/verifier.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/ims.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/pipeline_simulator.cpp" "src/CMakeFiles/ims.dir/sim/pipeline_simulator.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sim/pipeline_simulator.cpp.o.d"
  "/root/repo/src/sim/section_executor.cpp" "src/CMakeFiles/ims.dir/sim/section_executor.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sim/section_executor.cpp.o.d"
  "/root/repo/src/sim/sequential_interpreter.cpp" "src/CMakeFiles/ims.dir/sim/sequential_interpreter.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sim/sequential_interpreter.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/CMakeFiles/ims.dir/sim/value.cpp.o" "gcc" "src/CMakeFiles/ims.dir/sim/value.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/CMakeFiles/ims.dir/support/error.cpp.o" "gcc" "src/CMakeFiles/ims.dir/support/error.cpp.o.d"
  "/root/repo/src/support/regression.cpp" "src/CMakeFiles/ims.dir/support/regression.cpp.o" "gcc" "src/CMakeFiles/ims.dir/support/regression.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/ims.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/ims.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/ims.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/ims.dir/support/table.cpp.o.d"
  "/root/repo/src/transform/load_store_elim.cpp" "src/CMakeFiles/ims.dir/transform/load_store_elim.cpp.o" "gcc" "src/CMakeFiles/ims.dir/transform/load_store_elim.cpp.o.d"
  "/root/repo/src/transform/unroll.cpp" "src/CMakeFiles/ims.dir/transform/unroll.cpp.o" "gcc" "src/CMakeFiles/ims.dir/transform/unroll.cpp.o.d"
  "/root/repo/src/workloads/corpus.cpp" "src/CMakeFiles/ims.dir/workloads/corpus.cpp.o" "gcc" "src/CMakeFiles/ims.dir/workloads/corpus.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/CMakeFiles/ims.dir/workloads/kernels.cpp.o" "gcc" "src/CMakeFiles/ims.dir/workloads/kernels.cpp.o.d"
  "/root/repo/src/workloads/profile_model.cpp" "src/CMakeFiles/ims.dir/workloads/profile_model.cpp.o" "gcc" "src/CMakeFiles/ims.dir/workloads/profile_model.cpp.o.d"
  "/root/repo/src/workloads/random_loops.cpp" "src/CMakeFiles/ims.dir/workloads/random_loops.cpp.o" "gcc" "src/CMakeFiles/ims.dir/workloads/random_loops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
