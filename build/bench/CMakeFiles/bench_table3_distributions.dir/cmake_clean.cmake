file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_distributions.dir/bench_table3_distributions.cpp.o"
  "CMakeFiles/bench_table3_distributions.dir/bench_table3_distributions.cpp.o.d"
  "bench_table3_distributions"
  "bench_table3_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
