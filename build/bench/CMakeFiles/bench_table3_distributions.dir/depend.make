# Empty dependencies file for bench_table3_distributions.
# This may be replaced when dependencies are built.
