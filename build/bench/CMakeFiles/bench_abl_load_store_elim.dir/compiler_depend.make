# Empty compiler generated dependencies file for bench_abl_load_store_elim.
# This may be replaced when dependencies are built.
