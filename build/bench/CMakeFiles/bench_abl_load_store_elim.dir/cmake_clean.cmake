file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_load_store_elim.dir/bench_abl_load_store_elim.cpp.o"
  "CMakeFiles/bench_abl_load_store_elim.dir/bench_abl_load_store_elim.cpp.o.d"
  "bench_abl_load_store_elim"
  "bench_abl_load_store_elim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_load_store_elim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
