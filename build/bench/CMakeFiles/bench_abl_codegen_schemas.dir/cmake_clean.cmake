file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_codegen_schemas.dir/bench_abl_codegen_schemas.cpp.o"
  "CMakeFiles/bench_abl_codegen_schemas.dir/bench_abl_codegen_schemas.cpp.o.d"
  "bench_abl_codegen_schemas"
  "bench_abl_codegen_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_codegen_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
