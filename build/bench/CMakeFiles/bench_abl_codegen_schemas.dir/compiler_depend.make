# Empty compiler generated dependencies file for bench_abl_codegen_schemas.
# This may be replaced when dependencies are built.
