# Empty dependencies file for bench_abl_machines.
# This may be replaced when dependencies are built.
