file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_machines.dir/bench_abl_machines.cpp.o"
  "CMakeFiles/bench_abl_machines.dir/bench_abl_machines.cpp.o.d"
  "bench_abl_machines"
  "bench_abl_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
