# Empty dependencies file for bench_fig2to5_algorithm_trace.
# This may be replaced when dependencies are built.
