file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_forward_progress.dir/bench_abl_forward_progress.cpp.o"
  "CMakeFiles/bench_abl_forward_progress.dir/bench_abl_forward_progress.cpp.o.d"
  "bench_abl_forward_progress"
  "bench_abl_forward_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_forward_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
