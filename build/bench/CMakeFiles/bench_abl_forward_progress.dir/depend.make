# Empty dependencies file for bench_abl_forward_progress.
# This may be replaced when dependencies are built.
