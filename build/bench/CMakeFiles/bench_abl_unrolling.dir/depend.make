# Empty dependencies file for bench_abl_unrolling.
# This may be replaced when dependencies are built.
