file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_unrolling.dir/bench_abl_unrolling.cpp.o"
  "CMakeFiles/bench_abl_unrolling.dir/bench_abl_unrolling.cpp.o.d"
  "bench_abl_unrolling"
  "bench_abl_unrolling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_unrolling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
