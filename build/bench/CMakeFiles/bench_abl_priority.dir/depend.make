# Empty dependencies file for bench_abl_priority.
# This may be replaced when dependencies are built.
