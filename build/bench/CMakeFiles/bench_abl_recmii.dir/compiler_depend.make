# Empty compiler generated dependencies file for bench_abl_recmii.
# This may be replaced when dependencies are built.
