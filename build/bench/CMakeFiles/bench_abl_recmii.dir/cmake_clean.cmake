file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_recmii.dir/bench_abl_recmii.cpp.o"
  "CMakeFiles/bench_abl_recmii.dir/bench_abl_recmii.cpp.o.d"
  "bench_abl_recmii"
  "bench_abl_recmii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_recmii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
