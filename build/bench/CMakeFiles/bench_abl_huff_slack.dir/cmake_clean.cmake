file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_huff_slack.dir/bench_abl_huff_slack.cpp.o"
  "CMakeFiles/bench_abl_huff_slack.dir/bench_abl_huff_slack.cpp.o.d"
  "bench_abl_huff_slack"
  "bench_abl_huff_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_huff_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
