# Empty dependencies file for bench_abl_huff_slack.
# This may be replaced when dependencies are built.
