# Empty dependencies file for bench_abl_delay_model.
# This may be replaced when dependencies are built.
