file(REMOVE_RECURSE
  "CMakeFiles/load_store_elim_test.dir/load_store_elim_test.cpp.o"
  "CMakeFiles/load_store_elim_test.dir/load_store_elim_test.cpp.o.d"
  "load_store_elim_test"
  "load_store_elim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_store_elim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
