# Empty compiler generated dependencies file for load_store_elim_test.
# This may be replaced when dependencies are built.
