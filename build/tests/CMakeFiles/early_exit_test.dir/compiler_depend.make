# Empty compiler generated dependencies file for early_exit_test.
# This may be replaced when dependencies are built.
