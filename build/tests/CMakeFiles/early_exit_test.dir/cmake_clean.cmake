file(REMOVE_RECURSE
  "CMakeFiles/early_exit_test.dir/early_exit_test.cpp.o"
  "CMakeFiles/early_exit_test.dir/early_exit_test.cpp.o.d"
  "early_exit_test"
  "early_exit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_exit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
