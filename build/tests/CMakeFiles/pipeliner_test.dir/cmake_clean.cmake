file(REMOVE_RECURSE
  "CMakeFiles/pipeliner_test.dir/pipeliner_test.cpp.o"
  "CMakeFiles/pipeliner_test.dir/pipeliner_test.cpp.o.d"
  "pipeliner_test"
  "pipeliner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeliner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
