file(REMOVE_RECURSE
  "CMakeFiles/heightr_test.dir/heightr_test.cpp.o"
  "CMakeFiles/heightr_test.dir/heightr_test.cpp.o.d"
  "heightr_test"
  "heightr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heightr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
