# Empty compiler generated dependencies file for heightr_test.
# This may be replaced when dependencies are built.
