# Empty dependencies file for slack_scheduler_test.
# This may be replaced when dependencies are built.
