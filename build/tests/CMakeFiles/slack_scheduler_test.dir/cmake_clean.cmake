file(REMOVE_RECURSE
  "CMakeFiles/slack_scheduler_test.dir/slack_scheduler_test.cpp.o"
  "CMakeFiles/slack_scheduler_test.dir/slack_scheduler_test.cpp.o.d"
  "slack_scheduler_test"
  "slack_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slack_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
