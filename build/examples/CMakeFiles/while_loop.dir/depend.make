# Empty dependencies file for while_loop.
# This may be replaced when dependencies are built.
