file(REMOVE_RECURSE
  "CMakeFiles/while_loop.dir/while_loop.cpp.o"
  "CMakeFiles/while_loop.dir/while_loop.cpp.o.d"
  "while_loop"
  "while_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/while_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
