# Empty compiler generated dependencies file for livermore_kernels.
# This may be replaced when dependencies are built.
