file(REMOVE_RECURSE
  "CMakeFiles/livermore_kernels.dir/livermore_kernels.cpp.o"
  "CMakeFiles/livermore_kernels.dir/livermore_kernels.cpp.o.d"
  "livermore_kernels"
  "livermore_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/livermore_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
