# Empty dependencies file for pipeline_simulation.
# This may be replaced when dependencies are built.
