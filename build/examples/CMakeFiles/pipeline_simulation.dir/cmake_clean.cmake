file(REMOVE_RECURSE
  "CMakeFiles/pipeline_simulation.dir/pipeline_simulation.cpp.o"
  "CMakeFiles/pipeline_simulation.dir/pipeline_simulation.cpp.o.d"
  "pipeline_simulation"
  "pipeline_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
