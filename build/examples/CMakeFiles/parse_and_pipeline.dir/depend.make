# Empty dependencies file for parse_and_pipeline.
# This may be replaced when dependencies are built.
