file(REMOVE_RECURSE
  "CMakeFiles/parse_and_pipeline.dir/parse_and_pipeline.cpp.o"
  "CMakeFiles/parse_and_pipeline.dir/parse_and_pipeline.cpp.o.d"
  "parse_and_pipeline"
  "parse_and_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_and_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
