file(REMOVE_RECURSE
  "CMakeFiles/ims-schedule.dir/ims_schedule.cpp.o"
  "CMakeFiles/ims-schedule.dir/ims_schedule.cpp.o.d"
  "ims-schedule"
  "ims-schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ims-schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
