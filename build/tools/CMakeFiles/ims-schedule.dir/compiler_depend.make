# Empty compiler generated dependencies file for ims-schedule.
# This may be replaced when dependencies are built.
