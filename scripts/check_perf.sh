#!/usr/bin/env bash
# Build the performance benchmarks in Release mode and run the gates:
#
#  1. bench_sched_hotpath — verify schedule identity against the
#     checked-in seed golden, and fail if any throughput metric regresses
#     by more than 10% against the checked-in baseline
#     (BENCH_sched_hotpath.json at the repo root). --scaling-gate also
#     requires the work-stealing BatchPipeliner to reach >=3x loops/s at
#     8 threads over 1 thread — enforced only when the host reports >= 8
#     hardware threads; smaller machines record the ratio with
#     "gate_enforced": false in the JSON.
#  2. bench_ii_search — racing/feedback-vs-linear II search: bit-identity
#     of racing and feedback results is always enforced, as is the
#     feedback gate (on every provable-gap workload the feedback search
#     must skip >=1 candidate II with an exact infeasibility proof and
#     start strictly fewer attempts than linear at the equal final II);
#     the >=1.5x geomean racing speedup floor at 8 threads is enforced
#     only when the host has at least 8 hardware threads (the bench
#     reports the gate as skipped otherwise, and records the core count
#     in the JSON). The gap family's deterministic results (II, skips,
#     started attempts, billed steps) are additionally drift-checked
#     against the checked-in BENCH_ii_search.json baseline.
#  3. bench_service — schedule-cache traffic replay: cache hits must be
#     bit-identical to cold runs, the replay pass must hit >=95% of the
#     time, and the hit-path p50 latency must be >=10x faster than the
#     cold-path p50.
#  4. bench_program_compile — whole-program driver gates: pipeline
#     compression must never increase the cycle count on any corpus
#     program at any checked trip, must strictly reduce it on at least
#     one, and every compiled program must match the sequential
#     reference (baseline: BENCH_program.json at the repo root).
#
# Usage: scripts/check_perf.sh [build-dir]   (default: build-perf)
#
# To refresh the baselines after an intentional performance change:
#   <build-dir>/bench/bench_sched_hotpath \
#       --golden bench/data/sched_identity_seed.json \
#       --out BENCH_sched_hotpath.json
#   <build-dir>/bench/bench_ii_search --out BENCH_ii_search.json
#   <build-dir>/bench/bench_service --out BENCH_service.json
#   <build-dir>/bench/bench_program_compile --out BENCH_program.json
# and commit the new BENCH_*.json files.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"
BASELINE="BENCH_sched_hotpath.json"

if [ ! -f "$BASELINE" ]; then
    echo "check_perf: missing baseline $BASELINE" >&2
    exit 1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_sched_hotpath bench_ii_search \
    bench_service bench_program_compile

echo "== bench_sched_hotpath (identity + >10% regression + scaling gate) =="
"$BUILD_DIR/bench/bench_sched_hotpath" \
    --golden bench/data/sched_identity_seed.json \
    --baseline "$BASELINE" \
    --scaling-gate \
    --out "$BUILD_DIR/BENCH_sched_hotpath.json"

echo "== bench_ii_search (racing/feedback identity + feedback savings + "
echo "   hardware-gated speedup) =="
"$BUILD_DIR/bench/bench_ii_search" \
    --out "$BUILD_DIR/BENCH_ii_search.json"
# The provable-gap family is deterministic (single-worker strategies, no
# timing dependence): any drift from the checked-in baseline is a search
# or scheduler change that needs a deliberate baseline refresh.
python3 - "$BUILD_DIR/BENCH_ii_search.json" BENCH_ii_search.json <<'EOF'
import json, sys
def key(r):
    return (r["name"], r["backend"])
new = {key(r): r for r in json.load(open(sys.argv[1]))["gap_family"]}
old = {key(r): r for r in json.load(open(sys.argv[2]))["gap_family"]}
drift = []
for name, baseline in old.items():
    current = new.get(name)
    if current is None:
        drift.append(f"{name}: missing from the new report")
        continue
    for field in ("mii", "ii", "attempts", "skipped", "linear_started",
                  "feedback_started", "linear_steps", "feedback_steps"):
        if current[field] != baseline[field]:
            drift.append(
                f"{name}: {field} {baseline[field]} -> {current[field]}")
if drift:
    print("check_perf: feedback gap family drifted from BENCH_ii_search"
          ".json:", file=sys.stderr)
    for line in drift:
        print("  " + line, file=sys.stderr)
    sys.exit(1)
EOF

echo "== scheduler backend gate (exact must stay off the hot path) =="
# The hot-path configurations use default options, which select the
# iterative backend; the exact branch-and-bound backend is an optimality
# prover, not a production scheduler, and must never end up here.
if grep -q '"scheduler": "exact"' "$BUILD_DIR/BENCH_sched_hotpath.json"; then
    echo "check_perf: exact backend selected on a hot-path config" >&2
    exit 1
fi
if ! grep -q '"scheduler": "iterative"' "$BUILD_DIR/BENCH_sched_hotpath.json"; then
    echo "check_perf: hot-path samples missing the iterative backend" >&2
    exit 1
fi

echo "== bench_service (hit identity + >=95% replay hits + 10x hit p50) =="
"$BUILD_DIR/bench/bench_service" --quick --min-hit-speedup 10 \
    --out "$BUILD_DIR/BENCH_service.json"

echo "== bench_program_compile (compression never regresses, wins >=1) =="
"$BUILD_DIR/bench/bench_program_compile" \
    --out "$BUILD_DIR/BENCH_program.json"
# The compressed cycle counts are deterministic: any drift from the
# checked-in baseline is a scheduling or compression change that needs a
# deliberate baseline refresh.
python3 - "$BUILD_DIR/BENCH_program.json" BENCH_program.json <<'EOF'
import json, sys
new = {r["program"]: r for r in json.load(open(sys.argv[1]))["results"]}
old = {r["program"]: r for r in json.load(open(sys.argv[2]))["results"]}
drift = []
for name, baseline in old.items():
    current = new.get(name)
    if current is None:
        drift.append(f"{name}: missing from the new report")
        continue
    for key in ("ii", "naive_cycles", "compressed_cycles"):
        if current[key] != baseline[key]:
            drift.append(f"{name}: {key} {baseline[key]} -> {current[key]}")
if drift:
    print("check_perf: program cycle counts drifted from BENCH_program.json:",
          file=sys.stderr)
    for line in drift:
        print("  " + line, file=sys.stderr)
    sys.exit(1)
EOF

echo "perf: all checks passed"
