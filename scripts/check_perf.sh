#!/usr/bin/env bash
# Build the scheduler hot-path benchmark in Release mode, verify schedule
# identity against the checked-in seed golden, and fail if any throughput
# metric regresses by more than 10% against the checked-in baseline
# (BENCH_sched_hotpath.json at the repo root).
#
# Usage: scripts/check_perf.sh [build-dir]   (default: build-perf)
#
# To refresh the baseline after an intentional performance change:
#   <build-dir>/bench/bench_sched_hotpath \
#       --golden bench/data/sched_identity_seed.json \
#       --out BENCH_sched_hotpath.json
# and commit the new BENCH_sched_hotpath.json.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-perf}"
BASELINE="BENCH_sched_hotpath.json"

if [ ! -f "$BASELINE" ]; then
    echo "check_perf: missing baseline $BASELINE" >&2
    exit 1
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_sched_hotpath

echo "== bench_sched_hotpath (identity + >10% regression gate) =="
"$BUILD_DIR/bench/bench_sched_hotpath" \
    --golden bench/data/sched_identity_seed.json \
    --baseline "$BASELINE" \
    --out "$BUILD_DIR/BENCH_sched_hotpath.json"

echo "perf: all checks passed"
