#!/usr/bin/env bash
# Build the batch-pipelining targets under ThreadSanitizer and run the
# concurrency-sensitive tests plus a small multi-threaded bench sweep.
# Any data race in the shared-MachineModel batch driver fails the script.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DIMS_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" -j \
    --target batch_pipeliner_test telemetry_test pipeliner_test \
             ii_search_test bench_batch_throughput

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

echo "== batch_pipeliner_test (tsan) =="
"$BUILD_DIR/tests/batch_pipeliner_test"
echo "== telemetry_test (tsan) =="
"$BUILD_DIR/tests/telemetry_test"
echo "== pipeliner_test (tsan) =="
"$BUILD_DIR/tests/pipeliner_test"
echo "== ii_search_test (tsan) =="
"$BUILD_DIR/tests/ii_search_test"
echo "== bench_batch_throughput (tsan, small sweep) =="
"$BUILD_DIR/bench/bench_batch_throughput" --loops 40 --threads 1,4,8

echo "tsan: all checks passed"
