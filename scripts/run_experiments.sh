#!/usr/bin/env bash
# Regenerate every table/figure/ablation of EXPERIMENTS.md into results/.
# Usage: scripts/run_experiments.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="results"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

mkdir -p "$RESULTS_DIR"
for bench in "$BUILD_DIR"/bench/bench_*; do
    [ -x "$bench" ] && [ -f "$bench" ] || continue
    name="$(basename "$bench")"
    echo "== $name =="
    if [ "$name" = "bench_micro_scheduler" ]; then
        "$bench" --benchmark_min_time=0.1 | tee "$RESULTS_DIR/$name.txt"
    else
        "$bench" | tee "$RESULTS_DIR/$name.txt"
    fi
done

echo
echo "All outputs saved under $RESULTS_DIR/."
