#!/usr/bin/env bash
# Full local CI: tier-1 tests, ThreadSanitizer concurrency checks, the
# scheduler hot-path performance gate, a differential-fuzz smoke run,
# a whole-program equivalence smoke, and a schedule-service replay
# smoke.
#
# Usage: scripts/ci.sh
#   IMS_CI_SKIP_TSAN=1  skips the ThreadSanitizer stage (e.g. where the
#                       toolchain lacks tsan runtime support).
#   IMS_CI_SKIP_PERF=1  skips the performance gate (e.g. on loaded or
#                       throttled machines where timing is meaningless).
#   IMS_CI_SKIP_FUZZ=1  skips the fuzz smoke stage.
#   IMS_CI_SKIP_PROGRAM=1  skips the program equivalence smoke.
#   IMS_CI_SKIP_SERVICE=1  skips the service replay smoke.
#   FUZZ_BUDGET=<N>     fuzz case count (default 500 — the quick smoke
#                       run; set e.g. 20000 for a long overnight run).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== stage 1/6: tier-1 tests ===="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# Schedule-identity check + quick hot-path smoke on the default build.
# Unlike the Release-mode perf gate (stage 3, skippable on loaded
# machines), identity is timing-independent and always runs: every
# corpus kernel must still produce the bit-identical seed schedule.
build/bench/bench_sched_hotpath --quick \
    --golden bench/data/sched_identity_seed.json \
    --out build/BENCH_sched_hotpath_quick.json

if [ "${IMS_CI_SKIP_TSAN:-0}" != "1" ]; then
    echo "==== stage 2/6: ThreadSanitizer ===="
    scripts/check_tsan.sh
else
    echo "==== stage 2/6: ThreadSanitizer (skipped) ===="
fi

if [ "${IMS_CI_SKIP_PERF:-0}" != "1" ]; then
    echo "==== stage 3/6: performance gate ===="
    scripts/check_perf.sh
else
    echo "==== stage 3/6: performance gate (skipped) ===="
fi

if [ "${IMS_CI_SKIP_FUZZ:-0}" != "1" ]; then
    echo "==== stage 4/6: differential fuzz smoke ===="
    # Fixed seed so the stage is reproducible; any finding fails CI and
    # leaves its minimized reproducer under build/fuzz-repro/ for replay
    # with `build/tools/ims-fuzz --replay <file>`. The pipeline under
    # test uses the racing II search, so the campaign's sim-equivalence
    # and thread-invariance oracles double as a determinism check for
    # the race (racing must be bit-identical to linear).
    build/tools/ims-fuzz --seed 20260806 --cases "${FUZZ_BUDGET:-500}" \
        --ii-search racing --ii-threads 2 \
        --repro-dir build/fuzz-repro --out build/fuzz-report.json
    # Feedback-search smoke: same oracle stack with the feedback-guided
    # II search, so the sim-equivalence oracles double as a soundness
    # check for the probe's skip proofs (an unsound skip would change
    # the winning II and diverge from the sequential reference).
    build/tools/ims-fuzz --seed 20260808 \
        --cases "${FEEDBACK_FUZZ_BUDGET:-200}" \
        --ii-search feedback \
        --repro-dir build/fuzz-repro --out build/fuzz-feedback-report.json
    # Optimality smoke: re-pipeline each clean case with the exact
    # backend (capped node budget; budget-exhausted searches are
    # skipped). opt.ii_gap findings are *known heuristic quality gaps*
    # (Rau: near-optimal, not optimal) and are tolerated; any other code
    # — opt.exact_invalid above all, an unsound exact proof — fails the
    # stage.
    build/tools/ims-fuzz --seed 20260806 --cases "${OPT_GAP_BUDGET:-150}" \
        --machine cydra5 --oracle opt.ii_gap --exact-budget 100000 \
        --repro-dir build/fuzz-repro \
        --out build/fuzz-optgap-report.json || true
    if grep -o '"code":"[^"]*"' build/fuzz-optgap-report.json \
            | grep -v '"code":"opt.ii_gap"'; then
        echo "ci: optimality smoke found non-gap findings" >&2
        exit 1
    fi
else
    echo "==== stage 4/6: differential fuzz smoke (skipped) ===="
fi

if [ "${IMS_CI_SKIP_PROGRAM:-0}" != "1" ]; then
    echo "==== stage 5/6: whole-program equivalence smoke ===="
    # Every corpus program through the program-level driver (EC/LC loop
    # control, stage predicates, pipeline compression) at trip counts
    # {0,1,2,5,17}, compiled execution vs the sequential reference with
    # a fixed input seed — timing-independent, so it always gates. The
    # fuzz campaign covers the same driver on random loops via
    # --oracle program.equiv.
    build/tools/ims-schedule --program all --verify --quiet
    build/tools/ims-fuzz --seed 20260807 \
        --cases "${PROGRAM_FUZZ_BUDGET:-60}" \
        --machine cydra5 --oracle program.equiv \
        --repro-dir build/fuzz-repro \
        --out build/fuzz-program-report.json
else
    echo "==== stage 5/6: whole-program equivalence smoke (skipped) ===="
fi

if [ "${IMS_CI_SKIP_SERVICE:-0}" != "1" ]; then
    echo "==== stage 6/6: schedule-service replay smoke ===="
    scripts/check_service.sh build
else
    echo "==== stage 6/6: schedule-service replay smoke (skipped) ===="
fi

echo "ci: all stages passed"
