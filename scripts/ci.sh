#!/usr/bin/env bash
# Full local CI: tier-1 tests, ThreadSanitizer concurrency checks, the
# scheduler hot-path performance gate, and a differential-fuzz smoke run.
#
# Usage: scripts/ci.sh
#   IMS_CI_SKIP_TSAN=1  skips the ThreadSanitizer stage (e.g. where the
#                       toolchain lacks tsan runtime support).
#   IMS_CI_SKIP_PERF=1  skips the performance gate (e.g. on loaded or
#                       throttled machines where timing is meaningless).
#   IMS_CI_SKIP_FUZZ=1  skips the fuzz smoke stage.
#   FUZZ_BUDGET=<N>     fuzz case count (default 500 — the quick smoke
#                       run; set e.g. 20000 for a long overnight run).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== stage 1/4: tier-1 tests ===="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${IMS_CI_SKIP_TSAN:-0}" != "1" ]; then
    echo "==== stage 2/4: ThreadSanitizer ===="
    scripts/check_tsan.sh
else
    echo "==== stage 2/4: ThreadSanitizer (skipped) ===="
fi

if [ "${IMS_CI_SKIP_PERF:-0}" != "1" ]; then
    echo "==== stage 3/4: performance gate ===="
    scripts/check_perf.sh
else
    echo "==== stage 3/4: performance gate (skipped) ===="
fi

if [ "${IMS_CI_SKIP_FUZZ:-0}" != "1" ]; then
    echo "==== stage 4/4: differential fuzz smoke ===="
    # Fixed seed so the stage is reproducible; any finding fails CI and
    # leaves its minimized reproducer under build/fuzz-repro/ for replay
    # with `build/tools/ims-fuzz --replay <file>`. The pipeline under
    # test uses the racing II search, so the campaign's sim-equivalence
    # and thread-invariance oracles double as a determinism check for
    # the race (racing must be bit-identical to linear).
    build/tools/ims-fuzz --seed 20260806 --cases "${FUZZ_BUDGET:-500}" \
        --ii-search racing --ii-threads 2 \
        --repro-dir build/fuzz-repro --out build/fuzz-report.json
else
    echo "==== stage 4/4: differential fuzz smoke (skipped) ===="
fi

echo "ci: all stages passed"
