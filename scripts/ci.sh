#!/usr/bin/env bash
# Full local CI: tier-1 tests, ThreadSanitizer concurrency checks, and the
# scheduler hot-path performance gate.
#
# Usage: scripts/ci.sh
#   IMS_CI_SKIP_TSAN=1  skips the ThreadSanitizer stage (e.g. where the
#                       toolchain lacks tsan runtime support).
#   IMS_CI_SKIP_PERF=1  skips the performance gate (e.g. on loaded or
#                       throttled machines where timing is meaningless).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== stage 1/3: tier-1 tests ===="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${IMS_CI_SKIP_TSAN:-0}" != "1" ]; then
    echo "==== stage 2/3: ThreadSanitizer ===="
    scripts/check_tsan.sh
else
    echo "==== stage 2/3: ThreadSanitizer (skipped) ===="
fi

if [ "${IMS_CI_SKIP_PERF:-0}" != "1" ]; then
    echo "==== stage 3/3: performance gate ===="
    scripts/check_perf.sh
else
    echo "==== stage 3/3: performance gate (skipped) ===="
fi

echo "ci: all stages passed"
