#!/usr/bin/env bash
# Schedule-service replay smoke: drive a canned, fixed request stream
# through ims-serve twice in one server run and assert
#
#  1. every `result` line of pass 2 is byte-identical to pass 1 (the
#     result line is a pure function of (loop, machine, options); the
#     cache must never change what is computed, only how fast),
#  2. >= 95% of pass-2 requests are cache hits (here: all of them —
#     the stream repeats pass 1 exactly),
#  3. a second, fresh server process replaying the same stream produces
#     byte-identical `result` lines (cross-process determinism).
#
# Usage: scripts/check_service.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SERVE="$BUILD_DIR/tools/ims-serve"
SMOKE_DIR="$BUILD_DIR/service-smoke"

if [ ! -x "$SERVE" ]; then
    echo "check_service: $SERVE not built" >&2
    exit 1
fi
mkdir -p "$SMOKE_DIR"

cat > "$SMOKE_DIR/daxpy.ir" <<'EOF'
loop daxpy
livein a
recurrence ax
ax = aadd ax[3], #24
xv = load ax @ X 0
yv = load ax @ Y 0
t = mul a, xv
s = add t, yv
_ = store ax, s @ Y 0
recurrence n
n = asub n[3], #3
_ = branch n
EOF

cat > "$SMOKE_DIR/dot.ir" <<'EOF'
loop dot
recurrence ax
ax = aadd ax[1], #8
recurrence bx
bx = aadd bx[1], #8
xv = load ax @ X 0
yv = load bx @ Y 0
p = mul xv, yv
recurrence acc
acc = add acc[1], p
recurrence n
n = asub n[1], #1
_ = branch n
EOF

cat > "$SMOKE_DIR/scale.ir" <<'EOF'
loop scale
livein k
recurrence ax
ax = aadd ax[2], #16
xv = load ax @ X 0
y = mul k, xv
_ = store ax, y @ X 0
recurrence n
n = asub n[2], #2
_ = branch n
EOF

# One pass of the canned stream: each loop on two machines, from two
# clients, with the hot loop repeated — 8 requests per pass.
emit_pass() {
    local loop
    for loop in daxpy dot scale daxpy; do
        printf 'schedule %s client=ci machine=cydra5\n' \
            "$(wc -c < "$SMOKE_DIR/$loop.ir")"
        cat "$SMOKE_DIR/$loop.ir"
    done
    for loop in daxpy scale; do
        printf 'schedule %s client=ci2 machine=clean64\n' \
            "$(wc -c < "$SMOKE_DIR/$loop.ir")"
        cat "$SMOKE_DIR/$loop.ir"
    done
}
emit_pass > "$SMOKE_DIR/pass.req"
PASS_REQUESTS=6

cat "$SMOKE_DIR/pass.req" "$SMOKE_DIR/pass.req" > "$SMOKE_DIR/stream.req"

# Single worker for the replay run: requests complete strictly in
# order, so every pass-2 request finds its pass-1 entry resident.
"$SERVE" --threads 1 < "$SMOKE_DIR/stream.req" > "$SMOKE_DIR/run1.out"
grep '^result' "$SMOKE_DIR/run1.out" > "$SMOKE_DIR/run1.results"

TOTAL=$(wc -l < "$SMOKE_DIR/run1.results")
if [ "$TOTAL" -ne $((2 * PASS_REQUESTS)) ]; then
    echo "check_service: expected $((2 * PASS_REQUESTS)) results, got $TOTAL" >&2
    exit 1
fi

echo "== replay identity (pass 2 vs pass 1, byte-for-byte) =="
head -n "$PASS_REQUESTS" "$SMOKE_DIR/run1.results" > "$SMOKE_DIR/pass1.results"
tail -n "$PASS_REQUESTS" "$SMOKE_DIR/run1.results" > "$SMOKE_DIR/pass2.results"
if ! diff -u "$SMOKE_DIR/pass1.results" "$SMOKE_DIR/pass2.results"; then
    echo "check_service: replayed results differ from the cold pass" >&2
    exit 1
fi

echo "== pass-2 hit rate (floor: 95%) =="
PASS2_HITS=$(grep '^meta' "$SMOKE_DIR/run1.out" | tail -n "$PASS_REQUESTS" \
    | grep -c 'hit=1' || true)
# ceil(0.95 * PASS_REQUESTS)
MIN_HITS=$(( (PASS_REQUESTS * 95 + 99) / 100 ))
echo "pass-2 hits: $PASS2_HITS / $PASS_REQUESTS (need >= $MIN_HITS)"
if [ "$PASS2_HITS" -lt "$MIN_HITS" ]; then
    echo "check_service: pass-2 hit rate below 95%" >&2
    exit 1
fi

echo "== cross-process determinism (fresh server, same stream) =="
"$SERVE" --threads 2 < "$SMOKE_DIR/stream.req" | grep '^result' \
    > "$SMOKE_DIR/run2.results"
if ! diff -u "$SMOKE_DIR/run1.results" "$SMOKE_DIR/run2.results"; then
    echo "check_service: results differ across server processes" >&2
    exit 1
fi

echo "service smoke: all checks passed"
