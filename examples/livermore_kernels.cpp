/**
 * @file
 * Pipeline the whole Livermore-style kernel library (the workloads the
 * paper's introduction motivates: vectorizable streams, reductions,
 * linear recurrences, IF-converted bodies, block-reservation stress) and
 * print a one-line summary per kernel plus a deep-dive report for a
 * recurrence-bound and a resource-bound kernel.
 *
 *   $ ./livermore_kernels [kernel-name]
 */
#include <iostream>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "machine/cydra5.hpp"
#include "workloads/kernels.hpp"

int
main(int argc, char** argv)
{
    using namespace ims;

    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);

    if (argc > 1) {
        const auto w = workloads::kernelByName(argv[1]);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        std::cout << core::report(w.loop, machine, artifacts);
        return 0;
    }

    std::cout << "Kernel library on " << machine.name() << ":\n\n";
    for (const auto& w : workloads::kernelLibrary()) {
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        std::cout << core::summaryLine(w.loop, artifacts) << "  ; "
                  << w.description << "\n";
    }

    std::cout << "\n=== deep dive: recurrence-bound (tridiag, LFK 5) "
                 "===\n\n";
    {
        const auto w = workloads::kernelByName("tridiag");
        std::cout << core::report(w.loop, machine,
                                  pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow());
    }
    std::cout << "\n=== deep dive: resource-bound (div_kernel, blocked "
                 "multiplier) ===\n\n";
    {
        const auto w = workloads::kernelByName("div_kernel");
        std::cout << core::report(w.loop, machine,
                                  pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow());
    }
    std::cout << "\n(run with a kernel name for its full report, e.g. "
                 "./livermore_kernels daxpy)\n";
    return 0;
}
