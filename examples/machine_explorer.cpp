/**
 * @file
 * Machine exploration: take one loop (default: hydro_frag, LFK 1) and
 * pipeline it across the bundled machine models — the Cydra-5-like
 * machine with complex shared-bus tables, the clean 64-bit-datapath
 * machine, a wide VLIW and a scalar toy — showing how resources, table
 * complexity and latencies move the ResMII/RecMII balance, the achieved
 * II, stage count and register pressure. This is the compiler-writer's
 * "what does this loop need from the machine" workflow.
 *
 *   $ ./machine_explorer [kernel-name]
 */
#include <iostream>

#include "core/pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "mii/mii.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

int
main(int argc, char** argv)
{
    using namespace ims;

    const std::string kernel = argc > 1 ? argv[1] : "hydro_frag";
    const auto w = workloads::kernelByName(kernel);

    std::cout << w.loop.toString() << "\n";

    support::TextTable table("'" + kernel + "' across machine models");
    table.addHeader({"Machine", "ResMII", "MII", "II", "SL", "Stages",
                     "MVE unroll", "Rotating regs", "MaxLive",
                     "Speedup vs list"});

    for (const auto& machine :
         {machine::cydra5(), machine::clean64(), machine::wideVliw(),
          machine::scalarToy()}) {
        core::SoftwarePipeliner pipeliner(machine);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
        const auto& schedule = artifacts.outcome.schedule;
        table.addRow({machine.name(),
                      std::to_string(artifacts.outcome.resMii),
                      std::to_string(artifacts.outcome.mii),
                      std::to_string(schedule.ii),
                      std::to_string(schedule.scheduleLength),
                      std::to_string(artifacts.code.kernel.stageCount),
                      std::to_string(artifacts.code.mve.unroll),
                      std::to_string(artifacts.registers.rotatingRegisters),
                      std::to_string(artifacts.lifetimes.maxLive),
                      support::formatDouble(
                          static_cast<double>(
                              artifacts.listSchedule.scheduleLength) /
                              schedule.ii,
                          2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: II is bounded by resources (ResMII) on "
           "narrow machines and by\nrecurrences (RecMII, via MII) on wide "
           "ones; long-latency machines trade deeper pipelines\n(more "
           "stages, more rotating registers) for the same II.\n";
    return 0;
}
