/**
 * @file
 * WHILE-loop / early-exit demo (§5's "DO-loops, WHILE-loops and loops
 * with early exits"). The loop accumulates prefix sums until the first
 * negative element:
 *
 *   while (i < cap && x[i] >= 0) { s += x[i]; S[i] = s; i++; }
 *
 * Under modulo scheduling the pipeline runs iterations speculatively
 * beyond the (not yet resolved) exit; arithmetic is harmless to
 * speculate, while every store is control-dependent on the exits that
 * could squash it — the demo shows the schedule honouring that and the
 * speculative state being discarded exactly.
 *
 *   $ ./while_loop [exit-position]
 */
#include <cstdlib>
#include <iostream>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "machine/cydra5.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "workloads/kernels.hpp"

int
main(int argc, char** argv)
{
    using namespace ims;

    const int cap = 24;
    const int exit_at = argc > 1 ? std::atoi(argv[1]) : 9;

    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("search_sum");
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();

    std::cout << w.loop.toString() << "\n";
    std::cout << core::summaryLine(w.loop, artifacts) << "\n\n";

    // Input: all ones except a negative sentinel.
    sim::SimSpec spec;
    spec.tripCount = cap;
    spec.margin = 8;
    std::vector<double> x(cap, 1.0);
    if (exit_at >= 0 && exit_at < cap)
        x[exit_at] = -1.0;
    spec.arrays["X"] = {0, x};
    spec.arrays["S"] = {0, std::vector<double>(cap, 0.0)};

    const auto seq = sim::runSequential(w.loop, spec);
    const auto pipe =
        sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);

    std::cout << "exit fires in iteration "
              << seq.executedIterations - 1 << " of a " << cap
              << "-iteration cap\n";
    std::cout << "pipelined execution (with " << artifacts.code.kernel.stageCount
              << " overlapped stages of speculation) matches sequential: "
              << (sim::equivalent(seq, pipe.state) ? "yes" : "NO") << "\n";

    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name != "S")
            continue;
        std::cout << "S[] =";
        for (int i = 0; i < cap; ++i)
            std::cout << " " << pipe.state.memory.read(arr, i);
        std::cout << "\n(prefix sums up to the exit; everything after is "
                     "squashed speculation)\n";
    }
    return 0;
}
