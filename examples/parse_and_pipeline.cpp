/**
 * @file
 * Frontend demo: read a loop in the textual mini-IR format from a file
 * (or stdin with "-"), pipeline it and print the report — the workflow
 * for experimenting with your own loop bodies without writing C++.
 *
 *   $ ./parse_and_pipeline my_loop.ir
 *   $ echo "loop t ..." | ./parse_and_pipeline -
 *
 * Run without arguments for a demo on a built-in IF-converted loop text.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "ir/parser.hpp"
#include "machine/cydra5.hpp"

namespace {

const char* kDemo = R"(; if (x[i] > 0) y[i] = sqrt(x[i]); else y[i] = 0
loop guarded_sqrt
recurrence ax
ax = aadd ax[3], #24
x  = load ax @ X 0
p  = predset x, #0
r  = sqrt x if p
t  = select p, r, #0
_  = store ax, t @ Y 0
recurrence n
n  = asub n[3], #3
_  = branch n
)";

} // namespace

int
main(int argc, char** argv)
{
    using namespace ims;

    std::string text;
    if (argc < 2) {
        std::cout << "(no input file given; using the built-in demo "
                     "loop)\n\n";
        text = kDemo;
    } else if (std::string(argv[1]) == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        text = buffer.str();
    } else {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }

    try {
        const ir::Loop loop = ir::parseLoop(text);
        const auto machine = machine::cydra5();
        core::SoftwarePipeliner pipeliner(machine);
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
        std::cout << core::report(loop, machine, artifacts);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
