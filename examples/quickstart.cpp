/**
 * @file
 * Quickstart: build a daxpy-style loop with the builder API (or the
 * textual mini-IR), pipeline it for the Cydra-5-like machine, and print
 * the full report — MII breakdown, achieved II, kernel rows, register
 * requirements and the generated prologue/kernel/epilogue listing.
 *
 *   $ ./quickstart
 */
#include <iostream>

#include "codegen/emit.hpp"
#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

int
main()
{
    using namespace ims;
    using ir::Opcode;

    // y[i] = y[i] + a * x[i], in IF-converted, dynamic-single-assignment
    // form with back-substituted address/counter recurrences (the form
    // the paper's scheduler receives, §4.1).
    ir::LoopBuilder b("daxpy");
    b.liveIn("a");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)},
         "address increment");
    b.load("x", "X", 0, b.reg("ax"));
    b.load("y", "Y", 0, b.reg("ax"));
    b.op(Opcode::kMul, "t", {b.reg("a"), b.reg("x")});
    b.op(Opcode::kAdd, "s", {b.reg("t"), b.reg("y")});
    b.store("Y", 0, b.reg("ax"), b.reg("s"));
    b.closeLoopBackSubstituted();
    const ir::Loop loop = b.build();

    // Pipeline it through the request/result API.
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto result = pipeliner.pipeline(core::PipelineRequest(loop));
    if (!result.ok()) {
        std::cerr << "error: " << result.firstError() << "\n";
        return 1;
    }
    const auto& artifacts = *result.artifacts;

    std::cout << core::report(loop, machine, artifacts) << "\n";
    std::cout << codegen::emitListing(loop, artifacts.code,
                                      artifacts.registers);

    // Every run carries structured telemetry: per-phase wall times, the
    // achieved II against its MII lower bound, budget consumption and the
    // unified instrumentation counters — as a table or as JSON.
    std::cout << "\n";
    support::telemetryTable({result.telemetry}).print(std::cout);
    std::cout << "\ntelemetry JSON:\n"
              << result.telemetry.toJson() << "\n";
    return 0;
}
