/**
 * @file
 * End-to-end validation demo: pipeline a loop, then execute BOTH the
 * sequential reference semantics and the cycle-accurate software-pipelined
 * schedule, compare the final memory/register state bit-for-bit, and
 * report the speedup measured in simulated cycles (not just the II
 * model). Demonstrates the paper's premise that a legal modulo schedule
 * preserves all intra- and inter-iteration dependences.
 *
 *   $ ./pipeline_simulation [kernel-name] [trip-count]
 */
#include <cstdlib>
#include <iostream>

#include "core/pipeliner.hpp"
#include "machine/cydra5.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/table.hpp"
#include "workloads/kernels.hpp"

int
main(int argc, char** argv)
{
    using namespace ims;

    const std::string kernel = argc > 1 ? argv[1] : "first_order_rec";
    const int trip = argc > 2 ? std::atoi(argv[2]) : 64;

    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName(kernel);
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto& schedule = artifacts.outcome.schedule;

    std::cout << w.loop.toString() << "\n";
    std::cout << "II = " << schedule.ii << ", SL = "
              << schedule.scheduleLength << ", stages = "
              << artifacts.code.kernel.stageCount << "\n\n";

    const auto spec = workloads::makeSimSpec(w.loop, trip, 20260706);
    const auto seq = sim::runSequential(w.loop, spec);
    const auto pipe = sim::runPipelined(w.loop, schedule, spec);

    const bool memory_equal = seq.memory == pipe.state.memory;
    const bool regs_equal = sim::equivalent(seq, pipe.state);
    std::cout << "final memory state identical:    "
              << (memory_equal ? "yes" : "NO") << "\n";
    std::cout << "final register values identical: "
              << (regs_equal ? "yes" : "NO") << "\n";
    if (!seq.finalRegisters.empty()) {
        std::cout << "  e.g.";
        int shown = 0;
        for (const auto& [name, value] : seq.finalRegisters) {
            std::cout << "  " << name << " = " << value;
            if (++shown == 4)
                break;
        }
        std::cout << "\n";
    }

    // Cycle accounting: non-pipelined execution issues one iteration
    // every list-schedule-length cycles; the pipelined loop issues one
    // every II once the pipe is full.
    const long long sequential_cycles =
        static_cast<long long>(trip) *
        artifacts.listSchedule.scheduleLength;
    std::cout << "\nsimulated cycles, " << trip << " iterations:\n";
    std::cout << "  non-pipelined (list schedule): " << sequential_cycles
              << "\n";
    std::cout << "  software pipelined:            " << pipe.cycles
              << "\n";
    std::cout << "  speedup:                       "
              << support::formatDouble(
                     static_cast<double>(sequential_cycles) / pipe.cycles,
                     2)
              << "x\n";

    return memory_equal && regs_equal ? 0 : 1;
}
