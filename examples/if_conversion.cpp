/**
 * @file
 * IF-conversion demo: write a loop with source-style structured control
 * flow, let the RegionBuilder IF-convert it into the single predicated
 * basic block of §1 ("all branches except for the loop-closing branch
 * disappear"), then pipeline and validate it. The source program:
 *
 *   for (i = 0; i < n; i++) {
 *       x = a[i];
 *       if (x > threshold) {
 *           big += x;                 // accumulate the large values
 *           out[i] = hi;              // and clip the output
 *       } else if (x > 0) {
 *           out[i] = x;               // pass small positives through
 *       } else {
 *           out[i] = 0;               // flush negatives
 *       }
 *   }
 *
 *   $ ./if_conversion
 */
#include <iostream>

#include "core/pipeliner.hpp"
#include "core/report.hpp"
#include "frontend/region_builder.hpp"
#include "machine/cydra5.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"

int
main()
{
    using namespace ims;
    using ir::Opcode;

    frontend::RegionBuilder r("clip_and_sum");
    r.liveIn("threshold").liveIn("hi");
    r.recurrence("big");
    r.recurrence("ax");
    r.assign(Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
    r.load("x", "A", 0, r.use("ax"));
    r.assign(Opcode::kSub, "over", {r.use("x"), r.use("threshold")});
    r.beginIf(r.use("over"));
    {
        r.assign(Opcode::kAdd, "big", {r.use("big"), r.use("x")});
        r.store("OUT", 0, r.use("ax"), r.use("hi"));
    }
    r.elseBranch();
    {
        r.beginIf(r.use("x"));
        r.store("OUT", 0, r.use("ax"), r.use("x"));
        r.elseBranch();
        r.store("OUT", 0, r.use("ax"), r.imm(0.0));
        r.endIf();
    }
    r.endIf();
    const ir::Loop loop = r.finish();

    std::cout << "IF-converted body (control flow is now predicates and "
                 "selects):\n\n"
              << loop.toString() << "\n";

    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
    std::cout << core::report(loop, machine, artifacts) << "\n";

    // Validate end to end on a concrete input.
    sim::SimSpec spec;
    spec.tripCount = 8;
    spec.margin = 8;
    spec.liveIn["threshold"] = 10.0;
    spec.liveIn["hi"] = 10.0;
    spec.arrays["A"] = {0, {3.0, 20.0, -5.0, 11.0, 0.0, 7.0, 30.0, -1.0}};
    const auto seq = sim::runSequential(loop, spec);
    const auto pipe =
        sim::runPipelined(loop, artifacts.outcome.schedule, spec);
    std::cout << "pipelined execution matches sequential: "
              << (sim::equivalent(seq, pipe.state) ? "yes" : "NO") << "\n";
    std::cout << "sum of values above threshold: "
              << seq.finalRegisters.at("big") << " (expected 61)\n";
    for (ir::ArrayId arr = 0; arr < loop.numArrays(); ++arr) {
        if (loop.arrays()[arr].name != "OUT")
            continue;
        std::cout << "out[] =";
        for (int i = 0; i < 8; ++i)
            std::cout << " " << seq.memory.read(arr, i);
        std::cout << "  (expected 3 10 0 10 0 7 10 0)\n";
    }
    return 0;
}
