#include <gtest/gtest.h>

#include "core/pipeliner.hpp"
#include "frontend/region_builder.hpp"
#include "machine/cydra5.hpp"
#include "program/program_compiler.hpp"
#include "program/program_executor.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using frontend::RegionBuilder;
using ir::Opcode;

/** `if (x[i] > 0) { y[i] = x[i]*x[i]; s += x[i]; }` */
ir::Loop
sumPositiveSquares()
{
    RegionBuilder r("sum_positive_squares");
    r.recurrence("s");
    r.recurrence("ax");
    r.assign(Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
    r.load("x", "X", 0, r.use("ax"));
    r.beginIf(r.use("x"));
    r.assign(Opcode::kMul, "sq", {r.use("x"), r.use("x")});
    r.store("Y", 0, r.use("ax"), r.use("sq"));
    r.assign(Opcode::kAdd, "s", {r.use("s"), r.use("x")});
    r.endIf();
    return r.finish();
}

/** `y[i] = x[i] > t ? hi : (x[i] > 0 ? x[i] : 0)` — nested hammock. */
ir::Loop
nestedClip()
{
    RegionBuilder r("nested_clip");
    r.liveIn("t").liveIn("hi");
    r.recurrence("ax");
    r.assign(Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
    r.load("x", "X", 0, r.use("ax"));
    r.assign(Opcode::kSub, "over", {r.use("x"), r.use("t")});
    r.beginIf(r.use("over"));
    r.assign(Opcode::kCopy, "y", {r.use("hi")});
    r.elseBranch();
    r.beginIf(r.use("x"));
    r.assign(Opcode::kCopy, "y", {r.use("x")});
    r.elseBranch();
    r.assign(Opcode::kCopy, "y", {r.imm(0.0)});
    r.endIf();
    r.endIf();
    r.store("Y", 0, r.use("ax"), r.use("y"));
    return r.finish();
}

/** Guarded stores on both paths of an if. */
ir::Loop
splitStreams()
{
    RegionBuilder r("split_streams");
    r.recurrence("ax");
    r.assign(Opcode::kAddrAdd, "ax", {r.use("ax", 3), r.imm(24)});
    r.load("x", "X", 0, r.use("ax"));
    r.beginIf(r.use("x"));
    r.store("P", 0, r.use("ax"), r.use("x"));
    r.elseBranch();
    r.store("N", 0, r.use("ax"), r.use("x"));
    r.endIf();
    return r.finish();
}

/** Reference computation for sumPositiveSquares. */
void
checkSumPositiveSquares(const ir::Loop& loop)
{
    sim::SimSpec spec;
    spec.tripCount = 6;
    spec.margin = 8;
    spec.arrays["X"] = {0, {1.0, -2.0, 3.0, -4.0, 5.0, 0.0}};
    spec.arrays["Y"] = {0, {9, 9, 9, 9, 9, 9}};
    const auto result = sim::runSequential(loop, spec);
    // s = 1 + 3 + 5 = 9 (x = 0 is not > 0).
    EXPECT_DOUBLE_EQ(result.finalRegisters.at("s"), 9.0);
    for (ir::ArrayId arr = 0; arr < loop.numArrays(); ++arr) {
        if (loop.arrays()[arr].name != "Y")
            continue;
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 0), 1.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 1), 9.0); // untouched
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 2), 9.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 4), 25.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 5), 9.0); // x == 0
    }
}

TEST(RegionBuilderTest, IfConversionProducesValidPredicatedLoop)
{
    const auto loop = sumPositiveSquares();
    EXPECT_NO_THROW(loop.validate());
    // A guarded store and a select merge must exist.
    bool guarded_store = false, select = false, predset = false;
    for (const auto& op : loop.operations()) {
        guarded_store = guarded_store || (op.isStore() && op.guard);
        select = select || op.opcode == Opcode::kSelect;
        predset = predset || op.opcode == Opcode::kPredSet;
    }
    EXPECT_TRUE(guarded_store);
    EXPECT_TRUE(select);
    EXPECT_TRUE(predset);
}

TEST(RegionBuilderTest, SemanticsMatchSourceProgram)
{
    checkSumPositiveSquares(sumPositiveSquares());
}

TEST(RegionBuilderTest, PipelinesAndPreservesSemantics)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    for (const auto& loop :
         {sumPositiveSquares(), nestedClip(), splitStreams()}) {
        const auto artifacts = pipeliner.pipeline(core::PipelineRequest(loop)).artifactsOrThrow();
        const auto spec = workloads::makeSimSpec(loop, 30, 17);
        const auto seq = sim::runSequential(loop, spec);
        const auto pipe =
            sim::runPipelined(loop, artifacts.outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << loop.name();
    }
}

TEST(RegionBuilderTest, NestedSelectsComputeTheRightValue)
{
    const auto loop = nestedClip();
    sim::SimSpec spec;
    spec.tripCount = 4;
    spec.margin = 8;
    spec.liveIn["t"] = 10.0;
    spec.liveIn["hi"] = 99.0;
    spec.arrays["X"] = {0, {20.0, 5.0, -3.0, 10.0}};
    const auto result = sim::runSequential(loop, spec);
    for (ir::ArrayId arr = 0; arr < loop.numArrays(); ++arr) {
        if (loop.arrays()[arr].name != "Y")
            continue;
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 0), 99.0); // > t
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 1), 5.0);  // 0 < x <= t
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 2), 0.0);  // x <= 0
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 3), 10.0); // == t edge
    }
}

TEST(RegionBuilderTest, ComplementaryStoresTouchDisjointStreams)
{
    const auto loop = splitStreams();
    sim::SimSpec spec;
    spec.tripCount = 4;
    spec.margin = 8;
    spec.arrays["X"] = {0, {2.0, -2.0, 3.0, -3.0}};
    const auto result = sim::runSequential(loop, spec);
    ir::ArrayId p = -1, n = -1;
    for (ir::ArrayId arr = 0; arr < loop.numArrays(); ++arr) {
        if (loop.arrays()[arr].name == "P")
            p = arr;
        if (loop.arrays()[arr].name == "N")
            n = arr;
    }
    EXPECT_DOUBLE_EQ(result.memory.read(p, 0), 2.0);
    EXPECT_DOUBLE_EQ(result.memory.read(n, 0), 0.0);
    EXPECT_DOUBLE_EQ(result.memory.read(n, 1), -2.0);
    EXPECT_DOUBLE_EQ(result.memory.read(p, 1), 0.0);
}

TEST(RegionBuilderTest, ErrorsOnMisuse)
{
    {
        RegionBuilder r("t");
        r.liveIn("a");
        EXPECT_THROW(r.assign(Opcode::kCopy, "a", {r.imm(1.0)}),
                     support::Error);
    }
    {
        RegionBuilder r("t");
        EXPECT_THROW(r.elseBranch(), support::Error);
        EXPECT_THROW(r.endIf(), support::Error);
    }
    {
        RegionBuilder r("t");
        r.liveIn("a");
        r.beginIf(r.use("a"));
        EXPECT_THROW(r.finish(), support::Error); // unclosed if
    }
    {
        // A branch-local temp goes out of scope at the join; reading it
        // afterwards is an error.
        RegionBuilder r("t");
        r.liveIn("a");
        r.beginIf(r.use("a"));
        r.assign(Opcode::kCopy, "fresh", {r.use("a")});
        EXPECT_NO_THROW(r.endIf());
        EXPECT_THROW(r.use("fresh"), support::Error);
    }
    {
        RegionBuilder r("t");
        r.liveIn("a");
        EXPECT_THROW(r.use("a", 2), support::Error); // not a recurrence
    }
}

TEST(RegionBuilderTest, RecurrenceCarryCopyAppended)
{
    const auto loop = sumPositiveSquares();
    bool carry = false;
    for (const auto& op : loop.operations()) {
        carry = carry ||
                (op.opcode == Opcode::kCopy && op.hasDest() &&
                 loop.reg(op.dest).name == "s");
    }
    EXPECT_TRUE(carry);
}

TEST(RegionBuilderTest, IfConvertedLoopCompilesAsFullProgram)
{
    // A RegionBuilder lowering dropped straight into the program-level
    // driver: pre-loop setup, the if-converted loop, a post-loop block
    // reading the exported reduction. Compiled execution must match the
    // sequential reference at trips below and above the stage count.
    program::Program p("frontend.sum_squares", sumPositiveSquares());
    program::Block setup("setup");
    setup.assign(Opcode::kMul, "scale", {program::v("k"), program::c(2.0)});
    p.preBlocks.push_back(std::move(setup));
    p.loop.outputs["sum"] = "s";
    p.loop.itersVar = "iters";
    program::Block tail("tail");
    tail.assign(Opcode::kMul, "scaled", {program::v("sum"),
                                         program::v("scale")});
    tail.store("R", 0, program::v("scaled"));
    p.postBlocks.push_back(std::move(tail));

    const auto diagnostics = program::programEquivalenceDiagnostics(
        p, machine::cydra5(), program::ProgramOptions{},
        {0, 1, 2, 5, 17}, 41);
    for (const auto& d : diagnostics)
        ADD_FAILURE() << "[" << d.code << "] " << d.message;
}

TEST(RegionBuilderTest, WhileLoopCompilesAsFullProgram)
{
    // A WHILE loop (early exit) through the same driver: the compiled
    // loop must fall back to the flat schedule and carry the exit point
    // out through the iteration-count variable. RegionBuilder only
    // handles hammocks, so the body comes from the loop builder.
    ir::LoopBuilder b("find_first_negative");
    b.recurrence("ax");
    b.op(Opcode::kAddrAdd, "ax", {b.reg("ax", 3), b.imm(24)});
    b.load("x", "X", 0, b.reg("ax"));
    b.op(Opcode::kSub, "neg", {b.imm(0), b.reg("x")});
    b.exitIf(b.reg("neg"));
    b.store("Y", 0, b.reg("ax"), b.reg("x"));
    b.closeLoopBackSubstituted();

    program::Program p("frontend.find_negative", b.build());
    p.loop.itersVar = "position";
    program::Block tail("tail");
    tail.store("R", 0, program::v("position"));
    p.postBlocks.push_back(std::move(tail));

    const auto result =
        program::ProgramCompiler(machine::cydra5()).compile(p);
    ASSERT_TRUE(result.ok()) << result.firstError();
    EXPECT_TRUE(result.compiled->loop.isWhile);
    const auto diagnostics = program::programEquivalenceDiagnostics(
        p, machine::cydra5(), program::ProgramOptions{},
        {0, 1, 2, 5, 17}, 43);
    for (const auto& d : diagnostics)
        ADD_FAILURE() << "[" << d.code << "] " << d.message;
}

} // namespace
