#include <gtest/gtest.h>

#include "codegen/kernel_only.hpp"
#include "core/pipeliner.hpp"
#include "graph/graph_builder.hpp"
#include "ir/loop_builder.hpp"
#include "machine/cydra5.hpp"
#include "sim/pipeline_simulator.hpp"
#include "sim/section_executor.hpp"
#include "sim/sequential_interpreter.hpp"
#include "support/error.hpp"
#include "workloads/kernels.hpp"

namespace {

using namespace ims;
using ir::Opcode;

sim::SimSpec
searchSpec(int trip, const std::vector<double>& x)
{
    sim::SimSpec spec;
    spec.tripCount = trip;
    spec.margin = 8;
    spec.arrays["X"] = {0, x};
    std::vector<double> zeros(trip, 0.0);
    spec.arrays["S"] = {0, zeros};
    return spec;
}

TEST(EarlyExitTest, SequentialStopsAtFirstNegative)
{
    const auto w = workloads::kernelByName("search_sum");
    const auto spec = searchSpec(8, {1, 2, 3, -4, 5, 6, 7, 8});
    const auto result = sim::runSequential(w.loop, spec);
    // Exit fires in iteration 3 before the accumulate/store.
    EXPECT_EQ(result.executedIterations, 4);
    for (ir::ArrayId arr = 0; arr < w.loop.numArrays(); ++arr) {
        if (w.loop.arrays()[arr].name != "S")
            continue;
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 0), 1.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 1), 3.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 2), 6.0);
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 3), 0.0); // squashed
        EXPECT_DOUBLE_EQ(result.memory.read(arr, 4), 0.0);
    }
    // Early-exit loops report no final registers (post-exit values are
    // speculative).
    EXPECT_TRUE(result.finalRegisters.empty());
}

TEST(EarlyExitTest, NoExitRunsToTheTripCap)
{
    const auto w = workloads::kernelByName("search_sum");
    const auto spec = searchSpec(5, {1, 1, 1, 1, 1});
    const auto result = sim::runSequential(w.loop, spec);
    EXPECT_EQ(result.executedIterations, 5);
}

TEST(EarlyExitTest, GraphGainsControlEdgesToStores)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("search_sum");
    const auto g = graph::buildDepGraph(w.loop, machine);
    int exit_id = -1, store_id = -1;
    for (const auto& op : w.loop.operations()) {
        if (op.opcode == Opcode::kExitIf)
            exit_id = op.id;
        if (op.isStore())
            store_id = op.id;
    }
    ASSERT_GE(exit_id, 0);
    ASSERT_GE(store_id, 0);
    bool dist0 = false;
    for (const auto& edge : g.edges()) {
        dist0 = dist0 ||
                (edge.from == exit_id && edge.to == store_id &&
                 edge.kind == graph::DepKind::kControl &&
                 edge.distance == 0);
    }
    EXPECT_TRUE(dist0);
}

TEST(EarlyExitTest, PipelinedSpeculationSquashesExactly)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("search_sum");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();

    for (const int exit_at : {0, 1, 7, 19}) {
        std::vector<double> x(20, 1.0);
        x[exit_at] = -1.0;
        const auto spec = searchSpec(20, x);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe =
            sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);
        EXPECT_EQ(pipe.state.executedIterations, exit_at + 1);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state))
            << "exit at " << exit_at;
    }
}

TEST(EarlyExitTest, RandomizedContentsStayEquivalent)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("search_sum");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    for (int seed = 0; seed < 10; ++seed) {
        const auto spec = workloads::makeSimSpec(w.loop, 30, seed);
        const auto seq = sim::runSequential(w.loop, spec);
        const auto pipe =
            sim::runPipelined(w.loop, artifacts.outcome.schedule, spec);
        EXPECT_TRUE(sim::equivalent(seq, pipe.state)) << seed;
    }
}

TEST(EarlyExitTest, ExitBeforeStoreInTheSchedule)
{
    // The control edge must hold in the actual schedule: the store of
    // iteration i issues strictly after its own iteration's exit.
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("search_sum");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    int exit_time = -1, store_time = -1;
    for (const auto& op : w.loop.operations()) {
        if (op.opcode == Opcode::kExitIf)
            exit_time = artifacts.outcome.schedule.times[op.id];
        if (op.isStore())
            store_time = artifacts.outcome.schedule.times[op.id];
    }
    EXPECT_GE(store_time, exit_time + 1);
}

TEST(EarlyExitTest, SectionSchemasRejectEarlyExitLoops)
{
    const auto machine = machine::cydra5();
    core::SoftwarePipeliner pipeliner(machine);
    const auto w = workloads::kernelByName("search_sum");
    const auto artifacts = pipeliner.pipeline(core::PipelineRequest(w.loop)).artifactsOrThrow();
    const auto spec = workloads::makeSimSpec(w.loop, 30, 2);
    EXPECT_THROW(sim::runGeneratedCode(w.loop, artifacts.code, spec),
                 support::Error);
    const auto ko = codegen::generateKernelOnly(
        w.loop, artifacts.outcome.schedule);
    EXPECT_THROW(sim::runKernelOnly(w.loop, ko, spec), support::Error);
}

TEST(EarlyExitTest, GuardedExitOnlyFiresWhenActive)
{
    // An exit under a false guard must not leave the loop; the unguarded
    // variant exits immediately.
    auto make = [](bool guarded) {
        ir::Loop loop(guarded ? "guarded_exit" : "plain_exit");
        const auto arr = loop.addArray({"X"});
        const auto ax = loop.addRegister({"ax", false, true});
        const auto x = loop.addRegister({"x", false, false});
        const auto p = loop.addRegister({"p", true, false});
        const auto n = loop.addRegister({"n", false, true});

        ir::Operation addr;
        addr.opcode = Opcode::kAddrAdd;
        addr.dest = ax;
        addr.sources = {ir::Operand::makeReg(ax, 3),
                        ir::Operand::makeImm(24)};
        loop.addOperation(addr);

        ir::Operation load;
        load.opcode = Opcode::kLoad;
        load.dest = x;
        load.sources = {ir::Operand::makeReg(ax)};
        load.memRef = ir::MemRef{arr, 0};
        loop.addOperation(load);

        ir::Operation pred;
        pred.opcode = Opcode::kPredSet;
        pred.dest = p;
        pred.sources = {ir::Operand::makeReg(x),
                        ir::Operand::makeImm(100.0)};
        loop.addOperation(pred);

        ir::Operation exit_op;
        exit_op.opcode = Opcode::kExitIf;
        exit_op.sources = {ir::Operand::makeReg(x)};
        if (guarded)
            exit_op.guard = ir::Operand::makeReg(p); // only when x > 100
        loop.addOperation(exit_op);

        ir::Operation dec;
        dec.opcode = Opcode::kAddrSub;
        dec.dest = n;
        dec.sources = {ir::Operand::makeReg(n, 3),
                       ir::Operand::makeImm(3)};
        loop.addOperation(dec);
        ir::Operation branch;
        branch.opcode = Opcode::kBranch;
        branch.sources = {ir::Operand::makeReg(n)};
        loop.addOperation(branch);
        loop.validate();
        return loop;
    };

    sim::SimSpec spec;
    spec.tripCount = 6;
    spec.margin = 8;
    spec.arrays["X"] = {0, {5, 5, 5, 5, 5, 5}};

    const auto plain_result = sim::runSequential(make(false), spec);
    EXPECT_EQ(plain_result.executedIterations, 1);
    const auto guarded_result = sim::runSequential(make(true), spec);
    EXPECT_EQ(guarded_result.executedIterations, 6); // 5 < 100: no exit
}

} // namespace
