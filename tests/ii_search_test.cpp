#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "graph/graph_builder.hpp"
#include "graph/scc.hpp"
#include "machine/cydra5.hpp"
#include "machine/machines.hpp"
#include "sched/ii_search.hpp"
#include "sched/attempt_feedback.hpp"
#include "sched/iterative_scheduler.hpp"
#include "sched/schedule.hpp"
#include "support/cancellation.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "workloads/kernels.hpp"
#include "workloads/random_loops.hpp"

namespace {

using namespace ims;

void
expectCountersEqual(const support::Counters& a, const support::Counters& b,
                    const std::string& context)
{
    EXPECT_EQ(a.sccEdgeVisits, b.sccEdgeVisits) << context;
    EXPECT_EQ(a.resMiiInspections, b.resMiiInspections) << context;
    EXPECT_EQ(a.minDistInnerSteps, b.minDistInnerSteps) << context;
    EXPECT_EQ(a.minDistInvocations, b.minDistInvocations) << context;
    EXPECT_EQ(a.heightRInnerSteps, b.heightRInnerSteps) << context;
    EXPECT_EQ(a.estartPredecessorVisits, b.estartPredecessorVisits)
        << context;
    EXPECT_EQ(a.estartIncrementalHits, b.estartIncrementalHits) << context;
    EXPECT_EQ(a.findTimeSlotProbes, b.findTimeSlotProbes) << context;
    EXPECT_EQ(a.scheduleSteps, b.scheduleSteps) << context;
    EXPECT_EQ(a.unscheduleSteps, b.unscheduleSteps) << context;
    EXPECT_EQ(a.mrtMaskProbes, b.mrtMaskProbes) << context;
    EXPECT_EQ(a.mrtSlotScans, b.mrtSlotScans) << context;
}

/** Everything a bit-identity claim covers: the schedule itself, the MII
 *  facts, and every statistic derived from the deterministic prefix. */
void
expectOutcomesIdentical(const sched::ModuloScheduleOutcome& a,
                        const sched::ModuloScheduleOutcome& b,
                        const std::string& context)
{
    EXPECT_EQ(a.schedule.ii, b.schedule.ii) << context;
    EXPECT_EQ(a.schedule.times, b.schedule.times) << context;
    EXPECT_EQ(a.schedule.alternatives, b.schedule.alternatives) << context;
    EXPECT_EQ(a.schedule.scheduleLength, b.schedule.scheduleLength)
        << context;
    EXPECT_EQ(a.schedule.stepsUsed, b.schedule.stepsUsed) << context;
    EXPECT_EQ(a.schedule.unschedules, b.schedule.unschedules) << context;
    EXPECT_EQ(a.resMii, b.resMii) << context;
    EXPECT_EQ(a.mii, b.mii) << context;
    EXPECT_EQ(a.attempts, b.attempts) << context;
    EXPECT_EQ(a.budget, b.budget) << context;
    EXPECT_EQ(a.totalSteps, b.totalSteps) << context;
    EXPECT_EQ(a.totalUnschedules, b.totalUnschedules) << context;
    EXPECT_EQ(a.scheduler, b.scheduler) << context;
    EXPECT_EQ(a.search.attemptsProvenInfeasible,
              b.search.attemptsProvenInfeasible)
        << context;
    ASSERT_EQ(a.search.records.size(), b.search.records.size()) << context;
    for (std::size_t i = 0; i < a.search.records.size(); ++i) {
        EXPECT_EQ(a.search.records[i].ii, b.search.records[i].ii)
            << context;
        EXPECT_EQ(a.search.records[i].feasible,
                  b.search.records[i].feasible)
            << context;
        EXPECT_EQ(a.search.records[i].status, b.search.records[i].status)
            << context;
    }
}

TEST(IiSearchTest, KindNamesRoundTrip)
{
    EXPECT_EQ(sched::iiSearchKindName(sched::IiSearchKind::kLinear),
              "linear");
    EXPECT_EQ(sched::iiSearchKindName(sched::IiSearchKind::kRacing),
              "racing");
    EXPECT_EQ(sched::iiSearchKindByName("linear"),
              sched::IiSearchKind::kLinear);
    EXPECT_EQ(sched::iiSearchKindByName("racing"),
              sched::IiSearchKind::kRacing);
    EXPECT_FALSE(sched::iiSearchKindByName("bogus").has_value());
}

TEST(IiSearchTest, MakeStrategyRejectsBadOptions)
{
    EXPECT_THROW(sched::makeIiSearchStrategy(
                     sched::IiSearchOptions{}.withBudgetRatio(0.0)),
                 support::Error);
    EXPECT_THROW(sched::makeIiSearchStrategy(
                     sched::IiSearchOptions{}.withMaxIiIncrease(-1)),
                 support::Error);
}

// ---------------------------------------------------------------------------
// Strategy-level behaviour with synthetic attempt callbacks.

sched::IiAttemptOutcome
fakeAttempt(int ii, int first_feasible)
{
    sched::IiAttemptOutcome out; // status defaults to kBudgetExhausted
    out.counters.scheduleSteps = 10; // constant per-attempt delta
    if (ii >= first_feasible) {
        sched::ScheduleResult result;
        result.ii = ii;
        result.stepsUsed = 7;
        out.schedule = result;
        out.status = sched::AttemptStatus::kScheduled;
    }
    return out;
}

TEST(IiSearchTest, RacingReturnsLowestFeasibleIiWithDeterministicPrefix)
{
    const auto strategy = sched::makeIiSearchStrategy(
        sched::IiSearchOptions{}.withKind(sched::IiSearchKind::kRacing)
            .withThreads(4));
    const auto result = strategy->search(
        3, 40, [&](int ii, int, const support::CancellationToken&) {
            return fakeAttempt(ii, /*first_feasible=*/7);
        });

    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.schedule->ii, 7);
    EXPECT_EQ(result.searchedIis, 5); // 3,4,5,6 fail; 7 wins
    // Counter folds cover exactly the deterministic prefix, even if
    // speculative attempts above 7 also ran.
    EXPECT_EQ(result.counters.scheduleSteps, 5u * 10u);
    ASSERT_EQ(result.records.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(result.records[i].ii, 3 + i);
        EXPECT_EQ(result.records[i].feasible, 3 + i == 7);
    }
    EXPECT_GE(result.attemptsStarted, result.searchedIis);
    EXPECT_EQ(result.attemptsWasted,
              result.attemptsStarted - result.searchedIis);
}

TEST(IiSearchTest, LinearStrategyStopsAtTheWinner)
{
    const auto strategy =
        sched::makeIiSearchStrategy(sched::IiSearchOptions{});
    std::atomic<int> calls{0};
    const auto result = strategy->search(
        2, 100, [&](int ii, int worker, const support::CancellationToken&) {
            ++calls;
            EXPECT_EQ(worker, 0);
            return fakeAttempt(ii, /*first_feasible=*/5);
        });
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_EQ(result.schedule->ii, 5);
    EXPECT_EQ(calls.load(), 4);
    EXPECT_EQ(result.attemptsStarted, 4);
    EXPECT_EQ(result.attemptsWasted, 0);
    EXPECT_EQ(result.workers, 1);
}

TEST(IiSearchTest, ExhaustedSearchThrowsCodedError)
{
    support::Counters counters;
    try {
        sched::runIiSearch(
            sched::IiSearchOptions{}.withMaxIiIncrease(3), 2, 2, 10,
            [&](int ii, int, const support::CancellationToken&) {
                return fakeAttempt(ii, /*first_feasible=*/1000);
            },
            &counters, nullptr, [] { return std::string("no luck"); });
        FAIL() << "runIiSearch must throw on exhaustion";
    } catch (const support::CodedError& error) {
        EXPECT_EQ(error.code(), "sched.ii_exhausted");
        EXPECT_NE(std::string(error.what()).find("no luck"),
                  std::string::npos);
    }
    // The whole exhausted range is the deterministic prefix.
    EXPECT_EQ(counters.scheduleSteps, 4u * 10u);
}

// ---------------------------------------------------------------------------
// Scheduler-level cancellation.

TEST(IiSearchTest, CancelledAttemptStopsBeforeSpendingBudget)
{
    const auto machine = machine::cydra5();
    const auto w = workloads::kernelByName("tridiag");
    const auto graph = graph::buildDepGraph(w.loop, machine);
    const auto sccs = graph::findSccs(graph);

    support::CancellationToken token;
    token.lowerCeiling(5); // a success at II 5 cancels any attempt above

    support::Counters counters;
    sched::IterativeScheduler scheduler(w.loop, machine, graph, sccs, {},
                                        &counters);
    sched::AttemptStatus status = sched::AttemptStatus::kScheduled;
    const auto result =
        scheduler.trySchedule(9, /*budget=*/1 << 20, &token, &status);

    // The token is polled at the top of every budget-loop iteration, so a
    // pre-cancelled attempt must give up within one scheduling step —
    // without touching the (huge) budget.
    EXPECT_FALSE(result.has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kCancelled);
    EXPECT_LE(counters.scheduleSteps, 1u);

    // At or below the ceiling the same scheduler still succeeds.
    status = sched::AttemptStatus::kCancelled;
    const auto fine = scheduler.trySchedule(9, 1 << 20, nullptr, &status);
    EXPECT_TRUE(fine.has_value());
    EXPECT_EQ(status, sched::AttemptStatus::kScheduled);
}

TEST(IiSearchTest, CancellationTokenCeilingIsMonotonic)
{
    support::CancellationToken token;
    EXPECT_FALSE(token.cancelled(1000));
    token.lowerCeiling(10);
    token.lowerCeiling(20); // higher key must not raise the ceiling back
    EXPECT_EQ(token.ceiling(), 10);
    EXPECT_TRUE(token.cancelled(11));
    EXPECT_FALSE(token.cancelled(10));
    token.cancelAll();
    EXPECT_TRUE(token.cancelled(0));
}

// ---------------------------------------------------------------------------
// Bit-identity of racing vs linear on real scheduling problems.

sched::ModuloScheduleOutcome
scheduleWith(const ir::Loop& loop, const machine::MachineModel& machine,
             const sched::ScheduleOptions& options,
             support::Counters& counters)
{
    counters = {};
    return sched::schedule(loop, machine, options, &counters);
}

TEST(IiSearchTest, RacingMatchesLinearOnKernelCorpus)
{
    for (const auto& machine : {machine::cydra5(), machine::scalarToy()}) {
        for (const auto& w : workloads::kernelLibrary()) {
            sched::ScheduleOptions linear;
            support::Counters linear_counters;
            const auto expected =
                scheduleWith(w.loop, machine, linear, linear_counters);

            for (const int threads : {1, 4, 8}) {
                sched::ScheduleOptions racing;
                racing.search.withKind(sched::IiSearchKind::kRacing)
                    .withThreads(threads);
                support::Counters racing_counters;
                const auto got =
                    scheduleWith(w.loop, machine, racing, racing_counters);
                const std::string context =
                    machine.name() + "/" + w.loop.name() + " threads=" +
                    std::to_string(threads);
                expectOutcomesIdentical(expected, got, context);
                expectCountersEqual(linear_counters, racing_counters,
                                    context);
                EXPECT_EQ(got.search.strategy, "racing") << context;
            }
        }
    }
}

TEST(IiSearchTest, RacingMatchesLinearOnFuzzGeneratedLoops)
{
    const auto machine = machine::cydra5();
    support::Rng rng(20260806);
    const auto profile = workloads::fuzzProfile();
    int hard = 0; // loops whose winning II exceeded the MII
    for (int i = 0; i < 200; ++i) {
        const auto loop = workloads::generateLoop(
            rng, "fuzz_" + std::to_string(i), profile);

        sched::ScheduleOptions linear;
        support::Counters linear_counters;
        const auto expected =
            scheduleWith(loop, machine, linear, linear_counters);
        hard += expected.attempts > 1;

        for (const int threads : {1, 4, 8}) {
            sched::ScheduleOptions racing;
            racing.search.withKind(sched::IiSearchKind::kRacing)
                .withThreads(threads);
            support::Counters racing_counters;
            const auto got =
                scheduleWith(loop, machine, racing, racing_counters);
            const std::string context = loop.name() + " threads=" +
                                        std::to_string(threads);
            expectOutcomesIdentical(expected, got, context);
            expectCountersEqual(linear_counters, racing_counters, context);
        }
    }
    // The corpus must actually exercise multi-attempt searches, or the
    // equivalence above is vacuous for the racing-specific paths.
    EXPECT_GT(hard, 0);
}

TEST(IiSearchTest, RacingMatchesLinearWithRandomPriorities)
{
    // kRandom derives its permutation from (seed, ii), so an attempt's
    // result is a pure function of the candidate II — the property the
    // race's determinism rests on.
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        sched::ScheduleOptions linear;
        linear.priority = sched::PriorityScheme::kRandom;
        linear.randomSeed = 99;
        support::Counters linear_counters;
        const auto expected =
            scheduleWith(w.loop, machine, linear, linear_counters);

        sched::ScheduleOptions racing = linear;
        racing.search.withKind(sched::IiSearchKind::kRacing).withThreads(4);
        support::Counters racing_counters;
        const auto got =
            scheduleWith(w.loop, machine, racing, racing_counters);
        expectOutcomesIdentical(expected, got, w.loop.name());
        expectCountersEqual(linear_counters, racing_counters,
                            w.loop.name());
    }
}

TEST(IiSearchTest, SlackSchedulerRacingMatchesLinear)
{
    const auto machine = machine::cydra5();
    for (const auto& w : workloads::kernelLibrary()) {
        const auto graph = graph::buildDepGraph(w.loop, machine);
        const auto sccs = graph::findSccs(graph);

        sched::ScheduleOptions linear;
        linear.strategy = sched::SchedulerStrategy::kSlack;
        support::Counters linear_counters;
        const auto expected = sched::schedule(
            w.loop, machine, graph, sccs, linear, &linear_counters);

        for (const int threads : {1, 4, 8}) {
            sched::ScheduleOptions racing = linear;
            racing.search.withKind(sched::IiSearchKind::kRacing)
                .withThreads(threads);
            support::Counters racing_counters;
            const auto got = sched::schedule(
                w.loop, machine, graph, sccs, racing, &racing_counters);
            const std::string context = "slack/" + w.loop.name() +
                                        " threads=" +
                                        std::to_string(threads);
            expectOutcomesIdentical(expected, got, context);
            expectCountersEqual(linear_counters, racing_counters, context);
        }
    }
}

} // namespace
